// Extension experiment: purification-aware routing.
//
// Same sweep as ext_fidelity but with the BBPSSW purification ladder
// available per link. Expected shape: the raw fidelity-constrained router
// hits its feasibility wall where no physical route satisfies the floor;
// the purified router keeps serving well past it, paying rate (each
// purification level roughly squares a link's success probability).
#include <iostream>

#include "experiment/scenario.hpp"
#include "extensions/fidelity.hpp"
#include "extensions/purification.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_ext_purification");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;
  s.user_count = 5;
  s.area_side_km = 3000.0;
  s.attenuation = 3e-4;
  s.qubits_per_switch = 6;

  ext::FidelityParams fparams;
  fparams.fresh_fidelity = 0.99;
  fparams.decay_per_km = 1.5e-4;
  const ext::PurificationParams pparams{.max_rounds = 3};

  support::Table table(
      "Extension: purification vs. raw under a fidelity floor (5 users)",
      {"min F", "raw rate", "raw feasible", "purified rate",
       "purified feasible"});

  for (double min_f : {0.70, 0.80, 0.88, 0.93, 0.96}) {
    support::Accumulator raw_rate;
    support::Accumulator pure_rate;
    double raw_feasible = 0.0;
    double pure_feasible = 0.0;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      experiment::Instance inst = experiment::instantiate(s, rep);
      ext::FidelityParams params = fparams;
      params.min_fidelity = min_f;
      support::Rng r1 = inst.rng.split(1);
      const auto raw =
          ext::fidelity_aware_prim(inst.network, inst.users, params, r1);
      raw_rate.add(raw.rate);
      if (raw.feasible) raw_feasible += 1.0;
      support::Rng r2 = inst.rng.split(2);
      const auto purified =
          ext::purified_prim(inst.network, inst.users, params, pparams, r2);
      pure_rate.add(purified.rate);
      if (purified.feasible) pure_feasible += 1.0;
    }
    const auto reps = static_cast<double>(s.repetitions);
    char f_label[16];
    char raw_f[16];
    char pure_f[16];
    std::snprintf(f_label, sizeof f_label, "%.2f", min_f);
    std::snprintf(raw_f, sizeof raw_f, "%.2f", raw_feasible / reps);
    std::snprintf(pure_f, sizeof pure_f, "%.2f", pure_feasible / reps);
    table.add_text_row({f_label, support::format_rate(raw_rate.mean()), raw_f,
                        support::format_rate(pure_rate.mean()), pure_f});
  }
  std::cout << table;
  return 0;
}
