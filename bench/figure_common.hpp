// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's §V evaluation:
// it sweeps a single scenario parameter, averages the entanglement rate of
// all five algorithms (resolved through the RouterRegistry) over the
// scenario's 20 random networks (zeros counted, exactly like the paper),
// and prints the resulting series as a table plus a CSV block for external
// plotting. Passing --trace=out.json to any figure bench records a Chrome
// trace of the whole run (see TraceGuard).
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "routing/router.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry/export.hpp"
#include "support/telemetry/log.hpp"
#include "support/telemetry/trace.hpp"

namespace muerp::bench {

/// The shared flag set every bench binary accepts — a thin CliParser wrapper
/// so benches inherit the tool-wide conventions: `--flag value` and
/// `--flag=value` both work, unknown flags are rejected with usage on
/// stderr, `--help` exits 0, a typo'd flag exits 2. Benches with extra
/// flags register them on `cli` before calling parse().
class BenchCli {
 public:
  explicit BenchCli(const std::string& description) : cli(description) {
    cli.add_flag("log-level",
                 "stream structured events: debug|info|warn|error|off", "");
    cli.add_flag("log-format", "structured event rendering: text|json", "");
    cli.add_flag("trace", "write a Chrome trace of the whole run", "");
  }

  /// Parses argv and applies the log flags. Returns the process exit code
  /// when the bench should stop (0 after --help, 2 on a bad flag or value),
  /// nullopt to proceed.
  std::optional<int> parse(int argc, char** argv) {
    if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
    if (const std::string value = cli.get_string("log-level");
        !value.empty()) {
      support::telemetry::LogLevel level;
      if (!support::telemetry::parse_log_level(value, &level)) {
        std::cerr << "unknown --log-level '" << value
                  << "' (debug|info|warn|error|off)\n";
        return 2;
      }
      support::telemetry::set_log_level(level);
    }
    if (const std::string value = cli.get_string("log-format");
        !value.empty()) {
      support::telemetry::LogFormat format;
      if (!support::telemetry::parse_log_format(value, &format)) {
        std::cerr << "unknown --log-format '" << value << "' (text|json)\n";
        return 2;
      }
      support::telemetry::set_log_format(format);
    }
    return std::nullopt;
  }

  std::string trace_path() const { return cli.get_string("trace"); }

  support::CliParser cli;
};

struct SweepPoint {
  std::string label;
  experiment::Scenario scenario;
};

/// RAII handling of a bench's `--trace out.json` flag: enables TraceEvent
/// recording for the guard's lifetime and writes the Chrome trace_event
/// file (chrome://tracing, ui.perfetto.dev) at scope exit. Does nothing
/// when the path is empty, and records nothing in MUERP_TELEMETRY=OFF
/// builds (the file is then an empty event array).
class TraceGuard {
 public:
  explicit TraceGuard(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) support::telemetry::set_tracing(true);
  }
  ~TraceGuard() {
    if (path_.empty()) return;
    support::telemetry::set_tracing(false);
    const long events = support::telemetry::write_chrome_trace_file(path_);
    if (events < 0) {
      std::cerr << "failed to write trace file " << path_ << '\n';
    } else {
      std::cerr << "wrote " << events << " trace events to " << path_
                << " (load in chrome://tracing)\n";
    }
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

/// Runs every sweep point and prints two tables: mean entanglement rate and
/// feasible fraction per algorithm.
inline void run_figure(const std::string& figure_title,
                       const std::string& param_name,
                       const std::vector<SweepPoint>& points,
                       const experiment::RunnerOptions& options = {}) {
  const std::span<const std::string> algorithms =
      experiment::paper_algorithm_names();
  const routing::RouterRegistry& registry =
      routing::RouterRegistry::instance();
  std::vector<std::string> columns{param_name};
  for (const std::string& name : algorithms) {
    columns.emplace_back(registry.at(name).display_name());
  }
  support::Table rates(figure_title + " — mean entanglement rate", columns);
  support::Table stderrs(
      figure_title + " — standard error (network-to-network)", columns);
  support::Table feasible(figure_title + " — feasible fraction", columns);

  for (const SweepPoint& point : points) {
    const auto result =
        experiment::run_scenario(point.scenario, algorithms, options);
    std::vector<double> means;
    std::vector<double> errors;
    std::vector<double> fractions;
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      means.push_back(result.mean_rate(a));
      errors.push_back(result.stderr_rate(a));
      fractions.push_back(result.feasible_fraction(a));
    }
    rates.add_row(point.label, means);
    stderrs.add_row(point.label, errors);
    feasible.add_row(point.label, fractions);
  }

  std::cout << rates << '\n' << stderrs << '\n' << feasible << '\n';
  std::cout << "--- CSV (" << figure_title << ") ---\n"
            << rates.to_csv() << '\n';
}

}  // namespace muerp::bench
