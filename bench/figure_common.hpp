// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's §V evaluation:
// it sweeps a single scenario parameter, averages the entanglement rate of
// all five algorithms over the scenario's 20 random networks (zeros counted,
// exactly like the paper), and prints the resulting series as a table plus
// a CSV block for external plotting.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "support/table.hpp"

namespace muerp::bench {

struct SweepPoint {
  std::string label;
  experiment::Scenario scenario;
};

/// Runs every sweep point and prints two tables: mean entanglement rate and
/// feasible fraction per algorithm.
inline void run_figure(const std::string& figure_title,
                       const std::string& param_name,
                       const std::vector<SweepPoint>& points,
                       const experiment::RunnerOptions& options = {}) {
  std::vector<std::string> columns{param_name};
  for (experiment::Algorithm a : experiment::kAllAlgorithms) {
    columns.emplace_back(experiment::algorithm_name(a));
  }
  support::Table rates(figure_title + " — mean entanglement rate", columns);
  support::Table stderrs(
      figure_title + " — standard error (network-to-network)", columns);
  support::Table feasible(figure_title + " — feasible fraction", columns);

  for (const SweepPoint& point : points) {
    const auto result = experiment::run_scenario(point.scenario, options);
    std::vector<double> means;
    std::vector<double> errors;
    std::vector<double> fractions;
    for (std::size_t a = 0; a < experiment::kAllAlgorithms.size(); ++a) {
      means.push_back(result.mean_rate(a));
      errors.push_back(result.stderr_rate(a));
      fractions.push_back(result.feasible_fraction(a));
    }
    rates.add_row(point.label, means);
    stderrs.add_row(point.label, errors);
    feasible.add_row(point.label, fractions);
  }

  std::cout << rates << '\n' << stderrs << '\n' << feasible << '\n';
  std::cout << "--- CSV (" << figure_title << ") ---\n"
            << rates.to_csv() << '\n';
}

}  // namespace muerp::bench
