// Shared plumbing for the figure-reproduction benches.
//
// Each bench binary regenerates one figure of the paper's §V evaluation:
// it sweeps a single scenario parameter, averages the entanglement rate of
// all five algorithms (resolved through the RouterRegistry) over the
// scenario's 20 random networks (zeros counted, exactly like the paper),
// and prints the resulting series as a table plus a CSV block for external
// plotting. Passing --trace=out.json to any figure bench records a Chrome
// trace of the whole run (see TraceGuard).
#pragma once

#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "routing/router.hpp"
#include "support/table.hpp"
#include "support/telemetry/export.hpp"
#include "support/telemetry/log.hpp"
#include "support/telemetry/trace.hpp"

namespace muerp::bench {

/// Applies the shared `--log-level=<debug|info|warn|error|off>` and
/// `--log-format=<text|json>` flags every figure bench accepts, so a sweep
/// can stream the runner's structured events (scenario_start/finish) to
/// stderr. Returns false after printing a message on an unknown value; all
/// other arguments are ignored (benches parse their own flags).
inline bool apply_log_flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--log-level=", 0) == 0) {
      support::telemetry::LogLevel level;
      if (!support::telemetry::parse_log_level(arg.substr(12), &level)) {
        std::cerr << "unknown --log-level '" << arg.substr(12)
                  << "' (debug|info|warn|error|off)\n";
        return false;
      }
      support::telemetry::set_log_level(level);
    } else if (arg.rfind("--log-format=", 0) == 0) {
      support::telemetry::LogFormat format;
      if (!support::telemetry::parse_log_format(arg.substr(13), &format)) {
        std::cerr << "unknown --log-format '" << arg.substr(13)
                  << "' (text|json)\n";
        return false;
      }
      support::telemetry::set_log_format(format);
    }
  }
  return true;
}

struct SweepPoint {
  std::string label;
  experiment::Scenario scenario;
};

/// RAII handling of a bench's `--trace=out.json` flag: enables TraceEvent
/// recording for the guard's lifetime and writes the Chrome trace_event
/// file (chrome://tracing, ui.perfetto.dev) at scope exit. Does nothing
/// when the flag is absent, and records nothing in MUERP_TELEMETRY=OFF
/// builds (the file is then an empty event array).
class TraceGuard {
 public:
  TraceGuard(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (arg.rfind("--trace=", 0) == 0) path_ = std::string(arg.substr(8));
    }
    if (!path_.empty()) support::telemetry::set_tracing(true);
  }
  ~TraceGuard() {
    if (path_.empty()) return;
    support::telemetry::set_tracing(false);
    const long events = support::telemetry::write_chrome_trace_file(path_);
    if (events < 0) {
      std::cerr << "failed to write trace file " << path_ << '\n';
    } else {
      std::cerr << "wrote " << events << " trace events to " << path_
                << " (load in chrome://tracing)\n";
    }
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

/// Runs every sweep point and prints two tables: mean entanglement rate and
/// feasible fraction per algorithm.
inline void run_figure(const std::string& figure_title,
                       const std::string& param_name,
                       const std::vector<SweepPoint>& points,
                       const experiment::RunnerOptions& options = {}) {
  const std::span<const std::string> algorithms =
      experiment::paper_algorithm_names();
  const routing::RouterRegistry& registry =
      routing::RouterRegistry::instance();
  std::vector<std::string> columns{param_name};
  for (const std::string& name : algorithms) {
    columns.emplace_back(registry.at(name).display_name());
  }
  support::Table rates(figure_title + " — mean entanglement rate", columns);
  support::Table stderrs(
      figure_title + " — standard error (network-to-network)", columns);
  support::Table feasible(figure_title + " — feasible fraction", columns);

  for (const SweepPoint& point : points) {
    const auto result =
        experiment::run_scenario(point.scenario, algorithms, options);
    std::vector<double> means;
    std::vector<double> errors;
    std::vector<double> fractions;
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      means.push_back(result.mean_rate(a));
      errors.push_back(result.stderr_rate(a));
      fractions.push_back(result.feasible_fraction(a));
    }
    rates.add_row(point.label, means);
    stderrs.add_row(point.label, errors);
    feasible.add_row(point.label, fractions);
  }

  std::cout << rates << '\n' << stderrs << '\n' << feasible << '\n';
  std::cout << "--- CSV (" << figure_title << ") ---\n"
            << rates.to_csv() << '\n';
}

}  // namespace muerp::bench
