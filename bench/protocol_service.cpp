// Service-level experiment: the §II-B control pipeline under load.
//
// Sweeps the session arrival rate on the paper's default network and reports
// admitted fraction, completed-of-admitted fraction, mean session latency in
// execution windows, and switch-qubit utilization. Expected shape: admission
// degrades and utilization saturates as load grows — the service-level
// consequence of the same capacity limits that drive Fig. 8(a).
#include <iostream>

#include "experiment/scenario.hpp"
#include "simulation/protocol.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_protocol_service");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;
  s.user_count = 10;
  s.qubits_per_switch = 4;
  s.attenuation = 1.2e-4;  // sessions need many windows -> real contention
  const auto inst = experiment::instantiate(s, 0);

  support::Table table(
      "Service pipeline: sessions under load (paper default network)",
      {"arrival/slot", "arrived", "admitted frac", "completed frac",
       "mean latency", "utilization"});

  for (double load : {0.005, 0.02, 0.05, 0.1, 0.2}) {
    sim::ProtocolParams params;
    params.arrival_prob_per_slot = load;
    params.horizon_slots = 30000;
    params.session_timeout_slots = 500;
    params.min_group_size = 2;
    params.max_group_size = 5;
    const sim::ProtocolSimulator simulator(inst.network, params);
    support::Rng rng(static_cast<std::uint64_t>(load * 1e4) + 1);
    const auto m = simulator.run(rng);

    char l_label[16];
    std::snprintf(l_label, sizeof l_label, "%.3f", load);
    char admitted[16];
    std::snprintf(admitted, sizeof admitted, "%.3f", m.admitted_fraction());
    char completed[16];
    std::snprintf(completed, sizeof completed, "%.3f",
                  m.completed_fraction_of_admitted());
    char latency[16];
    std::snprintf(latency, sizeof latency, "%.1f", m.mean_completion_slots);
    char util[16];
    std::snprintf(util, sizeof util, "%.3f", m.mean_qubit_utilization);
    table.add_text_row({l_label, std::to_string(m.sessions_arrived), admitted,
                        completed, latency, util});
  }
  std::cout << table;
  return 0;
}
