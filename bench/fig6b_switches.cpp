// Fig. 6(b) of the paper: entanglement rate vs. the number of switches.
//
// Expected shape: mostly decreasing — with more switches (at a fixed
// deployment area and average degree) channels pass through more relays,
// multiplying extra swap factors — but the curve can tick upward late in
// the sweep when added switches shorten routes enough (the paper observes
// this between 40 and 50 switches).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig6b_switches");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (std::size_t switches : {10u, 20u, 30u, 40u, 50u}) {
    experiment::Scenario s;
    s.switch_count = switches;
    points.push_back({std::to_string(switches), s});
  }
  bench::run_figure("Fig. 6(b): Entanglement rate vs. number of switches",
                    "|R|", points);
  return 0;
}
