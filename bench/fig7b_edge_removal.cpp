// Fig. 7(b) of the paper: entanglement rate vs. removed-edge ratio.
//
// Setup per the paper: 10 users, 50 switches, 600 optical fibers (average
// degree 20), Q = 4. Starting from the full graph we repeatedly remove 30
// uniformly random fibers and re-run every algorithm, until no feasible
// routing remains. Expected shape: mostly decreasing with plateaus — the
// outcome depends on a few *critical* edges, so removing 5% often changes
// nothing — and occasional upticks when a removal steers a heuristic away
// from a locally attractive but globally poor channel.
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "figure_common.hpp"
#include "topology/perturb.hpp"

int main(int argc, char** argv) {
  using namespace muerp;
  bench::BenchCli cli("bench_fig7b_edge_removal");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const bench::TraceGuard trace(cli.trace_path());

  experiment::Scenario base;  // paper defaults except degree
  base.average_degree = 20.0;  // 600 edges over 60 nodes
  base.seed = 0xF16B;

  constexpr std::size_t kRemovePerStep = 30;
  constexpr std::size_t kTotalEdges = 600;
  constexpr std::size_t kSteps = kTotalEdges / kRemovePerStep;  // 20 steps

  // rates[step][algorithm] accumulated over repetitions.
  std::vector<std::vector<support::Accumulator>> acc(
      kSteps + 1,
      std::vector<support::Accumulator>(experiment::kAllAlgorithms.size()));

  for (std::size_t rep = 0; rep < base.repetitions; ++rep) {
    experiment::Instance inst = experiment::instantiate(base, rep);
    support::Rng removal_rng = support::Rng(base.seed ^ 0x9e37).split(rep);
    for (std::size_t step = 0; step <= kSteps; ++step) {
      for (std::size_t a = 0; a < experiment::kAllAlgorithms.size(); ++a) {
        acc[step][a].add(experiment::run_algorithm(
            experiment::kAllAlgorithms[a], inst));
      }
      // Remove the next 30 fibers uniformly at random.
      auto pruned = inst.network.graph();
      topology::remove_random_edges(pruned, kRemovePerStep, removal_rng);
      inst.network.set_topology(std::move(pruned));
    }
  }

  std::vector<std::string> columns{"removed-ratio"};
  for (experiment::Algorithm a : experiment::kAllAlgorithms) {
    columns.emplace_back(experiment::algorithm_name(a));
  }
  support::Table table(
      "Fig. 7(b): Entanglement rate vs. removed edges ratio", columns);
  for (std::size_t step = 0; step <= kSteps; ++step) {
    std::vector<double> means;
    for (auto& algo_acc : acc[step]) means.push_back(algo_acc.mean());
    char label[16];
    std::snprintf(label, sizeof label, "%.2f",
                  static_cast<double>(step * kRemovePerStep) / kTotalEdges);
    table.add_row(label, std::move(means));
  }
  std::cout << table << '\n';
  std::cout << "--- CSV (Fig. 7b) ---\n" << table.to_csv() << '\n';
  return 0;
}
