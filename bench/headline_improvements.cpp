// §V-B headline numbers: the maximum improvement of the proposed algorithms
// over the baselines across all evaluation sweeps.
//
// The paper reports: "Algorithms 2, 3, and 4 can boost the entanglement rate
// by up to 5347%, 3180%, and 3155% respectively when compared to N-FUSION,
// and by 5068%, 3014%, and 2990% respectively when compared to E-Q-CAST."
// This bench scans the same parameter space (topology, users, switches,
// degree, qubits, swap rate), computes per-sweep-point mean rates, and
// reports the maximum percentage improvement of each proposed algorithm over
// each baseline across points where the baseline succeeded. Absolute
// percentages depend on the random draw; the reproduced *shape* is that all
// six improvements are large (orders of hundreds to thousands of percent)
// and Alg-2's exceed Alg-3/4's.
#include <algorithm>
#include <iostream>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_headline_improvements");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  std::vector<experiment::Scenario> sweep;
  auto push = [&](auto mutate) {
    experiment::Scenario s;
    mutate(s);
    sweep.push_back(s);
  };
  for (auto kind : {experiment::TopologyKind::kWaxman,
                    experiment::TopologyKind::kWattsStrogatz,
                    experiment::TopologyKind::kVolchenkov}) {
    push([&](auto& s) { s.topology = kind; });
  }
  for (std::size_t users : {4u, 6u, 8u, 12u, 14u}) {
    push([&](auto& s) { s.user_count = users; });
  }
  for (std::size_t switches : {10u, 20u, 30u, 40u}) {
    push([&](auto& s) { s.switch_count = switches; });
  }
  for (double degree : {4.0, 8.0, 10.0}) {
    push([&](auto& s) { s.average_degree = degree; });
  }
  for (int qubits : {2, 6, 8}) {
    push([&](auto& s) { s.qubits_per_switch = qubits; });
  }
  for (double q : {0.7, 0.8, 1.0}) {
    push([&](auto& s) { s.swap_success = q; });
  }

  // improvements[proposed][baseline]: percentage per sweep point.
  std::vector<double> improvements[3][2];
  double at_defaults[3][2] = {{0, 0}, {0, 0}, {0, 0}};
  for (std::size_t idx = 0; idx < sweep.size(); ++idx) {
    const auto result = experiment::run_scenario(sweep[idx]);
    const double proposed[3] = {result.mean_rate(0), result.mean_rate(1),
                                result.mean_rate(2)};
    const double baseline[2] = {result.mean_rate(4),   // N-FUSION
                                result.mean_rate(3)};  // E-Q-CAST
    for (int p = 0; p < 3; ++p) {
      for (int b = 0; b < 2; ++b) {
        if (baseline[b] <= 0.0) continue;
        const double pct = 100.0 * (proposed[p] - baseline[b]) / baseline[b];
        improvements[p][b].push_back(pct);
        if (idx == 0) at_defaults[p][b] = pct;  // Waxman defaults point
      }
    }
  }

  // Extreme sweep points (14 users, Q=2, ...) produce astronomically large
  // ratios because a baseline's product rate collapses while the proposed
  // tree survives; report the defaults-point and median improvements, which
  // are the comparable analogues of the paper's "up to ~5000%" claims.
  support::Table table(
      "Headline (§V-B): improvement over baselines (percent)",
      {"algorithm", "defaults vs N-Fusion", "defaults vs E-Q-CAST",
       "median vs N-Fusion", "median vs E-Q-CAST", "max vs N-Fusion",
       "max vs E-Q-CAST"});
  const char* names[3] = {"Alg-2", "Alg-3", "Alg-4"};
  for (int p = 0; p < 3; ++p) {
    std::vector<std::string> row{names[p]};
    for (int b = 0; b < 2; ++b) {
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.0f", at_defaults[p][b]);
      row.emplace_back(cell);
    }
    for (int b = 0; b < 2; ++b) {
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.0f",
                    support::quantile(improvements[p][b], 0.5));
      row.emplace_back(cell);
    }
    for (int b = 0; b < 2; ++b) {
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.2e",
                    *std::max_element(improvements[p][b].begin(),
                                      improvements[p][b].end()));
      row.emplace_back(cell);
    }
    table.add_text_row(std::move(row));
  }
  std::cout << table << '\n';
  std::cout << "Paper reference (max over its sweeps): Alg-2 +5347% / +5068%,"
               " Alg-3 +3180% / +3014%, Alg-4 +3155% / +2990%"
               " (vs N-FUSION / E-Q-CAST).\n";
  return 0;
}
