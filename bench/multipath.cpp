// Multipath extension: what redundant channels buy per qubit budget.
//
// After Algorithm 3 commits its tree at the paper defaults, leftover switch
// qubits are provisioned into redundant channels (bundle succeeds when any
// member does). Expected shape: at Q = 4 nearly everything is committed and
// redundancy barely fits; at Q = 8+ stranded qubits convert into a solid
// rate multiplier — the quantitative case for multipath routing ([32])
// inside the paper's own BSM model.
#include <iostream>

#include "experiment/scenario.hpp"
#include "routing/conflict_free.hpp"
#include "routing/multipath.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_multipath");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  support::Table table(
      "Multipath: redundant channels from leftover capacity (Alg-3 trees)",
      {"Q", "tree rate", "multipath rate", "boost", "extra channels"});

  for (int qubits : {4, 6, 8, 12}) {
    experiment::Scenario s;
    s.qubits_per_switch = qubits;
    support::Accumulator tree_rate;
    support::Accumulator multi_rate;
    support::Accumulator extra;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      const experiment::Instance inst = experiment::instantiate(s, rep);
      const auto tree = routing::conflict_free(inst.network, inst.users);
      if (!tree.feasible) continue;
      const auto plan = routing::provision_multipath(inst.network, tree);
      tree_rate.add(tree.rate);
      multi_rate.add(plan.rate);
      extra.add(static_cast<double>(plan.redundant_channels));
    }
    char boost[16];
    char channels[16];
    std::snprintf(boost, sizeof boost, "%.2fx",
                  tree_rate.mean() > 0 ? multi_rate.mean() / tree_rate.mean()
                                       : 0.0);
    std::snprintf(channels, sizeof channels, "%.1f", extra.mean());
    table.add_text_row({std::to_string(qubits),
                        support::format_rate(tree_rate.mean()),
                        support::format_rate(multi_rate.mean()), boost,
                        channels});
  }
  std::cout << table;
  return 0;
}
