// Swap-order policy study: expected time-to-entanglement of one channel
// under the three swap scheduling policies, versus channel length.
//
// Complements the paper's single-window metric (Eq. 1): when windows are
// retried with quantum memory, scheduling matters. Expected shape: all
// policies agree on short channels; on long chains ASAP < balanced <<
// linear (the sequential chain wastes the far side's parallelism and risks
// its longest span on every swap).
#include <iostream>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "simulation/swap_policy.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

namespace {

using namespace muerp;

struct Chain {
  net::QuantumNetwork net;
  net::Channel channel;
};

Chain make_chain(std::size_t switches) {
  constexpr double kSegKm = 700.0;
  net::NetworkBuilder b;
  net::NodeId prev = b.add_user({0, 0});
  std::vector<net::NodeId> path{prev};
  for (std::size_t i = 0; i < switches; ++i) {
    const net::NodeId sw = b.add_switch({kSegKm * (i + 1.0), 0}, 4);
    b.connect(prev, sw, kSegKm);
    prev = sw;
    path.push_back(sw);
  }
  const net::NodeId last = b.add_user({kSegKm * (switches + 1.0), 0});
  b.connect(prev, last, kSegKm);
  path.push_back(last);
  auto net = std::move(b).build({4e-4, 0.85});
  net::Channel channel;
  channel.rate = net::channel_rate(net, path);
  channel.path = std::move(path);
  return {std::move(net), std::move(channel)};
}

}  // namespace

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_swap_policies");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  support::Table table(
      "Swap policies: mean slots to end-to-end entanglement (memory 8 slots)",
      {"switches", "single-shot rate", "swap-asap", "balanced", "linear"});

  for (std::size_t switches : {1u, 3u, 5u, 7u}) {
    const Chain chain = make_chain(switches);
    const sim::SwapPolicySimulator sim(chain.net, chain.channel);
    std::vector<std::string> row{std::to_string(switches),
                                 support::format_rate(chain.channel.rate)};
    for (sim::SwapPolicy policy :
         {sim::SwapPolicy::kAsap, sim::SwapPolicy::kBalanced,
          sim::SwapPolicy::kLinear}) {
      support::Rng rng(switches * 100 + static_cast<int>(policy));
      const auto stats =
          sim.measure({.policy = policy, .memory_slots = 8}, 2000, rng);
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.1f (%lu ok)", stats.mean_slots,
                    static_cast<unsigned long>(stats.completed_runs));
      row.emplace_back(cell);
    }
    table.add_text_row(std::move(row));
  }
  std::cout << table
            << "\nSingle-shot rate is Eq. (1); slot counts show what memory +"
               " scheduling buy\nover the paper's all-in-one-window model.\n";
  return 0;
}
