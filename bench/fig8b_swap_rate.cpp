// Fig. 8(b) of the paper: entanglement rate vs. BSM swap success rate q.
//
// Expected shape: every algorithm's rate rises with q; the proposed
// algorithms keep their lead across the whole range.
#include <cstdio>

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig8b_swap_rate");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (double q : {0.7, 0.8, 0.9, 1.0}) {
    experiment::Scenario s;
    s.swap_success = q;
    char label[16];
    std::snprintf(label, sizeof label, "%.1f", q);
    points.push_back({label, s});
  }
  bench::run_figure("Fig. 8(b): Entanglement rate vs. swap success rate",
                    "q", points);
  return 0;
}
