// Fig. 8(a) of the paper: entanglement rate vs. qubits per switch.
//
// Q_i sweeps 2 -> 8 for Algorithms 3/4 and the baselines; Algorithm 2 is
// pinned at 2|U| = 20 qubits (the paper: "Algorithm 2 is not constrained by
// this"), which the runner already does for every experiment. Expected
// shape: at Q = 2 only Algorithm 3 tends to route successfully; Algorithm 4
// and the baselines come alive as Q grows; baselines keep rising at Q = 8.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig8a_qubits");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (int qubits : {2, 4, 6, 8}) {
    experiment::Scenario s;
    s.qubits_per_switch = qubits;
    points.push_back({std::to_string(qubits), s});
  }
  bench::run_figure(
      "Fig. 8(a): Entanglement rate vs. qubits per switch (Alg-2 at 2|U|)",
      "Q", points);
  return 0;
}
