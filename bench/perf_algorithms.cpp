// Runtime micro-benchmarks backing the paper's §IV complexity claims:
//   Algorithm 1: O(|E| + |V| log |V|) per source
//   Algorithm 2: O(|U| (|E| + |V| log |V|))
//   Algorithms 3/4: O(|U|^2 (|E| + |V| log |V|))
// The google-benchmark sweeps scale |V| and |U| so the growth curves can be
// eyeballed against those bounds.
#include <benchmark/benchmark.h>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "experiment/scenario.hpp"
#include "routing/channel_finder.hpp"
#include "routing/conflict_free.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"

namespace {

using namespace muerp;

experiment::Instance make_instance(std::size_t switches, std::size_t users) {
  experiment::Scenario s;
  s.switch_count = switches;
  s.user_count = users;
  s.seed = 7;
  return experiment::instantiate(s, 0);
}

void BM_Algorithm1_SingleSource(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 10);
  const routing::ChannelFinder finder(inst.network);
  const net::CapacityState cap(inst.network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find_best_channels(inst.users[0], cap));
  }
}
BENCHMARK(BM_Algorithm1_SingleSource)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_Algorithm2_Optimal(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  const auto boosted = experiment::with_uniform_switch_qubits(
      inst.network, 2 * static_cast<int>(inst.users.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::optimal_special_case(boosted, inst.users));
  }
}
BENCHMARK(BM_Algorithm2_Optimal)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Algorithm3_ConflictFree(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::conflict_free(inst.network, inst.users));
  }
}
BENCHMARK(BM_Algorithm3_ConflictFree)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Algorithm4_PrimBased(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::prim_based_from(inst.network, inst.users, 0));
  }
}
BENCHMARK(BM_Algorithm4_PrimBased)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Baseline_EQCast(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::extended_qcast(inst.network, inst.users));
  }
}
BENCHMARK(BM_Baseline_EQCast)->Arg(5)->Arg(10)->Arg(20);

void BM_Baseline_NFusion(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::n_fusion(inst.network, inst.users));
  }
}
BENCHMARK(BM_Baseline_NFusion)->Arg(5)->Arg(10)->Arg(20);

void BM_NetworkScale_Algorithm3(benchmark::State& state) {
  const auto inst =
      make_instance(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::conflict_free(inst.network, inst.users));
  }
}
BENCHMARK(BM_NetworkScale_Algorithm3)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
