// Runtime micro-benchmarks backing the paper's §IV complexity claims:
//   Algorithm 1: O(|E| + |V| log |V|) per source
//   Algorithm 2: O(|U| (|E| + |V| log |V|))
//   Algorithms 3/4: O(|U|^2 (|E| + |V| log |V|))
// The google-benchmark sweeps scale |V| and |U| so the growth curves can be
// eyeballed against those bounds.
//
// `perf_algorithms --compare[=out.json]` instead runs the CachedChannelFinder
// before/after comparison: every routing algorithm is timed on the §V-A
// default scenario (50 switches, 10 users, Waxman, 20 networks) with finder
// memoization disabled and then enabled, the per-repetition rates are checked
// bit-identical, and the wall-clock times + routing perf counters are written
// to BENCH_routing.json (or the given path). The same mode also times the
// seed's lazy-heap Dijkstra against the SPF kernel call for call on those
// instances and verifies the two produce identical trees.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "experiment/scenario.hpp"
#include "graph/algorithms.hpp"
#include "routing/channel_finder.hpp"
#include "routing/conflict_free.hpp"
#include "routing/local_search.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/perf_counters.hpp"
#include "routing/prim_based.hpp"
#include "support/table.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/export.hpp"

namespace {

using namespace muerp;

experiment::Instance make_instance(std::size_t switches, std::size_t users) {
  experiment::Scenario s;
  s.switch_count = switches;
  s.user_count = users;
  s.seed = 7;
  return experiment::instantiate(s, 0);
}

void BM_Algorithm1_SingleSource(benchmark::State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 10);
  const routing::ChannelFinder finder(inst.network);
  const net::CapacityState cap(inst.network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find_best_channels(inst.users[0], cap));
  }
}
BENCHMARK(BM_Algorithm1_SingleSource)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

void BM_Algorithm2_Optimal(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  const auto boosted = net::with_uniform_switch_qubits(
      inst.network, 2 * static_cast<int>(inst.users.size()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::optimal_special_case(boosted, inst.users));
  }
}
BENCHMARK(BM_Algorithm2_Optimal)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Algorithm3_ConflictFree(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::conflict_free(inst.network, inst.users));
  }
}
BENCHMARK(BM_Algorithm3_ConflictFree)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Algorithm4_PrimBased(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::prim_based_from(inst.network, inst.users, 0));
  }
}
BENCHMARK(BM_Algorithm4_PrimBased)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

void BM_Baseline_EQCast(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baselines::extended_qcast(inst.network, inst.users));
  }
}
BENCHMARK(BM_Baseline_EQCast)->Arg(5)->Arg(10)->Arg(20);

void BM_Baseline_NFusion(benchmark::State& state) {
  const auto inst = make_instance(50, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::n_fusion(inst.network, inst.users));
  }
}
BENCHMARK(BM_Baseline_NFusion)->Arg(5)->Arg(10)->Arg(20);

void BM_NetworkScale_Algorithm3(benchmark::State& state) {
  const auto inst =
      make_instance(static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::conflict_free(inst.network, inst.users));
  }
}
BENCHMARK(BM_NetworkScale_Algorithm3)->Arg(25)->Arg(50)->Arg(100)->Arg(200);

// ---------------------------------------------------------------------------
// --compare mode: cached vs. uncached ChannelFinder on the §V-A defaults.
// ---------------------------------------------------------------------------

/// Rounds per mode; each entry's wall time is best-round * kRounds.
constexpr std::size_t kRounds = 5;

struct CompareEntry {
  std::string name;
  double uncached_ms = 0.0;
  double cached_ms = 0.0;
  std::vector<double> uncached_rates;
  std::vector<double> cached_rates;
  routing::PerfCounters uncached_counters;
  routing::PerfCounters cached_counters;

  double speedup() const {
    return cached_ms > 0.0 ? uncached_ms / cached_ms : 0.0;
  }
  bool identical() const { return uncached_rates == cached_rates; }
};

/// Timed passes of `algo` over all pre-built instances, split into rounds;
/// the reported time is best-round * rounds, which filters scheduler noise
/// the way best-of-N microbenchmarks do. Rates are collected from the first
/// repetition sweep so cached/uncached runs can be compared bit-for-bit.
template <typename Algo>
void run_mode(const std::vector<experiment::Instance>& instances,
              const Algo& algo, bool cached, std::size_t rounds,
              std::size_t passes_per_round, double& out_ms,
              std::vector<double>& out_rates,
              routing::PerfCounters& out_counters) {
  routing::set_finder_cache_enabled(cached);
  routing::reset_perf_counters();
  out_rates.clear();
  double best_round_ms = 0.0;
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t pass = 0; pass < passes_per_round; ++pass) {
      for (const experiment::Instance& inst : instances) {
        const double rate = algo(inst);
        if (round == 0 && pass == 0) out_rates.push_back(rate);
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double round_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    // Observed outside the timed window, so the quantiles in the exported
    // snapshot (p50/p95/p99 of round wall time) cost the benchmark nothing.
    MUERP_HISTOGRAM_OBSERVE("bench/round_ms", round_ms);
    if (round == 0 || round_ms < best_round_ms) best_round_ms = round_ms;
  }
  out_ms = best_round_ms * static_cast<double>(rounds);
  out_counters = routing::perf_counters();
}

template <typename Algo>
CompareEntry compare_algorithm(const std::string& name,
                               const std::vector<experiment::Instance>& instances,
                               const Algo& algo, std::size_t passes) {
  CompareEntry entry;
  entry.name = name;
  run_mode(instances, algo, /*cached=*/false, kRounds, passes / kRounds,
           entry.uncached_ms, entry.uncached_rates, entry.uncached_counters);
  run_mode(instances, algo, /*cached=*/true, kRounds, passes / kRounds,
           entry.cached_ms, entry.cached_rates, entry.cached_counters);
  return entry;
}

/// Full-precision rate array so an ON-build and an OFF-build JSON can be
/// diffed bit-for-bit (6-significant-digit default would mask divergence).
void write_rates_json(std::ofstream& out, const std::vector<double>& rates) {
  out << '[';
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i) out << ", ";
    out << std::setprecision(17) << rates[i];
  }
  out << ']' << std::setprecision(6);
}

void write_counters_json(std::ofstream& out,
                         const routing::PerfCounters& counters) {
  out << "{\"dijkstra_runs\": " << counters.dijkstra_runs
      << ", \"heap_pops\": " << counters.heap_pops
      << ", \"cache_hits\": " << counters.cache_hits
      << ", \"cache_misses\": " << counters.cache_misses
      << ", \"cache_invalidations\": " << counters.cache_invalidations << "}";
}

/// Kernel-level comparison: the seed's lazy-heap Dijkstra against the SPF
/// kernel (through the graph::dijkstra shim, so both sides pay the same
/// std::function weight/gate indirection and the table isolates the data
/// structures: CSR walk + indexed frontier vs vector-of-vectors + lazy
/// std::priority_queue). Each timed pass cycles every §V-A instance and
/// every user source, matching the cache/branch pressure of the experiment
/// sweeps above it. That regime is the honest one: hammering a single warm
/// instance instead lets the lazy heap's branches predict perfectly and it
/// edges out both kernel frontiers at this graph size (see EXPERIMENTS.md).
struct KernelCompare {
  double legacy_us = 0.0;  // per call
  double kernel_us = 0.0;  // per call
  bool identical = true;

  double speedup() const {
    return kernel_us > 0.0 ? legacy_us / kernel_us : 0.0;
  }
};

KernelCompare compare_kernel(
    const std::vector<experiment::Instance>& instances) {
  KernelCompare result;
  std::vector<net::CapacityState> capacities;
  capacities.reserve(instances.size());
  for (const experiment::Instance& inst : instances) {
    capacities.emplace_back(inst.network);
  }

  // Correctness first: distances and parent edges must agree exactly.
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const net::QuantumNetwork& network = instances[i].network;
    const net::CapacityState& capacity = capacities[i];
    const auto weight = [&](graph::EdgeId e) {
      return network.edge_routing_weight(e);
    };
    const auto gate = [&](graph::NodeId v) {
      return network.is_switch(v) && capacity.free_qubits(v) >= 2;
    };
    for (const net::NodeId source : instances[i].users) {
      const auto legacy =
          graph::dijkstra_legacy(network.graph(), source, weight, gate);
      const auto kernel =
          graph::dijkstra(network.graph(), source, weight, gate);
      result.identical = result.identical &&
                         legacy.distance == kernel.distance &&
                         legacy.parent_edge == kernel.parent_edge;
    }
  }

  constexpr std::size_t kKernelPasses = 50;
  static_assert(kKernelPasses % kRounds == 0);
  const std::size_t calls_per_round =
      (kKernelPasses / kRounds) * instances.size() * instances[0].users.size();
  const auto time_variant = [&](auto&& run_one) {
    double best_round_ms = 0.0;
    for (std::size_t round = 0; round < kRounds; ++round) {
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t pass = 0; pass < kKernelPasses / kRounds; ++pass) {
        for (std::size_t i = 0; i < instances.size(); ++i) {
          const net::QuantumNetwork& network = instances[i].network;
          const net::CapacityState& capacity = capacities[i];
          const auto weight = [&](graph::EdgeId e) {
            return network.edge_routing_weight(e);
          };
          const auto gate = [&](graph::NodeId v) {
            return network.is_switch(v) && capacity.free_qubits(v) >= 2;
          };
          for (const net::NodeId source : instances[i].users) {
            benchmark::DoNotOptimize(
                run_one(network.graph(), source, weight, gate));
          }
        }
      }
      const auto stop = std::chrono::steady_clock::now();
      const double round_ms =
          std::chrono::duration<double, std::milli>(stop - start).count();
      if (round == 0 || round_ms < best_round_ms) best_round_ms = round_ms;
    }
    return best_round_ms * 1000.0 / static_cast<double>(calls_per_round);
  };
  result.legacy_us = time_variant(
      [](const graph::Graph& g, graph::NodeId s, const auto& w,
         const auto& gate) { return graph::dijkstra_legacy(g, s, w, gate); });
  result.kernel_us = time_variant(
      [](const graph::Graph& g, graph::NodeId s, const auto& w,
         const auto& gate) { return graph::dijkstra(g, s, w, gate); });
  return result;
}

int run_compare(const std::string& output_path) {
  namespace tel = muerp::support::telemetry;
  const tel::Snapshot tel_before = tel::capture_process();
  experiment::Scenario scenario;  // §V-A defaults: 50 switches, 10 users,
                                  // Waxman, Q=4, q=0.9, 20 networks
  std::vector<experiment::Instance> instances;
  instances.reserve(scenario.repetitions);
  for (std::size_t rep = 0; rep < scenario.repetitions; ++rep) {
    instances.push_back(experiment::instantiate(scenario, rep));
  }

  // Several passes over the 20 networks amortize timer noise; rates are
  // compared from the first pass (all passes are deterministic anyway).
  constexpr std::size_t kPasses = 25;
  static_assert(kPasses % kRounds == 0);

  std::vector<CompareEntry> entries;
  entries.push_back(compare_algorithm(
      "Alg-3 conflict_free", instances, [](const experiment::Instance& inst) {
        return routing::conflict_free(inst.network, inst.users).rate;
      }, kPasses));
  entries.push_back(compare_algorithm(
      "Alg-4 prim_based", instances, [](const experiment::Instance& inst) {
        return routing::prim_based_from(inst.network, inst.users, 0).rate;
      }, kPasses));
  entries.push_back(compare_algorithm(
      "Alg-4 + local_search", instances, [](const experiment::Instance& inst) {
        auto tree = routing::prim_based_from(inst.network, inst.users, 0);
        routing::improve_tree(inst.network, inst.users, tree, 8);
        return tree.rate;
      }, kPasses));
  entries.push_back(compare_algorithm(
      "E-Q-CAST", instances, [](const experiment::Instance& inst) {
        return baselines::extended_qcast(inst.network, inst.users).rate;
      }, kPasses));
  entries.push_back(compare_algorithm(
      "N-Fusion", instances, [](const experiment::Instance& inst) {
        return baselines::n_fusion(inst.network, inst.users).rate;
      }, kPasses));
  routing::set_finder_cache_enabled(true);

  // Headline: Alg-4 prim_based, the greedy tree-growth hot path the cache
  // targets — every round re-runs |tree| Dijkstras without it. Alg-3 spends
  // its time in the one-shot Algorithm-2 seed (|U| fresh Dijkstras no
  // per-call cache can amortize; its Phase-2 greedy loop runs only when the
  // seed fails to connect), so it is reported but cannot speed up much by
  // construction. The Alg-3 + Alg-4 total is kept for transparency.
  const CompareEntry& hot_path = entries[1];
  double greedy_uncached = 0.0;
  double greedy_cached = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    greedy_uncached += entries[i].uncached_ms;
    greedy_cached += entries[i].cached_ms;
  }
  const double greedy_speedup =
      greedy_cached > 0.0 ? greedy_uncached / greedy_cached : 0.0;

  bool all_identical = true;
  std::printf(
      "CachedChannelFinder before/after — §V-A defaults, %zu passes "
      "(best of %zu rounds)\n",
      kPasses, kRounds);
  std::printf("%-22s %12s %12s %9s %10s\n", "algorithm", "uncached ms",
              "cached ms", "speedup", "identical");
  for (const CompareEntry& e : entries) {
    all_identical = all_identical && e.identical();
    std::printf("%-22s %12.2f %12.2f %8.2fx %10s\n", e.name.c_str(),
                e.uncached_ms, e.cached_ms, e.speedup(),
                e.identical() ? "yes" : "NO");
  }
  std::printf(
      "greedy hot path (Alg-4 tree growth): %.2f -> %.2f ms (%.2fx)\n",
      hot_path.uncached_ms, hot_path.cached_ms, hot_path.speedup());
  std::printf("greedy total (Alg-3 + Alg-4): %.2f -> %.2f ms (%.2fx)\n",
              greedy_uncached, greedy_cached, greedy_speedup);

  // Span/counter attribution of everything --compare ran above. In
  // MUERP_TELEMETRY=OFF builds the delta is empty and "enabled" is false;
  // diffing the per-algorithm rates arrays between an ON and an OFF build's
  // JSON verifies telemetry is pure observation (bit-identical rates).
  tel::Snapshot tel_delta = tel::capture_process();
  tel_delta.subtract(tel_before);

  const KernelCompare kernel = compare_kernel(instances);
  all_identical = all_identical && kernel.identical;
  std::printf(
      "\nSPF kernel vs seed Dijkstra — same instances, every user source\n");
  std::printf("%-22s %12s\n", "implementation", "us per call");
  std::printf("%-22s %12.3f\n", "seed lazy-heap", kernel.legacy_us);
  std::printf("%-22s %12.3f   (%.2fx, identical: %s)\n", "spf kernel",
              kernel.kernel_us, kernel.speedup(),
              kernel.identical ? "yes" : "NO");

  if (!tel_delta.empty()) {
    std::cout << '\n'
              << tel::spans_table(tel_delta, "telemetry spans (--compare run)");
  }

  std::ofstream out(output_path);
  if (!out) {
    std::cerr << "cannot write " << output_path << "\n";
    return 1;
  }
  out << "{\n  \"scenario\": {\"topology\": \"Waxman\", \"switches\": "
      << scenario.switch_count << ", \"users\": " << scenario.user_count
      << ", \"qubits_per_switch\": " << scenario.qubits_per_switch
      << ", \"repetitions\": " << scenario.repetitions
      << ", \"passes\": " << kPasses << "},\n";
  out << "  \"algorithms\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const CompareEntry& e = entries[i];
    out << "    {\"name\": \"" << e.name << "\", \"uncached_ms\": "
        << e.uncached_ms << ", \"cached_ms\": " << e.cached_ms
        << ", \"speedup\": " << e.speedup() << ", \"identical\": "
        << (e.identical() ? "true" : "false") << ",\n     \"uncached\": ";
    write_counters_json(out, e.uncached_counters);
    out << ",\n     \"cached\": ";
    write_counters_json(out, e.cached_counters);
    out << ",\n     \"rates\": ";
    write_rates_json(out, e.cached_rates);
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"telemetry\": {\"enabled\": "
      << (MUERP_TELEMETRY_ENABLED ? "true" : "false") << ", \"snapshot\": ";
  tel::write_json(out, tel_delta, /*indent=*/0);
  out << "},\n";
  out << "  \"greedy_hot_path\": {\"name\": \"" << hot_path.name
      << "\", \"uncached_ms\": " << hot_path.uncached_ms
      << ", \"cached_ms\": " << hot_path.cached_ms
      << ", \"speedup\": " << hot_path.speedup() << "},\n";
  out << "  \"greedy_total\": {\"uncached_ms\": " << greedy_uncached
      << ", \"cached_ms\": " << greedy_cached << ", \"speedup\": "
      << greedy_speedup << "},\n";
  out << "  \"spf_kernel\": {\"legacy_us_per_call\": " << kernel.legacy_us
      << ", \"kernel_us_per_call\": " << kernel.kernel_us
      << ", \"speedup\": " << kernel.speedup() << ", \"identical\": "
      << (kernel.identical ? "true" : "false") << "}\n}\n";
  std::printf("wrote %s\n", output_path.c_str());

  if (!all_identical) {
    std::cerr << "FAIL: results diverged (cached-vs-uncached rates or "
                 "kernel-vs-legacy distances)\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--compare") return run_compare("BENCH_routing.json");
    if (arg.rfind("--compare=", 0) == 0) {
      return run_compare(std::string(arg.substr(10)));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
