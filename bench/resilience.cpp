// Resilience experiment: backup channels under fiber outages.
//
// Routes the paper-default scenario with Algorithm 3, provisions link-
// disjoint backups from the residual capacity, then injects independent
// per-fiber outages and measures the surviving entanglement rate with and
// without the backups. Expected shape: identical at zero failures (backups
// never fire), diverging as outages grow — the protected plan degrades
// gracefully where the bare tree cliff-drops on its critical fibers
// (the operational complement of Fig. 7(b)).
#include <iostream>

#include "experiment/scenario.hpp"
#include "routing/backup.hpp"
#include "routing/conflict_free.hpp"
#include "simulation/failure.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_resilience");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;
  s.qubits_per_switch = 6;  // leave headroom for backups
  s.attenuation = 5e-5;     // measurable rates at 20k MC rounds

  support::Table table(
      "Resilience: rate under fiber outages (Alg-3 trees)",
      {"failure prob", "no backups", "greedy backups", "joint (Suurballe)",
       "greedy gain", "protected frac"});

  for (double failure : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    support::Accumulator bare;
    support::Accumulator greedy_rate;
    support::Accumulator joint_rate;
    support::Accumulator coverage;
    for (std::size_t rep = 0; rep < 10; ++rep) {
      experiment::Instance inst = experiment::instantiate(s, rep);
      const auto tree = routing::conflict_free(inst.network, inst.users);
      if (!tree.feasible) continue;
      const auto plan = routing::plan_backups(inst.network, tree);
      const auto joint = routing::plan_joint_protection(inst.network, tree);
      coverage.add(static_cast<double>(plan.protected_channels) /
                   static_cast<double>(tree.channels.size()));
      const sim::FailureSimulator sim(inst.network,
                                      {.failure_prob = failure});
      support::Rng r1 = inst.rng.split(1);
      bare.add(sim.estimate_resilient_rate(tree, nullptr, 20000, r1).rate);
      support::Rng r2 = inst.rng.split(2);
      greedy_rate.add(
          sim.estimate_resilient_rate(tree, &plan, 20000, r2).rate);
      support::Rng r3 = inst.rng.split(3);
      joint_rate.add(sim.estimate_resilient_rate(joint.tree, &joint.backups,
                                                 20000, r3)
                         .rate);
    }
    char f_label[16];
    char gain[16];
    char cover[16];
    std::snprintf(f_label, sizeof f_label, "%.2f", failure);
    std::snprintf(gain, sizeof gain, "%.2fx",
                  bare.mean() > 0 ? greedy_rate.mean() / bare.mean() : 0.0);
    std::snprintf(cover, sizeof cover, "%.2f", coverage.mean());
    table.add_text_row({f_label, support::format_rate(bare.mean()),
                        support::format_rate(greedy_rate.mean()),
                        support::format_rate(joint_rate.mean()), gain,
                        cover});
  }
  std::cout << table;
  return 0;
}
