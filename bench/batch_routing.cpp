// batch_routing — throughput benchmark for the batch multi-request kernel.
//
// Routes N=64 concurrent 2-user group requests against one shared topology
// and compares two implementations of the same contract:
//
//   * reference: the sequential ext::route_groups_reference /
//     route_groups_interleaved_reference loops (one full per-group setup —
//     cold finder, run-to-exhaustion Dijkstras — per request);
//   * batch: a persistent routing::BatchRouter instance (shared CSR,
//     generation-stamped slab workspaces, coalesced capacity epochs,
//     early-exit Dijkstras).
//
// Both are driven with identically seeded Rngs, and every pass asserts the
// outcomes are bit-identical (admit decisions, rates, channel paths) —
// the speedup is only meaningful if the results agree. Results are written
// as BENCH_batch.json (or the --out=<path> argument) with machine-
// independent gates for tools/bench_diff: the reference/batch speedup, the
// groups/sec throughput, the identical flags, the per-group admission
// latency quantiles (informational) and the served-rate arrays (bitwise).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/scenario.hpp"
#include "extensions/multigroup.hpp"
#include "routing/batch_router.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/telemetry/export.hpp"
#include "support/telemetry/telemetry.hpp"

#include "figure_common.hpp"

namespace {

using namespace muerp;
namespace tel = support::telemetry;

constexpr std::size_t kSwitches = 100;
constexpr std::size_t kUsers = 128;
constexpr int kQubitsPerSwitch = 6;
constexpr std::size_t kGroups = 64;   // N in the acceptance criterion
constexpr std::size_t kGroupSize = 2;
constexpr std::size_t kNetworks = 3;
constexpr std::size_t kPasses = 25;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// One workload instance: the network plus its 64 disjoint pair groups.
struct Instance {
  net::QuantumNetwork network;
  std::vector<std::vector<net::NodeId>> groups;
};

Instance make_instance(std::size_t repetition) {
  experiment::Scenario s;
  s.switch_count = kSwitches;
  s.user_count = kUsers;
  s.qubits_per_switch = kQubitsPerSwitch;
  s.seed = 7;
  Instance inst{experiment::instantiate(s, repetition).network, {}};
  inst.groups.resize(kGroups);
  for (std::size_t i = 0; i < kGroups * kGroupSize; ++i) {
    inst.groups[i % kGroups].push_back(inst.network.users()[i]);
  }
  return inst;
}

bool outcomes_identical(const ext::MultiGroupResult& reference,
                        const routing::BatchResult& batch) {
  if (reference.outcomes.size() != batch.outcomes.size()) return false;
  if (reference.groups_served != batch.groups_served) return false;
  if (reference.served_product_rate != batch.served_product_rate) return false;
  for (std::size_t i = 0; i < reference.outcomes.size(); ++i) {
    const auto& r = reference.outcomes[i];
    const auto& b = batch.outcomes[i];
    if (r.request_index != b.request_index) return false;
    if (r.tree.feasible != b.tree.feasible) return false;
    if (r.tree.rate != b.tree.rate) return false;  // bitwise
    if (r.tree.channels.size() != b.tree.channels.size()) return false;
    for (std::size_t c = 0; c < r.tree.channels.size(); ++c) {
      if (r.tree.channels[c].path != b.tree.channels[c].path) return false;
    }
  }
  return true;
}

struct Section {
  double reference_ms = 0.0;
  double batch_ms = 0.0;
  bool identical = true;
  std::vector<double> rates;  // served rates, first network / first pass

  double speedup() const {
    return batch_ms > 0.0 ? reference_ms / batch_ms : 0.0;
  }
  double reference_groups_per_sec() const {
    const double total = static_cast<double>(kNetworks * kPasses * kGroups);
    return reference_ms > 0.0 ? total / (reference_ms / 1e3) : 0.0;
  }
  double batch_groups_per_sec() const {
    const double total = static_cast<double>(kNetworks * kPasses * kGroups);
    return batch_ms > 0.0 ? total / (batch_ms / 1e3) : 0.0;
  }
};

void record_rates(Section& section, const routing::BatchResult& result) {
  if (!section.rates.empty()) return;
  for (const auto& outcome : result.outcomes) {
    if (outcome.tree.feasible) section.rates.push_back(outcome.tree.rate);
  }
}

void write_rates_json(std::ostream& out, const std::vector<double>& rates) {
  out << '[';
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out << (i > 0 ? ", " : "") << rates[i];
  }
  out << ']';
}

void write_section_json(std::ostream& out, const char* name,
                        const Section& s) {
  out << "  \"" << name << "\": {\"reference_ms\": " << s.reference_ms
      << ", \"batch_ms\": " << s.batch_ms << ", \"speedup\": " << s.speedup()
      << ",\n    \"reference_groups_per_sec\": " << s.reference_groups_per_sec()
      << ", \"batch_groups_per_sec\": " << s.batch_groups_per_sec()
      << ", \"identical\": " << (s.identical ? "true" : "false")
      << ",\n    \"rates\": ";
  write_rates_json(out, s.rates);
  out << "}";
}

int run(const std::string& output_path) {
  std::vector<Instance> instances;
  for (std::size_t n = 0; n < kNetworks; ++n) {
    instances.push_back(make_instance(n));
  }

  Section given_order;
  Section fair_share;
  std::vector<double> admit_us;
  const tel::Snapshot before = tel::capture_thread();

  for (std::size_t n = 0; n < kNetworks; ++n) {
    const Instance& inst = instances[n];
    std::vector<ext::GroupRequest> ext_groups;
    std::vector<routing::BatchRequest> requests;
    for (const auto& g : inst.groups) {
      ext::GroupRequest r;
      r.users = g;
      ext_groups.push_back(std::move(r));
      requests.push_back({g});
    }
    // Persistent kernels + persistent CapacityStates: each pass routes a
    // fresh batch of arrivals, then the admitted sessions complete and
    // release their channels — SessionService's steady state. The capacity
    // content is back to full before the next pass (so every pass stays
    // bit-comparable to the from-scratch reference), but the *lineage* is
    // unbroken: the flip-replay check lets warm slabs answer repeat
    // requests without a Dijkstra. The reference loop rebuilds everything
    // from nothing every pass — exactly what the batch kernel exists to
    // amortize. Release time is charged to the batch side (inside the
    // timed window) so the comparison can't hide teardown cost.
    routing::BatchRouter seq_router(inst.network);
    routing::BatchRouter fair_router(inst.network);
    net::CapacityState seq_capacity(inst.network);
    net::CapacityState fair_capacity(inst.network);
    const auto release_all = [](const routing::BatchResult& result,
                                net::CapacityState& capacity) {
      for (const auto& outcome : result.outcomes) {
        for (const net::Channel& channel : outcome.tree.channels) {
          capacity.release_channel(channel.path);
        }
      }
    };
    std::vector<double> pass_admit_us;

    for (std::size_t pass = 0; pass < kPasses; ++pass) {
      const std::uint64_t seed = n * 1000 + pass + 1;

      // --- given-order: sequential reference vs batch kernel ---
      support::Rng ref_rng(seed);
      auto start = Clock::now();
      const auto ref_seq = ext::route_groups_reference(
          inst.network, ext_groups, ext::GroupOrder::kGivenOrder, ref_rng);
      given_order.reference_ms += ms_since(start);

      support::Rng batch_rng(seed);
      routing::BatchOptions options;
      options.admit_us = &pass_admit_us;
      start = Clock::now();
      const auto batch_seq =
          seq_router.route_shared(requests, options, batch_rng, seq_capacity);
      release_all(batch_seq, seq_capacity);
      given_order.batch_ms += ms_since(start);
      given_order.identical &= outcomes_identical(ref_seq, batch_seq);
      record_rates(given_order, batch_seq);
      admit_us.insert(admit_us.end(), pass_admit_us.begin(),
                      pass_admit_us.end());

      // --- fair-share: interleaved reference vs batch kernel ---
      support::Rng ref_rng2(seed);
      start = Clock::now();
      const auto ref_fair = ext::route_groups_interleaved_reference(
          inst.network, ext_groups, ref_rng2);
      fair_share.reference_ms += ms_since(start);

      support::Rng batch_rng2(seed);
      routing::BatchOptions fair_options;
      fair_options.policy = routing::BatchPolicy::kFairShare;
      start = Clock::now();
      const auto batch_fair = fair_router.route_shared(
          requests, fair_options, batch_rng2, fair_capacity);
      release_all(batch_fair, fair_capacity);
      fair_share.batch_ms += ms_since(start);
      fair_share.identical &= outcomes_identical(ref_fair, batch_fair);
      record_rates(fair_share, batch_fair);
    }
  }

  tel::Snapshot delta = tel::capture_thread();
  delta.subtract(before);

  std::sort(admit_us.begin(), admit_us.end());
  const double p50 = support::quantile(admit_us, 0.50);
  const double p90 = support::quantile(admit_us, 0.90);
  const double p99 = support::quantile(admit_us, 0.99);

  support::Table table("batch routing kernel vs sequential reference (N=" +
                           std::to_string(kGroups) + " groups)",
                       {"policy", "ref ms", "batch ms", "speedup",
                        "batch groups/s"});
  table.add_row("given-order",
                {given_order.reference_ms, given_order.batch_ms,
                 given_order.speedup(), given_order.batch_groups_per_sec()});
  table.add_row("fair-share",
                {fair_share.reference_ms, fair_share.batch_ms,
                 fair_share.speedup(), fair_share.batch_groups_per_sec()});
  std::cout << table;
  std::cout << "admission latency us: p50 " << p50 << ", p90 " << p90
            << ", p99 " << p99 << " (" << admit_us.size() << " admissions)\n";

  std::ofstream out(output_path);
  out << std::setprecision(17);
  out << "{\n  \"scenario\": {\"topology\": \"Waxman\", \"switches\": "
      << kSwitches << ", \"users\": " << kUsers << ", \"qubits_per_switch\": "
      << kQubitsPerSwitch << ", \"groups\": " << kGroups
      << ", \"group_size\": " << kGroupSize << ", \"networks\": " << kNetworks
      << ", \"passes\": " << kPasses << "},\n";
  write_section_json(out, "given_order", given_order);
  out << ",\n";
  write_section_json(out, "fair_share", fair_share);
  out << ",\n";
  out << "  \"admit_us\": {\"count\": " << admit_us.size() << ", \"p50\": "
      << p50 << ", \"p90\": " << p90 << ", \"p99\": " << p99 << "},\n";
  out << "  \"telemetry\": {\"enabled\": "
      << (MUERP_TELEMETRY_ENABLED ? "true" : "false") << ", \"snapshot\": ";
  tel::write_json(out, delta, /*indent=*/0);
  out << "}\n}\n";
  std::printf("wrote %s\n", output_path.c_str());

  if (!given_order.identical || !fair_share.identical) {
    std::cerr << "FAIL: batch kernel diverged from the sequential "
                 "reference\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_batch_routing");
  cli.cli.add_flag("out", "perf-gate JSON output file", "BENCH_batch.json");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  return run(cli.cli.get_string("out"));
}
