// One-command regeneration of the paper's §V figures into an artifact
// directory (REPORT.md + per-figure CSVs). Default output: ./muerp_report;
// override with --out, trade precision for speed with --repetitions.
#include <iostream>

#include "experiment/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace muerp;
  support::CliParser cli("regenerate the ICDCS'24 evaluation figures");
  cli.add_flag("out", "artifact directory", "muerp_report");
  cli.add_flag("repetitions", "random networks per sweep point", "20");
  cli.add_flag("seed", "scenario seed", "");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  experiment::ReportOptions options;
  options.repetitions =
      static_cast<std::size_t>(cli.get_int("repetitions").value_or(20));
  if (cli.was_set("seed")) {
    options.seed =
        static_cast<std::uint64_t>(cli.get_int("seed").value_or(0));
  }
  const experiment::ReportBuilder builder(options);
  const std::string dir = cli.get_string("out");
  if (!builder.write_report(dir)) {
    std::cerr << "failed to write report into " << dir << '\n';
    return 1;
  }
  std::cout << "report written to " << dir << "/REPORT.md ("
            << options.repetitions << " repetitions per point)\n";
  return 0;
}
