// Ablation benches for the design choices called out in DESIGN.md:
//   A. N-FUSION fusion-penalty sweep — our gamma = 0.75 substitution is the
//      one free parameter of the baseline model; show the paper's ordering
//      (proposed >> N-FUSION) survives even the generous gamma = 1.0.
//   B. Algorithm 3 phase-1 ablation — run the repair loop with an empty seed
//      (pure phase 2) vs. seeded with Algorithm 2's tree, quantifying how
//      much the "replay the optimal tree first" phase buys.
//   C. Algorithm 4 seed-user sensitivity — spread between the best and the
//      worst starting user, motivating the paper's random choice.
//   D. Closed-form vs. Monte-Carlo — Eq. (2) against the simulated §II-B
//      process on routed plans.
//   E. Local-search post-optimization — how much the channel-exchange pass
//      (an extension beyond the paper) adds on top of Algorithms 3 and 4
//      when capacity is tight.
#include <algorithm>
#include <iostream>
#include <limits>
#include <vector>

#include "baselines/nfusion.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "routing/conflict_free.hpp"
#include "routing/local_search.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"
#include "simulation/monte_carlo.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

namespace {

using namespace muerp;

void ablation_fusion_penalty() {
  support::Table table(
      "Ablation A: N-FUSION fusion penalty gamma (paper defaults)",
      {"gamma", "N-Fusion mean rate", "Alg-3 mean rate", "Alg-3 / N-Fusion"});
  experiment::Scenario s;
  for (double gamma : {1.0, 0.9, 0.75, 0.5, 0.25}) {
    experiment::RunnerOptions options;
    options.nfusion.fusion_penalty = gamma;
    const auto result = experiment::run_scenario(s, options);
    const double nf = result.mean_rate(4);
    const double alg3 = result.mean_rate(1);
    char g[16];
    char c1[24];
    char c2[24];
    char c3[24];
    std::snprintf(g, sizeof g, "%.2f", gamma);
    std::snprintf(c1, sizeof c1, "%s", support::format_rate(nf).c_str());
    std::snprintf(c2, sizeof c2, "%s", support::format_rate(alg3).c_str());
    std::snprintf(c3, sizeof c3, "%.1fx", nf > 0 ? alg3 / nf : 0.0);
    table.add_text_row({g, c1, c2, c3});
  }
  std::cout << table << '\n';
}

void ablation_phase1() {
  // Phase-1 seeding only matters when capacity binds; starve the switches
  // and raise the user count so conflicts are the norm.
  experiment::Scenario s;
  s.qubits_per_switch = 2;
  s.user_count = 12;
  support::Accumulator seeded;
  support::Accumulator unseeded;
  std::size_t seeded_wins = 0;
  for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
    const experiment::Instance inst = experiment::instantiate(s, rep);
    const auto with_seed = routing::conflict_free(inst.network, inst.users);
    // Pure phase 2: empty initial tree, so every channel comes from the
    // greedy reconnection loop.
    const net::EntanglementTree empty_seed{{}, 0.0, false};
    const auto without_seed =
        routing::conflict_free_from(inst.network, inst.users, empty_seed);
    seeded.add(with_seed.rate);
    unseeded.add(without_seed.rate);
    if (with_seed.rate > without_seed.rate) ++seeded_wins;
  }
  support::Table table("Ablation B: Algorithm 3 phase-1 seeding",
                       {"variant", "mean rate"});
  table.add_row("phase1 + phase2 (paper)", {seeded.mean()});
  table.add_row("phase2 only", {unseeded.mean()});
  std::cout << table;
  std::cout << "phase-1 seeding strictly better on " << seeded_wins << "/"
            << s.repetitions << " networks\n\n";
}

void ablation_prim_seed() {
  experiment::Scenario s;
  s.qubits_per_switch = 2;  // starved switches magnify seed sensitivity
  support::Accumulator spread;
  support::Accumulator best_acc;
  support::Accumulator worst_acc;
  for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
    const experiment::Instance inst = experiment::instantiate(s, rep);
    double best = 0.0;
    double worst = std::numeric_limits<double>::infinity();
    for (std::size_t seed = 0; seed < inst.users.size(); ++seed) {
      const double rate =
          routing::prim_based_from(inst.network, inst.users, seed).rate;
      best = std::max(best, rate);
      worst = std::min(worst, rate);
    }
    best_acc.add(best);
    worst_acc.add(worst);
    if (best > 0.0) spread.add(worst / best);
  }
  support::Table table("Ablation C: Algorithm 4 seed-user sensitivity",
                       {"statistic", "value"});
  table.add_row("mean best-seed rate", {best_acc.mean()});
  table.add_row("mean worst-seed rate", {worst_acc.mean()});
  table.add_row("mean worst/best ratio", {spread.mean()});
  std::cout << table << '\n';
}

void ablation_mc_vs_analytic() {
  experiment::Scenario s;
  s.attenuation = 2e-5;  // keep rates measurable with bounded rounds
  support::Table table(
      "Ablation D: closed-form Eq. (2) vs Monte-Carlo execution",
      {"network", "analytic", "monte-carlo", "|diff|/sigma"});
  for (std::size_t rep = 0; rep < 5; ++rep) {
    experiment::Instance inst = experiment::instantiate(s, rep);
    const auto tree = routing::conflict_free(inst.network, inst.users);
    if (!tree.feasible) continue;
    const sim::MonteCarloSimulator mc(inst.network);
    const auto est = mc.estimate_tree_rate(tree, 100000, inst.rng);
    char label[16];
    char sigmas[16];
    std::snprintf(label, sizeof label, "#%zu", rep);
    const double sig = est.std_error > 0
                           ? std::abs(est.rate - tree.rate) / est.std_error
                           : 0.0;
    std::snprintf(sigmas, sizeof sigmas, "%.2f", sig);
    table.add_text_row({label, support::format_rate(tree.rate),
                        support::format_rate(est.rate), sigmas});
  }
  std::cout << table << '\n';
}

void ablation_local_search() {
  experiment::Scenario s;
  s.qubits_per_switch = 2;  // tight capacity: greedy choices leave slack
  s.user_count = 12;
  support::Accumulator alg3_raw;
  support::Accumulator alg3_ls;
  support::Accumulator alg4_raw;
  support::Accumulator alg4_ls;
  std::size_t improved = 0;
  for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
    const experiment::Instance inst = experiment::instantiate(s, rep);
    auto t3 = routing::conflict_free(inst.network, inst.users);
    alg3_raw.add(t3.rate);
    const auto s3 = routing::improve_tree(inst.network, inst.users, t3);
    alg3_ls.add(t3.rate);
    auto t4 = routing::prim_based_from(inst.network, inst.users, 0);
    alg4_raw.add(t4.rate);
    const auto s4 = routing::improve_tree(inst.network, inst.users, t4);
    alg4_ls.add(t4.rate);
    if (s3.exchanges + s4.exchanges > 0) ++improved;
  }
  support::Table table(
      "Ablation E: local-search exchange pass (Q=2, 12 users)",
      {"variant", "mean rate"});
  table.add_row("Alg-3", {alg3_raw.mean()});
  table.add_row("Alg-3 + local search", {alg3_ls.mean()});
  table.add_row("Alg-4", {alg4_raw.mean()});
  table.add_row("Alg-4 + local search", {alg4_ls.mean()});
  std::cout << table;
  std::cout << "exchange pass fired on " << improved << "/" << s.repetitions
            << " networks\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_ablations");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  ablation_fusion_penalty();
  ablation_phase1();
  ablation_prim_seed();
  ablation_mc_vs_analytic();
  ablation_local_search();
  return 0;
}
