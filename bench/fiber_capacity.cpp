// Assumption check: how many fiber cores does the paper's model need?
//
// §II-A assumes fibers have "adequate capacity" so only switch qubits
// constrain routing. This bench sweeps cores-per-fiber for the Prim
// heuristic under joint (qubit + core) constraints and compares against the
// unlimited-fiber Algorithm 4. Expected shape: 1 core visibly hurts on the
// default topology (tree channels share popular fibers); a small handful of
// cores already matches unlimited — quantifying why the paper's assumption
// is safe for multi-core fiber.
#include <iostream>

#include "experiment/scenario.hpp"
#include "routing/fiber_limits.hpp"
#include "routing/prim_based.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fiber_capacity");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;  // paper defaults

  support::Table table(
      "Fiber-core sweep: Alg-4 under joint qubit+core constraints",
      {"cores/fiber", "mean rate", "feasible fraction", "vs unlimited"});

  // Unlimited-fiber reference.
  support::Accumulator unlimited;
  for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
    const experiment::Instance inst = experiment::instantiate(s, rep);
    unlimited.add(routing::prim_based_from(inst.network, inst.users, 0).rate);
  }

  for (int cores : {1, 2, 4, 8}) {
    support::Accumulator rate;
    double feasible = 0.0;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      const experiment::Instance inst = experiment::instantiate(s, rep);
      routing::JointCapacity capacity(inst.network, cores);
      const auto tree =
          routing::prim_fiber_aware(inst.network, inst.users, 0, capacity);
      rate.add(tree.rate);
      if (tree.feasible) feasible += 1.0;
    }
    char c_label[8];
    char f_label[16];
    char ratio[16];
    std::snprintf(c_label, sizeof c_label, "%d", cores);
    std::snprintf(f_label, sizeof f_label, "%.2f",
                  feasible / static_cast<double>(s.repetitions));
    std::snprintf(ratio, sizeof ratio, "%.3f",
                  unlimited.mean() > 0 ? rate.mean() / unlimited.mean() : 0.0);
    table.add_text_row({c_label, support::format_rate(rate.mean()), f_label,
                        ratio});
  }
  table.add_text_row({"unlimited", support::format_rate(unlimited.mean()),
                      "1.00", "1.000"});
  std::cout << table;
  return 0;
}
