// Fig. 5 of the paper: entanglement rate vs. network topology.
//
// §V-A defaults (50 switches, 10 users, D = 6, Q = 4, q = 0.9, alpha = 1e-4,
// 20 random networks) swept over the three generation methods. Expected
// shape: the proposed algorithms (Alg-2/3/4) beat both baselines on every
// topology, and N-FUSION fails to entangle users on Watts–Strogatz graphs
// (its fusion star cannot fit Q = 4 switches along the ring).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig5_topology");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (experiment::TopologyKind kind :
       {experiment::TopologyKind::kWaxman,
        experiment::TopologyKind::kWattsStrogatz,
        experiment::TopologyKind::kVolchenkov}) {
    experiment::Scenario s;  // paper defaults
    s.topology = kind;
    points.push_back({experiment::topology_name(kind), s});
  }
  bench::run_figure("Fig. 5: Entanglement rate vs. network topology",
                    "topology", points);
  return 0;
}
