// Extension experiment: fidelity-aware multi-user routing (paper §VII).
//
// Sweeps the minimum acceptable end-to-end channel fidelity and reports the
// achievable entanglement rate and feasibility of the fidelity-constrained
// Prim heuristic, against the fidelity-oblivious Algorithm 3 and the
// fidelity its trees would actually deliver. The shape to expect: the
// constrained router sacrifices rate as the floor rises, then hits a wall
// where no tree qualifies; the oblivious router keeps its rate but its
// delivered worst-channel fidelity drifts below the floor.
#include <algorithm>
#include <iostream>

#include "experiment/scenario.hpp"
#include "extensions/fidelity.hpp"
#include "routing/conflict_free.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_ext_fidelity");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;
  s.user_count = 6;
  s.area_side_km = 3000.0;  // regional scale so fidelity budgets bind
  s.attenuation = 3e-4;
  s.qubits_per_switch = 6;

  ext::FidelityParams base;
  base.fresh_fidelity = 0.99;
  base.decay_per_km = 1.5e-4;

  support::Table table(
      "Extension: rate vs. minimum channel fidelity (6 users, regional)",
      {"min F", "constrained rate", "constrained feasible", "oblivious rate",
       "oblivious worst F"});

  for (double min_f : {0.55, 0.65, 0.75, 0.85, 0.92, 0.97}) {
    support::Accumulator constrained_rate;
    support::Accumulator oblivious_rate;
    support::Accumulator oblivious_worst_f;
    double feasible = 0;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      experiment::Instance inst = experiment::instantiate(s, rep);
      ext::FidelityParams params = base;
      params.min_fidelity = min_f;
      const auto constrained = ext::fidelity_aware_prim(
          inst.network, inst.users, params, inst.rng);
      constrained_rate.add(constrained.rate);
      if (constrained.feasible) feasible += 1.0;

      const auto oblivious = routing::conflict_free(inst.network, inst.users);
      oblivious_rate.add(oblivious.rate);
      double worst = 1.0;
      for (const auto& ch : oblivious.channels) {
        worst = std::min(
            worst, ext::channel_fidelity(inst.network, ch.path, params));
      }
      if (oblivious.feasible) oblivious_worst_f.add(worst);
    }
    char f_label[16];
    std::snprintf(f_label, sizeof f_label, "%.2f", min_f);
    char feas[16];
    std::snprintf(feas, sizeof feas, "%.2f",
                  feasible / static_cast<double>(s.repetitions));
    char worst[16];
    std::snprintf(worst, sizeof worst, "%.3f", oblivious_worst_f.mean());
    table.add_text_row({f_label, support::format_rate(constrained_rate.mean()),
                        feas, support::format_rate(oblivious_rate.mean()),
                        worst});
  }
  std::cout << table;
  return 0;
}
