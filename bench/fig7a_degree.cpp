// Fig. 7(a) of the paper: entanglement rate vs. average node degree.
//
// Expected shape: increasing — a denser fiber plant offers more channel
// candidates, so every algorithm finds better trees.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig7a_degree");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (double degree : {4.0, 6.0, 8.0, 10.0}) {
    experiment::Scenario s;
    s.average_degree = degree;
    points.push_back({std::to_string(static_cast<int>(degree)), s});
  }
  bench::run_figure("Fig. 7(a): Entanglement rate vs. average degree",
                    "degree", points);
  return 0;
}
