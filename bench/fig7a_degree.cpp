// Fig. 7(a) of the paper: entanglement rate vs. average node degree.
//
// Expected shape: increasing — a denser fiber plant offers more channel
// candidates, so every algorithm finds better trees.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  if (!muerp::bench::apply_log_flags(argc, argv)) return 1;
  const muerp::bench::TraceGuard trace(argc, argv);
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (double degree : {4.0, 6.0, 8.0, 10.0}) {
    experiment::Scenario s;
    s.average_degree = degree;
    points.push_back({std::to_string(static_cast<int>(degree)), s});
  }
  bench::run_figure("Fig. 7(a): Entanglement rate vs. average degree",
                    "degree", points);
  return 0;
}
