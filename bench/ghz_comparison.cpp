// GHZ distribution: Bell-tree assembly vs. n-fusion star, quantified.
//
// The paper's modelling argument (§I) is qualitative: BSM-built Bell trees
// are more reliable than n-fusion GHZ distribution. This bench routes both
// on the same default networks and sweeps the local-merge success p_local
// (the only cost the tree route pays that the star does not). Expected
// shape: the tree route dominates for any plausible p_local; only when
// local two-qubit operations become drastically unreliable does n-fusion
// catch up — putting a number on "when would the paper's choice be wrong".
#include <iostream>

#include "experiment/scenario.hpp"
#include "extensions/ghz.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_ghz_comparison");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  experiment::Scenario s;  // paper defaults, 10 users

  support::Table table(
      "GHZ distribution: Bell tree + local merges vs n-fusion star",
      {"p_local", "GHZ via tree", "GHZ via fusion", "tree/fusion"});

  for (double p_local : {1.0, 0.99, 0.95, 0.9, 0.7, 0.5, 0.3}) {
    support::Accumulator via_tree;
    support::Accumulator via_fusion;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      const experiment::Instance inst = experiment::instantiate(s, rep);
      ext::GhzParams params;
      params.local_merge_success = p_local;
      const auto cmp =
          ext::compare_ghz_distribution(inst.network, inst.users, params);
      via_tree.add(cmp.via_tree);
      via_fusion.add(cmp.via_fusion);
    }
    char p_label[16];
    char ratio[24];
    std::snprintf(p_label, sizeof p_label, "%.2f", p_local);
    std::snprintf(ratio, sizeof ratio, "%.1fx",
                  via_fusion.mean() > 0 ? via_tree.mean() / via_fusion.mean()
                                        : 0.0);
    table.add_text_row({p_label, support::format_rate(via_tree.mean()),
                        support::format_rate(via_fusion.mean()), ratio});
  }
  std::cout << table;
  return 0;
}
