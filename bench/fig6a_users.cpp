// Fig. 6(a) of the paper: entanglement rate vs. the number of users.
//
// Expected shape: the rate decreases as |U| grows — more users need more
// channels, and Eq. (2) multiplies another sub-unity factor per channel.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_fig6a_users");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;
  std::vector<bench::SweepPoint> points;
  for (std::size_t users : {4u, 6u, 8u, 10u, 12u, 14u}) {
    experiment::Scenario s;
    s.user_count = users;
    points.push_back({std::to_string(users), s});
  }
  bench::run_figure("Fig. 6(a): Entanglement rate vs. number of users",
                    "|U|", points);
  return 0;
}
