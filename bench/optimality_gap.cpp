// Optimality gap: how far are the heuristics from the true MUERP optimum?
//
// The paper proves NP-hardness but never measures its heuristics against
// exact optima; this bench does, on instances small enough for the
// exhaustive solver (12-node networks, 4 users, tight Q = 2..4). Reported
// per capacity level: how often each heuristic attains the optimum, the
// mean rate ratio heuristic/optimal over co-feasible instances, and
// feasibility agreement (a heuristic "miss" = exact feasible but heuristic
// returned rate 0 — Theorem 1 in action). The local-search pass is included
// to show how much of the residual gap it closes.
#include <iostream>

#include "routing/annealing.hpp"
#include "routing/conflict_free.hpp"
#include "routing/exact_solver.hpp"
#include "routing/local_search.hpp"
#include "routing/prim_based.hpp"
#include "network/network_builder.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "topology/structured.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_optimality_gap");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  support::Table table(
      "Optimality gap on exhaustive-solver instances (12 nodes, 4 users)",
      {"Q", "variant", "optimal hit rate", "mean rate ratio",
       "feasibility misses"});

  constexpr int kInstances = 40;
  for (int qubits : {2, 3, 4}) {
    struct Tally {
      const char* name;
      int hits = 0;
      int misses = 0;
      support::Accumulator ratio{};
    };
    Tally tallies[4] = {{"Alg-3"},
                        {"Alg-4"},
                        {"Alg-4 + local search"},
                        {"Alg-4 + annealing"}};
    int solvable = 0;

    for (int inst = 0; inst < kInstances; ++inst) {
      support::Rng rng(static_cast<std::uint64_t>(qubits) * 1000 + inst);
      auto topo = topology::make_erdos_renyi(12, 0.3, {1000, 1000}, rng);
      const auto net = net::assign_random_users(std::move(topo), 4, qubits,
                                                {1e-3, 0.9}, rng);
      const auto exact = routing::solve_exact(net, net.users());
      if (!exact || !exact->feasible) continue;
      ++solvable;

      net::EntanglementTree candidates[4];
      candidates[0] = routing::conflict_free(net, net.users());
      candidates[1] = routing::prim_based_from(net, net.users(), 0);
      candidates[2] = candidates[1];
      if (candidates[2].feasible) {
        routing::improve_tree(net, net.users(), candidates[2]);
      }
      candidates[3] = candidates[1];
      if (candidates[3].feasible) {
        support::Rng anneal_rng(static_cast<std::uint64_t>(inst) + 17);
        routing::anneal_tree(net, net.users(), candidates[3], {},
                             anneal_rng);
      }

      for (int v = 0; v < 4; ++v) {
        if (!candidates[v].feasible) {
          ++tallies[v].misses;
          continue;
        }
        const double ratio = candidates[v].rate / exact->rate;
        tallies[v].ratio.add(ratio);
        if (ratio > 1.0 - 1e-9) ++tallies[v].hits;
      }
    }

    for (const Tally& tally : tallies) {
      char hit[16];
      char ratio[16];
      std::snprintf(hit, sizeof hit, "%.2f",
                    solvable > 0 ? static_cast<double>(tally.hits) / solvable
                                 : 0.0);
      std::snprintf(ratio, sizeof ratio, "%.3f", tally.ratio.mean());
      table.add_text_row({std::to_string(qubits), tally.name, hit, ratio,
                          std::to_string(tally.misses)});
    }
  }
  std::cout << table
            << "\n'feasibility misses' = instances the exact solver proved "
               "feasible but the heuristic\ndeclared infeasible — expected "
               "occasionally, since deciding feasibility is NP-complete\n"
               "(Theorem 1).\n";
  return 0;
}
