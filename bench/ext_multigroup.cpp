// Extension experiment: concurrent multi-group routing (paper §VII).
//
// Several disjoint tenant groups share one network's switch qubits. Sweeps
// the number of concurrent 3-user groups at the paper's default capacity
// (Q = 4) and compares admission orders. Expected shape: served-group count
// saturates as qubit contention grows; smallest-first admits more groups
// than largest-first under pressure.
#include <iostream>

#include "experiment/scenario.hpp"
#include "extensions/multigroup.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

#include "figure_common.hpp"

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_ext_multigroup");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  using namespace muerp;

  support::Table table(
      "Extension: tenants served vs. concurrent 3-user groups (Q=4)",
      {"groups", "given-order", "smallest-first", "largest-first",
       "interleaved", "product rate (given)", "min rate (given)",
       "min rate (interleaved)"});

  for (std::size_t group_count : {1u, 2u, 3u, 4u, 5u}) {
    experiment::Scenario s;
    s.user_count = 3 * group_count;
    s.qubits_per_switch = 4;

    support::Accumulator served[4];
    support::Accumulator product;
    support::Accumulator min_given;
    support::Accumulator min_interleaved;
    for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
      const experiment::Instance inst = experiment::instantiate(s, rep);
      std::vector<ext::GroupRequest> groups(group_count);
      for (std::size_t i = 0; i < inst.users.size(); ++i) {
        groups[i / 3].users.push_back(inst.users[i]);
      }
      const ext::GroupOrder orders[3] = {ext::GroupOrder::kGivenOrder,
                                         ext::GroupOrder::kSmallestFirst,
                                         ext::GroupOrder::kLargestFirst};
      for (int o = 0; o < 3; ++o) {
        support::Rng rng(rep * 17 + static_cast<std::uint64_t>(o));
        const auto result =
            ext::route_groups(inst.network, groups, orders[o], rng);
        served[o].add(static_cast<double>(result.groups_served));
        if (o == 0) {
          product.add(result.groups_served > 0 ? result.served_product_rate
                                                : 0.0);
          min_given.add(result.groups_served == groups.size()
                            ? ext::min_served_rate(result)
                            : 0.0);
        }
      }
      support::Rng rng(rep * 17 + 3);
      const auto inter =
          ext::route_groups_interleaved(inst.network, groups, rng);
      served[3].add(static_cast<double>(inter.groups_served));
      min_interleaved.add(inter.groups_served == groups.size()
                              ? ext::min_served_rate(inter)
                              : 0.0);
    }
    char g_label[24];
    std::snprintf(g_label, sizeof g_label, "%zu", group_count);
    char c0[16];
    char c1[16];
    char c2[16];
    char c3[16];
    std::snprintf(c0, sizeof c0, "%.2f", served[0].mean());
    std::snprintf(c1, sizeof c1, "%.2f", served[1].mean());
    std::snprintf(c2, sizeof c2, "%.2f", served[2].mean());
    std::snprintf(c3, sizeof c3, "%.2f", served[3].mean());
    table.add_text_row({g_label, c0, c1, c2, c3,
                        support::format_rate(product.mean()),
                        support::format_rate(min_given.mean()),
                        support::format_rate(min_interleaved.mean())});
  }
  std::cout << table;
  return 0;
}
