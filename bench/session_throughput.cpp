// session_throughput — sessions/sec benchmark for the sharded session plane.
//
// Plays the same seeded session workload (Waxman topology, pair sessions,
// near-saturating arrivals) through three configurations:
//
//   * baseline: one plain sim::SessionService — the historical muerpd data
//     path: one Rng, one capacity pool, a cold prim_based_shared pass per
//     arrival;
//   * identity arm: sim::ShardedSessionService with lane_count == 1 on the
//     same seed and config — asserted bit-identical to the baseline
//     (metrics compare equal field for field);
//   * sharded arms: 8 lanes stepped by 1/2/4/8 shard workers with
//     batch_single_arrivals — per-lane persistent BatchRouter admission
//     (warm slabs, pair fast path) on per-lane capacity slices. All four
//     shard counts are asserted to produce bit-identical merged metrics
//     (the lane decomposition, not the worker count, defines the result).
//
// Reported per arm: sessions/sec (arrivals routed per wall-second) and
// admission-latency p50/p95/p99. The headline `speedup` is the 8-shard
// arm's sessions/sec over the baseline's — machine-relative, gated
// drop-only by tools/bench_diff --session-baseline/--session-current. The
// identity flags and the merged session counts are machine-independent and
// gate exactly. Exits non-zero if any identity assertion fails, so CI
// catches a divergence even without the diff gate.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "experiment/scenario.hpp"
#include "simulation/session_service.hpp"
#include "simulation/sharded_session_service.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"
#include "support/telemetry/export.hpp"
#include "support/telemetry/telemetry.hpp"

#include "figure_common.hpp"

namespace {

using namespace muerp;
namespace tel = support::telemetry;

constexpr std::size_t kSwitches = 100;
constexpr std::size_t kUsers = 128;
// Large enough that an 8-way lane slice still gives every lane 16 qubits
// per switch. Headroom matters twice: a lane needs >= 2 free qubits at a
// switch to relay at all, and slab reuse in the warm admission path dies
// whenever a switch crosses that boundary (every crossing is a relay flip,
// and flips invalidate cached trees) — tight slices turn every admission
// into a fresh Dijkstra.
constexpr int kQubitsPerSwitch = 128;
constexpr std::uint64_t kSlots = 5000;
constexpr double kArrivalProb = 0.9;
constexpr std::uint64_t kTimeoutSlots = 50;
constexpr std::size_t kLanes = 8;
constexpr std::uint64_t kTickBatch = 64;  // run_slots granularity (muerpd's)
constexpr std::uint64_t kSeed = 11;

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

sim::SessionServiceConfig base_config() {
  sim::SessionServiceConfig config;
  config.params.arrival_prob_per_slot = kArrivalProb;
  config.params.min_group_size = 2;
  config.params.max_group_size = 2;  // pair sessions: the warm fast path
  config.params.session_timeout_slots = kTimeoutSlots;
  return config;
}

struct Quantiles {
  std::size_t count = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

Quantiles admit_quantiles(std::vector<double> admit_us) {
  Quantiles q;
  q.count = admit_us.size();
  std::sort(admit_us.begin(), admit_us.end());
  q.p50 = support::quantile(admit_us, 0.50);
  q.p95 = support::quantile(admit_us, 0.95);
  q.p99 = support::quantile(admit_us, 0.99);
  return q;
}

struct ArmResult {
  double elapsed_ms = 0.0;
  sim::ProtocolMetrics metrics;
  Quantiles admit;

  double sessions_per_sec() const {
    return elapsed_ms > 0.0 ? static_cast<double>(metrics.sessions_arrived) /
                                  (elapsed_ms / 1e3)
                            : 0.0;
  }
};

bool metrics_identical(const sim::ProtocolMetrics& a,
                       const sim::ProtocolMetrics& b) {
  return a.sessions_arrived == b.sessions_arrived &&
         a.sessions_admitted == b.sessions_admitted &&
         a.sessions_rejected == b.sessions_rejected &&
         a.sessions_completed == b.sessions_completed &&
         a.sessions_timed_out == b.sessions_timed_out &&
         a.sessions_in_flight == b.sessions_in_flight &&
         a.mean_completion_slots == b.mean_completion_slots &&  // bitwise
         a.mean_qubit_utilization == b.mean_qubit_utilization;  // bitwise
}

ArmResult run_baseline(const net::QuantumNetwork& network) {
  std::vector<double> admit_us;
  sim::SessionServiceConfig config = base_config();
  config.admit_us = &admit_us;
  support::Rng rng(kSeed);
  sim::SessionService service(network, config, rng);
  ArmResult arm;
  const auto start = Clock::now();
  for (std::uint64_t s = 0; s < kSlots; ++s) service.step();
  arm.elapsed_ms = ms_since(start);
  arm.metrics = service.metrics();
  arm.admit = admit_quantiles(std::move(admit_us));
  return arm;
}

ArmResult run_sharded(const net::QuantumNetwork& network, std::size_t lanes,
                      std::size_t shards, bool batch_single) {
  sim::ShardedSessionServiceConfig config;
  config.base = base_config();
  config.base.batch_single_arrivals = batch_single;
  config.lane_count = lanes;
  config.shard_count = shards;
  config.record_admit_us = true;
  sim::ShardedSessionService service(network, config, kSeed);
  ArmResult arm;
  const auto start = Clock::now();
  for (std::uint64_t played = 0; played < kSlots; played += kTickBatch) {
    service.run_slots(std::min<std::uint64_t>(kTickBatch, kSlots - played));
  }
  arm.elapsed_ms = ms_since(start);
  arm.metrics = service.metrics();
  std::vector<double> admit_us;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const auto lane_us = service.lane_admit_us(lane);
    admit_us.insert(admit_us.end(), lane_us.begin(), lane_us.end());
  }
  arm.admit = admit_quantiles(std::move(admit_us));
  return arm;
}

void write_admit_json(std::ostream& out, const Quantiles& q) {
  out << "{\"count\": " << q.count << ", \"p50\": " << q.p50
      << ", \"p95\": " << q.p95 << ", \"p99\": " << q.p99 << "}";
}

int run(const std::string& output_path) {
  experiment::Scenario s;
  s.switch_count = kSwitches;
  s.user_count = kUsers;
  s.qubits_per_switch = kQubitsPerSwitch;
  s.seed = 7;
  const net::QuantumNetwork network =
      std::move(experiment::instantiate(s, 0).network);

  const tel::Snapshot before = tel::capture_process();

  const ArmResult baseline = run_baseline(network);
  // Identity arm: 1 lane, 1 shard, historical admission path — must be the
  // same computation as the baseline, bit for bit.
  const ArmResult lane1 =
      run_sharded(network, /*lanes=*/1, /*shards=*/1, /*batch_single=*/false);
  const bool identical_lane1 =
      metrics_identical(baseline.metrics, lane1.metrics);

  const std::size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<ArmResult> sharded;
  for (const std::size_t shards : shard_counts) {
    sharded.push_back(
        run_sharded(network, kLanes, shards, /*batch_single=*/true));
  }
  bool identical_across_shards = true;
  for (std::size_t i = 1; i < sharded.size(); ++i) {
    identical_across_shards &=
        metrics_identical(sharded[0].metrics, sharded[i].metrics);
  }

  tel::Snapshot delta = tel::capture_process();
  delta.subtract(before);

  const ArmResult& best = sharded.back();  // 8 shards
  const double speedup =
      baseline.sessions_per_sec() > 0.0
          ? best.sessions_per_sec() / baseline.sessions_per_sec()
          : 0.0;

  support::Table table(
      "sharded session plane vs single SessionService (" +
          std::to_string(kSlots) + " slots, pair sessions)",
      {"arm", "elapsed ms", "sessions/s", "admit p50 us", "admit p99 us"});
  table.add_row("baseline (1 lane, cold)",
                {baseline.elapsed_ms, baseline.sessions_per_sec(),
                 baseline.admit.p50, baseline.admit.p99});
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    table.add_row(std::to_string(kLanes) + " lanes / " +
                      std::to_string(shard_counts[i]) + " shards",
                  {sharded[i].elapsed_ms, sharded[i].sessions_per_sec(),
                   sharded[i].admit.p50, sharded[i].admit.p99});
  }
  std::cout << table;
  std::cout << "speedup (8 shards vs baseline): " << speedup
            << "x; identical_lane1 " << (identical_lane1 ? "yes" : "NO")
            << ", identical_across_shards "
            << (identical_across_shards ? "yes" : "NO") << "\n";

  std::ofstream out(output_path);
  out << std::setprecision(17);
  out << "{\n  \"scenario\": {\"topology\": \"Waxman\", \"switches\": "
      << kSwitches << ", \"users\": " << kUsers
      << ", \"qubits_per_switch\": " << kQubitsPerSwitch
      << ", \"slots\": " << kSlots << ", \"arrival\": " << kArrivalProb
      << ", \"lanes\": " << kLanes << ", \"timeout\": " << kTimeoutSlots
      << "},\n";
  out << "  \"baseline\": {\"elapsed_ms\": " << baseline.elapsed_ms
      << ", \"sessions_per_sec\": " << baseline.sessions_per_sec()
      << ", \"arrived\": " << baseline.metrics.sessions_arrived
      << ", \"admitted\": " << baseline.metrics.sessions_admitted
      << ", \"completed\": " << baseline.metrics.sessions_completed
      << ",\n    \"admit_us\": ";
  write_admit_json(out, baseline.admit);
  out << "},\n";
  out << "  \"sharded\": [\n";
  for (std::size_t i = 0; i < sharded.size(); ++i) {
    out << "    {\"shards\": " << shard_counts[i] << ", \"lanes\": " << kLanes
        << ", \"elapsed_ms\": " << sharded[i].elapsed_ms
        << ", \"sessions_per_sec\": " << sharded[i].sessions_per_sec()
        << ", \"admit_us\": ";
    write_admit_json(out, sharded[i].admit);
    out << "}" << (i + 1 < sharded.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup\": " << speedup << ",\n";
  out << "  \"identical_lane1\": " << (identical_lane1 ? "true" : "false")
      << ",\n";
  out << "  \"identical_across_shards\": "
      << (identical_across_shards ? "true" : "false") << ",\n";
  out << "  \"counts\": {\"arrived\": " << best.metrics.sessions_arrived
      << ", \"admitted\": " << best.metrics.sessions_admitted
      << ", \"completed\": " << best.metrics.sessions_completed << "},\n";
  out << "  \"telemetry\": {\"enabled\": "
      << (MUERP_TELEMETRY_ENABLED ? "true" : "false") << ", \"snapshot\": ";
  tel::write_json(out, delta, /*indent=*/0);
  out << "}\n}\n";
  std::printf("wrote %s\n", output_path.c_str());

  if (!identical_lane1) {
    std::cerr << "FAIL: 1-lane sharded service diverged from "
                 "SessionService\n";
    return 1;
  }
  if (!identical_across_shards) {
    std::cerr << "FAIL: merged metrics differ across shard counts\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  muerp::bench::BenchCli cli("bench_session_throughput");
  cli.cli.add_flag("out", "perf-gate JSON output file", "BENCH_session.json");
  if (const auto status = cli.parse(argc, argv)) return *status;
  const muerp::bench::TraceGuard trace(cli.trace_path());
  return run(cli.cli.get_string("out"));
}
