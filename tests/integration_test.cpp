// End-to-end integration: generate paper-scale networks, run all five
// algorithms, validate every output, and cross-check closed-form rates
// against the Monte-Carlo execution of the §II-B process.
#include <gtest/gtest.h>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "network/channel.hpp"
#include "routing/conflict_free.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"
#include "simulation/monte_carlo.hpp"
#include "support/statistics.hpp"
#include "topology/perturb.hpp"

namespace muerp {
namespace {

experiment::Scenario paper_defaults() {
  experiment::Scenario s;  // defaults already mirror §V-A
  s.repetitions = 8;       // trimmed for test time
  s.seed = 2024;
  return s;
}

class TopologySweep
    : public ::testing::TestWithParam<experiment::TopologyKind> {};

TEST_P(TopologySweep, AllAlgorithmOutputsAreValid) {
  experiment::Scenario s = paper_defaults();
  s.topology = GetParam();
  for (std::size_t rep = 0; rep < 4; ++rep) {
    experiment::Instance inst = experiment::instantiate(s, rep);

    const auto boosted = net::with_uniform_switch_qubits(
        inst.network, 2 * static_cast<int>(inst.users.size()));
    const auto alg2 = routing::optimal_special_case(boosted, inst.users);
    EXPECT_EQ(net::validate_tree(boosted, inst.users, alg2), "");

    const auto alg3 = routing::conflict_free(inst.network, inst.users);
    EXPECT_EQ(net::validate_tree(inst.network, inst.users, alg3), "");

    const auto alg4 =
        routing::prim_based(inst.network, inst.users, inst.rng);
    EXPECT_EQ(net::validate_tree(inst.network, inst.users, alg4), "");

    const auto eq = baselines::extended_qcast(inst.network, inst.users);
    EXPECT_EQ(net::validate_tree(inst.network, inst.users, eq), "");

    // Dominance on the shared instance.
    EXPECT_GE(alg2.rate * (1 + 1e-9), alg3.rate);
    EXPECT_GE(alg2.rate * (1 + 1e-9), alg4.rate);
    EXPECT_GE(alg2.rate * (1 + 1e-9), eq.rate);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, TopologySweep,
    ::testing::Values(experiment::TopologyKind::kWaxman,
                      experiment::TopologyKind::kWattsStrogatz,
                      experiment::TopologyKind::kVolchenkov));

TEST(Integration, PaperDefaultsProposedBeatBaselinesOnAverage) {
  // The paper's headline: Algorithms 2/3/4 outperform E-Q-CAST and
  // N-FUSION at the §V-A defaults. Means are over feasible-and-not runs
  // (zeros included), exactly like the figures.
  experiment::Scenario s = paper_defaults();
  s.repetitions = 12;
  const auto result = experiment::run_scenario(s);
  const double alg2 = result.mean_rate(0);
  const double alg3 = result.mean_rate(1);
  const double alg4 = result.mean_rate(2);
  const double eqcast = result.mean_rate(3);
  const double nfusion = result.mean_rate(4);

  EXPECT_GT(alg2, 0.0);
  EXPECT_GT(alg3, 0.0);
  EXPECT_GT(alg4, 0.0);
  EXPECT_GE(alg2 * (1 + 1e-9), alg3);
  EXPECT_GE(alg2 * (1 + 1e-9), alg4);
  EXPECT_GT(alg3, eqcast);
  EXPECT_GT(alg3, nfusion);
  EXPECT_GT(alg4, eqcast);
  EXPECT_GT(alg4, nfusion);
}

TEST(Integration, SwapRateMonotonicity) {
  // Fig. 8(b) shape: higher q -> higher entanglement rate, per algorithm.
  experiment::Scenario lo = paper_defaults();
  lo.swap_success = 0.7;
  experiment::Scenario hi = paper_defaults();
  hi.swap_success = 1.0;
  const auto r_lo = experiment::run_scenario(lo);
  const auto r_hi = experiment::run_scenario(hi);
  for (std::size_t a = 0; a < experiment::kAllAlgorithms.size(); ++a) {
    // Same seed -> identical topologies; only q differs, and every channel's
    // rate is monotone in q, so the means must be ordered.
    EXPECT_GE(r_hi.mean_rate(a) * (1 + 1e-9), r_lo.mean_rate(a))
        << experiment::algorithm_name(experiment::kAllAlgorithms[a]);
  }
}

TEST(Integration, QubitBudgetHelpsHeuristics) {
  experiment::Scenario poor = paper_defaults();
  poor.qubits_per_switch = 2;
  experiment::Scenario rich = paper_defaults();
  rich.qubits_per_switch = 8;
  const auto r_poor = experiment::run_scenario(poor);
  const auto r_rich = experiment::run_scenario(rich);
  // Feasibility fraction of Algorithm 3 must not decrease with capacity.
  EXPECT_GE(r_rich.feasible_fraction(1) + 1e-12, r_poor.feasible_fraction(1));
  EXPECT_GE(r_rich.feasible_fraction(2) + 1e-12, r_poor.feasible_fraction(2));
}

TEST(Integration, MonteCarloValidatesRoutedPlansAtScale) {
  experiment::Scenario s = paper_defaults();
  // Gentler attenuation so MC rates are measurable with 30k rounds.
  s.attenuation = 2e-5;
  experiment::Instance inst = experiment::instantiate(s, 0);
  const auto tree = routing::conflict_free(inst.network, inst.users);
  ASSERT_TRUE(tree.feasible);
  const sim::MonteCarloSimulator mc(inst.network);
  const auto est = mc.estimate_tree_rate(tree, 30000, inst.rng);
  EXPECT_NEAR(est.rate, tree.rate, 4.0 * est.std_error + 1e-9);
}

TEST(Integration, EdgeRemovalEventuallyKillsFeasibility) {
  // Fig. 7(b) mechanism: keep deleting fibers; all algorithms eventually
  // fail, and a disconnected user set can never be routed.
  experiment::Scenario s = paper_defaults();
  s.seed = 77;
  experiment::Instance inst = experiment::instantiate(s, 0);
  support::Rng removal_rng(5);
  bool alg3_failed = false;
  while (inst.network.graph().edge_count() > 0) {
    const auto tree = routing::conflict_free(inst.network, inst.users);
    EXPECT_EQ(net::validate_tree(inst.network, inst.users, tree), "");
    if (!tree.feasible) {
      alg3_failed = true;
      break;
    }
    // Remove 10% of remaining edges.
    auto pruned = inst.network.graph();
    const std::size_t to_remove =
        std::max<std::size_t>(1, pruned.edge_count() / 10);
    topology::remove_random_edges(pruned, to_remove, removal_rng);
    inst.network.set_topology(std::move(pruned));
  }
  EXPECT_TRUE(alg3_failed);
}

}  // namespace
}  // namespace muerp
