#include "topology/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"
#include "topology/volchenkov.hpp"
#include "topology/watts_strogatz.hpp"

namespace muerp::topology {
namespace {

TEST(DegreeStats, PathGraph) {
  const auto g = make_path(5, 1.0);
  const auto stats = degree_statistics(g.graph);
  EXPECT_DOUBLE_EQ(stats.mean, 2.0 * 4.0 / 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 2.0);
  ASSERT_EQ(stats.histogram.size(), 3u);
  EXPECT_EQ(stats.histogram[1], 2u);  // endpoints
  EXPECT_EQ(stats.histogram[2], 3u);  // interior
}

TEST(DegreeStats, EmptyGraph) {
  const auto stats = degree_statistics(graph::Graph{});
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);
  EXPECT_TRUE(stats.histogram.empty());
}

TEST(Clustering, CompleteGraphIsOne) {
  const auto g = make_complete(6, 1.0);
  EXPECT_NEAR(average_clustering_coefficient(g.graph), 1.0, 1e-12);
}

TEST(Clustering, TreeIsZero) {
  const auto g = make_path(8, 1.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(g.graph), 0.0);
  const auto star = make_star(6, 1.0);
  EXPECT_DOUBLE_EQ(average_clustering_coefficient(star.graph), 0.0);
}

TEST(Clustering, TriangleWithTail) {
  // Triangle 0-1-2 plus tail 2-3: C_0 = C_1 = 1, C_2 = 1/3, C_3 = 0.
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_NEAR(average_clustering_coefficient(g),
              (1.0 + 1.0 + 1.0 / 3.0 + 0.0) / 4.0, 1e-12);
}

TEST(PathLength, PathGraphClosedForm) {
  // L of a path on n vertices = (n+1)/3.
  const auto g = make_path(7, 1.0);
  EXPECT_NEAR(characteristic_path_length(g.graph), 8.0 / 3.0, 1e-12);
}

TEST(PathLength, CompleteGraphIsOne) {
  const auto g = make_complete(5, 1.0);
  EXPECT_DOUBLE_EQ(characteristic_path_length(g.graph), 1.0);
}

TEST(PathLength, IgnoresDisconnectedPairs) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(characteristic_path_length(g), 1.0);
}

TEST(SmallWorld, WattsStrogatzBeatsRewiredLattice) {
  // Small rewiring keeps high clustering but collapses path length ->
  // sigma well above 1; heavy rewiring destroys the clustering.
  support::Rng r1(1);
  WattsStrogatzParams params;
  params.node_count = 120;
  params.nearest_neighbors = 6;
  params.rewire_prob = 0.05;
  const auto small_world = generate_watts_strogatz(params, r1);
  const double sigma_sw = small_world_sigma(small_world.graph);
  EXPECT_GT(sigma_sw, 1.5);

  support::Rng r2(1);
  params.rewire_prob = 1.0;
  const auto random_like = generate_watts_strogatz(params, r2);
  EXPECT_GT(sigma_sw, small_world_sigma(random_like.graph));
}

TEST(PowerLaw, EstimatesVolchenkovExponent) {
  support::Rng rng(2);
  VolchenkovParams params;
  params.node_count = 400;
  params.exponent = 2.5;
  const auto g = generate_volchenkov(params, rng);
  const double gamma = power_law_exponent_mle(g.graph, 3);
  // MLE over a truncated, stub-dropped sample is biased but must land in
  // the scale-free ballpark.
  EXPECT_GT(gamma, 1.8);
  EXPECT_LT(gamma, 3.8);
}

TEST(Diameter, KnownGraphs) {
  EXPECT_EQ(hop_diameter(make_path(6, 1.0).graph), 5u);
  EXPECT_EQ(hop_diameter(make_cycle(8, 1.0).graph), 4u);
  EXPECT_EQ(hop_diameter(make_complete(5, 1.0).graph), 1u);
  EXPECT_EQ(hop_diameter(make_star(6, 1.0).graph), 2u);
  EXPECT_EQ(hop_diameter(graph::Graph(3)), 0u);
}

TEST(Diameter, DisconnectedTakesPerComponentMax) {
  graph::Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  g.add_edge(4, 5, 1.0);  // path of 4 -> diameter 3
  EXPECT_EQ(hop_diameter(g), 3u);
}

TEST(Assortativity, RegularGraphIsUndefinedZero) {
  // All degrees equal: zero variance -> defined as 0.
  EXPECT_DOUBLE_EQ(degree_assortativity(make_cycle(7, 1.0).graph), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(graph::Graph(4)), 0.0);
}

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  // Every edge joins the hub (degree n) to a leaf (degree 1): r = -1.
  EXPECT_NEAR(degree_assortativity(make_star(8, 1.0).graph), -1.0, 1e-12);
}

TEST(Assortativity, PowerLawGraphsAreDisassortative) {
  support::Rng rng(21);
  VolchenkovParams params;
  params.node_count = 300;
  const auto g = generate_volchenkov(params, rng);
  EXPECT_LT(degree_assortativity(g.graph), 0.05);
}

TEST(Bridges, PathGraphAllBridges) {
  const auto g = make_path(5, 1.0);
  EXPECT_EQ(find_bridges(g.graph).size(), 4u);
}

TEST(Bridges, CycleHasNone) {
  const auto g = make_cycle(6, 1.0);
  EXPECT_TRUE(find_bridges(g.graph).empty());
}

TEST(Bridges, MixedGraph) {
  // Triangle 0-1-2 with tail 2-3-4: the two tail edges are bridges.
  graph::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  const auto e02 = g.add_edge(0, 2, 1.0);
  const auto e23 = g.add_edge(2, 3, 1.0);
  const auto e34 = g.add_edge(3, 4, 1.0);
  const auto bridges = find_bridges(g);
  ASSERT_EQ(bridges.size(), 2u);
  EXPECT_TRUE(std::find(bridges.begin(), bridges.end(), e23) != bridges.end());
  EXPECT_TRUE(std::find(bridges.begin(), bridges.end(), e34) != bridges.end());
  EXPECT_TRUE(std::find(bridges.begin(), bridges.end(), e02) == bridges.end());
}

TEST(Bridges, DisconnectedComponents) {
  graph::Graph g(5);
  g.add_edge(0, 1, 1.0);          // bridge in component 1
  g.add_edge(2, 3, 1.0);          // triangle in component 2
  g.add_edge(3, 4, 1.0);
  g.add_edge(2, 4, 1.0);
  EXPECT_EQ(find_bridges(g).size(), 1u);
}

TEST(PairsLost, BridgeSplitsProduct) {
  // Path 0-1-2-3: middle bridge separates 2 x 2 vertices -> 4 pairs lost.
  const auto g = make_path(4, 1.0);
  const auto lost = pairs_lost_per_edge(g.graph);
  ASSERT_EQ(lost.size(), 3u);
  EXPECT_EQ(lost[0], 3u);  // 1 x 3
  EXPECT_EQ(lost[1], 4u);  // 2 x 2
  EXPECT_EQ(lost[2], 3u);
}

TEST(PairsLost, ZeroOnCycle) {
  const auto g = make_cycle(5, 1.0);
  for (std::size_t l : pairs_lost_per_edge(g.graph)) {
    EXPECT_EQ(l, 0u);
  }
}

/// Property: bridge count from Tarjan equals brute-force edge deletion.
class BridgeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BridgeOracle, MatchesBruteForce) {
  support::Rng rng(GetParam());
  const support::Region region{100, 100};
  auto g = make_erdos_renyi(14, 0.18, region, rng);
  const auto fast = find_bridges(g.graph);

  std::vector<graph::EdgeId> slow;
  const std::size_t base_components = graph::component_count(g.graph);
  for (graph::EdgeId e = 0; e < g.graph.edge_count(); ++e) {
    auto copy = g.graph;
    copy.remove_edge(e);
    if (graph::component_count(copy) > base_components) slow.push_back(e);
  }
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BridgeOracle,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::topology
