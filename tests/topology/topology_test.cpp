#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/rng.hpp"
#include "topology/analysis.hpp"
#include "topology/structured.hpp"
#include "topology/volchenkov.hpp"
#include "topology/watts_strogatz.hpp"
#include "topology/waxman.hpp"

namespace muerp::topology {
namespace {

TEST(Waxman, NodeAndEdgeCounts) {
  support::Rng rng(1);
  WaxmanParams params;
  params.node_count = 60;
  params.average_degree = 6.0;
  params.ensure_connected = false;
  GenerationStats stats;
  const auto g = generate_waxman(params, rng, &stats);
  EXPECT_EQ(g.graph.node_count(), 60u);
  EXPECT_EQ(g.graph.edge_count(), 180u);  // D*n/2
  EXPECT_EQ(stats.requested_edges, 180u);
  EXPECT_EQ(stats.connectivity_edges_added, 0u);
  EXPECT_NEAR(g.graph.average_degree(), 6.0, 1e-9);
}

TEST(Waxman, EnsureConnectedYieldsConnectedGraph) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    support::Rng rng(seed);
    WaxmanParams params;
    params.node_count = 60;
    const auto g = generate_waxman(params, rng);
    EXPECT_TRUE(graph::is_connected(g.graph)) << "seed " << seed;
  }
}

TEST(Waxman, PositionsInsideRegion) {
  support::Rng rng(2);
  WaxmanParams params;
  const auto g = generate_waxman(params, rng);
  ASSERT_EQ(g.positions.size(), g.graph.node_count());
  for (const auto& p : g.positions) {
    EXPECT_TRUE(params.region.contains(p));
  }
}

TEST(Waxman, EdgeLengthsAreEuclidean) {
  support::Rng rng(3);
  WaxmanParams params;
  params.node_count = 30;
  const auto g = generate_waxman(params, rng);
  for (const auto& e : g.graph.edges()) {
    EXPECT_NEAR(e.length_km,
                support::distance(g.positions[e.a], g.positions[e.b]), 1e-9);
  }
}

TEST(Waxman, DeterministicForSeed) {
  WaxmanParams params;
  params.node_count = 40;
  support::Rng r1(77);
  support::Rng r2(77);
  const auto g1 = generate_waxman(params, r1);
  const auto g2 = generate_waxman(params, r2);
  ASSERT_EQ(g1.graph.edge_count(), g2.graph.edge_count());
  for (graph::EdgeId e = 0; e < g1.graph.edge_count(); ++e) {
    EXPECT_EQ(g1.graph.edge(e).a, g2.graph.edge(e).a);
    EXPECT_EQ(g1.graph.edge(e).b, g2.graph.edge(e).b);
  }
}

TEST(Waxman, PrefersShortEdges) {
  // The mean selected-edge length must be well below the mean pairwise
  // distance — the defining property of the Waxman kernel.
  support::Rng rng(4);
  WaxmanParams params;
  params.node_count = 60;
  params.ensure_connected = false;
  const auto g = generate_waxman(params, rng);
  double edge_mean = 0.0;
  for (const auto& e : g.graph.edges()) edge_mean += e.length_km;
  edge_mean /= static_cast<double>(g.graph.edge_count());
  double pair_mean = 0.0;
  std::size_t pairs = 0;
  for (std::size_t a = 0; a < g.positions.size(); ++a) {
    for (std::size_t b = a + 1; b < g.positions.size(); ++b) {
      pair_mean += support::distance(g.positions[a], g.positions[b]);
      ++pairs;
    }
  }
  pair_mean /= static_cast<double>(pairs);
  EXPECT_LT(edge_mean, 0.8 * pair_mean);
}

TEST(WattsStrogatz, LatticeWithoutRewiring) {
  support::Rng rng(5);
  WattsStrogatzParams params;
  params.node_count = 20;
  params.nearest_neighbors = 4;
  params.rewire_prob = 0.0;
  const auto g = generate_watts_strogatz(params, rng);
  EXPECT_EQ(g.graph.edge_count(), 40u);  // n*k/2
  for (graph::NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(g.graph.degree(v), 4u);
  }
  EXPECT_TRUE(graph::is_connected(g.graph));
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  support::Rng rng(6);
  WattsStrogatzParams params;
  params.node_count = 60;
  params.nearest_neighbors = 6;
  params.rewire_prob = 0.5;
  const auto g = generate_watts_strogatz(params, rng);
  EXPECT_EQ(g.graph.edge_count(), 180u);
}

TEST(WattsStrogatz, FullRewireChangesTopology) {
  support::Rng rng(7);
  WattsStrogatzParams params;
  params.node_count = 40;
  params.nearest_neighbors = 4;
  params.rewire_prob = 1.0;
  const auto g = generate_watts_strogatz(params, rng);
  // Count surviving pure-lattice edges; with p=1 nearly all are rewired
  // (an edge survives only when no fresh endpoint was found).
  std::size_t lattice_edges = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    for (std::size_t off = 1; off <= 2; ++off) {
      if (g.graph.has_edge(static_cast<graph::NodeId>(i),
                           static_cast<graph::NodeId>((i + off) % 40))) {
        ++lattice_edges;
      }
    }
  }
  EXPECT_LT(lattice_edges, 30u);  // out of 80 original slots
}

TEST(WattsStrogatz, LatticeClusteringMatchesClosedForm) {
  // The unrewired ring lattice has clustering C = 3(k-2) / (4(k-1));
  // for k = 6 that is 0.6 exactly.
  support::Rng rng(77);
  WattsStrogatzParams params;
  params.node_count = 80;
  params.nearest_neighbors = 6;
  params.rewire_prob = 0.0;
  const auto g = generate_watts_strogatz(params, rng);
  EXPECT_NEAR(average_clustering_coefficient(g.graph), 0.6, 1e-12);
}

TEST(WattsStrogatz, RingNeighboursAreClose) {
  support::Rng rng(8);
  WattsStrogatzParams params;
  params.node_count = 60;
  params.rewire_prob = 0.0;
  const auto g = generate_watts_strogatz(params, rng);
  // Adjacent-ring fiber must be far shorter than the ring diameter.
  const double diameter =
      2.0 * 0.45 * std::min(params.region.width, params.region.height);
  for (const auto& e : g.graph.edges()) {
    EXPECT_LT(e.length_km, 0.5 * diameter);
  }
}

TEST(Volchenkov, NodeCountAndConnectivity) {
  support::Rng rng(9);
  VolchenkovParams params;
  params.node_count = 60;
  const auto g = generate_volchenkov(params, rng);
  EXPECT_EQ(g.graph.node_count(), 60u);
  EXPECT_TRUE(graph::is_connected(g.graph));
}

TEST(Volchenkov, AverageDegreeNearTarget) {
  support::Rng rng(10);
  VolchenkovParams params;
  params.node_count = 200;
  params.average_degree = 6.0;
  const auto g = generate_volchenkov(params, rng);
  // Configuration-model stub drops + connectivity stitching move the mean a
  // little; it must stay in a sensible band around the target.
  EXPECT_GT(g.graph.average_degree(), 3.5);
  EXPECT_LT(g.graph.average_degree(), 8.5);
}

TEST(Volchenkov, HasHeavyDegreeTail) {
  support::Rng rng(11);
  VolchenkovParams params;
  params.node_count = 300;
  params.average_degree = 6.0;
  const auto g = generate_volchenkov(params, rng);
  std::vector<std::size_t> degrees;
  for (graph::NodeId v = 0; v < g.graph.node_count(); ++v) {
    degrees.push_back(g.graph.degree(v));
  }
  const auto max_degree = *std::max_element(degrees.begin(), degrees.end());
  // A power-law graph must produce hubs several times the mean degree;
  // an ER graph of the same density almost never exceeds ~3x.
  EXPECT_GE(max_degree, 4 * 6u);
}

TEST(Structured, PathProperties) {
  const auto g = make_path(5, 100.0);
  EXPECT_EQ(g.graph.node_count(), 5u);
  EXPECT_EQ(g.graph.edge_count(), 4u);
  EXPECT_EQ(g.graph.degree(0), 1u);
  EXPECT_EQ(g.graph.degree(2), 2u);
  for (const auto& e : g.graph.edges()) {
    EXPECT_NEAR(e.length_km, 100.0, 1e-9);
  }
}

TEST(Structured, CycleChordLengths) {
  const auto g = make_cycle(8, 50.0);
  EXPECT_EQ(g.graph.edge_count(), 8u);
  for (const auto& e : g.graph.edges()) {
    EXPECT_NEAR(e.length_km, 50.0, 1e-9);
  }
  for (graph::NodeId v = 0; v < 8; ++v) EXPECT_EQ(g.graph.degree(v), 2u);
}

TEST(Structured, StarProperties) {
  const auto g = make_star(6, 200.0);
  EXPECT_EQ(g.graph.node_count(), 7u);
  EXPECT_EQ(g.graph.degree(0), 6u);
  for (graph::NodeId leaf = 1; leaf <= 6; ++leaf) {
    EXPECT_EQ(g.graph.degree(leaf), 1u);
    ASSERT_TRUE(g.graph.find_edge(0, leaf).has_value());
    EXPECT_NEAR(g.graph.edge(*g.graph.find_edge(0, leaf)).length_km, 200.0,
                1e-9);
  }
}

TEST(Structured, CompleteGraph) {
  const auto g = make_complete(6, 10.0);
  EXPECT_EQ(g.graph.edge_count(), 15u);
  for (graph::NodeId v = 0; v < 6; ++v) EXPECT_EQ(g.graph.degree(v), 5u);
}

TEST(Structured, GridProperties) {
  const auto g = make_grid(3, 4, 10.0);
  EXPECT_EQ(g.graph.node_count(), 12u);
  EXPECT_EQ(g.graph.edge_count(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_TRUE(graph::is_connected(g.graph));
  EXPECT_EQ(g.graph.degree(0), 2u);      // corner
  EXPECT_EQ(g.graph.degree(5), 4u);      // interior (1,1)
}

TEST(Structured, ErdosRenyiExtremes) {
  support::Rng rng(12);
  const support::Region region{100.0, 100.0};
  const auto empty = make_erdos_renyi(10, 0.0, region, rng);
  EXPECT_EQ(empty.graph.edge_count(), 0u);
  const auto full = make_erdos_renyi(10, 1.0, region, rng);
  EXPECT_EQ(full.graph.edge_count(), 45u);
}

/// Property sweep: every generator yields a simple graph of the right size
/// whose edge lengths match the embedding.
struct GeneratorCase {
  const char* name;
  std::size_t nodes;
};

class AllGenerators : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AllGenerators, SimpleGraphInvariants) {
  const std::size_t n = GetParam();
  support::Rng rng(n * 31 + 7);

  std::vector<SpatialGraph> graphs;
  WaxmanParams wax;
  wax.node_count = n;
  graphs.push_back(generate_waxman(wax, rng));
  WattsStrogatzParams ws;
  ws.node_count = n;
  ws.nearest_neighbors = 4;
  graphs.push_back(generate_watts_strogatz(ws, rng));
  VolchenkovParams vol;
  vol.node_count = n;
  graphs.push_back(generate_volchenkov(vol, rng));

  for (const auto& g : graphs) {
    ASSERT_EQ(g.graph.node_count(), n);
    ASSERT_EQ(g.positions.size(), n);
    for (const auto& e : g.graph.edges()) {
      ASSERT_NE(e.a, e.b);  // no self-loops
      ASSERT_NEAR(e.length_km,
                  support::distance(g.positions[e.a], g.positions[e.b]),
                  1e-9);
    }
    // No parallel edges: the Graph class enforces this at insertion, but
    // confirm the index is consistent.
    for (graph::EdgeId e = 0; e < g.graph.edge_count(); ++e) {
      ASSERT_EQ(*g.graph.find_edge(g.graph.edge(e).a, g.graph.edge(e).b), e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AllGenerators,
                         ::testing::Values(10, 25, 60, 120));

}  // namespace
}  // namespace muerp::topology
