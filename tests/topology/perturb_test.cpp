#include "topology/perturb.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::topology {
namespace {

TEST(Perturb, RemovesExactlyRequested) {
  auto g = make_complete(8, 10.0);  // 28 edges
  support::Rng rng(1);
  EXPECT_EQ(remove_random_edges(g.graph, 5, rng), 5u);
  EXPECT_EQ(g.graph.edge_count(), 23u);
}

TEST(Perturb, StopsWhenGraphRunsDry) {
  auto g = make_path(4, 10.0);  // 3 edges
  support::Rng rng(2);
  EXPECT_EQ(remove_random_edges(g.graph, 10, rng), 3u);
  EXPECT_EQ(g.graph.edge_count(), 0u);
}

TEST(Perturb, ZeroIsANoOp) {
  auto g = make_cycle(5, 10.0);
  support::Rng rng(3);
  EXPECT_EQ(remove_random_edges(g.graph, 0, rng), 0u);
  EXPECT_EQ(g.graph.edge_count(), 5u);
}

TEST(Perturb, DeterministicGivenSeed) {
  auto g1 = make_complete(10, 10.0);
  auto g2 = make_complete(10, 10.0);
  support::Rng r1(4);
  support::Rng r2(4);
  remove_random_edges(g1.graph, 20, r1);
  remove_random_edges(g2.graph, 20, r2);
  ASSERT_EQ(g1.graph.edge_count(), g2.graph.edge_count());
  for (graph::EdgeId e = 0; e < g1.graph.edge_count(); ++e) {
    EXPECT_EQ(g1.graph.edge(e).a, g2.graph.edge(e).a);
    EXPECT_EQ(g1.graph.edge(e).b, g2.graph.edge(e).b);
  }
}

TEST(Perturb, SurvivingGraphStaysConsistent) {
  auto g = make_complete(9, 10.0);
  support::Rng rng(5);
  remove_random_edges(g.graph, 17, rng);
  // Adjacency and index must agree after heavy removal (exercises the
  // swap-with-last bookkeeping through the public helper).
  std::size_t adjacency_total = 0;
  for (graph::NodeId v = 0; v < g.graph.node_count(); ++v) {
    adjacency_total += g.graph.degree(v);
    for (const graph::Neighbor& nb : g.graph.neighbors(v)) {
      EXPECT_EQ(g.graph.edge(nb.edge).other(v), nb.node);
    }
  }
  EXPECT_EQ(adjacency_total, 2 * g.graph.edge_count());
}

/// Every edge is equally likely to survive: removal counts per edge slot
/// over many trials are roughly uniform.
TEST(Perturb, RemovalIsUniform) {
  constexpr int kTrials = 4000;
  // Count how often the fixed edge {0,1} of a 5-cycle survives removing 2.
  int survived = 0;
  for (int t = 0; t < kTrials; ++t) {
    auto g = make_cycle(5, 10.0);
    support::Rng rng(1000 + t);
    remove_random_edges(g.graph, 2, rng);
    if (g.graph.has_edge(0, 1)) ++survived;
  }
  // Survival probability = C(4,2)/C(5,2) = 0.6.
  EXPECT_NEAR(static_cast<double>(survived) / kTrials, 0.6, 0.03);
}

}  // namespace
}  // namespace muerp::topology
