#include "topology/reference.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace muerp::topology {
namespace {

TEST(Reference, CatalogueHasKnownEntries) {
  const auto& catalogue = reference_catalogue();
  ASSERT_GE(catalogue.size(), 2u);
  std::set<std::string> names;
  for (const auto& t : catalogue) names.insert(t.name);
  EXPECT_TRUE(names.contains("nsfnet"));
  EXPECT_TRUE(names.contains("geant"));
}

TEST(Reference, NsfnetShape) {
  const auto& t = reference_by_name("nsfnet");
  EXPECT_EQ(t.normalized_positions.size(), 14u);
  EXPECT_EQ(t.links.size(), 21u);  // the canonical T1 backbone
}

TEST(Reference, UnknownNameThrows) {
  EXPECT_THROW(reference_by_name("arpanet"), std::out_of_range);
}

TEST(Reference, NormalizedCoordinatesInUnitSquare) {
  for (const auto& t : reference_catalogue()) {
    for (const auto& p : t.normalized_positions) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, 1.0);
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, 1.0);
    }
  }
}

TEST(Reference, LinksAreValidAndUnique) {
  for (const auto& t : reference_catalogue()) {
    std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
    for (auto [a, b] : t.links) {
      EXPECT_NE(a, b) << t.name;
      EXPECT_LT(a, t.normalized_positions.size()) << t.name;
      EXPECT_LT(b, t.normalized_positions.size()) << t.name;
      if (a > b) std::swap(a, b);
      EXPECT_TRUE(seen.insert({a, b}).second)
          << t.name << " duplicate link " << a << "-" << b;
    }
  }
}

TEST(Reference, InstantiatedGraphsAreConnected) {
  const support::Region region{4000.0, 2500.0};  // continental scale
  for (const auto& t : reference_catalogue()) {
    const auto g = instantiate_reference(t, region);
    EXPECT_EQ(g.graph.node_count(), t.normalized_positions.size()) << t.name;
    EXPECT_EQ(g.graph.edge_count(), t.links.size()) << t.name;
    EXPECT_TRUE(graph::is_connected(g.graph)) << t.name;
  }
}

TEST(Reference, ScalingAppliesRegionDimensions) {
  const auto& t = reference_by_name("nsfnet");
  const support::Region region{1000.0, 500.0};
  const auto g = instantiate_reference(t, region);
  for (std::size_t i = 0; i < g.positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(g.positions[i].x,
                     t.normalized_positions[i].x * 1000.0);
    EXPECT_DOUBLE_EQ(g.positions[i].y, t.normalized_positions[i].y * 500.0);
  }
  // Edge lengths follow the scaled embedding.
  for (const auto& e : g.graph.edges()) {
    EXPECT_NEAR(e.length_km,
                support::distance(g.positions[e.a], g.positions[e.b]), 1e-9);
  }
}

TEST(Reference, SurvivesRedundantSingleLinkFailure) {
  // Backbones are engineered with redundancy: NSFNET stays connected after
  // any single link failure (2-edge-connected).
  const auto& t = reference_by_name("nsfnet");
  const support::Region region{4000.0, 2500.0};
  for (std::size_t victim = 0; victim < t.links.size(); ++victim) {
    auto g = instantiate_reference(t, region);
    const auto e = g.graph.find_edge(t.links[victim].first,
                                     t.links[victim].second);
    ASSERT_TRUE(e.has_value());
    g.graph.remove_edge(*e);
    EXPECT_TRUE(graph::is_connected(g.graph))
        << "link " << victim << " is a bridge";
  }
}

}  // namespace
}  // namespace muerp::topology
