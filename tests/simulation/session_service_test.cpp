#include "simulation/session_service.hpp"

#include <gtest/gtest.h>

#include <iostream>
#include <limits>

#include "experiment/scenario.hpp"
#include "simulation/protocol.hpp"

namespace muerp::sim {
namespace {

net::QuantumNetwork service_network(std::uint64_t seed = 11) {
  experiment::Scenario s;
  s.switch_count = 30;
  s.user_count = 8;
  s.qubits_per_switch = 6;
  s.attenuation = 2e-5;
  s.seed = seed;
  return experiment::instantiate(s, 0).network;
}

ProtocolParams light_params() {
  ProtocolParams params;
  params.horizon_slots = 4000;
  params.arrival_prob_per_slot = 0.05;
  return params;
}

/// Steps a service over a full horizon and returns its metrics plus every
/// slot report for invariants checking.
ProtocolMetrics run_stepped(SessionService& service, std::uint64_t slots,
                            std::vector<SlotReport>* reports = nullptr) {
  for (std::uint64_t i = 0; i < slots; ++i) {
    const SlotReport report = service.step();
    if (reports != nullptr) reports->push_back(report);
  }
  return service.metrics();
}

TEST(SessionService, SteppedRunMatchesProtocolSimulator) {
  const auto net = service_network();
  const ProtocolParams params = light_params();

  support::Rng sim_rng(7);
  const ProtocolMetrics expected =
      ProtocolSimulator(net, params).run(sim_rng);

  support::Rng svc_rng(7);
  SessionService service(net, SessionServiceConfig{params, "", {}}, svc_rng);
  const ProtocolMetrics actual = run_stepped(service, params.horizon_slots);

  EXPECT_EQ(actual.sessions_arrived, expected.sessions_arrived);
  EXPECT_EQ(actual.sessions_admitted, expected.sessions_admitted);
  EXPECT_EQ(actual.sessions_rejected, expected.sessions_rejected);
  EXPECT_EQ(actual.sessions_completed, expected.sessions_completed);
  EXPECT_EQ(actual.sessions_timed_out, expected.sessions_timed_out);
  EXPECT_EQ(actual.sessions_in_flight, expected.sessions_in_flight);
  EXPECT_DOUBLE_EQ(actual.mean_completion_slots,
                   expected.mean_completion_slots);
  EXPECT_DOUBLE_EQ(actual.mean_qubit_utilization,
                   expected.mean_qubit_utilization);
}

TEST(SessionService, SlotReportsSumToMetrics) {
  const auto net = service_network();
  const ProtocolParams params = light_params();
  support::Rng rng(3);
  SessionService service(net, SessionServiceConfig{params, "", {}}, rng);
  std::vector<SlotReport> reports;
  const ProtocolMetrics m =
      run_stepped(service, params.horizon_slots, &reports);

  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  for (const SlotReport& r : reports) {
    arrived += r.arrived ? 1 : 0;
    admitted += r.admitted ? 1 : 0;
    completed += r.completed;
    timed_out += r.timed_out;
    EXPECT_GE(r.qubit_utilization, 0.0);
    EXPECT_LE(r.qubit_utilization, 1.0);
    if (r.admitted) {
      EXPECT_GT(r.admitted_rate, 0.0);
    }
  }
  EXPECT_EQ(arrived, m.sessions_arrived);
  EXPECT_EQ(admitted, m.sessions_admitted);
  EXPECT_EQ(completed, m.sessions_completed);
  EXPECT_EQ(timed_out, m.sessions_timed_out);
  EXPECT_EQ(reports.back().slot, params.horizon_slots);
  EXPECT_EQ(service.slot(), params.horizon_slots);
  EXPECT_EQ(m.sessions_in_flight, service.active_sessions());
}

TEST(SessionService, RegistryAlgorithmAccountingIsConsistent) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  SessionServiceConfig config;
  config.params = params;
  config.algorithm = "alg3";
  config.router_options.pin_alg2_sufficient = false;
  support::Rng rng(5);
  SessionService service(net, config, rng);
  const ProtocolMetrics m = run_stepped(service, params.horizon_slots);

  EXPECT_GT(m.sessions_arrived, 0u);
  EXPECT_EQ(m.sessions_arrived, m.sessions_admitted + m.sessions_rejected);
  EXPECT_EQ(m.sessions_admitted,
            m.sessions_completed + m.sessions_timed_out + m.sessions_in_flight);
  EXPECT_GE(m.mean_qubit_utilization, 0.0);
  EXPECT_LE(m.mean_qubit_utilization, 1.0);
}

TEST(SessionService, RegistryAlgorithmNeverOversubscribesCapacity) {
  const auto net = service_network(17);
  ProtocolParams params;
  params.horizon_slots = 3000;
  params.arrival_prob_per_slot = 0.5;  // heavy load to stress admission
  params.session_timeout_slots = 800;
  SessionServiceConfig config;
  config.params = params;
  config.algorithm = "eqcast";  // capacity-oblivious baseline
  config.router_options.pin_alg2_sufficient = false;
  support::Rng rng(9);
  SessionService service(net, config, rng);
  for (std::uint64_t i = 0; i < params.horizon_slots; ++i) {
    service.step();
    // The residual-capacity guard must keep the pledge fraction physical
    // after every single slot, even for a router that ignores capacity.
    ASSERT_LE(service.qubit_utilization(), 1.0 + 1e-12) << "slot " << i;
  }
}

TEST(SessionService, UnknownAlgorithmThrows) {
  const auto net = service_network();
  SessionServiceConfig config;
  config.algorithm = "definitely-not-a-router";
  support::Rng rng(1);
  EXPECT_THROW(SessionService(net, config, rng), std::exception);
}

TEST(SessionService, ZeroArrivalStaysIdle) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.arrival_prob_per_slot = 0.0;
  support::Rng rng(2);
  SessionService service(net, SessionServiceConfig{params, "", {}}, rng);
  const ProtocolMetrics m = run_stepped(service, 500);
  EXPECT_EQ(m.sessions_arrived, 0u);
  EXPECT_EQ(service.active_sessions(), 0u);
  EXPECT_DOUBLE_EQ(service.qubit_utilization(), 0.0);
}

TEST(SessionService, DisablingArrivalsDrainsTheServiceForShutdown) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.arrival_prob_per_slot = 0.3;  // keep sessions in flight
  support::Rng rng(6);
  SessionService service(net, SessionServiceConfig{params, "", {}}, rng);
  run_stepped(service, 500);
  EXPECT_TRUE(service.arrivals_enabled());

  service.set_arrivals_enabled(false);
  EXPECT_FALSE(service.arrivals_enabled());
  const std::uint64_t arrived_at_stop = service.metrics().sessions_arrived;
  // Every admitted session either completes or times out within the
  // timeout horizon once the arrival process is frozen.
  run_stepped(service, params.session_timeout_slots + 1);
  EXPECT_EQ(service.metrics().sessions_arrived, arrived_at_stop);
  EXPECT_EQ(service.active_sessions(), 0u);

  service.set_arrivals_enabled(true);
  const ProtocolMetrics after = run_stepped(service, 500);
  EXPECT_GT(after.sessions_arrived, arrived_at_stop);
}

TEST(SessionService, LogRateLimitCountsSuppressedSessionEvents) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.arrival_prob_per_slot = 0.5;
  support::Rng rng(8);
  SessionServiceConfig config{params, "", {}};
  EXPECT_EQ(config.log_events_per_second, 0.0);  // unlimited by default
  config.log_events_per_second = 0.001;  // ~one token, then suppression
  SessionService service(net, config, rng);
  EXPECT_EQ(service.log_events_suppressed(), 0u);

  // Suppression only counts events that clear the level threshold, so opt
  // into kInfo (ring-only, no stream spam) for the duration of the run.
  support::telemetry::set_log_sink(nullptr);
  support::telemetry::set_log_level(support::telemetry::LogLevel::kInfo);
  const ProtocolMetrics m = run_stepped(service, 2000);
  support::telemetry::set_log_level(support::telemetry::LogLevel::kWarn);
  support::telemetry::set_log_sink(&std::cerr);

  EXPECT_GT(m.sessions_arrived, 100u);
#if MUERP_TELEMETRY_ENABLED
  // Per-session info events vastly outnumber the bucket's budget.
  EXPECT_GT(service.log_events_suppressed(), 0u);
#else
  EXPECT_EQ(service.log_events_suppressed(), 0u);
#endif
}

TEST(SessionService, CachedResidualViewMatchesRebuildOracle) {
  // Satellite fix: registry admission used to reconstruct the full residual
  // QuantumNetwork every arrival. The cached ResidualNetworkView patches
  // switch budgets in place; admission decisions must be bit-identical.
  for (const char* algorithm : {"alg3", "eqcast"}) {
    const auto net = service_network();
    ProtocolParams params = light_params();
    params.horizon_slots = 1500;
    params.arrival_prob_per_slot = 0.3;

    SessionServiceConfig cached_config;
    cached_config.params = params;
    cached_config.algorithm = algorithm;
    cached_config.router_options.pin_alg2_sufficient = false;
    SessionServiceConfig oracle_config = cached_config;
    oracle_config.rebuild_residual_view = true;

    support::Rng cached_rng(13);
    support::Rng oracle_rng(13);
    SessionService cached(net, cached_config, cached_rng);
    SessionService oracle(net, oracle_config, oracle_rng);

    for (std::uint64_t i = 0; i < params.horizon_slots; ++i) {
      const SlotReport a = cached.step();
      const SlotReport b = oracle.step();
      ASSERT_EQ(a.arrived, b.arrived) << algorithm << " slot " << i;
      ASSERT_EQ(a.admitted, b.admitted) << algorithm << " slot " << i;
      ASSERT_EQ(a.admitted_rate, b.admitted_rate)
          << algorithm << " slot " << i;  // bitwise
      ASSERT_EQ(a.completed, b.completed) << algorithm << " slot " << i;
      ASSERT_EQ(a.timed_out, b.timed_out) << algorithm << " slot " << i;
      ASSERT_EQ(a.qubit_utilization, b.qubit_utilization)
          << algorithm << " slot " << i;
    }
    const ProtocolMetrics ma = cached.metrics();
    const ProtocolMetrics mb = oracle.metrics();
    EXPECT_EQ(ma.sessions_admitted, mb.sessions_admitted);
    EXPECT_EQ(ma.sessions_rejected, mb.sessions_rejected);
    EXPECT_GT(ma.sessions_arrived, 0u);
  }
}

TEST(SessionService, BurstIntakeAccountingStaysConsistent) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.horizon_slots = 2000;
  params.arrival_prob_per_slot = 0.3;
  SessionServiceConfig config{params, "", {}};
  config.arrival_burst = 4;
  support::Rng rng(19);
  SessionService service(net, config, rng);

  std::vector<SlotReport> reports;
  const ProtocolMetrics m =
      run_stepped(service, params.horizon_slots, &reports);

  std::uint64_t arrivals = 0;
  std::uint64_t admissions = 0;
  for (const SlotReport& r : reports) {
    EXPECT_LE(r.arrivals, config.arrival_burst);
    EXPECT_LE(r.admissions, r.arrivals);
    EXPECT_EQ(r.arrived, r.arrivals > 0);
    EXPECT_EQ(r.admitted, r.admissions > 0);
    if (r.admitted) {
      EXPECT_GT(r.admitted_rate, 0.0);
    }
    EXPECT_GE(r.qubit_utilization, 0.0);
    EXPECT_LE(r.qubit_utilization, 1.0);
    arrivals += r.arrivals;
    admissions += r.admissions;
  }
  EXPECT_GT(m.sessions_arrived, 0u);
  EXPECT_EQ(arrivals, m.sessions_arrived);
  EXPECT_EQ(admissions, m.sessions_admitted);
  EXPECT_EQ(m.sessions_arrived, m.sessions_admitted + m.sessions_rejected);
  EXPECT_EQ(m.sessions_admitted,
            m.sessions_completed + m.sessions_timed_out + m.sessions_in_flight);
}

TEST(SessionService, BurstIntakeWorksAcrossPoliciesAndRouters) {
  // Every (policy, router) combination the service supports stays
  // physical under heavy burst load: no oversubscription, consistent
  // accounting. fair-share is restricted to the batch-native kernels.
  struct Case {
    const char* algorithm;
    routing::BatchPolicy policy;
  };
  const Case cases[] = {
      {"", routing::BatchPolicy::kFairShare},
      {"", routing::BatchPolicy::kGreedy},
      {"alg4", routing::BatchPolicy::kFairShare},
      {"alg3", routing::BatchPolicy::kGivenOrder},
      {"eqcast", routing::BatchPolicy::kGreedy},
      {"eqcast", routing::BatchPolicy::kSmallestFirst},
  };
  for (const Case& c : cases) {
    const auto net = service_network(17);
    ProtocolParams params;
    params.horizon_slots = 600;
    params.arrival_prob_per_slot = 0.5;
    params.session_timeout_slots = 300;
    SessionServiceConfig config;
    config.params = params;
    config.algorithm = c.algorithm;
    config.router_options.pin_alg2_sufficient = false;
    config.arrival_burst = 3;
    config.batch_policy = c.policy;
    support::Rng rng(23);
    SessionService service(net, config, rng);
    for (std::uint64_t i = 0; i < params.horizon_slots; ++i) {
      service.step();
      ASSERT_LE(service.qubit_utilization(), 1.0 + 1e-12)
          << c.algorithm << "/" << routing::batch_policy_name(c.policy)
          << " slot " << i;
    }
    const ProtocolMetrics m = service.metrics();
    EXPECT_GT(m.sessions_arrived, 0u)
        << c.algorithm << "/" << routing::batch_policy_name(c.policy);
    EXPECT_EQ(m.sessions_arrived, m.sessions_admitted + m.sessions_rejected);
  }
}

TEST(SessionService, BurstFairShareNeedsBatchNativeKernel) {
  const auto net = service_network();
  SessionServiceConfig config;
  config.params = light_params();
  config.arrival_burst = 2;
  config.batch_policy = routing::BatchPolicy::kFairShare;
  config.algorithm = "alg3";
  config.router_options.pin_alg2_sufficient = false;
  support::Rng rng(1);
  EXPECT_THROW(SessionService(net, config, rng), std::invalid_argument);

  config.algorithm = "alg4";
  support::Rng rng2(1);
  EXPECT_NO_THROW(SessionService(net, config, rng2));
  config.algorithm = "";
  support::Rng rng3(1);
  EXPECT_NO_THROW(SessionService(net, config, rng3));
}

TEST(SessionService, BatchSingleArrivalsBitIdenticalToHistoricalPath) {
  // batch_single_arrivals re-routes each single arrival through the batch
  // kernel; decisions, metrics AND the Rng draw sequence must match the
  // historical per-arrival path exactly. The Rng objects are compared via
  // identical downstream behavior: both services keep producing identical
  // slots for the whole horizon, which would diverge after one extra or
  // missing draw.
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.horizon_slots = 2000;
  params.arrival_prob_per_slot = 0.3;

  SessionServiceConfig historical{params, "", {}};
  support::Rng historical_rng(29);
  SessionService historical_service(net, historical, historical_rng);

  SessionServiceConfig batched{params, "", {}};
  batched.batch_single_arrivals = true;
  support::Rng batched_rng(29);
  SessionService batched_service(net, batched, batched_rng);

  for (std::uint64_t i = 0; i < params.horizon_slots; ++i) {
    const SlotReport a = historical_service.step();
    const SlotReport b = batched_service.step();
    ASSERT_EQ(a.arrivals, b.arrivals) << "slot " << i;
    ASSERT_EQ(a.admissions, b.admissions) << "slot " << i;
    ASSERT_EQ(a.admitted_rate, b.admitted_rate) << "slot " << i;
    ASSERT_EQ(a.admitted_rate_sum, b.admitted_rate_sum) << "slot " << i;
    ASSERT_EQ(a.completed, b.completed) << "slot " << i;
    ASSERT_EQ(a.timed_out, b.timed_out) << "slot " << i;
    ASSERT_EQ(a.active_sessions, b.active_sessions) << "slot " << i;
    ASSERT_EQ(a.qubit_utilization, b.qubit_utilization) << "slot " << i;
  }
  const ProtocolMetrics expected = historical_service.metrics();
  const ProtocolMetrics actual = batched_service.metrics();
  EXPECT_EQ(actual.sessions_arrived, expected.sessions_arrived);
  EXPECT_EQ(actual.sessions_admitted, expected.sessions_admitted);
  EXPECT_EQ(actual.sessions_rejected, expected.sessions_rejected);
  EXPECT_EQ(actual.sessions_completed, expected.sessions_completed);
  EXPECT_EQ(actual.mean_completion_slots, expected.mean_completion_slots);
  EXPECT_EQ(actual.mean_qubit_utilization, expected.mean_qubit_utilization);
}

TEST(SessionService, AdmittedRateSumSeesEveryAdmissionInABurst) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.horizon_slots = 1500;
  params.arrival_prob_per_slot = 0.5;
  SessionServiceConfig config{params, "", {}};
  config.arrival_burst = 4;
  support::Rng rng(31);
  SessionService service(net, config, rng);

  bool saw_multi_admission_slot = false;
  for (std::uint64_t i = 0; i < params.horizon_slots; ++i) {
    const SlotReport r = service.step();
    if (r.admissions == 0) {
      EXPECT_EQ(r.admitted_rate_sum, 0.0);
      continue;
    }
    // admitted_rate keeps its historical meaning (first tree); the sum
    // covers the whole burst, so it dominates once a slot admits > 1.
    EXPECT_GT(r.admitted_rate_sum, 0.0);
    EXPECT_GE(r.admitted_rate_sum, r.admitted_rate);
    if (r.admissions == 1) {
      EXPECT_EQ(r.admitted_rate_sum, r.admitted_rate);
    } else {
      EXPECT_GT(r.admitted_rate_sum, r.admitted_rate);
      saw_multi_admission_slot = true;
    }
  }
  EXPECT_TRUE(saw_multi_admission_slot);
}

TEST(SessionService, AdmitLatencySinkRecordsEveryRoutedArrival) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.horizon_slots = 800;
  params.arrival_prob_per_slot = 0.4;
  // All three admission paths feed the sink: single historical, single
  // batched, burst.
  for (const std::size_t burst : {std::size_t{1}, std::size_t{3}}) {
    for (const bool batch_single : {false, true}) {
      if (burst > 1 && batch_single) continue;  // burst ignores the knob
      std::vector<double> admit_us;
      SessionServiceConfig config{params, "", {}};
      config.arrival_burst = burst;
      config.batch_single_arrivals = batch_single;
      config.admit_us = &admit_us;
      support::Rng rng(37);
      SessionService service(net, config, rng);
      const ProtocolMetrics m = run_stepped(service, params.horizon_slots);
      ASSERT_GT(m.sessions_arrived, 0u);
      EXPECT_EQ(admit_us.size(), m.sessions_arrived)
          << "burst " << burst << " batch_single " << batch_single;
      for (const double us : admit_us) EXPECT_GE(us, 0.0);
    }
  }
}

TEST(SessionService, StepsBeyondProtocolHorizonKeepWorking) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  params.horizon_slots = 100;  // the service is not bounded by it
  support::Rng rng(4);
  SessionService service(net, SessionServiceConfig{params, "", {}}, rng);
  const ProtocolMetrics m = run_stepped(service, 2000);
  EXPECT_EQ(service.slot(), 2000u);
  EXPECT_GT(m.sessions_arrived, 0u);
}

// ---------------------------------------------------------------------------
// Runtime mutators (the ctl plane's `set` verbs apply these between steps).

TEST(SessionService, IdentitySettersPreserveTheSlotTrajectory) {
  const auto net = service_network();
  const ProtocolParams params = light_params();

  support::Rng plain_rng(7);
  SessionService plain(net, SessionServiceConfig{params, "", {}}, plain_rng);
  const ProtocolMetrics expected = run_stepped(plain, 2000);

  // Same run, but mid-flight every setter re-applies its current value —
  // what a pause/resume cycle with unchanged config does. Must be a no-op.
  support::Rng poked_rng(7);
  SessionService poked(net, SessionServiceConfig{params, "", {}}, poked_rng);
  run_stepped(poked, 1000);
  std::string error;
  ASSERT_TRUE(poked.set_arrival_prob(poked.arrival_prob(), &error)) << error;
  ASSERT_TRUE(poked.set_arrival_burst(poked.arrival_burst(), &error)) << error;
  ASSERT_TRUE(poked.set_batch_policy(poked.batch_policy(), &error)) << error;
  ASSERT_TRUE(poked.set_algorithm(poked.algorithm(), &error)) << error;
  ASSERT_TRUE(poked.set_log_events_per_second(poked.log_events_per_second(),
                                              &error))
      << error;
  const ProtocolMetrics actual = run_stepped(poked, 1000);

  EXPECT_EQ(actual.sessions_arrived, expected.sessions_arrived);
  EXPECT_EQ(actual.sessions_admitted, expected.sessions_admitted);
  EXPECT_EQ(actual.sessions_completed, expected.sessions_completed);
  EXPECT_EQ(actual.sessions_timed_out, expected.sessions_timed_out);
  EXPECT_DOUBLE_EQ(actual.mean_completion_slots,
                   expected.mean_completion_slots);
  EXPECT_DOUBLE_EQ(actual.mean_qubit_utilization,
                   expected.mean_qubit_utilization);
}

TEST(SessionService, SettersRejectInvalidValuesAndKeepTheOldOnes) {
  const auto net = service_network();
  support::Rng rng(7);
  SessionService service(net, SessionServiceConfig{light_params(), "", {}},
                         rng);
  std::string error;

  EXPECT_FALSE(service.set_arrival_prob(1.5, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(service.set_arrival_prob(-0.1, &error));
  EXPECT_FALSE(
      service.set_arrival_prob(std::numeric_limits<double>::quiet_NaN(),
                               &error));
  EXPECT_DOUBLE_EQ(service.arrival_prob(), 0.05);

  EXPECT_FALSE(service.set_arrival_burst(0, &error));
  EXPECT_EQ(service.arrival_burst(), 1u);

  EXPECT_FALSE(service.set_algorithm("no-such-router", &error));
  EXPECT_NE(error.find("no-such-router"), std::string::npos);
  EXPECT_EQ(service.algorithm(), "");

  EXPECT_FALSE(service.set_log_events_per_second(-1.0, &error));
}

TEST(SessionService, SettersChangeBehaviorGoingForward) {
  const auto net = service_network();
  support::Rng rng(9);
  SessionService service(net, SessionServiceConfig{light_params(), "", {}},
                         rng);
  std::string error;
  ASSERT_TRUE(service.set_arrival_prob(0.0, &error)) << error;
  const ProtocolMetrics quiet = run_stepped(service, 500);
  EXPECT_EQ(quiet.sessions_arrived, 0u);

  ASSERT_TRUE(service.set_arrival_prob(0.5, &error)) << error;
  const ProtocolMetrics busy = run_stepped(service, 500);
  EXPECT_GT(busy.sessions_arrived, 0u);

  // Switching to a registry algorithm mid-run keeps admitting sessions.
  ASSERT_TRUE(service.set_algorithm("alg3", &error)) << error;
  EXPECT_EQ(service.algorithm(), "alg3");
  const ProtocolMetrics routed = run_stepped(service, 500);
  EXPECT_GT(routed.sessions_arrived, busy.sessions_arrived);
}

TEST(SessionService, FairShareComboIsRejectedAtRuntimeToo) {
  const auto net = service_network();
  ProtocolParams params = light_params();
  support::Rng rng(5);
  SessionServiceConfig config{params, "", {}};
  config.arrival_burst = 4;
  SessionService service(net, config, rng);
  std::string error;
  // fair-share batching needs the batch-native kernel (shared-prim/alg4);
  // pinning algorithm alg3 first makes the policy switch invalid.
  ASSERT_TRUE(service.set_algorithm("alg3", &error)) << error;
  EXPECT_FALSE(
      service.set_batch_policy(routing::BatchPolicy::kFairShare, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(service.batch_policy(), routing::BatchPolicy::kGivenOrder);
}

}  // namespace
}  // namespace muerp::sim
