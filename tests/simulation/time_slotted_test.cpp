#include "simulation/time_slotted.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "support/rng.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

/// Two channels through independent switches, moderate per-slot rates.
struct Fixture {
  net::QuantumNetwork net;
  net::EntanglementTree tree;
};

Fixture two_channel_fixture(double alpha, double q) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2000, 0});
  const NodeId u2 = b.add_user({4000, 0});
  const NodeId s0 = b.add_switch({1000, 0}, 4);
  const NodeId s1 = b.add_switch({3000, 0}, 4);
  b.connect(u0, s0, 1000.0);
  b.connect(s0, u1, 1000.0);
  b.connect(u1, s1, 1000.0);
  b.connect(s1, u2, 1000.0);
  auto net = std::move(b).build({alpha, q});
  net::Channel c1;
  c1.path = {u0, s0, u1};
  c1.rate = net::channel_rate(net, c1.path);
  net::Channel c2;
  c2.path = {u1, s1, u2};
  c2.rate = net::channel_rate(net, c2.path);
  net::EntanglementTree tree{{c1, c2}, c1.rate * c2.rate, true};
  return {std::move(net), std::move(tree)};
}

TEST(TimeSlotted, ZeroMemoryIsGeometric) {
  // With no memory the completion time is geometric with the Eq. (2)
  // probability: mean = 1/P.
  auto fx = two_channel_fixture(2e-4, 0.9);
  const TimeSlottedSimulator sim(fx.net, {.memory_slots = 0});
  support::Rng rng(1);
  const auto stats = sim.measure(fx.tree, 20000, rng);
  EXPECT_EQ(stats.aborted_runs, 0u);
  const double expected = 1.0 / fx.tree.rate;
  // Geometric stddev ~ mean; 20k runs give stderr ~ mean/sqrt(20000).
  EXPECT_NEAR(stats.mean_slots, expected, 5.0 * expected / 140.0);
}

TEST(TimeSlotted, ZeroMemoryVarianceIsGeometric) {
  // Beyond the mean, the full distribution must be geometric:
  // stddev = sqrt(1-P)/P.
  auto fx = two_channel_fixture(2e-4, 0.9);
  const TimeSlottedSimulator sim(fx.net, {.memory_slots = 0});
  support::Rng rng(42);
  const auto stats = sim.measure(fx.tree, 20000, rng);
  const double p = fx.tree.rate;
  const double expected_sd = std::sqrt(1.0 - p) / p;
  EXPECT_NEAR(stats.stddev_slots, expected_sd, 0.1 * expected_sd);
}

TEST(TimeSlotted, MemoryReducesCompletionTime) {
  auto fx = two_channel_fixture(3e-4, 0.8);
  support::Rng r0(2);
  support::Rng r1(2);
  const TimeSlottedSimulator none(fx.net, {.memory_slots = 0});
  const TimeSlottedSimulator some(fx.net, {.memory_slots = 10});
  const auto slow = none.measure(fx.tree, 5000, r0);
  const auto fast = some.measure(fx.tree, 5000, r1);
  ASSERT_GT(slow.completed_runs, 0u);
  ASSERT_GT(fast.completed_runs, 0u);
  EXPECT_LT(fast.mean_slots, slow.mean_slots);
}

TEST(TimeSlotted, PerfectTreeCompletesInOneSlot) {
  auto fx = two_channel_fixture(0.0, 1.0);
  const TimeSlottedSimulator sim(fx.net);
  support::Rng rng(3);
  EXPECT_EQ(sim.run_once(fx.tree, rng), 1u);
}

TEST(TimeSlotted, InfeasibleTreeAborts) {
  auto fx = two_channel_fixture(2e-4, 0.9);
  net::EntanglementTree infeasible{{}, 0.0, false};
  const TimeSlottedSimulator sim(fx.net);
  support::Rng rng(4);
  EXPECT_EQ(sim.run_once(infeasible, rng), 0u);
  const auto stats = sim.measure(infeasible, 10, rng);
  EXPECT_EQ(stats.completed_runs, 0u);
  EXPECT_EQ(stats.aborted_runs, 10u);
}

TEST(TimeSlotted, MaxSlotsAborts) {
  // Practically-zero success rate with a tiny slot budget must abort.
  auto fx = two_channel_fixture(5e-3, 0.5);  // rate ~ e^-20
  TimeSlottedParams params;
  params.max_slots = 100;
  const TimeSlottedSimulator sim(fx.net, params);
  support::Rng rng(5);
  EXPECT_EQ(sim.run_once(fx.tree, rng), 0u);
}

TEST(TimeSlotted, SingletonTreeInstant) {
  auto fx = two_channel_fixture(2e-4, 0.9);
  net::EntanglementTree empty{{}, 1.0, true};
  const TimeSlottedSimulator sim(fx.net);
  support::Rng rng(6);
  EXPECT_EQ(sim.run_once(empty, rng), 1u);
}

class MemorySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MemorySweep, MeanSlotsNeverBelowIndependentBound) {
  // Even with memory, completion can never beat the slowest channel's
  // geometric expectation (it must succeed at least once).
  auto fx = two_channel_fixture(3e-4, 0.8);
  const double worst_channel_rate =
      std::min(fx.tree.channels[0].rate, fx.tree.channels[1].rate);
  const TimeSlottedSimulator sim(fx.net, {.memory_slots = GetParam()});
  support::Rng rng(GetParam() + 100);
  const auto stats = sim.measure(fx.tree, 5000, rng);
  ASSERT_GT(stats.completed_runs, 0u);
  const double bound = 1.0 / worst_channel_rate;
  EXPECT_GT(stats.mean_slots, 0.8 * bound);
}

INSTANTIATE_TEST_SUITE_P(Memories, MemorySweep,
                         ::testing::Values(0, 1, 2, 5, 10, 50));

}  // namespace
}  // namespace muerp::sim
