#include "simulation/sharded_session_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "experiment/scenario.hpp"
#include "simulation/protocol.hpp"
#include "simulation/session_service.hpp"
#include "support/rng.hpp"

namespace muerp::sim {
namespace {

net::QuantumNetwork sharded_network(std::uint64_t seed = 11) {
  experiment::Scenario s;
  s.switch_count = 30;
  s.user_count = 8;
  // 16 qubits so a 4-lane slice still leaves every lane 4 per switch —
  // enough relay headroom that lanes actually admit sessions.
  s.qubits_per_switch = 16;
  s.attenuation = 2e-5;
  s.seed = seed;
  return experiment::instantiate(s, 0).network;
}

ShardedSessionServiceConfig sharded_config(std::size_t lanes,
                                           std::size_t shards,
                                           bool batch_single = true) {
  ShardedSessionServiceConfig config;
  config.base.params.arrival_prob_per_slot = 0.4;
  config.base.params.session_timeout_slots = 40;
  config.base.batch_single_arrivals = batch_single;
  config.lane_count = lanes;
  config.shard_count = shards;
  return config;
}

/// Exact (bitwise for the doubles) equality — the determinism contract.
void expect_metrics_identical(const ProtocolMetrics& a,
                              const ProtocolMetrics& b) {
  EXPECT_EQ(a.sessions_arrived, b.sessions_arrived);
  EXPECT_EQ(a.sessions_admitted, b.sessions_admitted);
  EXPECT_EQ(a.sessions_rejected, b.sessions_rejected);
  EXPECT_EQ(a.sessions_completed, b.sessions_completed);
  EXPECT_EQ(a.sessions_timed_out, b.sessions_timed_out);
  EXPECT_EQ(a.sessions_in_flight, b.sessions_in_flight);
  EXPECT_EQ(a.mean_completion_slots, b.mean_completion_slots);
  EXPECT_EQ(a.mean_qubit_utilization, b.mean_qubit_utilization);
}

struct RunOutcome {
  ProtocolMetrics metrics;
  std::vector<ShardTickReport> ticks;
  std::uint64_t drain_slots = 0;
};

/// Plays `slots` slots in uneven run_slots chunks, then drains.
RunOutcome play(ShardedSessionService& service, std::uint64_t slots,
                bool drain = false) {
  RunOutcome outcome;
  const std::uint64_t chunks[] = {1, 7, 64, 3};
  std::uint64_t played = 0;
  std::size_t next = 0;
  while (played < slots) {
    const std::uint64_t n =
        std::min(chunks[next++ % 4], slots - played);
    outcome.ticks.push_back(service.run_slots(n));
    played += n;
  }
  if (drain) {
    service.set_arrivals_enabled(false);
    while (service.active_sessions() > 0 && outcome.drain_slots < 10000) {
      service.step();
      ++outcome.drain_slots;
    }
  }
  outcome.metrics = service.metrics();
  return outcome;
}

TEST(ShardedSessionService, Lane1BitIdenticalToSessionService) {
  const auto net = sharded_network();
  // The 1-lane service must reproduce a plain SessionService on the same
  // seed bit for bit — including with the historical (non-batch) admission
  // path, which is the muerpd default.
  for (const bool batch_single : {false, true}) {
    ShardedSessionServiceConfig config =
        sharded_config(/*lanes=*/1, /*shards=*/1, batch_single);
    ShardedSessionService sharded(net, config, /*seed=*/7);
    for (int i = 0; i < 500; ++i) sharded.step();

    support::Rng rng(7);
    SessionService plain(net, config.base, rng);
    for (int i = 0; i < 500; ++i) plain.step();

    expect_metrics_identical(sharded.metrics(), plain.metrics());
    EXPECT_EQ(sharded.active_sessions(), plain.active_sessions());
    EXPECT_EQ(sharded.qubit_utilization(), plain.qubit_utilization());
  }
}

TEST(ShardedSessionService, MergedTotalsIdenticalAcrossShardCounts) {
  const auto net = sharded_network();
  RunOutcome reference;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedSessionService service(net, sharded_config(/*lanes=*/4, shards),
                                  /*seed=*/21);
    RunOutcome outcome = play(service, 400);
    if (first) {
      reference = std::move(outcome);
      first = false;
      ASSERT_GT(reference.metrics.sessions_arrived, 0u);
      ASSERT_GT(reference.metrics.sessions_admitted, 0u);
      continue;
    }
    expect_metrics_identical(outcome.metrics, reference.metrics);
    // The per-tick merge is deterministic too, not just the final totals.
    ASSERT_EQ(outcome.ticks.size(), reference.ticks.size());
    for (std::size_t i = 0; i < outcome.ticks.size(); ++i) {
      EXPECT_EQ(outcome.ticks[i].arrivals, reference.ticks[i].arrivals);
      EXPECT_EQ(outcome.ticks[i].admissions, reference.ticks[i].admissions);
      EXPECT_EQ(outcome.ticks[i].completed, reference.ticks[i].completed);
      EXPECT_EQ(outcome.ticks[i].timed_out, reference.ticks[i].timed_out);
      EXPECT_EQ(outcome.ticks[i].admitted_rate_sum,
                reference.ticks[i].admitted_rate_sum);
      EXPECT_EQ(outcome.ticks[i].active_sessions,
                reference.ticks[i].active_sessions);
      EXPECT_EQ(outcome.ticks[i].qubit_utilization,
                reference.ticks[i].qubit_utilization);
    }
  }
}

TEST(ShardedSessionService, DrainIdenticalAcrossShardCounts) {
  const auto net = sharded_network();
  RunOutcome reference;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedSessionService service(net, sharded_config(/*lanes=*/4, shards),
                                  /*seed=*/33);
    RunOutcome outcome = play(service, 300, /*drain=*/true);
    EXPECT_EQ(service.active_sessions(), 0u);
    if (first) {
      reference = std::move(outcome);
      first = false;
      continue;
    }
    expect_metrics_identical(outcome.metrics, reference.metrics);
    EXPECT_EQ(outcome.drain_slots, reference.drain_slots);
  }
}

TEST(ShardedSessionService, RepeatedRunsDeterministic) {
  const auto net = sharded_network();
  ShardedSessionService first(net, sharded_config(/*lanes=*/4, /*shards=*/8),
                              /*seed=*/5);
  ShardedSessionService second(net, sharded_config(/*lanes=*/4, /*shards=*/8),
                               /*seed=*/5);
  play(first, 300);
  play(second, 300);
  expect_metrics_identical(first.metrics(), second.metrics());
}

TEST(ShardedSessionService, RunSlotsMatchesSingleSteps) {
  const auto net = sharded_network();
  ShardedSessionService batched(net, sharded_config(/*lanes=*/4, /*shards=*/2),
                                /*seed=*/9);
  ShardedSessionService stepped(net, sharded_config(/*lanes=*/4, /*shards=*/2),
                                /*seed=*/9);
  const ShardTickReport merged = batched.run_slots(100);
  ShardTickReport accumulated;
  for (int i = 0; i < 100; ++i) {
    const ShardTickReport tick = stepped.step();
    accumulated.slots += tick.slots;
    accumulated.arrivals += tick.arrivals;
    accumulated.admissions += tick.admissions;
    accumulated.completed += tick.completed;
    accumulated.timed_out += tick.timed_out;
    accumulated.admitted_rate_sum += tick.admitted_rate_sum;
  }
  EXPECT_EQ(merged.slots, 100u);
  EXPECT_EQ(merged.arrivals, accumulated.arrivals);
  EXPECT_EQ(merged.admissions, accumulated.admissions);
  EXPECT_EQ(merged.completed, accumulated.completed);
  EXPECT_EQ(merged.timed_out, accumulated.timed_out);
  EXPECT_DOUBLE_EQ(merged.admitted_rate_sum, accumulated.admitted_rate_sum);
  expect_metrics_identical(batched.metrics(), stepped.metrics());
}

TEST(ShardedSessionService, LaneMetricsSumToMergedCounters) {
  const auto net = sharded_network();
  ShardedSessionService service(net, sharded_config(/*lanes=*/4, /*shards=*/2),
                                /*seed=*/17);
  play(service, 300);
  const ProtocolMetrics merged = service.metrics();
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  for (std::size_t lane = 0; lane < service.lane_count(); ++lane) {
    const ProtocolMetrics m = service.lane_metrics(lane);
    arrived += m.sessions_arrived;
    admitted += m.sessions_admitted;
    completed += m.sessions_completed;
  }
  EXPECT_EQ(arrived, merged.sessions_arrived);
  EXPECT_EQ(admitted, merged.sessions_admitted);
  EXPECT_EQ(completed, merged.sessions_completed);
}

TEST(ShardedSessionService, RecordsPerLaneAdmissionLatencies) {
  const auto net = sharded_network();
  ShardedSessionServiceConfig config = sharded_config(/*lanes=*/2,
                                                      /*shards=*/2);
  config.record_admit_us = true;
  ShardedSessionService service(net, config, /*seed=*/13);
  play(service, 300);
  std::size_t recorded = 0;
  for (std::size_t lane = 0; lane < service.lane_count(); ++lane) {
    for (const double us : service.lane_admit_us(lane)) {
      EXPECT_GE(us, 0.0);
      ++recorded;
    }
  }
  // One latency per routed arrival, admitted or not.
  EXPECT_EQ(recorded, service.metrics().sessions_arrived);
}

TEST(ShardedSessionService, RejectsInvalidConfigs) {
  const auto net = sharded_network();
  EXPECT_THROW(ShardedSessionService(net, sharded_config(0, 1), 1),
               std::invalid_argument);
  EXPECT_THROW(ShardedSessionService(net, sharded_config(1, 0), 1),
               std::invalid_argument);
  ShardedSessionServiceConfig config = sharded_config(1, 1);
  std::vector<double> sink;
  config.base.admit_us = &sink;
  EXPECT_THROW(ShardedSessionService(net, config, 1), std::invalid_argument);
}

TEST(ShardedSessionService, RunSlotsZeroReportsStateWithoutAdvancing) {
  const auto net = sharded_network();
  ShardedSessionService service(net, sharded_config(/*lanes=*/2, /*shards=*/1),
                                /*seed=*/3);
  service.run_slots(50);
  const std::uint64_t slot = service.slot();
  const ShardTickReport tick = service.run_slots(0);
  EXPECT_EQ(service.slot(), slot);
  EXPECT_EQ(tick.slots, 0u);
  EXPECT_EQ(tick.arrivals, 0u);
  EXPECT_EQ(tick.active_sessions, service.active_sessions());
}

TEST(ShardedSessionService, RuntimeSettersApplyToEveryLane) {
  const auto net = sharded_network();
  ShardedSessionServiceConfig config =
      sharded_config(/*lanes=*/4, /*shards=*/2, /*batch_single=*/false);
  ShardedSessionService service(net, config, /*seed=*/7);
  service.run_slots(200);

  std::string error;
  ASSERT_TRUE(service.set_arrival_prob(0.0, &error)) << error;
  EXPECT_DOUBLE_EQ(service.arrival_prob(), 0.0);
  const std::uint64_t arrived_before = service.metrics().sessions_arrived;
  service.run_slots(200);
  // Zero arrival rate silences every lane, not just lane 0.
  EXPECT_EQ(service.metrics().sessions_arrived, arrived_before);

  // Rejection mutates nothing: lane 0 validates first, so no lane moved.
  EXPECT_FALSE(service.set_arrival_prob(2.0, &error));
  EXPECT_DOUBLE_EQ(service.arrival_prob(), 0.0);
  EXPECT_FALSE(service.set_algorithm("no-such-router", &error));
  EXPECT_EQ(service.algorithm(), "");

  ASSERT_TRUE(service.set_arrival_prob(0.5, &error)) << error;
  service.run_slots(200);
  EXPECT_GT(service.metrics().sessions_arrived, arrived_before);
}

#if MUERP_TELEMETRY_ENABLED

using support::telemetry::SessionFilter;
using support::telemetry::SessionRecord;
using support::telemetry::SessionRecorder;
using support::telemetry::SessionState;

ShardedSessionServiceConfig recording_config(std::size_t lanes,
                                             std::size_t shards) {
  ShardedSessionServiceConfig config = sharded_config(lanes, shards);
  config.record_sessions = true;
  // Generous retention so ring eviction cannot hide a record from the
  // cross-config comparisons below.
  config.recorder_capacity = 4096;
  return config;
}

void expect_recorder_stats_identical(const SessionRecorder::Stats& a,
                                     const SessionRecorder::Stats& b) {
  EXPECT_EQ(a.opened, b.opened);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.kept, b.kept);
  EXPECT_EQ(a.sampled_out, b.sampled_out);
  EXPECT_EQ(a.p99_held_slots, b.p99_held_slots);
}

TEST(ShardedSessionService, SessionRecordsBitIdenticalAcrossShardCounts) {
  const auto net = sharded_network();
  std::vector<SessionRecord> reference;
  SessionRecorder::Stats reference_stats;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedSessionService service(net, recording_config(/*lanes=*/4, shards),
                                  /*seed=*/21);
    play(service, 400);
    std::vector<SessionRecord> records = service.session_records();
    const SessionRecorder::Stats stats = service.session_record_stats();
    if (first) {
      reference = std::move(records);
      reference_stats = stats;
      first = false;
      ASSERT_FALSE(reference.empty());
      ASSERT_GT(reference_stats.opened, 0u);
      continue;
    }
    // Full structural equality, every field of every record — the recorder
    // determinism contract (SessionRecord has a defaulted operator==).
    EXPECT_EQ(records, reference);
    expect_recorder_stats_identical(stats, reference_stats);
  }
}

TEST(ShardedSessionService, TailRecordsUnaffectedBySamplingRate) {
  // A starved fabric: 8 qubits split over 4 lanes leaves each lane 2 per
  // switch, so admission refuses groups outright, and a 5-slot timeout
  // expires the sessions that do get in — both tail shapes occur.
  experiment::Scenario scenario;
  scenario.switch_count = 30;
  scenario.user_count = 8;
  scenario.qubits_per_switch = 8;
  scenario.attenuation = 2e-5;
  scenario.seed = 11;
  const auto net = experiment::instantiate(scenario, 0).network;
  // keep-rate 0 drops every happy-path completion; 1024 keeps them all. The
  // tail (rejections, timeouts) must come out bit-identical either way —
  // sampling other sessions cannot change what the tail records say.
  std::vector<std::vector<SessionRecord>> tails;
  for (const std::uint32_t keep : {0u, 1024u}) {
    ShardedSessionServiceConfig config = recording_config(/*lanes=*/4,
                                                          /*shards=*/2);
    config.base.params.session_timeout_slots = 5;
    config.recorder_happy_keep_per_1024 = keep;
    ShardedSessionService service(net, config, /*seed=*/21);
    play(service, 400);
    SessionFilter rejected;
    rejected.state = SessionState::kRejected;
    SessionFilter timed_out;
    timed_out.state = SessionState::kTimedOut;
    std::vector<SessionRecord> tail = service.session_records(rejected);
    std::vector<SessionRecord> timeouts = service.session_records(timed_out);
    tail.insert(tail.end(), timeouts.begin(), timeouts.end());
    tails.push_back(std::move(tail));
  }
  ASSERT_FALSE(tails[0].empty());
  EXPECT_EQ(tails[0], tails[1]);
}

TEST(ShardedSessionService, RecorderDoesNotPerturbAdmissions) {
  const auto net = sharded_network();
  ShardedSessionService recorded(net, recording_config(/*lanes=*/4,
                                                       /*shards=*/2),
                                 /*seed=*/33);
  ShardedSessionService plain(net, sharded_config(/*lanes=*/4, /*shards=*/2),
                              /*seed=*/33);
  play(recorded, 300);
  play(plain, 300);
  expect_metrics_identical(recorded.metrics(), plain.metrics());
  EXPECT_EQ(recorded.active_sessions(), plain.active_sessions());
}

TEST(ShardedSessionService, FindSessionRecordRoutesById) {
  const auto net = sharded_network();
  ShardedSessionService service(net, recording_config(/*lanes=*/4,
                                                      /*shards=*/2),
                                /*seed=*/17);
  play(service, 300);
  const std::vector<SessionRecord> records = service.session_records();
  ASSERT_FALSE(records.empty());
  for (const SessionRecord& expected :
       {records.front(), records.back()}) {
    const auto found = service.find_session_record(expected.id);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, expected);
    EXPECT_EQ(found->lane, expected.id >> 32);
  }
  EXPECT_FALSE(service.find_session_record(0).has_value());
  EXPECT_FALSE(
      service.find_session_record((99ull << 32) | 1).has_value());
}

TEST(ShardedSessionService, FinalizeSessionRecordsDrainsActiveOnes) {
  const auto net = sharded_network();
  ShardedSessionService service(net, recording_config(/*lanes=*/4,
                                                      /*shards=*/2),
                                /*seed=*/13);
  play(service, 100);
  const std::size_t active = service.active_sessions();
  ASSERT_GT(active, 0u);
  service.finalize_session_records();
  SessionFilter drained;
  drained.state = SessionState::kDrained;
  EXPECT_EQ(service.session_records(drained).size(), active);
  EXPECT_EQ(service.session_record_stats().drained, active);
  SessionFilter still_active;
  still_active.state = SessionState::kActive;
  EXPECT_TRUE(service.session_records(still_active).empty());
}

TEST(ShardedSessionService, RejectsSharedRecorderInBaseConfig) {
  const auto net = sharded_network();
  ShardedSessionServiceConfig config = sharded_config(2, 1);
  SessionRecorder recorder;
  config.base.recorder = &recorder;
  EXPECT_THROW(ShardedSessionService(net, config, 1), std::invalid_argument);
}

using support::telemetry::LinkLedger;
using support::telemetry::LinkStat;

ShardedSessionServiceConfig link_config(std::size_t lanes,
                                        std::size_t shards) {
  ShardedSessionServiceConfig config = sharded_config(lanes, shards);
  config.record_links = true;
  return config;
}

void expect_ledger_stats_identical(const LinkLedger::Stats& a,
                                   const LinkLedger::Stats& b) {
  EXPECT_EQ(a.admits, b.admits);
  EXPECT_EQ(a.rejects, b.rejects);
  EXPECT_EQ(a.contention_losses, b.contention_losses);
  EXPECT_EQ(a.saturation_events, b.saturation_events);
  EXPECT_EQ(a.evicted_events, b.evicted_events);
}

TEST(ShardedSessionService, LinkStatsBitIdenticalAcrossShardCounts) {
  const auto net = sharded_network();
  std::vector<LinkStat> reference;
  LinkLedger::Stats reference_stats;
  bool first = true;
  for (const std::size_t shards : {1u, 2u, 8u}) {
    ShardedSessionService service(net, link_config(/*lanes=*/4, shards),
                                  /*seed=*/21);
    play(service, 400);
    std::vector<LinkStat> links = service.link_stats();
    const LinkLedger::Stats stats = service.link_ledger_stats();
    if (first) {
      reference = std::move(links);
      reference_stats = stats;
      first = false;
      ASSERT_FALSE(reference.empty());
      ASSERT_GT(reference_stats.admits, 0u);
      // The merged document is live, not vacuous: links were attempted,
      // won, and accumulated windowed utilization.
      std::uint64_t attempts = 0;
      std::uint64_t wins = 0;
      double ewma = 0.0;
      for (const LinkStat& link : reference) {
        attempts += link.attempts;
        wins += link.wins;
        ewma += link.ewma_utilization;
      }
      ASSERT_GT(attempts, 0u);
      ASSERT_GT(wins, 0u);
      ASSERT_GT(ewma, 0.0);
      continue;
    }
    // Full structural equality, every field of every link — the ledger
    // merge determinism contract (LinkStat has a defaulted operator==).
    EXPECT_EQ(links, reference);
    expect_ledger_stats_identical(stats, reference_stats);
  }
}

TEST(ShardedSessionService, LedgerDoesNotPerturbAdmissions) {
  // Ledger ON vs OFF over a long horizon: recording per-link occupancy
  // must not move a single admission decision (the flight-recorder
  // bit-identity discipline, applied to the network plane).
  const auto net = sharded_network();
  ShardedSessionService ledgered(net, link_config(/*lanes=*/4, /*shards=*/2),
                                 /*seed=*/33);
  ShardedSessionService plain(net, sharded_config(/*lanes=*/4, /*shards=*/2),
                              /*seed=*/33);
  play(ledgered, 1600);
  play(plain, 1600);
  expect_metrics_identical(ledgered.metrics(), plain.metrics());
  EXPECT_EQ(ledgered.active_sessions(), plain.active_sessions());
  EXPECT_EQ(ledgered.qubit_utilization(), plain.qubit_utilization());
  EXPECT_GT(ledgered.link_ledger_stats().admits, 0u);
  EXPECT_TRUE(plain.link_stats().empty());  // OFF stays empty
}

TEST(ShardedSessionService, ExplainSessionJoinsLaneLedger) {
  const auto net = sharded_network();
  ShardedSessionServiceConfig config = recording_config(/*lanes=*/4,
                                                        /*shards=*/2);
  config.record_links = true;
  // Generous retention so the saturation replay below stays exact.
  config.ledger_event_capacity = 65536;
  ShardedSessionService service(net, config, /*seed=*/17);
  play(service, 300);
  const std::vector<SessionRecord> records = service.session_records();
  ASSERT_FALSE(records.empty());
  for (const SessionRecord& expected :
       {records.front(), records.back()}) {
    const auto explained = service.explain_session(expected.id);
    ASSERT_TRUE(explained.has_value());
    EXPECT_EQ(explained->record, expected);
    // The join reconstructs the lane's saturated set at the session's own
    // arrival slot; with generous event retention it is exact.
    EXPECT_TRUE(explained->saturated.exact);
  }
  EXPECT_FALSE(service.explain_session(0).has_value());
  EXPECT_FALSE(service.explain_session((99ull << 32) | 1).has_value());
}

TEST(ShardedSessionService, RejectsSharedLedgerInBaseConfig) {
  const auto net = sharded_network();
  ShardedSessionServiceConfig config = sharded_config(2, 1);
  LinkLedger ledger({1}, {1});
  config.base.ledger = &ledger;
  EXPECT_THROW(ShardedSessionService(net, config, 1), std::invalid_argument);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::sim
