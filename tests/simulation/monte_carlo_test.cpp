#include "simulation/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "routing/optimal_tree.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

/// Checks |estimate - analytic| <= 4 sigma (+ tiny epsilon for sigma = 0).
void expect_agrees(const Estimate& est, double analytic) {
  EXPECT_NEAR(est.rate, analytic, 4.0 * est.std_error + 1e-9)
      << "MC " << est.rate << " vs Eq. " << analytic;
}

net::QuantumNetwork two_hop_network(double alpha, double q) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_switch({1000, 0}, 4);
  b.add_user({2000, 0});
  b.connect(0, 1, 1000.0);
  b.connect(1, 2, 1000.0);
  return std::move(b).build({alpha, q});
}

TEST(MonteCarlo, ChannelMatchesEq1) {
  const auto net = two_hop_network(2e-4, 0.85);
  net::Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};

  const MonteCarloSimulator mc(net);
  support::Rng rng(1);
  const auto est = mc.estimate_tree_rate(tree, 200000, rng);
  expect_agrees(est, ch.rate);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  const auto net = two_hop_network(2e-4, 0.85);
  net::Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};
  const MonteCarloSimulator mc(net);
  support::Rng r1(9);
  support::Rng r2(9);
  EXPECT_EQ(mc.estimate_tree_rate(tree, 10000, r1).successes,
            mc.estimate_tree_rate(tree, 10000, r2).successes);
}

TEST(MonteCarlo, PerfectComponentsAlwaysSucceed) {
  const auto net = two_hop_network(0.0, 1.0);
  net::Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};
  const MonteCarloSimulator mc(net);
  support::Rng rng(2);
  const auto est = mc.estimate_tree_rate(tree, 1000, rng);
  EXPECT_DOUBLE_EQ(est.rate, 1.0);
}

TEST(MonteCarlo, InfeasibleTreeScoresZeroWithoutSampling) {
  const auto net = two_hop_network(2e-4, 0.85);
  net::EntanglementTree tree{{}, 0.0, false};
  const MonteCarloSimulator mc(net);
  support::Rng rng(3);
  const auto est = mc.estimate_tree_rate(tree, 1000, rng);
  EXPECT_DOUBLE_EQ(est.rate, 0.0);
  EXPECT_EQ(est.successes, 0u);
}

TEST(MonteCarlo, MultiChannelTreeMatchesEq2) {
  // 3 users, big hub; tree of 2 channels — the MC estimate must match the
  // Eq. (2) product.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2000, 0});
  const NodeId u2 = b.add_user({1000, 1700});
  const NodeId hub = b.add_switch({1000, 600}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({3e-4, 0.9});

  const auto tree = routing::optimal_special_case(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const MonteCarloSimulator mc(net);
  support::Rng rng(4);
  const auto est = mc.estimate_tree_rate(tree, 200000, rng);
  expect_agrees(est, tree.rate);
}

TEST(MonteCarlo, FusionPlanMatchesModel) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2000, 0});
  const NodeId u2 = b.add_user({1000, 1700});
  const NodeId hub = b.add_switch({1000, 600}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({3e-4, 0.9});

  baselines::NFusionParams params;
  const auto plan = baselines::n_fusion(net, net.users(), params);
  ASSERT_TRUE(plan.feasible);
  const MonteCarloSimulator mc(net);
  support::Rng rng(5);
  const auto est =
      mc.estimate_fusion_rate(plan, params.fusion_penalty, 200000, rng);
  expect_agrees(est, plan.rate);
}

TEST(MonteCarlo, StdErrorShrinksWithRounds) {
  const auto net = two_hop_network(2e-4, 0.85);
  net::Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};
  const MonteCarloSimulator mc(net);
  support::Rng rng(6);
  const auto small = mc.estimate_tree_rate(tree, 1000, rng);
  const auto large = mc.estimate_tree_rate(tree, 100000, rng);
  EXPECT_GT(small.std_error, large.std_error);
}

/// End-to-end agreement on realistic routed networks (paper defaults).
class McEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McEndToEnd, RoutedTreeAgreesWithClosedForm) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, rng);
  // Large alpha so rates are big enough to measure in 50k rounds.
  const auto net =
      net::assign_random_users(std::move(topo), 4, 6, {5e-5, 0.95}, rng);
  const auto tree = routing::conflict_free(net, net.users());
  if (!tree.feasible) GTEST_SKIP() << "instance infeasible";
  const MonteCarloSimulator mc(net);
  const auto est = mc.estimate_tree_rate(tree, 50000, rng);
  expect_agrees(est, tree.rate);
}

INSTANTIATE_TEST_SUITE_P(Seeds, McEndToEnd,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace muerp::sim
