#include "simulation/qubit_machine.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

net::QuantumNetwork two_hop(double alpha, double q, int qubits) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_switch({1000, 0}, qubits);
  b.add_user({2000, 0});
  b.connect(0, 1, 1000.0);
  b.connect(1, 2, 1000.0);
  return std::move(b).build({alpha, q});
}

net::EntanglementTree single_channel_tree(const net::QuantumNetwork& net) {
  net::Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = net::channel_rate(net, ch.path);
  return net::EntanglementTree{{ch}, ch.rate, true};
}

TEST(QubitMachine, AllocationUsesTwoQubitsPerRelay) {
  const auto net = two_hop(2e-4, 0.9, 4);
  const auto tree = single_channel_tree(net);
  const QubitMachine machine(net);
  support::Rng rng(1);
  const auto window = machine.execute_window(tree, rng);
  ASSERT_TRUE(window.allocation_valid);
  EXPECT_EQ(window.qubits_used[1], 2);  // the relay switch
  EXPECT_EQ(window.qubits_used[0], 0);  // users untracked
  EXPECT_EQ(window.qubits_used[2], 0);
}

TEST(QubitMachine, DetectsOverbooking) {
  // Q = 2 switch carrying two channels: 4 qubits needed, 2 available.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 2);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  auto mk = [&](NodeId a, NodeId c) {
    net::Channel ch;
    ch.path = {a, hub, c};
    ch.rate = net::channel_rate(net, ch.path);
    return ch;
  };
  net::EntanglementTree overbooked{{mk(u0, u1), mk(u0, u2)}, 0.1, true};
  const QubitMachine machine(net);
  support::Rng rng(2);
  const auto window = machine.execute_window(overbooked, rng);
  EXPECT_FALSE(window.allocation_valid);
  EXPECT_EQ(window.overbooked_switch, hub);
  EXPECT_DOUBLE_EQ(machine.estimate_rate(overbooked, 100, rng).rate, 0.0);
}

TEST(QubitMachine, PerfectHardwareAlwaysSucceeds) {
  const auto net = two_hop(0.0, 1.0, 4);
  const auto tree = single_channel_tree(net);
  const QubitMachine machine(net);
  support::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto window = machine.execute_window(tree, rng);
    ASSERT_TRUE(window.allocation_valid);
    ASSERT_TRUE(window.success);
  }
}

TEST(QubitMachine, AgreesWithEq1OnSingleChannel) {
  const auto net = two_hop(2e-4, 0.85, 4);
  const auto tree = single_channel_tree(net);
  const QubitMachine machine(net);
  support::Rng rng(4);
  const auto est = machine.estimate_rate(tree, 200000, rng);
  EXPECT_NEAR(est.rate, tree.rate, 4.0 * est.std_error + 1e-9);
}

TEST(QubitMachine, AgreesWithMonteCarloOnRoutedTrees) {
  // The physical machine and the sampling simulator are independent
  // implementations of the same process; their estimates must agree.
  support::Rng gen(5);
  topology::WaxmanParams params;
  params.node_count = 25;
  auto topo = topology::generate_waxman(params, gen);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 6, {5e-5, 0.95}, gen);
  const auto tree = routing::conflict_free(net, net.users());
  if (!tree.feasible) GTEST_SKIP();

  const QubitMachine machine(net);
  const MonteCarloSimulator mc(net);
  support::Rng r1(6);
  support::Rng r2(6);
  const auto physical = machine.estimate_rate(tree, 60000, r1);
  const auto sampled = mc.estimate_tree_rate(tree, 60000, r2);
  const double sigma =
      std::sqrt(physical.std_error * physical.std_error +
                sampled.std_error * sampled.std_error);
  EXPECT_NEAR(physical.rate, sampled.rate, 4.0 * sigma + 1e-9);
  EXPECT_NEAR(physical.rate, tree.rate, 4.0 * physical.std_error + 1e-9);
}

TEST(QubitMachine, InfeasibleTreeFailsCleanly) {
  const auto net = two_hop(2e-4, 0.9, 4);
  net::EntanglementTree infeasible{{}, 0.0, false};
  const QubitMachine machine(net);
  support::Rng rng(7);
  const auto window = machine.execute_window(infeasible, rng);
  EXPECT_FALSE(window.success);
}

TEST(QubitMachine, DirectUserChannelNeedsNoSwitchQubits) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({500, 0});
  b.add_switch({250, 250}, 0);  // zero-qubit bystander
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  net::Channel ch;
  ch.path = {u0, u1};
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};
  const QubitMachine machine(net);
  support::Rng rng(8);
  const auto window = machine.execute_window(tree, rng);
  EXPECT_TRUE(window.allocation_valid);
  EXPECT_EQ(window.qubits_used[2], 0);
}

TEST(QubitMachine, ExactBudgetAllocates) {
  // Q = 2 relay with exactly one channel: allocation must fit exactly.
  const auto net = two_hop(2e-4, 0.9, 2);
  const auto tree = single_channel_tree(net);
  const QubitMachine machine(net);
  support::Rng rng(9);
  const auto window = machine.execute_window(tree, rng);
  EXPECT_TRUE(window.allocation_valid);
  EXPECT_EQ(window.qubits_used[1], 2);
}

class QubitMachineChainLengths : public ::testing::TestWithParam<int> {};

TEST_P(QubitMachineChainLengths, MatchesClosedFormForAnyLength) {
  const int switches = GetParam();
  net::NetworkBuilder b;
  NodeId prev = b.add_user({0, 0});
  std::vector<NodeId> path{prev};
  for (int i = 0; i < switches; ++i) {
    const NodeId sw = b.add_switch({500.0 * (i + 1), 0}, 2);
    b.connect(prev, sw, 500.0);
    prev = sw;
    path.push_back(sw);
  }
  const NodeId last = b.add_user({500.0 * (switches + 1), 0});
  b.connect(prev, last, 500.0);
  path.push_back(last);
  const auto net = std::move(b).build({2e-4, 0.9});
  net::Channel ch;
  ch.rate = net::channel_rate(net, path);
  ch.path = path;
  net::EntanglementTree tree{{ch}, ch.rate, true};

  const QubitMachine machine(net);
  support::Rng rng(static_cast<std::uint64_t>(switches) + 10);
  const auto est = machine.estimate_rate(tree, 100000, rng);
  EXPECT_NEAR(est.rate, tree.rate, 4.0 * est.std_error + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Switches, QubitMachineChainLengths,
                         ::testing::Values(0, 1, 2, 4, 6));

}  // namespace
}  // namespace muerp::sim
