#include "simulation/protocol.hpp"

#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "network/network_builder.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

net::QuantumNetwork service_network() {
  experiment::Scenario s;
  s.switch_count = 30;
  s.user_count = 8;
  s.qubits_per_switch = 6;
  s.attenuation = 2e-5;  // healthy per-window rates so sessions complete
  s.seed = 11;
  return experiment::instantiate(s, 0).network;
}

TEST(Protocol, AccountingIsConsistent) {
  const auto net = service_network();
  ProtocolParams params;
  params.horizon_slots = 5000;
  const ProtocolSimulator sim(net, params);
  support::Rng rng(1);
  const auto m = sim.run(rng);
  EXPECT_EQ(m.sessions_arrived, m.sessions_admitted + m.sessions_rejected);
  EXPECT_EQ(m.sessions_admitted,
            m.sessions_completed + m.sessions_timed_out + m.sessions_in_flight);
  EXPECT_GE(m.mean_qubit_utilization, 0.0);
  EXPECT_LE(m.mean_qubit_utilization, 1.0);
  EXPECT_GT(m.sessions_arrived, 0u);
}

TEST(Protocol, DeterministicForSeed) {
  const auto net = service_network();
  ProtocolParams params;
  params.horizon_slots = 3000;
  const ProtocolSimulator sim(net, params);
  support::Rng r1(7);
  support::Rng r2(7);
  const auto m1 = sim.run(r1);
  const auto m2 = sim.run(r2);
  EXPECT_EQ(m1.sessions_arrived, m2.sessions_arrived);
  EXPECT_EQ(m1.sessions_completed, m2.sessions_completed);
  EXPECT_DOUBLE_EQ(m1.mean_completion_slots, m2.mean_completion_slots);
}

TEST(Protocol, ZeroArrivalsIdleSystem) {
  const auto net = service_network();
  ProtocolParams params;
  params.arrival_prob_per_slot = 0.0;
  params.horizon_slots = 1000;
  const ProtocolSimulator sim(net, params);
  support::Rng rng(2);
  const auto m = sim.run(rng);
  EXPECT_EQ(m.sessions_arrived, 0u);
  EXPECT_DOUBLE_EQ(m.mean_qubit_utilization, 0.0);
  EXPECT_DOUBLE_EQ(m.admitted_fraction(), 0.0);
}

TEST(Protocol, HigherLoadLowersAdmission) {
  const auto net = service_network();
  ProtocolParams light;
  light.arrival_prob_per_slot = 0.005;
  light.horizon_slots = 20000;
  light.session_timeout_slots = 2000;
  ProtocolParams heavy = light;
  heavy.arrival_prob_per_slot = 0.2;
  const ProtocolSimulator light_sim(net, light);
  const ProtocolSimulator heavy_sim(net, heavy);
  support::Rng r1(3);
  support::Rng r2(3);
  const auto m_light = light_sim.run(r1);
  const auto m_heavy = heavy_sim.run(r2);
  ASSERT_GT(m_light.sessions_arrived, 0u);
  ASSERT_GT(m_heavy.sessions_arrived, 0u);
  // More contention -> lower admitted fraction, higher utilization.
  EXPECT_LE(m_heavy.admitted_fraction(), m_light.admitted_fraction() + 0.05);
  EXPECT_GE(m_heavy.mean_qubit_utilization, m_light.mean_qubit_utilization);
}

TEST(Protocol, TightTimeoutProducesTimeouts) {
  experiment::Scenario s;
  s.switch_count = 30;
  s.user_count = 8;
  s.qubits_per_switch = 6;
  s.attenuation = 5e-4;  // per-window rates are tiny -> timeouts dominate
  s.seed = 12;
  const auto net = experiment::instantiate(s, 0).network;
  ProtocolParams params;
  params.session_timeout_slots = 3;
  params.horizon_slots = 5000;
  params.arrival_prob_per_slot = 0.05;
  const ProtocolSimulator sim(net, params);
  support::Rng rng(4);
  const auto m = sim.run(rng);
  ASSERT_GT(m.sessions_admitted, 0u);
  EXPECT_GT(m.sessions_timed_out, 0u);
}

TEST(Protocol, CompletionSlotsBoundedByTimeout) {
  const auto net = service_network();
  ProtocolParams params;
  params.session_timeout_slots = 50;
  params.horizon_slots = 10000;
  const ProtocolSimulator sim(net, params);
  support::Rng rng(5);
  const auto m = sim.run(rng);
  if (m.sessions_completed > 0) {
    EXPECT_LE(m.mean_completion_slots,
              static_cast<double>(params.session_timeout_slots) + 1.0);
  }
}

class ProtocolLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(ProtocolLoadSweep, UtilizationStaysInUnitRange) {
  const auto net = service_network();
  ProtocolParams params;
  params.arrival_prob_per_slot = GetParam();
  params.horizon_slots = 4000;
  const ProtocolSimulator sim(net, params);
  support::Rng rng(static_cast<std::uint64_t>(GetParam() * 1000) + 9);
  const auto m = sim.run(rng);
  EXPECT_GE(m.mean_qubit_utilization, 0.0);
  EXPECT_LE(m.mean_qubit_utilization, 1.0);
  EXPECT_LE(m.completed_fraction_of_admitted(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, ProtocolLoadSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3));

}  // namespace
}  // namespace muerp::sim
