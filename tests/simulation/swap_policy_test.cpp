#include "simulation/swap_policy.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "network/rate.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

/// A channel with `switches` relays; uniform segment length.
struct ChainFixture {
  net::QuantumNetwork net;
  net::Channel channel;
};

ChainFixture chain(std::size_t switches, double seg_km, double alpha,
                   double q) {
  net::NetworkBuilder b;
  NodeId prev = b.add_user({0, 0});
  std::vector<NodeId> path{prev};
  for (std::size_t i = 0; i < switches; ++i) {
    const NodeId sw = b.add_switch({seg_km * (i + 1.0), 0}, 4);
    b.connect(prev, sw, seg_km);
    prev = sw;
    path.push_back(sw);
  }
  const NodeId last = b.add_user({seg_km * (switches + 1.0), 0});
  b.connect(prev, last, seg_km);
  path.push_back(last);
  auto net = std::move(b).build({alpha, q});
  net::Channel channel;
  channel.rate = net::channel_rate(net, path);
  channel.path = std::move(path);
  return {std::move(net), std::move(channel)};
}

TEST(SwapPolicy, Names) {
  EXPECT_STREQ(swap_policy_name(SwapPolicy::kAsap), "swap-asap");
  EXPECT_STREQ(swap_policy_name(SwapPolicy::kLinear), "linear");
  EXPECT_STREQ(swap_policy_name(SwapPolicy::kBalanced), "balanced");
}

TEST(SwapPolicy, SingleLinkIsGeometric) {
  // No switches: completion is geometric in the link success probability,
  // identical for every policy.
  auto fx = chain(0, 1000.0, 5e-4, 0.9);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  const double p = fx.net.link_success(*fx.net.graph().find_edge(0, 1));
  for (SwapPolicy policy :
       {SwapPolicy::kAsap, SwapPolicy::kLinear, SwapPolicy::kBalanced}) {
    support::Rng rng(3);
    const auto stats = sim.measure({.policy = policy}, 20000, rng);
    EXPECT_EQ(stats.aborted_runs, 0u);
    EXPECT_NEAR(stats.mean_slots, 1.0 / p, 0.05 / p)
        << swap_policy_name(policy);
  }
}

TEST(SwapPolicy, PerfectHardwareOneSlot) {
  auto fx = chain(3, 100.0, 0.0, 1.0);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng rng(4);
  EXPECT_EQ(sim.run_once({.policy = SwapPolicy::kAsap}, rng), 1u);
  // Linear needs the chain to zip left to right, but with perfect swaps all
  // merges fire within the first slot's swap loop.
  EXPECT_EQ(sim.run_once({.policy = SwapPolicy::kLinear}, rng), 1u);
  EXPECT_EQ(sim.run_once({.policy = SwapPolicy::kBalanced}, rng), 1u);
}

TEST(SwapPolicy, AbortsAtMaxSlots) {
  auto fx = chain(2, 20000.0, 5e-4, 0.5);  // per-link p ~ e^-10
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng rng(5);
  SwapPolicyParams params;
  params.max_slots = 50;
  EXPECT_EQ(sim.run_once(params, rng), 0u);
}

TEST(SwapPolicy, AsapBeatsLinearOnLongChains) {
  // With several relays, extending strictly from the source wastes the
  // parallel generation on the far side; ASAP merges anywhere.
  auto fx = chain(5, 800.0, 4e-4, 0.85);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng r1(6);
  support::Rng r2(6);
  const auto asap = sim.measure({.policy = SwapPolicy::kAsap}, 3000, r1);
  const auto linear = sim.measure({.policy = SwapPolicy::kLinear}, 3000, r2);
  ASSERT_GT(asap.completed_runs, 0u);
  ASSERT_GT(linear.completed_runs, 0u);
  EXPECT_LT(asap.mean_slots, linear.mean_slots);
}

TEST(SwapPolicy, BalancedBeatsLinearOnLongChains) {
  auto fx = chain(7, 800.0, 4e-4, 0.85);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng r1(7);
  support::Rng r2(7);
  const auto balanced =
      sim.measure({.policy = SwapPolicy::kBalanced}, 2000, r1);
  const auto linear = sim.measure({.policy = SwapPolicy::kLinear}, 2000, r2);
  ASSERT_GT(balanced.completed_runs, 0u);
  ASSERT_GT(linear.completed_runs, 0u);
  EXPECT_LT(balanced.mean_slots, linear.mean_slots);
}

TEST(SwapPolicy, MemoryCutoffSlowsCompletion) {
  auto fx = chain(3, 1000.0, 4e-4, 0.9);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng r1(8);
  support::Rng r2(8);
  const auto unlimited =
      sim.measure({.policy = SwapPolicy::kAsap, .memory_slots = 0}, 3000, r1);
  const auto tight =
      sim.measure({.policy = SwapPolicy::kAsap, .memory_slots = 2}, 3000, r2);
  ASSERT_GT(unlimited.completed_runs, 0u);
  ASSERT_GT(tight.completed_runs, 0u);
  EXPECT_GT(tight.mean_slots, unlimited.mean_slots);
}

TEST(SwapPolicy, DeterministicGivenSeed) {
  auto fx = chain(3, 900.0, 4e-4, 0.9);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng r1(9);
  support::Rng r2(9);
  EXPECT_EQ(sim.run_once({.policy = SwapPolicy::kBalanced}, r1),
            sim.run_once({.policy = SwapPolicy::kBalanced}, r2));
}

class PolicySweep : public ::testing::TestWithParam<SwapPolicy> {};

TEST_P(PolicySweep, AllPoliciesEventuallyComplete) {
  auto fx = chain(4, 600.0, 4e-4, 0.9);
  const SwapPolicySimulator sim(fx.net, fx.channel);
  support::Rng rng(10);
  const auto stats = sim.measure({.policy = GetParam()}, 500, rng);
  EXPECT_EQ(stats.aborted_runs, 0u);
  EXPECT_GT(stats.mean_slots, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(SwapPolicy::kAsap,
                                           SwapPolicy::kLinear,
                                           SwapPolicy::kBalanced));

}  // namespace
}  // namespace muerp::sim
