#include "simulation/decoherence.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "support/rng.hpp"

namespace muerp::sim {
namespace {

using net::NodeId;

struct Fixture {
  net::QuantumNetwork net;
  net::EntanglementTree tree;
};

Fixture two_channel(double alpha, double q) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2000, 0});
  const NodeId u2 = b.add_user({4000, 0});
  const NodeId s0 = b.add_switch({1000, 0}, 4);
  const NodeId s1 = b.add_switch({3000, 0}, 4);
  b.connect(u0, s0, 1000.0);
  b.connect(s0, u1, 1000.0);
  b.connect(u1, s1, 1000.0);
  b.connect(s1, u2, 1000.0);
  auto net = std::move(b).build({alpha, q});
  net::Channel c1;
  c1.path = {u0, s0, u1};
  c1.rate = net::channel_rate(net, c1.path);
  net::Channel c2;
  c2.path = {u1, s1, u2};
  c2.rate = net::channel_rate(net, c2.path);
  net::EntanglementTree tree{{c1, c2}, c1.rate * c2.rate, true};
  return {std::move(net), std::move(tree)};
}

DecoherenceParams default_params() {
  DecoherenceParams params;
  params.memory_slots = 10;
  params.memory_decay_per_slot = 0.99;
  params.fidelity.fresh_fidelity = 0.99;
  params.fidelity.decay_per_km = 2e-5;
  return params;
}

TEST(Decoherence, PerfectHardwareDeliversFreshFidelity) {
  auto fx = two_channel(0.0, 1.0);
  auto params = default_params();
  const DecoherenceSimulator sim(fx.net, params);
  support::Rng rng(1);
  const auto outcome = sim.run_once(fx.tree, rng);
  EXPECT_EQ(outcome.slots, 1u);
  // Both channels complete in slot 1, zero waiting: no memory decay, so
  // delivered fidelity equals the channel model's fresh value.
  const double fresh = ext::channel_fidelity(
      fx.net, fx.tree.channels[0].path, params.fidelity);
  EXPECT_NEAR(outcome.worst_fidelity, fresh, 1e-12);
}

TEST(Decoherence, WaitingCostsFidelity) {
  auto fx = two_channel(3e-4, 0.8);
  auto params = default_params();
  const DecoherenceSimulator sim(fx.net, params);
  support::Rng rng(2);
  const auto stats = sim.measure(fx.tree, 4000, rng);
  ASSERT_GT(stats.completed_runs, 0u);
  const double fresh = ext::channel_fidelity(
      fx.net, fx.tree.channels[0].path, params.fidelity);
  // Average delivered fidelity sits strictly below fresh (some runs wait),
  // but above the worst case of a full memory window.
  EXPECT_LT(stats.mean_worst_fidelity, fresh);
  const double w_fresh = (4.0 * fresh - 1.0) / 3.0;
  const double floor_fid =
      0.25 + 0.75 * w_fresh *
                 std::pow(params.memory_decay_per_slot,
                          static_cast<double>(params.memory_slots));
  EXPECT_GT(stats.mean_worst_fidelity, floor_fid - 1e-9);
}

TEST(Decoherence, LosslessMemoryPreservesFidelity) {
  auto fx = two_channel(3e-4, 0.8);
  auto params = default_params();
  params.memory_decay_per_slot = 1.0;
  const DecoherenceSimulator sim(fx.net, params);
  support::Rng rng(3);
  const auto stats = sim.measure(fx.tree, 2000, rng);
  const double fresh = ext::channel_fidelity(
      fx.net, fx.tree.channels[0].path, params.fidelity);
  EXPECT_NEAR(stats.mean_worst_fidelity, fresh, 1e-9);
}

TEST(Decoherence, LargerMemoryFasterButDirtier) {
  auto fx = two_channel(3e-4, 0.8);
  auto small = default_params();
  small.memory_slots = 1;
  auto large = default_params();
  large.memory_slots = 30;
  const DecoherenceSimulator sim_small(fx.net, small);
  const DecoherenceSimulator sim_large(fx.net, large);
  support::Rng r1(4);
  support::Rng r2(4);
  const auto s = sim_small.measure(fx.tree, 4000, r1);
  const auto l = sim_large.measure(fx.tree, 4000, r2);
  ASSERT_GT(s.completed_runs, 0u);
  ASSERT_GT(l.completed_runs, 0u);
  EXPECT_LT(l.mean_slots, s.mean_slots);                       // faster
  EXPECT_LT(l.mean_worst_fidelity, s.mean_worst_fidelity);     // dirtier
}

TEST(Decoherence, InfeasibleAndSingleton) {
  auto fx = two_channel(3e-4, 0.8);
  const DecoherenceSimulator sim(fx.net, default_params());
  support::Rng rng(5);
  net::EntanglementTree infeasible{{}, 0.0, false};
  EXPECT_EQ(sim.run_once(infeasible, rng).slots, 0u);
  net::EntanglementTree trivial{{}, 1.0, true};
  const auto outcome = sim.run_once(trivial, rng);
  EXPECT_EQ(outcome.slots, 1u);
  EXPECT_DOUBLE_EQ(outcome.worst_fidelity, 1.0);
}

}  // namespace
}  // namespace muerp::sim
