// Second targeted batch: tie-breaking determinism, degenerate geometries,
// metric helpers, and stream-advancement contracts.
#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/channel_finder.hpp"
#include "routing/conflict_free.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"
#include "simulation/protocol.hpp"
#include "simulation/swap_policy.hpp"
#include "support/statistics.hpp"

namespace muerp {
namespace {

using net::NodeId;

TEST(OptimalTree, DeterministicUnderRateTies) {
  // Perfectly symmetric square of users around one hub: many channels tie.
  // Two runs must produce identical trees (no hidden nondeterminism).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({200, 200});
  const NodeId u3 = b.add_user({0, 200});
  const NodeId hub = b.add_switch({100, 100}, 20);
  for (NodeId u : {u0, u1, u2, u3}) b.connect(u, hub, 141.42);
  const auto net = std::move(b).build({1e-4, 0.9});

  const auto t1 = routing::optimal_special_case(net, net.users());
  const auto t2 = routing::optimal_special_case(net, net.users());
  ASSERT_EQ(t1.channels.size(), t2.channels.size());
  for (std::size_t i = 0; i < t1.channels.size(); ++i) {
    EXPECT_EQ(t1.channels[i].path, t2.channels[i].path);
  }
  EXPECT_DOUBLE_EQ(t1.rate, t2.rate);
  // All channels tie at the same rate; Eq. (2) is rate^3.
  EXPECT_NEAR(t1.rate, std::pow(t1.channels[0].rate, 3.0), 1e-12);
}

TEST(ConflictFree, AllUsersNoSwitches) {
  // Complete graph of 5 users, zero switches: every channel is a direct
  // fiber; capacity never binds; tree = maximum spanning tree over fibers.
  net::NetworkBuilder b;
  std::vector<NodeId> users;
  for (int i = 0; i < 5; ++i) {
    users.push_back(b.add_user({100.0 * i, 25.0 * i * i}));
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    for (std::size_t j = i + 1; j < users.size(); ++j) {
      b.connect_euclidean(users[i], users[j]);
    }
  }
  const auto net = std::move(b).build({1e-3, 0.9});
  const auto tree = routing::conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  for (const auto& ch : tree.channels) {
    EXPECT_EQ(ch.switch_count(), 0u);
  }
  // Matches the capacity-oblivious optimum (no switches to constrain).
  EXPECT_DOUBLE_EQ(tree.rate,
                   routing::optimal_special_case(net, net.users()).rate);
}

TEST(ChannelFinder, OmitsUnreachableUsers) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  b.add_user({999, 999});  // isolated
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const routing::ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto channels = finder.find_best_channels(u0, cap);
  ASSERT_EQ(channels.size(), 1u);
  EXPECT_EQ(channels[0].destination(), u1);
}

TEST(PrimBased, DistinctSeedsCanDisagree) {
  // Asymmetric capacity trap: the tree found from different entry users may
  // differ; at minimum the runs are internally consistent.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({400, 0});
  const NodeId u2 = b.add_user({200, 300});
  const NodeId cheap = b.add_switch({200, 20}, 2);   // one channel only
  const NodeId costly = b.add_switch({200, 150}, 8);
  for (NodeId u : {u0, u1, u2}) {
    b.connect_euclidean(u, cheap);
    b.connect_euclidean(u, costly);
  }
  const auto net = std::move(b).build({1e-3, 0.9});
  for (std::size_t seed = 0; seed < 3; ++seed) {
    const auto tree = routing::prim_based_from(net, net.users(), seed);
    EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  }
}

TEST(SwapPolicy, OddLinkCountBalancedTreeCompletes) {
  // 5 links: the balanced partition is ragged (3+2); the policy must still
  // terminate (its intervals cover every merge it needs).
  net::NetworkBuilder b;
  NodeId prev = b.add_user({0, 0});
  std::vector<NodeId> path{prev};
  for (int i = 0; i < 4; ++i) {
    const NodeId sw = b.add_switch({500.0 * (i + 1), 0}, 2);
    b.connect(prev, sw, 500.0);
    prev = sw;
    path.push_back(sw);
  }
  const NodeId last = b.add_user({2500, 0});
  b.connect(prev, last, 500.0);
  path.push_back(last);
  const auto net = std::move(b).build({2e-4, 0.9});
  net::Channel channel;
  channel.rate = net::channel_rate(net, path);
  channel.path = path;
  const sim::SwapPolicySimulator sim(net, channel);
  support::Rng rng(5);
  const auto stats =
      sim.measure({.policy = sim::SwapPolicy::kBalanced}, 300, rng);
  EXPECT_EQ(stats.aborted_runs, 0u);
}

TEST(ProtocolMetrics, FractionHelpers) {
  sim::ProtocolMetrics m;
  EXPECT_DOUBLE_EQ(m.admitted_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(m.completed_fraction_of_admitted(), 0.0);
  m.sessions_arrived = 10;
  m.sessions_admitted = 8;
  m.sessions_completed = 6;
  EXPECT_DOUBLE_EQ(m.admitted_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(m.completed_fraction_of_admitted(), 0.75);
}

TEST(Accumulator, NegativeValues) {
  support::Accumulator acc;
  acc.add(-5.0);
  acc.add(3.0);
  acc.add(-1.0);
  EXPECT_DOUBLE_EQ(acc.min(), -5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), -1.0);
}

TEST(Channel, AccessorsOnDirectAndRelayed) {
  net::Channel direct;
  direct.path = {4, 9};
  EXPECT_EQ(direct.source(), 4u);
  EXPECT_EQ(direct.destination(), 9u);
  EXPECT_EQ(direct.link_count(), 1u);
  EXPECT_EQ(direct.switch_count(), 0u);
  net::Channel relayed;
  relayed.path = {1, 5, 6, 2};
  EXPECT_EQ(relayed.link_count(), 3u);
  EXPECT_EQ(relayed.switch_count(), 2u);
}

}  // namespace
}  // namespace muerp
