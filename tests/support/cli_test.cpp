#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace muerp::support {
namespace {

CliParser make_parser() {
  CliParser p("test tool");
  p.add_flag("users", "number of users", "10");
  p.add_flag("rate", "target rate", "0.5");
  p.add_flag("verbose", "chatty output");
  p.add_flag("name", "label", "default-name");
  return p;
}

TEST(Cli, DefaultsWhenNotSet) {
  auto p = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(p.parse(1, argv));
  EXPECT_EQ(p.get_string("name"), "default-name");
  EXPECT_EQ(p.get_int("users"), 10);
  EXPECT_EQ(p.get_double("rate"), 0.5);
  EXPECT_FALSE(p.get_bool("verbose"));
  EXPECT_FALSE(p.was_set("users"));
}

TEST(Cli, SpaceSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--users", "25", "--rate", "0.125"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_EQ(p.get_int("users"), 25);
  EXPECT_EQ(p.get_double("rate"), 0.125);
  EXPECT_TRUE(p.was_set("users"));
}

TEST(Cli, EqualsSeparatedValues) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--users=7", "--name=alpha"};
  ASSERT_TRUE(p.parse(3, argv));
  EXPECT_EQ(p.get_int("users"), 7);
  EXPECT_EQ(p.get_string("name"), "alpha");
}

TEST(Cli, BooleanSwitchForm) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--verbose", "--users", "3"};
  ASSERT_TRUE(p.parse(4, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
  EXPECT_EQ(p.get_int("users"), 3);
}

TEST(Cli, BooleanAtEnd) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--verbose"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Cli, UnknownFlagFails) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--nope", "1"};
  EXPECT_FALSE(p.parse(3, argv));
}

TEST(Cli, HelpFails) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--help"};
  EXPECT_FALSE(p.parse(2, argv));
}

TEST(Cli, PositionalArgumentsCollected) {
  auto p = make_parser();
  const char* argv[] = {"tool", "input.txt", "--users", "2", "output.txt"};
  ASSERT_TRUE(p.parse(5, argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "output.txt");
}

TEST(Cli, BadNumberIsNullopt) {
  auto p = make_parser();
  const char* argv[] = {"tool", "--users", "many", "--rate", "fast"};
  ASSERT_TRUE(p.parse(5, argv));
  EXPECT_FALSE(p.get_int("users").has_value());
  EXPECT_FALSE(p.get_double("rate").has_value());
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  auto p = make_parser();
  const std::string usage = p.usage("tool");
  EXPECT_NE(usage.find("--users"), std::string::npos);
  EXPECT_NE(usage.find("default: 10"), std::string::npos);
  EXPECT_NE(usage.find("number of users"), std::string::npos);
}

TEST(Cli, BoolTruthyForms) {
  for (const char* value : {"true", "1", "yes", "on"}) {
    auto p = make_parser();
    const std::string arg = std::string("--verbose=") + value;
    const char* argv[] = {"tool", arg.c_str()};
    ASSERT_TRUE(p.parse(2, argv));
    EXPECT_TRUE(p.get_bool("verbose")) << value;
  }
  auto p = make_parser();
  const char* argv[] = {"tool", "--verbose=false"};
  ASSERT_TRUE(p.parse(2, argv));
  EXPECT_FALSE(p.get_bool("verbose"));
}

}  // namespace
}  // namespace muerp::support
