// TimeSeriesStore and Sampler: delta encoding against synthetic snapshots,
// bounded-memory ring behavior, windowed rate / quantile / range queries
// against hand-computed references, and the background sampler's lifecycle.
// In MUERP_TELEMETRY=OFF builds the file instead pins down the stub
// contract: appends drop, queries return empty, the sampler never runs.
#include "support/telemetry/timeseries.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/telemetry/metrics.hpp"
#include "support/telemetry/sampler.hpp"

namespace muerp::support::telemetry {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ull;

TEST(MetricKindNames, AllKindsNamed) {
  EXPECT_EQ(metric_kind_name(MetricKind::kCounter), "counter");
  EXPECT_EQ(metric_kind_name(MetricKind::kGauge), "gauge");
  EXPECT_EQ(metric_kind_name(MetricKind::kHistogram), "histogram");
  EXPECT_EQ(metric_kind_name(MetricKind::kNone), "none");
}

#if MUERP_TELEMETRY_ENABLED

/// A cumulative snapshot with one counter set — what capture_process()
/// would return if only this counter had ever been touched.
Snapshot counter_snapshot(std::uint32_t id, std::uint64_t value) {
  Snapshot s;
  s.counters.resize(id + 1, 0);
  s.counters[id] = value;
  return s;
}

TEST(TimeSeriesStore, RingAndMemoryStayBounded) {
  static const Counter counter("ts/bounded");
  TimeSeriesStore store(8);
  EXPECT_EQ(store.capacity(), 8u);

  std::size_t bytes_at_2x = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    store.append(i * kSecond, counter_snapshot(counter.id(), i * 3));
    EXPECT_LE(store.size(), 8u);
    if (i == 15) bytes_at_2x = store.approx_bytes();
  }
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.samples_appended(), 100u);
  // Every sample has the same shape, so the footprint reaches its plateau
  // by the second time around the ring and never grows past it.
  EXPECT_GT(bytes_at_2x, 0u);
  EXPECT_EQ(store.approx_bytes(), bytes_at_2x);
}

TEST(TimeSeriesStore, OutOfOrderAppendsAreDropped) {
  static const Counter counter("ts/out_of_order");
  TimeSeriesStore store(4);
  store.append(5 * kSecond, counter_snapshot(counter.id(), 1));
  store.append(3 * kSecond, counter_snapshot(counter.id(), 2));  // dropped
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.samples_appended(), 1u);
  store.append(5 * kSecond, counter_snapshot(counter.id(), 2));  // equal: ok
  EXPECT_EQ(store.samples_appended(), 2u);
}

TEST(TimeSeriesStore, RateIsIncrementsOverCoveredWallTime) {
  static const Counter counter("ts/rate");
  TimeSeriesStore store(16);
  const std::uint64_t t0 = 100 * kSecond;
  store.append(t0, counter_snapshot(counter.id(), 100));  // baseline
  store.append(t0 + kSecond, counter_snapshot(counter.id(), 110));   // +10
  store.append(t0 + 2 * kSecond, counter_snapshot(counter.id(), 130));  // +20

  // Full 2 s window: 30 increments / 2 s.
  EXPECT_DOUBLE_EQ(store.rate("ts/rate", 2 * kSecond), 15.0);
  // Trailing 1 s window: only the +20 sample.
  EXPECT_DOUBLE_EQ(store.rate("ts/rate", kSecond), 20.0);
  // A window longer than history is clamped to the retained 2 s.
  EXPECT_DOUBLE_EQ(store.rate("ts/rate", 1000 * kSecond), 15.0);
  // Unknown names and non-counters answer 0.
  EXPECT_DOUBLE_EQ(store.rate("ts/definitely_not_registered", kSecond), 0.0);
}

TEST(TimeSeriesStore, BaselineSampleCarriesNoIncrements) {
  static const Counter counter("ts/baseline");
  TimeSeriesStore store(8);
  // The counter was already at 1'000'000 when sampling started; that
  // history must not appear as a rate spike in the first window.
  store.append(kSecond, counter_snapshot(counter.id(), 1'000'000));
  store.append(2 * kSecond, counter_snapshot(counter.id(), 1'000'005));
  EXPECT_DOUBLE_EQ(store.rate("ts/baseline", 10 * kSecond), 5.0);
}

TEST(TimeSeriesStore, WindowedHistogramQuantilesMatchHandComputation) {
  static const Histogram histogram("ts/hist");
  TimeSeriesStore store(16);
  const auto id = histogram.id();

  Snapshot cumulative;
  cumulative.histograms.resize(id + 1);
  store.append(100 * kSecond, cumulative);  // empty baseline

  // Observations {5, 6, 7}: all in bucket 3 = (4, 8].
  cumulative.histograms[id].count = 3;
  cumulative.histograms[id].sum = 18.0;
  cumulative.histograms[id].buckets[3] = 3;
  store.append(101 * kSecond, cumulative);

  const HistogramData window = store.delta("ts/hist", 10 * kSecond);
  EXPECT_EQ(window.count, 3u);
  EXPECT_DOUBLE_EQ(window.sum, 18.0);
  // rank = ceil(0.5 * 3) = 2, interpolated 2/3 into (4, 8].
  EXPECT_NEAR(window.quantile(0.5), 4.0 + 4.0 * (2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(window.quantile(1.0), 8.0);

  // Two observations <= 1 land much later; a short trailing window sees
  // only them — windowed quantiles, not since-process-start quantiles.
  cumulative.histograms[id].count = 5;
  cumulative.histograms[id].sum = 19.0;
  cumulative.histograms[id].buckets[0] = 2;
  store.append(120 * kSecond, cumulative);
  const HistogramData recent = store.delta("ts/hist", 5 * kSecond);
  EXPECT_EQ(recent.count, 2u);
  EXPECT_DOUBLE_EQ(recent.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(recent.quantile(1.0), 1.0);
}

TEST(TimeSeriesStore, RangeBinsCounterRatesAndGaugeLevels) {
  static const Counter counter("ts/range_counter");
  static const Gauge gauge("ts/range_gauge");
  TimeSeriesStore store(16);
  const std::uint64_t t0 = 100 * kSecond;
  const std::uint64_t cumulative[4] = {0, 5, 5, 8};
  const double levels[4] = {1.0, 2.0, 3.0, 4.0};
  for (int i = 0; i < 4; ++i) {
    Snapshot s = counter_snapshot(counter.id(), cumulative[i]);
    s.gauges.resize(gauge.id() + 1, 0.0);
    s.gauges[gauge.id()] = levels[i];
    store.append(t0 + static_cast<std::uint64_t>(i) * kSecond, s);
  }

  const RangeSeries rates =
      store.range("ts/range_counter", 4 * kSecond, kSecond);
  EXPECT_EQ(rates.kind, MetricKind::kCounter);
  ASSERT_EQ(rates.points.size(), 4u);
  // Bins end at the newest sample; values are increments per second.
  const double expected[4] = {0.0, 5.0, 0.0, 3.0};
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(rates.points[i].value, expected[i]) << "bin " << i;
    EXPECT_DOUBLE_EQ(rates.points[i].t_s, 100.0 + i) << "bin " << i;
  }

  const RangeSeries level_series =
      store.range("ts/range_gauge", 4 * kSecond, kSecond);
  EXPECT_EQ(level_series.kind, MetricKind::kGauge);
  ASSERT_EQ(level_series.points.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(level_series.points[i].value, levels[i]) << "bin " << i;
  }
}

TEST(TimeSeriesStore, RangeFillsHistogramQuantilesPerStep) {
  static const Histogram histogram("ts/range_hist");
  TimeSeriesStore store(16);
  const auto id = histogram.id();
  Snapshot cumulative;
  cumulative.histograms.resize(id + 1);
  store.append(10 * kSecond, cumulative);
  cumulative.histograms[id].count = 3;
  cumulative.histograms[id].sum = 18.0;
  cumulative.histograms[id].buckets[3] = 3;  // {5, 6, 7}
  store.append(11 * kSecond, cumulative);

  const RangeSeries series =
      store.range("ts/range_hist", 2 * kSecond, kSecond);
  EXPECT_EQ(series.kind, MetricKind::kHistogram);
  ASSERT_EQ(series.points.size(), 2u);
  const RangePoint& active = series.points.back();
  EXPECT_DOUBLE_EQ(active.value, 3.0);  // observations per second
  EXPECT_NEAR(active.p50, 4.0 + 4.0 * (2.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(active.p95, 8.0);
  EXPECT_DOUBLE_EQ(active.p99, 8.0);
}

TEST(TimeSeriesStore, RangeRejectsBadArgumentsAndUnknownMetrics) {
  static const Counter counter("ts/range_bad");
  TimeSeriesStore store(8);
  store.append(kSecond, counter_snapshot(counter.id(), 1));
  EXPECT_TRUE(store.range("ts/range_bad", kSecond, 0).points.empty());
  EXPECT_TRUE(
      store.range("ts/range_bad", kSecond, 2 * kSecond).points.empty());
  const RangeSeries unknown = store.range("ts/nope", kSecond, kSecond);
  EXPECT_EQ(unknown.kind, MetricKind::kNone);
  EXPECT_TRUE(unknown.points.empty());
}

TEST(TimeSeriesStore, MetricsListsEveryInstrumentSeen) {
  static const Counter counter("ts/listing_counter");
  static const Gauge gauge("ts/listing_gauge");
  TimeSeriesStore store(4);
  Snapshot s = counter_snapshot(counter.id(), 1);
  s.gauges.resize(gauge.id() + 1, 0.0);
  store.append(kSecond, s);

  bool saw_counter = false;
  bool saw_gauge = false;
  for (const MetricEntry& entry : store.metrics()) {
    if (entry.name == "ts/listing_counter") {
      saw_counter = true;
      EXPECT_EQ(entry.kind, MetricKind::kCounter);
    }
    if (entry.name == "ts/listing_gauge") {
      saw_gauge = true;
      EXPECT_EQ(entry.kind, MetricKind::kGauge);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(Sampler, CapturesAtIntervalAndStopsPromptly) {
  static const Counter counter("ts/sampler_counter");
  TimeSeriesStore store(64);
  Sampler::Options options;
  options.interval = std::chrono::milliseconds(5);
  Sampler sampler(store, options);
  EXPECT_FALSE(sampler.running());
  sampler.start();
  EXPECT_TRUE(sampler.running());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (store.size() < 3 && std::chrono::steady_clock::now() < deadline) {
    counter.add();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(store.size(), 3u);

  sampler.stop();
  EXPECT_FALSE(sampler.running());
  const std::uint64_t taken = sampler.samples_taken();
  EXPECT_GE(taken, 3u);
  sampler.stop();  // idempotent
  EXPECT_EQ(sampler.samples_taken(), taken);

  // Restart keeps appending to the same store.
  sampler.start();
  const auto restart_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sampler.samples_taken() == taken &&
         std::chrono::steady_clock::now() < restart_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_GT(sampler.samples_taken(), taken);
}

TEST(Sampler, LiveCountersShowUpInWindowedQueries) {
  static const Counter counter("ts/sampler_live");
  TimeSeriesStore store(128);
  Sampler::Options options;
  options.interval = std::chrono::milliseconds(5);
  Sampler sampler(store, options);
  sampler.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (store.size() < 4 && std::chrono::steady_clock::now() < deadline) {
    counter.add(10);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  sampler.stop();
  EXPECT_GT(store.rate("ts/sampler_live", 60 * kSecond), 0.0);
  const RangeSeries series =
      store.range("ts/sampler_live", 60 * kSecond, kSecond);
  EXPECT_EQ(series.kind, MetricKind::kCounter);
  EXPECT_FALSE(series.points.empty());
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(TimeSeriesOff, StoreIsInert) {
  TimeSeriesStore store(100);
  EXPECT_EQ(store.capacity(), 100u);
  store.append(kSecond, Snapshot{});
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.samples_appended(), 0u);
  EXPECT_EQ(store.approx_bytes(), 0u);
  EXPECT_DOUBLE_EQ(store.rate("x", kSecond), 0.0);
  EXPECT_EQ(store.delta("x", kSecond).count, 0u);
  const RangeSeries series = store.range("x", kSecond, kSecond);
  EXPECT_EQ(series.kind, MetricKind::kNone);
  EXPECT_TRUE(series.points.empty());
  EXPECT_TRUE(store.metrics().empty());
}

TEST(TimeSeriesOff, SamplerNeverRuns) {
  TimeSeriesStore store(10);
  Sampler::Options options;
  options.interval = std::chrono::milliseconds(1);
  Sampler sampler(store, options);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.samples_taken(), 0u);
  sampler.stop();
  EXPECT_EQ(store.size(), 0u);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
