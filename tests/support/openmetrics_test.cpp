#include "support/telemetry/export.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/table.hpp"
#include "support/telemetry/telemetry.hpp"

namespace muerp::support::telemetry {
namespace {

/// Splits an exposition page into lines (no trailing newline per line).
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Value of the unique sample line starting with "<series> " — NaN when the
/// series is absent (so EXPECT_* fails loudly rather than crashing).
double sample_value(const std::string& text, const std::string& series) {
  for (const std::string& line : lines_of(text)) {
    if (line.size() > series.size() && line.compare(0, series.size(), series) == 0 &&
        line[series.size()] == ' ') {
      return std::stod(line.substr(series.size() + 1));
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

TEST(HistogramQuantile, EmptyIsZero) {
  const HistogramData h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramQuantile, InterpolatesInsideOneBucket) {
  // All 100 observations land in the bucket covering (64, 128].
  HistogramData h;
  const std::size_t bucket = histogram_bucket_index(100.0);
  ASSERT_GT(bucket, 0u);
  h.count = 100;
  h.buckets[bucket] = 100;
  const double lo = histogram_bucket_upper_bound(bucket - 1);
  const double hi = histogram_bucket_upper_bound(bucket);
  EXPECT_DOUBLE_EQ(lo, 64.0);
  EXPECT_DOUBLE_EQ(hi, 128.0);
  EXPECT_NEAR(h.quantile(0.5), lo + 0.5 * (hi - lo), 1e-9);
  EXPECT_GE(h.quantile(0.0), lo);
  EXPECT_LE(h.quantile(1.0), hi);
}

TEST(HistogramQuantile, MonotoneAcrossBuckets) {
  HistogramData h;
  for (const double v : {0.5, 2.0, 3.0, 10.0, 100.0, 5000.0}) {
    h.buckets[histogram_bucket_index(v)] += 1;
    h.sum += v;
    ++h.count;
  }
  double prev = -1.0;
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double value = h.quantile(q);
    EXPECT_GE(value, prev) << "q=" << q;
    prev = value;
  }
}

TEST(HistogramQuantile, ClampsProbability) {
  HistogramData h;
  h.count = 10;
  h.buckets[histogram_bucket_index(3.0)] = 10;
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(HistogramQuantile, OverflowBucketReportsLowerBound) {
  HistogramData h;
  h.count = 5;
  h.buckets[kHistogramBuckets - 1] = 5;
  EXPECT_DOUBLE_EQ(h.quantile(0.99),
                   histogram_bucket_upper_bound(kHistogramBuckets - 2));
}

TEST(HistogramQuantile, BatchMatchesSingle) {
  HistogramData h;
  for (const double v : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    h.buckets[histogram_bucket_index(v)] += 1;
    ++h.count;
  }
  const std::array<double, 3> probs{0.5, 0.95, 0.99};
  const std::vector<double> batch = quantiles(h, probs);
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], h.quantile(probs[i]));
  }
}

TEST(HistogramBuckets, ValueFallsUnderItsUpperBound) {
  for (const double v : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 1000.0, 1e12}) {
    const std::size_t b = histogram_bucket_index(v);
    EXPECT_LE(v, histogram_bucket_upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, histogram_bucket_upper_bound(b - 1)) << v;
    }
  }
}

TEST(OpenMetrics, EmptySnapshotIsStillAValidPage) {
  const std::string text = to_openmetrics(Snapshot{});
  const auto lines = lines_of(text);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");
}

#if MUERP_TELEMETRY_ENABLED

TEST(OpenMetrics, CounterGaugeRoundTrip) {
  const Counter hits("omtest/hits");
  hits.add(7);
  const Gauge level("omtest/level-pct");  // '-' must sanitize to '_'
  level.set(2.5);
  const std::string text = to_openmetrics(capture_process());

  EXPECT_NE(text.find("# TYPE muerp_omtest_hits_total counter"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(sample_value(text, "muerp_omtest_hits_total"), 7.0);
  EXPECT_NE(text.find("# TYPE muerp_omtest_level_pct gauge"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(sample_value(text, "muerp_omtest_level_pct"), 2.5);
  // Raw instrument names (with '/', '-') never appear.
  EXPECT_EQ(text.find("omtest/hits"), std::string::npos);
  EXPECT_EQ(text.find("level-pct"), std::string::npos);
}

TEST(OpenMetrics, HistogramFamilyIsCumulativeAndQuantiled) {
  const Histogram lat("omtest/lat_ms");
  lat.observe(0.5);
  lat.observe(3.0);
  lat.observe(300.0);
  const std::string text = to_openmetrics(capture_process());

  EXPECT_NE(text.find("# TYPE muerp_omtest_lat_ms histogram"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(sample_value(text, "muerp_omtest_lat_ms_count"), 3.0);
  EXPECT_NEAR(sample_value(text, "muerp_omtest_lat_ms_sum"), 303.5, 1e-9);
  // Bucket series are cumulative and end at +Inf == count.
  std::uint64_t previous = 0;
  bool saw_inf = false;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("muerp_omtest_lat_ms_bucket{le=", 0) != 0) continue;
    const std::size_t close = line.find("} ");
    ASSERT_NE(close, std::string::npos);
    const auto cumulative =
        static_cast<std::uint64_t>(std::stoull(line.substr(close + 2)));
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    if (line.find("le=\"+Inf\"") != std::string::npos) {
      saw_inf = true;
      EXPECT_EQ(cumulative, 3u);
    }
  }
  EXPECT_TRUE(saw_inf);
  // Companion quantile gauges carry the interpolated estimates.
  EXPECT_NE(text.find("# TYPE muerp_omtest_lat_ms_quantile gauge"),
            std::string::npos);
  const double p50 = sample_value(text, "muerp_omtest_lat_ms_quantile{q=\"0.5\"}");
  const double p99 = sample_value(text, "muerp_omtest_lat_ms_quantile{q=\"0.99\"}");
  EXPECT_FALSE(std::isnan(p50));
  EXPECT_FALSE(std::isnan(p99));
  EXPECT_LE(p50, p99);
}

TEST(OpenMetrics, SpanLabelValuesAreEscaped) {
  {
    const ScopedSpan span(intern_span("omtest \"quoted\"\\slash\nline"));
  }
  const std::string text = to_openmetrics(capture_process());
  // Backslash, quote and newline must appear escaped per the exposition
  // format inside the span="..." label value.
  EXPECT_NE(
      text.find(
          "muerp_span_calls_total{span=\"omtest \\\"quoted\\\"\\\\slash\\nline\"}"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE muerp_span_self_seconds gauge"),
            std::string::npos);
}

TEST(OpenMetrics, JsonSnapshotRoundTripsThroughParser) {
  const Counter hits("omtest/json_hits");
  hits.add(3);
  const Histogram lat("omtest/json_lat");
  lat.observe(10.0);
  lat.observe(20.0);
  const Snapshot snapshot = capture_process();
  const auto doc = json::parse(to_json(snapshot));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["counters"]["omtest/json_hits"].number_value,
                   3.0);
  const json::Value& hist = doc.value["histograms"]["omtest/json_lat"];
  ASSERT_TRUE(hist.is_object());
  EXPECT_DOUBLE_EQ(hist["count"].number_value, 2.0);
  EXPECT_DOUBLE_EQ(hist["sum"].number_value, 30.0);
  EXPECT_TRUE(hist["p50"].is_number());
  EXPECT_TRUE(hist["p95"].is_number());
  EXPECT_TRUE(hist["p99"].is_number());
  EXPECT_LE(hist["p50"].number_value, hist["p99"].number_value);
  EXPECT_TRUE(hist["buckets"].is_array());
}

TEST(OpenMetrics, HistogramsTableListsQuantiles) {
  const Histogram lat("omtest/table_lat");
  lat.observe(5.0);
  const std::string csv =
      histograms_table(capture_process()).to_csv();
  EXPECT_NE(csv.find("omtest/table_lat"), std::string::npos);
  EXPECT_NE(csv.find("p50"), std::string::npos);
  EXPECT_NE(csv.find("p99"), std::string::npos);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
