#include "support/json.hpp"

#include <gtest/gtest.h>

namespace muerp::support::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").value.is_null());
  EXPECT_TRUE(parse("true").value.bool_value);
  EXPECT_FALSE(parse("false").value.bool_value);
  EXPECT_DOUBLE_EQ(parse("42").value.number_value, 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25e2").value.number_value, -325.0);
  EXPECT_EQ(parse("\"hi\"").value.string_value, "hi");
}

TEST(JsonParse, NumberPrecisionSurvives) {
  const auto r = parse("1.7976931348623157e308");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value.number_value, 1.7976931348623157e308);
}

TEST(JsonParse, NestedContainers) {
  const auto r = parse(R"({"a": [1, {"b": "c"}, null], "d": {"e": true}})");
  ASSERT_TRUE(r.ok()) << r.error;
  const Value& v = r.value;
  ASSERT_TRUE(v.is_object());
  ASSERT_TRUE(v["a"].is_array());
  EXPECT_EQ(v["a"].elements.size(), 3u);
  EXPECT_DOUBLE_EQ(v["a"][0].number_value, 1.0);
  EXPECT_EQ(v["a"][1]["b"].string_value, "c");
  EXPECT_TRUE(v["a"][2].is_null());
  EXPECT_TRUE(v["d"]["e"].bool_value);
}

TEST(JsonParse, MemberOrderPreserved) {
  const auto r = parse(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value.members.size(), 3u);
  EXPECT_EQ(r.value.members[0].first, "z");
  EXPECT_EQ(r.value.members[1].first, "a");
  EXPECT_EQ(r.value.members[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  const auto r = parse(R"("q\" b\\ s\/ \b \f \n \r \t uA bmp€")");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.string_value, "q\" b\\ s/ \b \f \n \r \t uA bmp\xe2\x82\xac");
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(parse("").ok());
  EXPECT_FALSE(parse("{").ok());
  EXPECT_FALSE(parse("[1,]").ok());
  EXPECT_FALSE(parse("{\"a\" 1}").ok());
  EXPECT_FALSE(parse("\"unterminated").ok());
  EXPECT_FALSE(parse("\"bad \\x escape\"").ok());
  EXPECT_FALSE(parse("nul").ok());
  EXPECT_FALSE(parse("\"raw control \x01\"").ok());
}

TEST(JsonParse, RejectsTrailingGarbage) {
  const auto r = parse("{} extra");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error.find("offset"), std::string::npos);
}

TEST(JsonParse, RejectsSurrogateEscapes) {
  EXPECT_FALSE(parse(R"("\uD83D\uDE00")").ok());
  EXPECT_FALSE(parse(R"("\uDC00")").ok());
}

TEST(JsonParse, RawUtf8PassesThrough) {
  const auto r = parse("\"caf\xc3\xa9\"");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value.string_value, "caf\xc3\xa9");
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto r = parse("  \n\t{ \"a\" :\n[ 1 , 2 ]\t} \n ");
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(r.value["a"].elements.size(), 2u);
}

TEST(JsonValue, MissesReturnSharedNull) {
  const auto r = parse(R"({"a": 1})");
  ASSERT_TRUE(r.ok());
  // Chained lookups through absent keys/indices never crash.
  const Value& miss = r.value["nope"]["deeper"][7]["more"];
  EXPECT_TRUE(miss.is_null());
  EXPECT_EQ(r.value.find("nope"), nullptr);
  EXPECT_NE(r.value.find("a"), nullptr);
  // Non-object lookup is also a safe miss.
  EXPECT_TRUE(r.value["a"]["not_an_object"].is_null());
}

}  // namespace
}  // namespace muerp::support::json
