#include "support/telemetry/alerts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/timeseries.hpp"

namespace muerp::support::telemetry {
namespace {

AlertRule gauge_rule(std::string name, double threshold) {
  AlertRule rule;
  rule.name = std::move(name);
  rule.kind = AlertKind::kGauge;
  rule.metric = "alerts_test/depth";
  rule.window_ns = 10'000'000'000ull;
  rule.op = AlertOp::kAbove;
  rule.threshold = threshold;
  rule.for_count = 1;
  return rule;
}

TEST(Alerts, KindAndOpNamesRoundTrip) {
  for (const AlertKind kind :
       {AlertKind::kCounterRate, AlertKind::kGauge,
        AlertKind::kHistogramQuantile, AlertKind::kRatio}) {
    AlertKind parsed;
    ASSERT_TRUE(parse_alert_kind(alert_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  for (const AlertOp op : {AlertOp::kAbove, AlertOp::kBelow}) {
    AlertOp parsed;
    ASSERT_TRUE(parse_alert_op(alert_op_name(op), &parsed));
    EXPECT_EQ(parsed, op);
  }
  AlertKind kind;
  EXPECT_FALSE(parse_alert_kind("histogram", &kind));
  AlertOp op;
  EXPECT_FALSE(parse_alert_op("equal", &op));
}

TEST(Alerts, ValidateRejectsMalformedRules) {
  std::string error;
  AlertRule rule = gauge_rule("ok", 1.0);
  EXPECT_TRUE(validate_alert_rule(rule, &error)) << error;

  rule.name.clear();
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule name must be non-empty");

  rule = gauge_rule("r", 1.0);
  rule.metric.clear();
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule metric must be non-empty");

  rule = gauge_rule("r", 1.0);
  rule.window_ns = 0;
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule window must be > 0");

  rule = gauge_rule("r", 1.0);
  rule.for_count = 0;
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule for_count must be >= 1");

  rule = gauge_rule("r", std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule threshold must be a number");

  rule = gauge_rule("r", 1.0);
  rule.kind = AlertKind::kRatio;
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "ratio rules need a denominator counter");

  rule = gauge_rule("r", 1.0);
  rule.kind = AlertKind::kHistogramQuantile;
  rule.quantile = 1.5;
  EXPECT_FALSE(validate_alert_rule(rule, &error));
  EXPECT_EQ(error, "rule quantile must be in [0, 1]");

  // A null error sink must not crash.
  rule.quantile = -0.1;
  EXPECT_FALSE(validate_alert_rule(rule, nullptr));
}

TEST(Alerts, JsonDocumentParsesAndCountsFiringRules) {
  std::vector<AlertStatus> statuses(2);
  statuses[0].rule.name = "rejection-ratio";
  statuses[0].rule.kind = AlertKind::kRatio;
  statuses[0].rule.metric = "session/rejected";
  statuses[0].rule.denominator = "session/arrived";
  statuses[0].rule.threshold = 0.5;
  statuses[0].rule.for_count = 3;
  statuses[0].firing = true;
  statuses[0].value = 0.75;
  statuses[0].breached = 3;
  statuses[1].rule.name = "slot-p99";
  statuses[1].rule.kind = AlertKind::kHistogramQuantile;
  statuses[1].rule.metric = "muerpd/slot_us";
  statuses[1].rule.quantile = 0.99;
  statuses[1].rule.op = AlertOp::kBelow;

  const auto doc = json::parse(alerts_json(statuses));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["firing"].number_value, 1.0);
  const auto& rules = doc.value["rules"].elements;
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0]["name"].string_value, "rejection-ratio");
  EXPECT_EQ(rules[0]["kind"].string_value, "ratio");
  EXPECT_EQ(rules[0]["denominator"].string_value, "session/arrived");
  EXPECT_DOUBLE_EQ(rules[0]["window_s"].number_value, 60.0);
  EXPECT_TRUE(rules[0]["firing"].bool_value);
  EXPECT_DOUBLE_EQ(rules[0]["value"].number_value, 0.75);
  EXPECT_DOUBLE_EQ(rules[0]["breached"].number_value, 3.0);
  EXPECT_EQ(rules[1]["kind"].string_value, "histogram-quantile");
  EXPECT_DOUBLE_EQ(rules[1]["quantile"].number_value, 0.99);
  EXPECT_EQ(rules[1]["op"].string_value, "below");
  EXPECT_FALSE(rules[1]["firing"].bool_value);

  const auto empty = json::parse(alerts_json({}));
  ASSERT_TRUE(empty.ok()) << empty.error;
  EXPECT_DOUBLE_EQ(empty.value["firing"].number_value, 0.0);
  EXPECT_TRUE(empty.value["rules"].elements.empty());
}

#if MUERP_TELEMETRY_ENABLED

constexpr std::uint64_t kSecond = 1'000'000'000ull;

const Counter& hits_counter() {
  static const Counter counter("alerts_test/hits");
  return counter;
}

const Counter& total_counter() {
  static const Counter counter("alerts_test/total");
  return counter;
}

const Gauge& depth_gauge() {
  static const Gauge gauge("alerts_test/depth");
  return gauge;
}

// A cumulative snapshot carrying the test's two counters and one gauge; the
// store delta-encodes consecutive appends itself.
Snapshot snapshot_at(std::uint64_t hits, std::uint64_t total, double depth) {
  Snapshot snapshot;
  const std::uint32_t max_counter_id =
      std::max(hits_counter().id(), total_counter().id());
  snapshot.counters.resize(max_counter_id + 1, 0);
  snapshot.counters[hits_counter().id()] = hits;
  snapshot.counters[total_counter().id()] = total;
  snapshot.gauges.resize(depth_gauge().id() + 1, 0.0);
  snapshot.gauges[depth_gauge().id()] = depth;
  return snapshot;
}

TEST(Alerts, CounterRateRuleFiresAfterForCountAndResolves) {
  TimeSeriesStore store(64);
  AlertRules alerts(store);
  AlertRule rule;
  rule.name = "hit-rate";
  rule.kind = AlertKind::kCounterRate;
  rule.metric = "alerts_test/hits";
  rule.window_ns = 2 * kSecond;
  rule.op = AlertOp::kAbove;
  rule.threshold = 5.0;
  rule.for_count = 3;
  std::string error;
  ASSERT_TRUE(alerts.upsert(rule, &error)) << error;
  ASSERT_EQ(alerts.size(), 1u);

  store.append(1 * kSecond, snapshot_at(0, 0, 0.0));  // delta baseline
  std::uint64_t hits = 0;
  for (std::uint64_t t = 2; t <= 4; ++t) {
    hits += 10;  // 10 increments/s, well above the 5/s threshold
    store.append(t * kSecond, snapshot_at(hits, 0, 0.0));
    alerts.evaluate(t * kSecond);
    const std::vector<AlertStatus> statuses = alerts.status();
    ASSERT_EQ(statuses.size(), 1u);
    EXPECT_GT(statuses[0].value, 5.0);
    EXPECT_EQ(statuses[0].breached, static_cast<std::uint32_t>(t - 1));
    // Burn-rate: breaching once or twice must not fire yet.
    EXPECT_EQ(statuses[0].firing, t == 4);
  }
  EXPECT_EQ(alerts.firing(), 1u);
  EXPECT_EQ(alerts.status()[0].since_ns, 4 * kSecond);
  EXPECT_EQ(alerts.evaluations(), 3u);

  // Two flat seconds push the window past the burst: resolves immediately.
  store.append(5 * kSecond, snapshot_at(hits, 0, 0.0));
  store.append(6 * kSecond, snapshot_at(hits, 0, 0.0));
  alerts.evaluate(6 * kSecond);
  const std::vector<AlertStatus> statuses = alerts.status();
  EXPECT_FALSE(statuses[0].firing);
  EXPECT_EQ(statuses[0].breached, 0u);
  EXPECT_EQ(statuses[0].since_ns, 0u);
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.0);
  EXPECT_EQ(alerts.firing(), 0u);
}

TEST(Alerts, GaugeRuleReadsTheLatestSampledLevel) {
  TimeSeriesStore store(64);
  AlertRules alerts(store);
  ASSERT_TRUE(alerts.upsert(gauge_rule("depth", 3.0)));

  store.append(1 * kSecond, snapshot_at(0, 0, 1.0));
  alerts.evaluate(1 * kSecond);
  EXPECT_EQ(alerts.firing(), 0u);

  store.append(2 * kSecond, snapshot_at(0, 0, 7.0));
  alerts.evaluate(2 * kSecond);
  ASSERT_EQ(alerts.firing(), 1u);  // for_count 1: one breach pages
  EXPECT_DOUBLE_EQ(alerts.status()[0].value, 7.0);
}

TEST(Alerts, RatioRuleIsZeroWithoutDenominatorTraffic) {
  TimeSeriesStore store(64);
  AlertRules alerts(store);
  AlertRule ratio;
  ratio.name = "hit-ratio";
  ratio.kind = AlertKind::kRatio;
  ratio.metric = "alerts_test/hits";
  ratio.denominator = "alerts_test/never_registered";
  ratio.window_ns = 10 * kSecond;
  ratio.threshold = 0.1;
  ASSERT_TRUE(alerts.upsert(ratio));
  ratio.name = "hit-share";
  ratio.denominator = "alerts_test/total";
  ratio.threshold = 0.4;
  ASSERT_TRUE(alerts.upsert(ratio));

  store.append(1 * kSecond, snapshot_at(0, 0, 0.0));
  store.append(2 * kSecond, snapshot_at(5, 10, 0.0));
  alerts.evaluate(2 * kSecond);
  const std::vector<AlertStatus> statuses = alerts.status();
  ASSERT_EQ(statuses.size(), 2u);
  // Unknown denominator: 0 by definition, never a division by zero.
  EXPECT_DOUBLE_EQ(statuses[0].value, 0.0);
  EXPECT_FALSE(statuses[0].firing);
  // 5 hits out of 10 totals: ratio 0.5 breaches the 0.4 threshold.
  EXPECT_DOUBLE_EQ(statuses[1].value, 0.5);
  EXPECT_TRUE(statuses[1].firing);
}

TEST(Alerts, UpsertReplacesByNameAndResetsState) {
  TimeSeriesStore store(64);
  AlertRules alerts(store);
  ASSERT_TRUE(alerts.upsert(gauge_rule("depth", 3.0)));
  store.append(1 * kSecond, snapshot_at(0, 0, 0.0));
  store.append(2 * kSecond, snapshot_at(0, 0, 9.0));
  alerts.evaluate(2 * kSecond);
  ASSERT_EQ(alerts.firing(), 1u);

  // Raising the threshold through upsert starts the rule over.
  ASSERT_TRUE(alerts.upsert(gauge_rule("depth", 100.0)));
  EXPECT_EQ(alerts.size(), 1u);
  const std::vector<AlertStatus> statuses = alerts.status();
  EXPECT_FALSE(statuses[0].firing);
  EXPECT_EQ(statuses[0].breached, 0u);
  EXPECT_EQ(statuses[0].evaluations, 0u);
  EXPECT_DOUBLE_EQ(statuses[0].rule.threshold, 100.0);

  EXPECT_FALSE(alerts.remove("no-such-rule"));
  EXPECT_TRUE(alerts.remove("depth"));
  EXPECT_EQ(alerts.size(), 0u);
  EXPECT_FALSE(alerts.remove("depth"));
}

TEST(Alerts, RuleTableIsBounded) {
  TimeSeriesStore store(8);
  AlertRules alerts(store);
  for (std::size_t i = 0; i < AlertRules::kMaxRules; ++i) {
    ASSERT_TRUE(alerts.upsert(gauge_rule("rule-" + std::to_string(i), 1.0)));
  }
  EXPECT_EQ(alerts.size(), AlertRules::kMaxRules);
  std::string error;
  EXPECT_FALSE(alerts.upsert(gauge_rule("one-too-many", 1.0), &error));
  EXPECT_NE(error.find("full"), std::string::npos);
  // Replacing an existing rule still works at capacity.
  EXPECT_TRUE(alerts.upsert(gauge_rule("rule-0", 2.0)));
  EXPECT_EQ(alerts.size(), AlertRules::kMaxRules);
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(Alerts, StubValidatesButStoresNothing) {
  TimeSeriesStore store(8);
  AlertRules alerts(store);
  std::string error;
  EXPECT_TRUE(alerts.upsert(gauge_rule("depth", 3.0), &error)) << error;
  EXPECT_EQ(alerts.size(), 0u);
  EXPECT_TRUE(alerts.status().empty());
  alerts.evaluate(1);
  EXPECT_EQ(alerts.firing(), 0u);
  EXPECT_EQ(alerts.evaluations(), 0u);
  EXPECT_FALSE(alerts.remove("depth"));

  // Malformed rules are still client errors in an OFF build.
  AlertRule bad = gauge_rule("", 1.0);
  EXPECT_FALSE(alerts.upsert(bad, &error));
  EXPECT_EQ(error, "rule name must be non-empty");

  const auto doc = json::parse(alerts_json(alerts.status()));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["firing"].number_value, 0.0);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
