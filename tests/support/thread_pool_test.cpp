// ThreadPool tests: deterministic index striding, exception rethrow, worker
// clamping, re-entrant inline execution, and the runner-level guarantee that
// a parallel scenario run matches the sequential one exactly at any thread
// count.
#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"

namespace muerp {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  for (std::size_t count : {0u, 1u, 3u, 17u, 128u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.parallel_for(count, 0,
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPool, ClampsWorkersToHardwareConcurrency) {
  const unsigned cores = std::thread::hardware_concurrency();
  support::ThreadPool pool(10000);
  EXPECT_GE(pool.worker_count(), 1u);
  if (cores > 0) {
    EXPECT_LE(pool.worker_count(), cores)
        << "the seed oversubscribed; the pool must not";
  }
}

TEST(ThreadPool, MaxWorkersLimitsStriding) {
  // With max_workers = 1 the single participating worker must walk the
  // indices in order, making the observed sequence deterministic.
  support::ThreadPool pool(4);
  std::vector<std::size_t> order;
  pool.parallel_for(9, 1, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(9);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  support::ThreadPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64, 0,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 5) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The pool must stay usable after a failed job.
  std::atomic<int> after{0};
  pool.parallel_for(8, 0, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  support::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, 0, [&](std::size_t) {
    // A body calling back into the pool must not deadlock; the nested loop
    // runs inline on the worker.
    pool.parallel_for(3, 0, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 12);
}

TEST(RunScenarioParallel, BitIdenticalAcrossThreadCounts) {
  experiment::Scenario scenario;
  scenario.switch_count = 12;
  scenario.user_count = 4;
  scenario.repetitions = 6;
  const std::array<experiment::Algorithm, 2> algorithms = {
      experiment::Algorithm::kAlg3Conflict, experiment::Algorithm::kAlg4Prim};

  const experiment::ScenarioResult sequential =
      experiment::run_scenario(scenario, algorithms);
  for (unsigned threads : {1u, 2u, 5u}) {
    const experiment::ScenarioResult parallel =
        experiment::run_scenario_parallel(scenario, algorithms, {}, threads);
    ASSERT_EQ(parallel.rates.size(), sequential.rates.size());
    for (std::size_t a = 0; a < sequential.rates.size(); ++a) {
      ASSERT_EQ(parallel.rates[a].size(), sequential.rates[a].size());
      for (std::size_t r = 0; r < sequential.rates[a].size(); ++r) {
        EXPECT_EQ(parallel.rates[a][r], sequential.rates[a][r])
            << "threads " << threads << " algorithm " << a << " rep " << r;
      }
    }
  }
}

TEST(RunScenarioParallel, RethrowsRepetitionException) {
  EXPECT_THROW(experiment::detail::parallel_for_reps(
                   10, 3,
                   [](std::size_t rep) {
                     if (rep == 4) throw std::invalid_argument("rep failed");
                   }),
               std::invalid_argument);
}

}  // namespace
}  // namespace muerp
