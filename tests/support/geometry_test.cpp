#include "support/geometry.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace muerp::support {
namespace {

TEST(Geometry, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance({-3, 0}, {3, 0}), 6.0);
}

TEST(Geometry, DistanceIsSymmetric) {
  const Point2D a{1.5, -2.25};
  const Point2D b{-7.0, 9.5};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Geometry, DistanceSquaredConsistent) {
  const Point2D a{2, 3};
  const Point2D b{5, 7};
  EXPECT_DOUBLE_EQ(distance_squared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(std::sqrt(distance_squared(a, b)), distance(a, b));
}

TEST(Geometry, TriangleInequality) {
  Rng rng(5);
  const Region region{100.0, 100.0};
  for (int i = 0; i < 200; ++i) {
    const auto pts = uniform_points(region, 3, rng);
    EXPECT_LE(distance(pts[0], pts[2]),
              distance(pts[0], pts[1]) + distance(pts[1], pts[2]) + 1e-12);
  }
}

TEST(Geometry, RegionDiagonal) {
  const Region region{3.0, 4.0};
  EXPECT_DOUBLE_EQ(region.diagonal(), 5.0);
}

TEST(Geometry, RegionContains) {
  const Region region{10.0, 20.0};
  EXPECT_TRUE(region.contains({0.0, 0.0}));
  EXPECT_TRUE(region.contains({10.0, 20.0}));
  EXPECT_TRUE(region.contains({5.0, 5.0}));
  EXPECT_FALSE(region.contains({-0.1, 5.0}));
  EXPECT_FALSE(region.contains({5.0, 20.1}));
}

TEST(Geometry, UniformPointsStayInRegion) {
  Rng rng(6);
  const Region region{10000.0, 10000.0};  // paper's deployment area
  for (const auto& p : uniform_points(region, 5000, rng)) {
    ASSERT_TRUE(region.contains(p));
  }
}

TEST(Geometry, UniformPointsCount) {
  Rng rng(7);
  EXPECT_EQ(uniform_points({1, 1}, 0, rng).size(), 0u);
  EXPECT_EQ(uniform_points({1, 1}, 17, rng).size(), 17u);
}

TEST(Geometry, UniformPointsMeanIsCentre) {
  Rng rng(8);
  const Region region{100.0, 50.0};
  double sx = 0.0;
  double sy = 0.0;
  constexpr int kN = 20000;
  for (const auto& p : uniform_points(region, kN, rng)) {
    sx += p.x;
    sy += p.y;
  }
  EXPECT_NEAR(sx / kN, 50.0, 1.0);
  EXPECT_NEAR(sy / kN, 25.0, 0.5);
}

TEST(Geometry, RingPointsEquidistantFromCentre) {
  const Region region{100.0, 100.0};
  const auto pts = ring_points(region, 12, 30.0);
  ASSERT_EQ(pts.size(), 12u);
  const Point2D centre{50.0, 50.0};
  for (const auto& p : pts) {
    EXPECT_NEAR(distance(p, centre), 30.0, 1e-9);
  }
}

TEST(Geometry, RingPointsNeighboursEquallySpaced) {
  const Region region{100.0, 100.0};
  const auto pts = ring_points(region, 8, 10.0);
  const double d0 = distance(pts[0], pts[1]);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_NEAR(distance(pts[i], pts[(i + 1) % pts.size()]), d0, 1e-9);
  }
}

}  // namespace
}  // namespace muerp::support
