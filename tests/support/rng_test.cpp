#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace muerp::support {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);  // collisions of 64-bit values are ~impossible
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 12.25);
    ASSERT_GE(u, -3.5);
    ASSERT_LT(u, 12.25);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(10);
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(12);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 0.05 * kDraws / kBuckets);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(15);
  constexpr int kDraws = 100000;
  int hits = 0;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(16);
  constexpr int kN = 100000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(18);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(Rng, SampleAllIndices) {
  Rng rng(20);
  auto sample = rng.sample_indices(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleZero) {
  Rng rng(21);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(Rng, SplitIsDeterministic) {
  const Rng parent(99);
  Rng c1 = parent.split(3);
  Rng c2 = parent.split(3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(c1.next(), c2.next());
}

TEST(Rng, SplitStreamsDiffer) {
  const Rng parent(99);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next() == c2.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitDoesNotAdvanceParent) {
  Rng parent(123);
  Rng reference(123);
  (void)parent.split(7);
  EXPECT_EQ(parent.next(), reference.next());
}

TEST(Splitmix64, KnownSequenceIsStable) {
  // Pin the seeding primitive so serialized experiment seeds stay valid.
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(second, 0x6E789E6AA1B965F4ULL);
}

class RngBucketUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBucketUniformity, ChiSquareWithinBound) {
  const std::uint64_t buckets = GetParam();
  Rng rng(buckets * 7919 + 1);
  constexpr int kDraws = 50000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_index(buckets)];
  const double expected = static_cast<double>(kDraws) / buckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // Very loose bound: mean of chi2 is (buckets-1); flag only gross failures.
  EXPECT_LT(chi2, 3.0 * static_cast<double>(buckets - 1) + 30.0);
}

INSTANTIATE_TEST_SUITE_P(Buckets, RngBucketUniformity,
                         ::testing::Values(2, 3, 5, 10, 64, 1000));

}  // namespace
}  // namespace muerp::support
