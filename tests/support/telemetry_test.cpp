// Telemetry layer: shard capture/merge algebra, histogram bucket bounds,
// span nesting/self-time accounting, trace-event recording, and cross-thread
// aggregation (live shards + retired folds). The whole file also compiles in
// MUERP_TELEMETRY=OFF builds, where it instead pins down the no-op contract:
// macros expand to nothing and captures return empty snapshots.
#include "support/telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "support/table.hpp"
#include "support/telemetry/export.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"

namespace muerp::support::telemetry {
namespace {

std::uint64_t counter_at(const Snapshot& snapshot, std::uint32_t id) {
  return id < snapshot.counters.size() ? snapshot.counters[id] : 0;
}

/// Burns a little real time so span durations are strictly positive even on
/// coarse clocks.
[[maybe_unused]] void spin(std::uint64_t iterations = 20000) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iterations; ++i) acc += i * 2654435761u;
  volatile std::uint64_t sink = acc;  // keep the loop observable
  static_cast<void>(sink);
}

TEST(HistogramBuckets, IndexAndBoundsAgree) {
  // Every bucket's inclusive upper bound maps back into that bucket, and
  // nudging past it lands in the next one.
  for (std::size_t b = 0; b + 1 < kHistogramBuckets; ++b) {
    const double upper = histogram_bucket_upper_bound(b);
    EXPECT_EQ(histogram_bucket_index(upper), b) << "bucket " << b;
    EXPECT_EQ(histogram_bucket_index(std::nextafter(
                  upper, std::numeric_limits<double>::infinity())),
              b + 1)
        << "bucket " << b;
  }
  EXPECT_TRUE(std::isinf(
      histogram_bucket_upper_bound(kHistogramBuckets - 1)));

  // Degenerate inputs all land somewhere valid.
  EXPECT_EQ(histogram_bucket_index(0.0), 0u);
  EXPECT_EQ(histogram_bucket_index(-5.0), 0u);
  EXPECT_EQ(histogram_bucket_index(std::nan("")), 0u);
  EXPECT_EQ(histogram_bucket_index(std::numeric_limits<double>::infinity()),
            kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket_index(1e300), kHistogramBuckets - 1);
}

TEST(HistogramQuantiles, EmptyHistogramAnswersZero) {
  const HistogramData empty{};
  EXPECT_DOUBLE_EQ(empty.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.quantile(1.0), 0.0);
}

TEST(HistogramQuantiles, SingleBucketInterpolatesLinearly) {
  // Four observations, all in bucket 3 = (4, 8].
  HistogramData h{};
  h.count = 4;
  h.buckets[3] = 4;
  // rank = max(1, ceil(q * 4)) lands 1/4, 2/4, 4/4 into the bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
  // q is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramQuantiles, LowestBucketInterpolatesFromZero) {
  HistogramData h{};
  h.count = 2;
  h.buckets[0] = 2;  // (0, 1]
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramQuantiles, OverflowBucketAnswersItsLowerBound) {
  // Mass in the unbounded last bucket cannot be interpolated; the estimate
  // degrades to the bucket's finite lower bound.
  HistogramData h{};
  h.count = 3;
  h.buckets[kHistogramBuckets - 1] = 3;
  const double lower = histogram_bucket_upper_bound(kHistogramBuckets - 2);
  EXPECT_TRUE(std::isfinite(lower));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), lower);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), lower);
}

TEST(HistogramQuantiles, RankWalksCumulativeBuckets) {
  HistogramData h{};
  h.count = 4;
  h.buckets[0] = 1;  // (0, 1]
  h.buckets[2] = 3;  // (2, 4]
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 1.0);  // rank 1: all of bucket 0
  // rank 2 = first observation of bucket 2: 1/3 into (2, 4].
  EXPECT_NEAR(h.quantile(0.5), 2.0 + 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(SnapshotAlgebra, MergeIsAssociativeAndTreatsMissingAsZero) {
  Snapshot a;
  a.counters = {1, 2};
  a.spans = {{1, 100, 60}};
  Snapshot b;
  b.counters = {10, 0, 5};
  b.gauges = {3.5};
  Snapshot c;
  c.counters = {0, 7};
  c.gauges = {-1.0};
  c.histograms.emplace_back();
  c.histograms[0].count = 2;
  c.histograms[0].sum = 9.0;
  c.histograms[0].buckets[3] = 2;

  Snapshot left = a;
  left.merge(b);
  left.merge(c);
  Snapshot bc = b;
  bc.merge(c);
  Snapshot right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);

  EXPECT_EQ(left.counters, (std::vector<std::uint64_t>{11, 9, 5}));
  EXPECT_EQ(left.gauges, (std::vector<double>{-1.0}));  // last writer wins
  EXPECT_EQ(left.histograms[0].count, 2u);
  EXPECT_EQ(left.spans[0].total_ns, 100u);
}

TEST(SnapshotAlgebra, SubtractSaturatesAndInvertsMerge) {
  Snapshot before;
  before.counters = {5, 100};
  Snapshot after;
  after.counters = {7, 40, 3};  // 40 < 100: stale baseline must not wrap
  after.subtract(before);
  EXPECT_EQ(after.counters, (std::vector<std::uint64_t>{2, 0, 3}));

  Snapshot delta;
  delta.counters = {4};
  delta.spans = {{2, 50, 50}};
  Snapshot sum = before;
  sum.merge(delta);
  sum.subtract(before);
  EXPECT_EQ(counter_at(sum, 0), 4u);
  EXPECT_EQ(sum.spans[0], (SpanStats{2, 50, 50}));
}

TEST(SnapshotAlgebra, EmptyIgnoresGaugeLevels) {
  Snapshot s;
  EXPECT_TRUE(s.empty());
  s.gauges = {42.0};  // a level, not an accumulation
  EXPECT_TRUE(s.empty());
  s.counters = {0, 1};
  EXPECT_FALSE(s.empty());
}

#if MUERP_TELEMETRY_ENABLED

TEST(Counters, ThreadCaptureSeesExactIncrements) {
  static const Counter counter("test/counter_exact");
  const Snapshot before = capture_thread();
  counter.add();
  counter.add(41);
  Snapshot after = capture_thread();
  after.subtract(before);
  EXPECT_EQ(counter_at(after, counter.id()), 42u);
  EXPECT_EQ(counter_name(counter.id()), "test/counter_exact");

  // Re-registering the same name yields the same id (macro restart safety).
  const Counter again("test/counter_exact");
  EXPECT_EQ(again.id(), counter.id());
}

TEST(Counters, MacrosAccumulateUnderTheirLabel) {
  const Snapshot before = capture_thread();
  for (int i = 0; i < 3; ++i) MUERP_COUNTER_INC("test/macro_counter");
  MUERP_COUNTER_ADD("test/macro_counter", 7);
  Snapshot after = capture_thread();
  after.subtract(before);
  const Counter handle("test/macro_counter");
  EXPECT_EQ(counter_at(after, handle.id()), 10u);
}

TEST(Histograms, ObservationsLandInTheRightBuckets) {
  static const Histogram histogram("test/histogram");
  const Snapshot before = capture_thread();
  histogram.observe(0.5);   // bucket 0
  histogram.observe(3.0);   // (2, 4] -> bucket 2
  histogram.observe(3.5);   // bucket 2 again
  Snapshot after = capture_thread();
  after.subtract(before);
  ASSERT_GT(after.histograms.size(), histogram.id());
  const HistogramData& data = after.histograms[histogram.id()];
  EXPECT_EQ(data.count, 3u);
  EXPECT_DOUBLE_EQ(data.sum, 7.0);
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[2], 2u);
}

TEST(Gauges, LastWriteWinsAtProcessScope) {
  static const Gauge gauge("test/gauge");
  gauge.set(1.5);
  gauge.set(-2.5);
  const Snapshot process = capture_process();
  ASSERT_GT(process.gauges.size(), gauge.id());
  EXPECT_DOUBLE_EQ(process.gauges[gauge.id()], -2.5);
}

TEST(Spans, NestingSplitsSelfFromTotalExactly) {
  const SpanId outer = intern_span("test/span_outer");
  const SpanId inner = intern_span("test/span_inner");
  EXPECT_EQ(span_label(outer), "test/span_outer");

  const Snapshot before = capture_thread();
  {
    const ScopedSpan outer_span(outer);
    spin();
    {
      const ScopedSpan inner_span(inner);
      spin();
    }
    spin();
  }
  Snapshot after = capture_thread();
  after.subtract(before);
  ASSERT_GT(after.spans.size(), std::max(outer, inner));
  const SpanStats& outer_stats = after.spans[outer];
  const SpanStats& inner_stats = after.spans[inner];
  EXPECT_EQ(outer_stats.count, 1u);
  EXPECT_EQ(inner_stats.count, 1u);
  EXPECT_GT(inner_stats.total_ns, 0u);
  EXPECT_EQ(inner_stats.self_ns, inner_stats.total_ns);  // leaf span
  // The inner span is wholly nested, so outer self + inner total must
  // reconstruct outer total exactly — this is the flame-view invariant.
  EXPECT_EQ(outer_stats.self_ns + inner_stats.total_ns, outer_stats.total_ns);
}

TEST(Spans, MacroVariantAggregatesPerLabel) {
  const Snapshot before = capture_thread();
  for (int i = 0; i < 4; ++i) {
    MUERP_SPAN("test/span_macro");
    spin(2000);
  }
  Snapshot after = capture_thread();
  after.subtract(before);
  const SpanId id = intern_span("test/span_macro");
  ASSERT_GT(after.spans.size(), id);
  EXPECT_EQ(after.spans[id].count, 4u);
}

TEST(Tracing, EventsRecordedOnlyWhileEnabled) {
  const SpanId parent = intern_span("test/trace_parent");
  const SpanId child = intern_span("test/trace_child");
  drain_trace_events();  // discard anything earlier tests left behind

  {
    const ScopedSpan off(parent);  // tracing disabled: no event
  }
  set_tracing(true);
  EXPECT_TRUE(tracing_enabled());
  {
    const ScopedSpan p(parent);
    const ScopedSpan c(child);
    spin();
  }
  set_tracing(false);
  EXPECT_FALSE(tracing_enabled());

  const std::vector<TraceEvent> events = drain_trace_events();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent* parent_event = nullptr;
  const TraceEvent* child_event = nullptr;
  for (const TraceEvent& e : events) {
    if (e.span == parent) parent_event = &e;
    if (e.span == child) child_event = &e;
  }
  ASSERT_NE(parent_event, nullptr);
  ASSERT_NE(child_event, nullptr);
  EXPECT_EQ(child_event->depth, parent_event->depth + 1);
  EXPECT_GE(child_event->start_ns, parent_event->start_ns);
  EXPECT_LE(child_event->duration_ns, parent_event->duration_ns);
  EXPECT_TRUE(drain_trace_events().empty());
}

TEST(Threads, ProcessCaptureFoldsLiveAndRetiredShards) {
  static const Counter counter("test/thread_counter");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;

  const Snapshot before = capture_process();
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (std::thread& w : workers) w.join();  // shards fold into `retired`
  Snapshot after = capture_process();
  after.subtract(before);
  EXPECT_EQ(counter_at(after, counter.id()), kThreads * kPerThread);
  // This thread never touched the counter.
  Snapshot local = capture_thread();
  EXPECT_EQ(counter_at(local, counter.id()), 0u)
      << "worker increments leaked into the owner thread's shard";
}

TEST(Export, JsonAndTablesRenderNonEmptySnapshots) {
  static const Counter counter("test/export_counter");
  const Snapshot before = capture_thread();
  counter.add(3);
  {
    MUERP_SPAN("test/export_span");
    spin(2000);
  }
  Snapshot delta = capture_thread();
  delta.subtract(before);

  const std::string json = to_json(delta);
  EXPECT_NE(json.find("\"test/export_counter\": 3"), std::string::npos)
      << json;
  EXPECT_NE(json.find("test/export_span"), std::string::npos) << json;

  const Table spans = spans_table(delta);
  EXPECT_NE(spans.to_csv().find("test/export_span"), std::string::npos);
  const Table counters = counters_table(delta);
  EXPECT_NE(counters.to_csv().find("test/export_counter"), std::string::npos);
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(TelemetryOff, EverythingCompilesToNothing) {
  MUERP_COUNTER_INC("off/counter");
  MUERP_COUNTER_ADD("off/counter", 5);
  MUERP_GAUGE_SET("off/gauge", 1.0);
  MUERP_HISTOGRAM_OBSERVE("off/histogram", 2.0);
  {
    MUERP_SPAN("off/span");
  }
  set_tracing(true);  // must be accepted and ignored
  EXPECT_FALSE(tracing_enabled());
  EXPECT_TRUE(capture_thread().empty());
  EXPECT_TRUE(capture_process().empty());
  EXPECT_TRUE(drain_trace_events().empty());
  EXPECT_EQ(span_label(0), "");
  EXPECT_EQ(counter_name(0), "");
}

TEST(TelemetryOff, MonotonicClockStillWorks) {
  const std::uint64_t a = monotonic_now_ns();
  const std::uint64_t b = monotonic_now_ns();
  EXPECT_GE(b, a);
}

#endif  // MUERP_TELEMETRY_ENABLED

TEST(Export, EmptySnapshotDegeneratesGracefully) {
  const Snapshot empty;
  const std::string json = to_json(empty);
  EXPECT_NE(json.find("\"counters\""), std::string::npos) << json;
  EXPECT_EQ(spans_table(empty).to_csv().find("test/"), std::string::npos);
}

}  // namespace
}  // namespace muerp::support::telemetry
