#include "support/telemetry/log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>

#include "support/json.hpp"
#include "support/telemetry/telemetry.hpp"

namespace muerp::support::telemetry {
namespace {

TEST(LogLevelNames, RoundTrip) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError,
                               LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kOff;
    ASSERT_TRUE(parse_log_level(log_level_name(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
}

TEST(LogLevelNames, RejectsUnknown) {
  LogLevel parsed = LogLevel::kOff;
  EXPECT_FALSE(parse_log_level("verbose", &parsed));
  EXPECT_FALSE(parse_log_level("INFO", &parsed));  // case-sensitive
  EXPECT_FALSE(parse_log_level("", &parsed));
}

TEST(LogFormatNames, ParsesTextAndJson) {
  LogFormat format = LogFormat::kText;
  ASSERT_TRUE(parse_log_format("json", &format));
  EXPECT_EQ(format, LogFormat::kJson);
  ASSERT_TRUE(parse_log_format("text", &format));
  EXPECT_EQ(format, LogFormat::kText);
  EXPECT_FALSE(parse_log_format("yaml", &format));
  EXPECT_FALSE(parse_log_format("JSON", &format));
}

#if MUERP_TELEMETRY_ENABLED

/// Captures the sink into a local stream and restores the logger's global
/// knobs afterwards, so tests cannot leak state into each other.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_log_sink(&stream_);
    set_log_level(LogLevel::kDebug);
    set_log_format(LogFormat::kText);
  }
  void TearDown() override {
    set_log_sink(&std::cerr);
    set_log_level(LogLevel::kWarn);
    set_log_format(LogFormat::kText);
  }
  std::ostringstream stream_;
};

TEST_F(LogTest, LevelThresholdFilters) {
  set_log_level(LogLevel::kWarn);
  const std::uint64_t before = log_events_emitted();
  MUERP_LOG_DEBUG("log_test/filtered_debug");
  MUERP_LOG_INFO("log_test/filtered_info");
  EXPECT_EQ(log_events_emitted(), before);
  EXPECT_TRUE(stream_.str().empty());
  MUERP_LOG_WARN("log_test/accepted_warn");
  MUERP_LOG_ERROR("log_test/accepted_error");
  EXPECT_EQ(log_events_emitted(), before + 2);
  EXPECT_NE(stream_.str().find("log_test/accepted_warn"), std::string::npos);
  EXPECT_NE(stream_.str().find("log_test/accepted_error"), std::string::npos);
}

TEST_F(LogTest, OffLevelDisablesEverything) {
  set_log_level(LogLevel::kOff);
  const std::uint64_t before = log_events_emitted();
  MUERP_LOG_ERROR("log_test/never");
  EXPECT_EQ(log_events_emitted(), before);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST_F(LogTest, FieldExpressionsNotEvaluatedWhenFiltered) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  MUERP_LOG_DEBUG("log_test/lazy", field("n", ++evaluations));
  EXPECT_EQ(evaluations, 0);
  MUERP_LOG_ERROR("log_test/eager", field("n", ++evaluations));
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, TextFormatCarriesNameAndFields) {
  MUERP_LOG_INFO("log_test/text_fields", field("slot", 42),
                 field("rate", 0.5), field("algo", "alg3"),
                 field("ok", true));
  const std::string line = stream_.str();
  EXPECT_NE(line.find("log_test/text_fields"), std::string::npos);
  EXPECT_NE(line.find("slot=42"), std::string::npos);
  EXPECT_NE(line.find("rate=0.5"), std::string::npos);
  EXPECT_NE(line.find("algo=\"alg3\""), std::string::npos);
  EXPECT_NE(line.find("ok=true"), std::string::npos);
  EXPECT_NE(line.find("info"), std::string::npos);
}

TEST_F(LogTest, JsonLinesParseBackAndEscape) {
  set_log_format(LogFormat::kJson);
  MUERP_LOG_WARN("log_test/json \"quoted\"",
                 field("path", "a\\b\nc\td\"e"), field("count", 7),
                 field("big", std::uint64_t{1} << 60), field("flag", false),
                 field("ctl", std::string_view("\x01", 1)));
  const std::string line = stream_.str();
  // Raw escapes as written on the wire.
  EXPECT_NE(line.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(line.find("\\\\b"), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\t"), std::string::npos);
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  // The line is valid JSON and round-trips the field values.
  const auto doc = json::parse(line);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_EQ(doc.value["event"].string_value, "log_test/json \"quoted\"");
  EXPECT_EQ(doc.value["level"].string_value, "warn");
  EXPECT_EQ(doc.value["path"].string_value, "a\\b\nc\td\"e");
  EXPECT_DOUBLE_EQ(doc.value["count"].number_value, 7.0);
  EXPECT_FALSE(doc.value["flag"].bool_value);
  EXPECT_TRUE(doc.value["ts_ms"].is_number());
}

TEST_F(LogTest, TraceIdCorrelatesWithEnclosingSpan) {
  {
    MUERP_SPAN("log_test/outer_span");
    MUERP_LOG_INFO("log_test/inside_span");
  }
  MUERP_LOG_INFO("log_test/outside_span");
  const auto events = recent_log_events(2);
  ASSERT_GE(events.size(), 2u);
  const LogEvent& inside = events[events.size() - 2];
  const LogEvent& outside = events.back();
  EXPECT_EQ(inside.name, "log_test/inside_span");
  EXPECT_NE(inside.trace_id, 0u);
  EXPECT_EQ(inside.span, "log_test/outer_span");
  EXPECT_EQ(outside.trace_id, 0u);
  EXPECT_TRUE(outside.span.empty());
}

TEST_F(LogTest, NestedSpansShareOneTraceId) {
  std::uint64_t outer_id = 0;
  {
    MUERP_SPAN("log_test/trace_top");
    MUERP_LOG_INFO("log_test/at_top");
    outer_id = recent_log_events(1).back().trace_id;
    {
      MUERP_SPAN("log_test/trace_nested");
      MUERP_LOG_INFO("log_test/at_nested");
    }
  }
  const auto events = recent_log_events(1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().trace_id, outer_id);
  EXPECT_EQ(events.back().span, "log_test/trace_nested");
}

TEST_F(LogTest, CrossThreadEventsLandInTheRing) {
  const std::uint32_t main_thread = current_thread_index();
  std::thread worker([] { MUERP_LOG_INFO("log_test/from_worker"); });
  worker.join();
  const auto events = recent_log_events(4);
  ASSERT_FALSE(events.empty());
  bool found = false;
  for (const LogEvent& e : events) {
    if (e.name == "log_test/from_worker") {
      found = true;
      EXPECT_NE(e.thread, main_thread);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(LogTest, RecentEventsAreNewestLastAndBounded) {
  MUERP_LOG_INFO("log_test/ring_a");
  MUERP_LOG_INFO("log_test/ring_b");
  MUERP_LOG_INFO("log_test/ring_c");
  const auto events = recent_log_events(2);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "log_test/ring_b");
  EXPECT_EQ(events[1].name, "log_test/ring_c");
}

TEST_F(LogTest, EveryNEmitsFirstAndEveryNth) {
  const std::uint64_t before = log_events_emitted();
  for (int i = 0; i < 10; ++i) {
    MUERP_LOG_EVERY_N(4, LogLevel::kInfo, "log_test/every_n",
                      field("i", i));
  }
  // Executions 0, 4 and 8 emit.
  EXPECT_EQ(log_events_emitted(), before + 3);
  const auto events = recent_log_events(3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.back().name, "log_test/every_n");
  EXPECT_EQ(events.back().fields[0].second, "8");
}

TEST_F(LogTest, EveryNSkipsCounterWhenLevelFiltered) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  // Filtered executions advance neither the counter nor the fields...
  for (int i = 0; i < 5; ++i) {
    MUERP_LOG_EVERY_N(3, LogLevel::kDebug, "log_test/every_n_filtered",
                      field("n", ++evaluations));
  }
  EXPECT_EQ(evaluations, 0);
  // ...so lowering the level later still starts at the 1st event.
  set_log_level(LogLevel::kDebug);
  const std::uint64_t before = log_events_emitted();
  MUERP_LOG_EVERY_N(3, LogLevel::kDebug, "log_test/every_n_filtered",
                    field("n", ++evaluations));
  EXPECT_EQ(log_events_emitted(), before + 1);
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, TokenBucketLimitsAndCountsSuppressed) {
  // 1 token/s with burst 3: the first three acquire immediately, the rest
  // are suppressed until real time refills — which this test does not wait
  // for.
  LogTokenBucket bucket(1.0, 3.0);
  int emitted = 0;
  for (int i = 0; i < 10; ++i) {
    MUERP_LOG_RATE_LIMITED(bucket, LogLevel::kInfo, "log_test/bucket",
                           field("n", ++emitted));
  }
  EXPECT_EQ(emitted, 3);
  EXPECT_EQ(bucket.suppressed(), 7u);
}

TEST_F(LogTest, TokenBucketZeroRateIsUnlimited) {
  LogTokenBucket bucket(0.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_acquire());
  EXPECT_EQ(bucket.suppressed(), 0u);
}

TEST_F(LogTest, TokenBucketRefillsOverTime) {
  LogTokenBucket bucket(1000.0, 1.0);  // 1 token per millisecond, burst 1
  EXPECT_TRUE(bucket.try_acquire());
  // Drain and wait for a refill; generous deadline for slow machines.
  bool reacquired = false;
  for (int i = 0; i < 2000 && !reacquired; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    reacquired = bucket.try_acquire();
  }
  EXPECT_TRUE(reacquired);
}

TEST_F(LogTest, RateLimitedKeepsFieldsUnevaluatedWhenSuppressed) {
  LogTokenBucket bucket(0.001, 1.0);  // effectively one event, ever
  int evaluations = 0;
  MUERP_LOG_RATE_LIMITED(bucket, LogLevel::kInfo, "log_test/bucket_lazy",
                         field("n", ++evaluations));
  MUERP_LOG_RATE_LIMITED(bucket, LogLevel::kInfo, "log_test/bucket_lazy",
                         field("n", ++evaluations));
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, RenderMatchesSinkLine) {
  set_log_format(LogFormat::kJson);
  MUERP_LOG_ERROR("log_test/render", field("k", 1));
  const auto events = recent_log_events(1);
  ASSERT_EQ(events.size(), 1u);
  std::string sink_line = stream_.str();
  ASSERT_FALSE(sink_line.empty());
  sink_line.pop_back();  // trailing '\n'
  EXPECT_EQ(render_log_event(events.back(), LogFormat::kJson), sink_line);
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(LogOffStubs, EverythingIsInert) {
  EXPECT_EQ(log_level(), LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kDebug);  // no-op
  EXPECT_EQ(log_level(), LogLevel::kOff);

  int evaluations = 0;
  MUERP_LOG_ERROR("log_test/off", field("n", ++evaluations));
  EXPECT_EQ(evaluations, 0);  // arguments swallowed unevaluated

  log_event(LogLevel::kError, "log_test/off_direct", {});
  EXPECT_EQ(log_events_emitted(), 0u);
  EXPECT_TRUE(recent_log_events().empty());
  EXPECT_TRUE(render_log_event(LogEvent{}, LogFormat::kJson).empty());
}

TEST(LogOffStubs, RateLimitMacrosAreInert) {
  LogTokenBucket bucket(1.0, 10.0);
  int evaluations = 0;
  MUERP_LOG_EVERY_N(3, LogLevel::kError, "log_test/off_every",
                    field("n", ++evaluations));
  MUERP_LOG_RATE_LIMITED(bucket, LogLevel::kError, "log_test/off_bucket",
                         field("n", ++evaluations));
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(bucket.try_acquire());  // nothing ever emits
  EXPECT_EQ(bucket.suppressed(), 0u);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
