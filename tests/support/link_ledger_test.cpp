#include "support/telemetry/link_ledger.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace muerp::support::telemetry {
namespace {

LinkStat stat(LinkKind kind, std::uint32_t index, int capacity, int held,
              double ewma = 0.0, std::uint64_t losses = 0) {
  LinkStat s;
  s.kind = kind;
  s.index = index;
  s.capacity = capacity;
  s.held = held;
  s.utilization = capacity > 0 ? static_cast<double>(held) / capacity : 0.0;
  s.ewma_utilization = ewma;
  s.window_utilization = ewma;
  s.contention_losses = losses;
  return s;
}

TEST(LinkLedger, KindAndSortNamesParse) {
  EXPECT_STREQ(link_kind_name(LinkKind::kEdge), "edge");
  EXPECT_STREQ(link_kind_name(LinkKind::kSwitch), "switch");
  LinkSort sort;
  ASSERT_TRUE(parse_link_sort("util", &sort));
  EXPECT_EQ(sort, LinkSort::kUtil);
  ASSERT_TRUE(parse_link_sort("losses", &sort));
  EXPECT_EQ(sort, LinkSort::kLosses);
  EXPECT_FALSE(parse_link_sort("hotness", &sort));
  EXPECT_FALSE(parse_link_sort("", &sort));
}

TEST(LinkLedger, SortLinksIsDeterministicWithTies) {
  // Two links tie on utilization; the edge (kind 0) must sort before the
  // switch, and equal kinds break on index — no unstable-sort wobble.
  std::vector<LinkStat> links = {
      stat(LinkKind::kSwitch, 3, 4, 2),
      stat(LinkKind::kEdge, 9, 2, 1),
      stat(LinkKind::kEdge, 1, 2, 2),
      stat(LinkKind::kEdge, 5, 2, 1),
  };
  sort_links(links, LinkSort::kUtil, 0);
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0].index, 1u);  // util 1.0 first
  EXPECT_EQ(links[1].index, 5u);  // util 0.5 ties: edges before switch,
  EXPECT_EQ(links[2].index, 9u);  // index ascending
  EXPECT_EQ(links[3].index, 3u);
  EXPECT_EQ(links[3].kind, LinkKind::kSwitch);
}

TEST(LinkLedger, SortLinksByLossesAndLimit) {
  std::vector<LinkStat> links = {
      stat(LinkKind::kEdge, 0, 2, 0, 0.0, /*losses=*/1),
      stat(LinkKind::kEdge, 1, 2, 0, 0.0, /*losses=*/5),
      stat(LinkKind::kEdge, 2, 2, 0, 0.0, /*losses=*/3),
  };
  sort_links(links, LinkSort::kLosses, 2);
  ASSERT_EQ(links.size(), 2u);  // limit truncates
  EXPECT_EQ(links[0].index, 1u);
  EXPECT_EQ(links[1].index, 2u);
}

TEST(LinkLedger, MergeIsCapacityWeighted) {
  // Two lanes of the same link: capacity 2 at ewma 0.5 and capacity 2 at
  // ewma 0.25 merge to capacity 4 at ewma (0.5*2 + 0.25*2)/4 = 0.375.
  const LinkStat lane0 = stat(LinkKind::kEdge, 0, 2, 2, 0.5);
  LinkStat lane1 = stat(LinkKind::kEdge, 0, 2, 1, 0.25);
  lane1.attempts = 3;
  lane1.wins = 1;
  lane1.contention_losses = 2;
  lane1.last_saturation_slot = 17;
  lane1.saturated = true;

  std::vector<LinkStat> merged;
  merge_link_stats(merged, {lane0});
  merge_link_stats(merged, {lane1});
  finalize_merged_link_stats(merged);

  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].capacity, 4);
  EXPECT_EQ(merged[0].held, 3);
  EXPECT_DOUBLE_EQ(merged[0].utilization, 0.75);
  EXPECT_DOUBLE_EQ(merged[0].ewma_utilization, 0.375);
  EXPECT_DOUBLE_EQ(merged[0].window_utilization, 0.375);
  EXPECT_EQ(merged[0].attempts, 3u);
  EXPECT_EQ(merged[0].wins, 1u);
  EXPECT_EQ(merged[0].contention_losses, 2u);
  EXPECT_EQ(merged[0].last_saturation_slot, 17u);
  EXPECT_TRUE(merged[0].saturated);
}

TEST(LinkLedger, MergeOfSingleLaneIsIdentity) {
  const LinkStat lane = stat(LinkKind::kSwitch, 2, 4, 3, 0.5);
  std::vector<LinkStat> merged;
  merge_link_stats(merged, {lane});
  finalize_merged_link_stats(merged);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0], lane);
}

TEST(LinkLedger, FinalizeZeroCapacityYieldsZeroUtilization) {
  std::vector<LinkStat> merged;
  merge_link_stats(merged, {stat(LinkKind::kEdge, 0, 0, 0, 0.9)});
  finalize_merged_link_stats(merged);
  EXPECT_DOUBLE_EQ(merged[0].utilization, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].ewma_utilization, 0.0);
}

TEST(LinkLedger, LinksJsonEmptyIsValid) {
  // The OFF-build / --record-links=false document: empty but parseable.
  const auto doc = json::parse(links_json({}, 42));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["count"].number_value, 0.0);
  EXPECT_DOUBLE_EQ(doc.value["slot"].number_value, 42.0);
  EXPECT_TRUE(doc.value["links"].is_array());
  EXPECT_TRUE(doc.value["links"].elements.empty());
}

TEST(LinkLedger, LinkStatJsonCarriesEndpointsByKind) {
  LinkStat edge = stat(LinkKind::kEdge, 4, 3, 2, 0.5);
  edge.a = 10;
  edge.b = 12;
  edge.attempts = 7;
  edge.wins = 5;
  const auto edge_doc = json::parse(link_stat_json(edge));
  ASSERT_TRUE(edge_doc.ok()) << edge_doc.error;
  EXPECT_EQ(edge_doc.value["kind"].string_value, "edge");
  EXPECT_DOUBLE_EQ(edge_doc.value["a"].number_value, 10.0);
  EXPECT_DOUBLE_EQ(edge_doc.value["b"].number_value, 12.0);
  EXPECT_TRUE(edge_doc.value["node"].is_null());
  EXPECT_DOUBLE_EQ(edge_doc.value["capacity"].number_value, 3.0);
  EXPECT_DOUBLE_EQ(edge_doc.value["attempts"].number_value, 7.0);
  EXPECT_DOUBLE_EQ(edge_doc.value["wins"].number_value, 5.0);

  // Switches carry their node id under "node" (not "a"/"b") — muerptop and
  // the docs depend on this key split.
  LinkStat sw = stat(LinkKind::kSwitch, 1, 8, 4, 0.25);
  sw.a = 31;
  const auto switch_doc = json::parse(link_stat_json(sw));
  ASSERT_TRUE(switch_doc.ok()) << switch_doc.error;
  EXPECT_EQ(switch_doc.value["kind"].string_value, "switch");
  EXPECT_DOUBLE_EQ(switch_doc.value["node"].number_value, 31.0);
  EXPECT_TRUE(switch_doc.value["a"].is_null());
  EXPECT_TRUE(switch_doc.value["b"].is_null());
}

TEST(LinkLedger, SaturatedLinksJsonRendersIndices) {
  SaturatedLinks saturated;
  saturated.exact = false;
  saturated.edges = {1, 4};
  saturated.switches = {0};
  const auto doc = json::parse(saturated_links_json(saturated));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_FALSE(doc.value["exact"].bool_value);
  ASSERT_EQ(doc.value["edges"].elements.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.value["edges"].elements[1].number_value, 4.0);
  ASSERT_EQ(doc.value["switches"].elements.size(), 1u);
}

TEST(LinkLedger, ExplainJsonWithoutRecordStaysValid) {
  // Unknown id (or recording off): explain is a join, not a lookup, so the
  // document answers "found": false instead of erroring.
  const auto doc = json::parse(explain_json(99, nullptr, SaturatedLinks{}));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["id"].number_value, 99.0);
  EXPECT_FALSE(doc.value["found"].bool_value);
  EXPECT_TRUE(doc.value["session"].is_null());
  EXPECT_TRUE(doc.value["saturated_links"]["exact"].bool_value);
}

#if MUERP_TELEMETRY_ENABLED

TEST(LinkLedger, ExplainJsonJoinsRecordAndSaturation) {
  SessionRecord record;
  record.id = (2ull << 32) | 5;
  record.arrival_slot = 40;
  record.state = SessionState::kRejected;
  record.reject_reason = RejectReason::kContentionLoss;
  SaturatedLinks saturated;
  saturated.edges = {3};
  const auto doc =
      json::parse(explain_json(record.id, &record, saturated));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["found"].bool_value);
  EXPECT_EQ(doc.value["session"]["state"].string_value, "rejected");
  EXPECT_EQ(doc.value["session"]["reject_reason"].string_value,
            "contention_loss");
  ASSERT_EQ(doc.value["saturated_links"]["edges"].elements.size(), 1u);
  EXPECT_DOUBLE_EQ(
      doc.value["saturated_links"]["edges"].elements[0].number_value, 3.0);
}

TEST(LinkLedger, AdmitRaisesOccupancyAndDedupesAttempts) {
  LinkLedger ledger(/*edge_capacity=*/{2, 3}, /*switch_capacity=*/{4});
  TreeTouch touch;
  touch.edges = {0, 0};   // two channels over the same fiber
  touch.switches = {0};   // one 2-qubit relay pledge
  ledger.record_admit(touch, /*slot=*/1);

  const auto links = ledger.snapshot(1);
  ASSERT_EQ(links.size(), 3u);  // edges first, then switches
  EXPECT_EQ(links[0].kind, LinkKind::kEdge);
  EXPECT_EQ(links[0].held, 2);  // occupancy counts repeats
  EXPECT_DOUBLE_EQ(links[0].utilization, 1.0);
  EXPECT_EQ(links[0].attempts, 1u);  // attempts dedupe repeats
  EXPECT_EQ(links[0].wins, 1u);
  EXPECT_EQ(links[1].held, 0);  // untouched edge
  EXPECT_EQ(links[2].kind, LinkKind::kSwitch);
  EXPECT_EQ(links[2].held, 2);  // two qubits per relay pledge
  EXPECT_EQ(links[2].attempts, 1u);
  EXPECT_EQ(ledger.stats().admits, 1u);
}

TEST(LinkLedger, RejectCountsAttemptsWithoutOccupancy) {
  LinkLedger ledger({2}, {});
  TreeTouch touch;
  touch.edges = {0};
  ledger.record_reject(touch, /*contention=*/true, /*slot=*/3);
  const auto links = ledger.snapshot(3);
  EXPECT_EQ(links[0].held, 0);  // a rejected session holds nothing
  EXPECT_EQ(links[0].attempts, 1u);
  EXPECT_EQ(links[0].wins, 0u);
  EXPECT_EQ(links[0].contention_losses, 1u);
  const auto stats = ledger.stats();
  EXPECT_EQ(stats.rejects, 1u);
  EXPECT_EQ(stats.contention_losses, 1u);
  EXPECT_EQ(stats.admits, 0u);
}

TEST(LinkLedger, ReleaseReturnsOccupancyAndClampsAtZero) {
  LinkLedger ledger({4}, {});
  TreeTouch touch;
  touch.edges = {0};
  ledger.record_admit(touch, 1);
  ledger.record_release(touch, 5);
  EXPECT_EQ(ledger.snapshot(5)[0].held, 0);
  // Release without a matching admit clamps instead of going negative.
  ledger.record_release(touch, 6);
  EXPECT_EQ(ledger.snapshot(6)[0].held, 0);
}

TEST(LinkLedger, WindowAndEwmaAccumulateLazily) {
  LinkLedgerOptions options;
  options.window_slots = 4;
  options.ewma_alpha = 0.5;
  LinkLedger ledger({1}, {}, options);
  TreeTouch touch;
  touch.edges = {0};
  ledger.record_admit(touch, 0);  // occupied from slot 0 onward

  // One completed window [0,4) at full occupancy: mean 1.0, EWMA
  // 0 + 0.5 * (1 - 0) = 0.5.
  const auto at4 = ledger.snapshot(4);
  EXPECT_DOUBLE_EQ(at4[0].window_utilization, 1.0);
  EXPECT_DOUBLE_EQ(at4[0].ewma_utilization, 0.5);

  // Two completed windows: EWMA 0.5 + 0.5 * (1 - 0.5) = 0.75. Queries
  // advance a COPY, so the earlier snapshot(4) must not have changed this.
  const auto at8 = ledger.snapshot(8);
  EXPECT_DOUBLE_EQ(at8[0].window_utilization, 1.0);
  EXPECT_DOUBLE_EQ(at8[0].ewma_utilization, 0.75);

  // Bit-identical on repeat — the read-only-query contract.
  EXPECT_EQ(ledger.snapshot(8), at8);
  EXPECT_EQ(ledger.snapshot(4), at4);
}

TEST(LinkLedger, SaturationTransitionsReplayExactly) {
  LinkLedger ledger({1, 1}, {});
  TreeTouch first;
  first.edges = {0};
  TreeTouch second;
  second.edges = {1};
  ledger.record_admit(first, 5);     // edge 0 saturates at slot 5
  ledger.record_release(first, 10);  // and clears at slot 10
  ledger.record_admit(second, 12);   // edge 1 saturates at slot 12

  const auto links = ledger.snapshot(12);
  EXPECT_FALSE(links[0].saturated);
  EXPECT_EQ(links[0].last_saturation_slot, 5u);
  EXPECT_TRUE(links[1].saturated);
  EXPECT_EQ(links[1].last_saturation_slot, 12u);

  const SaturatedLinks at7 = ledger.saturated_at(7);
  EXPECT_TRUE(at7.exact);
  EXPECT_EQ(at7.edges, (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(ledger.saturated_at(11).edges.empty());
  EXPECT_EQ(ledger.saturated_at(20).edges,
            (std::vector<std::uint32_t>{1}));
  EXPECT_TRUE(ledger.saturated_at(0).edges.empty());
  EXPECT_EQ(ledger.stats().saturation_events, 3u);
}

TEST(LinkLedger, EventRingEvictionDegradesToInexact) {
  LinkLedgerOptions options;
  options.event_capacity = 2;
  LinkLedger ledger({1}, {}, options);
  TreeTouch touch;
  touch.edges = {0};
  ledger.record_admit(touch, 1);    // transition 1 (evicted below)
  ledger.record_release(touch, 2);  // transition 2
  ledger.record_admit(touch, 3);    // transition 3 -> ring holds {2, 3}
  EXPECT_EQ(ledger.stats().saturation_events, 3u);
  EXPECT_EQ(ledger.stats().evicted_events, 1u);
  // The reconstruction at slot 0 would need the evicted transition.
  EXPECT_FALSE(ledger.saturated_at(0).exact);
  // At slot 2 the surviving ring suffices.
  const auto at2 = ledger.saturated_at(2);
  EXPECT_TRUE(at2.exact);
  EXPECT_TRUE(at2.edges.empty());
}

TEST(LinkLedger, StatsMergeSums) {
  LinkLedger::Stats a;
  a.admits = 2;
  a.rejects = 1;
  a.saturation_events = 4;
  LinkLedger::Stats b;
  b.admits = 3;
  b.contention_losses = 5;
  b.evicted_events = 7;
  a.merge(b);
  EXPECT_EQ(a.admits, 5u);
  EXPECT_EQ(a.rejects, 1u);
  EXPECT_EQ(a.contention_losses, 5u);
  EXPECT_EQ(a.saturation_events, 4u);
  EXPECT_EQ(a.evicted_events, 7u);
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(LinkLedger, StubIsInertButQueryable) {
  LinkLedger ledger({2, 2}, {4});
  TreeTouch touch;
  touch.edges = {0};
  ledger.record_admit(touch, 1);
  ledger.record_reject(touch, true, 2);
  ledger.record_release(touch, 3);
  EXPECT_TRUE(ledger.snapshot(3).empty());
  EXPECT_TRUE(ledger.saturated_at(3).edges.empty());
  EXPECT_EQ(ledger.stats().admits, 0u);
  EXPECT_EQ(ledger.edge_count(), 2u);
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
