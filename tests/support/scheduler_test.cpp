#include "support/scheduler.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace muerp::support {
namespace {

using std::chrono::milliseconds;

TEST(SlotScheduler, UnpacedModeAlwaysReturnsMaxBatch) {
  SlotScheduler::Options options;
  options.period = milliseconds(0);
  options.max_batch = 16;
  SlotScheduler scheduler(options);
  EXPECT_EQ(scheduler.acquire(), 16u);
  scheduler.advance(16);
  EXPECT_EQ(scheduler.acquire(), 16u);
  scheduler.stop();
  EXPECT_TRUE(scheduler.stopped());
  EXPECT_EQ(scheduler.acquire(), 0u);
}

TEST(SlotScheduler, AcquireReturnsDueSlotsAndCapsAtMaxBatch) {
  SlotScheduler::Options options;
  options.period = milliseconds(1);
  options.max_batch = 4;
  SlotScheduler scheduler(options);
  std::this_thread::sleep_for(milliseconds(20));
  // ~20 slots are due but the batch cap bounds each acquire.
  const std::uint64_t due = scheduler.acquire();
  EXPECT_GE(due, 1u);
  EXPECT_LE(due, 4u);
  scheduler.advance(due);
  EXPECT_EQ(scheduler.slots_played(), due);
}

TEST(SlotScheduler, AdvanceMovesTheDeadlineBaseline) {
  SlotScheduler::Options options;
  options.period = milliseconds(1);
  options.max_batch = 1024;
  SlotScheduler scheduler(options);
  std::this_thread::sleep_for(milliseconds(10));
  const std::uint64_t first = scheduler.acquire();
  EXPECT_GE(first, 1u);
  scheduler.advance(first);
  // Everything due was just played; the next acquire has to wait for a new
  // slot boundary, so whatever it returns is small, not `first` again.
  const std::uint64_t second = scheduler.acquire();
  EXPECT_LE(second, 4u);
}

TEST(SlotScheduler, StopWakesABlockedAcquire) {
  SlotScheduler::Options options;
  options.period = std::chrono::seconds(60);
  SlotScheduler scheduler(options);
  std::thread stopper([&] {
    std::this_thread::sleep_for(milliseconds(20));
    scheduler.stop();
  });
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t due = scheduler.acquire();
  const auto waited = std::chrono::steady_clock::now() - start;
  stopper.join();
  EXPECT_EQ(due, 0u);
  EXPECT_TRUE(scheduler.stopped());
  EXPECT_LT(waited, std::chrono::seconds(30));
}

TEST(SlotScheduler, KickWakesABlockedAcquireWithoutSlots) {
  SlotScheduler::Options options;
  options.period = std::chrono::seconds(60);
  SlotScheduler scheduler(options);
  std::thread kicker([&] {
    std::this_thread::sleep_for(milliseconds(20));
    scheduler.kick();
  });
  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t due = scheduler.acquire();
  const auto waited = std::chrono::steady_clock::now() - start;
  kicker.join();
  EXPECT_EQ(due, 0u);
  EXPECT_FALSE(scheduler.stopped());
  EXPECT_LT(waited, std::chrono::seconds(30));
}

TEST(SlotScheduler, PacedAcquireWaitsForTheSlotBoundary) {
  SlotScheduler::Options options;
  options.period = milliseconds(5);
  SlotScheduler scheduler(options);
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t due = 0;
  // Control wakes (spurious or poll-bound) return 0; keep waiting like the
  // daemon loop does.
  while (due == 0 && !scheduler.stopped()) due = scheduler.acquire();
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(due, 1u);
  EXPECT_GE(waited, milliseconds(4));
}

}  // namespace
}  // namespace muerp::support
