#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"

namespace muerp::support {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.stderr_mean(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(3.5);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 3.5);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 3.5);
  EXPECT_DOUBLE_EQ(acc.max(), 3.5);
}

TEST(Accumulator, KnownSample) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Accumulator, WelfordMatchesNaiveOnRandomData) {
  Rng rng(3);
  Accumulator acc;
  std::vector<double> data;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5.0, 5.0);
    data.push_back(v);
    acc.add(v);
  }
  double sum = 0.0;
  for (double v : data) sum += v;
  const double mean = sum / static_cast<double>(data.size());
  double ss = 0.0;
  for (double v : data) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(acc.mean(), mean, 1e-12);
  EXPECT_NEAR(acc.variance(), ss / (static_cast<double>(data.size()) - 1),
              1e-10);
}

TEST(Summarize, MatchesAccumulator) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(data);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Mean, EmptyAndBasic) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  const std::vector<double> data{0.0, 1.0};
  EXPECT_DOUBLE_EQ(mean(data), 0.5);
}

TEST(GeometricMean, PositivesOnly) {
  const std::vector<double> data{1.0, 100.0};
  const auto gm = geometric_mean_positive(data);
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, 10.0, 1e-9);
}

TEST(GeometricMean, IgnoresZeros) {
  const std::vector<double> data{0.0, 4.0, 9.0, 0.0};
  const auto gm = geometric_mean_positive(data);
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, 6.0, 1e-9);
}

TEST(GeometricMean, AllZerosIsNullopt) {
  const std::vector<double> data{0.0, 0.0};
  EXPECT_FALSE(geometric_mean_positive(data).has_value());
  EXPECT_FALSE(geometric_mean_positive({}).has_value());
}

TEST(GeometricMean, SurvivesTinyRates) {
  // Entanglement rates underflow ordinary products; log-space must not.
  const std::vector<double> data{1e-300, 1e-280};
  const auto gm = geometric_mean_positive(data);
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(std::log10(*gm), -290.0, 0.5);
}

TEST(PositiveFraction, Basics) {
  EXPECT_DOUBLE_EQ(positive_fraction({}), 0.0);
  const std::vector<double> data{0.0, 1.0, 2.0, 0.0};
  EXPECT_DOUBLE_EQ(positive_fraction(data), 0.5);
}

TEST(Confidence95, KnownValue) {
  Summary s;
  s.stderr_mean = 1.0;
  EXPECT_NEAR(confidence95_half_width(s), 1.96, 0.001);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> data{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> data{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.25), 2.5);
}

}  // namespace
}  // namespace muerp::support
