// NodeIndex tests: the dense NodeId -> position lookup that replaced the
// hand-rolled unordered_map rebuilds in the tree-construction algorithms.
#include "support/node_index.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace muerp {
namespace {

TEST(NodeIndex, EmptyIndexContainsNothing) {
  support::NodeIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.contains(0));
  EXPECT_FALSE(index.find(42).has_value());
}

TEST(NodeIndex, MapsNodesToTheirPositions) {
  const std::vector<graph::NodeId> nodes = {17, 3, 99, 0};
  support::NodeIndex index(nodes);
  EXPECT_EQ(index.size(), 4u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    ASSERT_TRUE(index.contains(nodes[i]));
    EXPECT_EQ(index.at(nodes[i]), i);
    EXPECT_EQ(index.find(nodes[i]), i);
  }
  EXPECT_FALSE(index.contains(1));
  EXPECT_FALSE(index.contains(98));
  EXPECT_FALSE(index.contains(100));  // beyond the table
}

TEST(NodeIndex, RebuildRetargetsTheIndex) {
  const std::vector<graph::NodeId> first = {5, 9, 2};
  const std::vector<graph::NodeId> second = {9, 4};
  support::NodeIndex index(first);
  index.rebuild(second);
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.at(9), 0u);
  EXPECT_EQ(index.at(4), 1u);
  // Members of the old set must be forgotten.
  EXPECT_FALSE(index.contains(5));
  EXPECT_FALSE(index.contains(2));
}

TEST(NodeIndex, RebuildToEmptySet) {
  const std::vector<graph::NodeId> nodes = {1, 2, 3};
  support::NodeIndex index(nodes);
  index.rebuild({});
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.contains(1));
}

}  // namespace
}  // namespace muerp
