#include "support/telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace muerp::support::telemetry {
namespace {

SessionRecord draft(std::uint64_t arrival_slot,
                    std::vector<std::uint32_t> group = {1, 2}) {
  SessionRecord record;
  record.arrival_slot = arrival_slot;
  record.group = std::move(group);
  record.algorithm = "prim-shared";
  record.policy = "single";
  record.tree_rate = 0.25;
  record.tree_channels = 3;
  return record;
}

TEST(FlightRecorder, StateAndReasonNamesRoundTrip) {
  for (const SessionState state :
       {SessionState::kActive, SessionState::kCompleted,
        SessionState::kTimedOut, SessionState::kRejected,
        SessionState::kDrained}) {
    SessionState parsed;
    ASSERT_TRUE(parse_session_state(session_state_name(state), &parsed));
    EXPECT_EQ(parsed, state);
  }
  SessionState parsed;
  EXPECT_FALSE(parse_session_state("bogus", &parsed));
  EXPECT_STREQ(reject_reason_name(RejectReason::kNone), "none");
  EXPECT_STREQ(reject_reason_name(RejectReason::kNoFeasibleTree),
               "no_feasible_tree");
  EXPECT_STREQ(reject_reason_name(RejectReason::kCapacityGuard),
               "capacity_guard");
}

TEST(FlightRecorder, RoutingWorkDeltaSaturatesAtZero) {
  RoutingWork before;
  before.spf_runs = 10;
  before.dijkstra_runs = 4;
  RoutingWork after;
  after.spf_runs = 13;
  after.dijkstra_runs = 2;  // stale baseline must not wrap
  after.slab_hits = 5;
  const RoutingWork delta = routing_work_delta(before, after);
  EXPECT_EQ(delta.spf_runs, 3u);
  EXPECT_EQ(delta.dijkstra_runs, 0u);
  EXPECT_EQ(delta.slab_hits, 5u);
  EXPECT_EQ(delta.contention_losses, 0u);
}

TEST(FlightRecorder, RecordJsonParsesAndCarriesEveryField) {
  SessionRecord record = draft(42, {3, 7, 9});
  record.id = (5ull << 32) | 12;
  record.lane = 5;
  record.seq = 12;
  record.end_slot = 60;
  record.held_slots = 18;
  record.state = SessionState::kCompleted;
  record.work.spf_runs = 4;
  const auto doc = json::parse(session_record_json(record));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["id"].number_value,
                   static_cast<double>((5ull << 32) | 12));
  EXPECT_DOUBLE_EQ(doc.value["lane"].number_value, 5.0);
  EXPECT_DOUBLE_EQ(doc.value["arrival_slot"].number_value, 42.0);
  EXPECT_DOUBLE_EQ(doc.value["held_slots"].number_value, 18.0);
  EXPECT_EQ(doc.value["state"].string_value, "completed");
  EXPECT_EQ(doc.value["reject_reason"].string_value, "none");
  EXPECT_EQ(doc.value["group"].elements.size(), 3u);
  EXPECT_EQ(doc.value["algorithm"].string_value, "prim-shared");
  EXPECT_DOUBLE_EQ(doc.value["tree_rate"].number_value, 0.25);
  EXPECT_DOUBLE_EQ(doc.value["work"]["spf_runs"].number_value, 4.0);
}

TEST(FlightRecorder, TraceJsonIsAValidChromeTraceDocument) {
  SessionRecord record = draft(10);
  record.id = 1;
  record.lane = 0;
  record.seq = 1;
  record.end_slot = 14;
  record.held_slots = 4;
  record.state = SessionState::kTimedOut;
  const auto doc = json::parse(session_trace_json(record));
  ASSERT_TRUE(doc.ok()) << doc.error;
  const auto& events = doc.value["traceEvents"].elements;
  // Admission + hold + one instant per held slot.
  ASSERT_EQ(events.size(), 2u + 4u);
  EXPECT_EQ(events[0]["name"].string_value, "admission");
  EXPECT_EQ(events[0]["ph"].string_value, "X");
  EXPECT_DOUBLE_EQ(events[0]["ts"].number_value, 10'000.0);
  EXPECT_EQ(events[0]["args"]["verdict"].string_value, "admitted");
  EXPECT_EQ(events[1]["name"].string_value, "hold");
  EXPECT_DOUBLE_EQ(events[1]["dur"].number_value, 4000.0);
  // The last attempt instant is named by the terminal state.
  EXPECT_EQ(events.back()["name"].string_value, "timed_out");
  EXPECT_EQ(events[events.size() - 2]["name"].string_value, "attempt_failed");

  // Rejections render as a single admission event.
  SessionRecord rejected = draft(3);
  rejected.state = SessionState::kRejected;
  rejected.reject_reason = RejectReason::kNoFeasibleTree;
  const auto reject_doc = json::parse(session_trace_json(rejected));
  ASSERT_TRUE(reject_doc.ok()) << reject_doc.error;
  ASSERT_EQ(reject_doc.value["traceEvents"].elements.size(), 1u);
  EXPECT_EQ(reject_doc.value["traceEvents"].elements[0]["args"]["verdict"]
                .string_value,
            "rejected");
}

#if MUERP_TELEMETRY_ENABLED

TEST(FlightRecorder, AssignsLaneTaggedSequentialIds) {
  SessionRecorderOptions options;
  options.lane = 3;
  SessionRecorder recorder(options);
  const std::uint64_t first = recorder.open(draft(1));
  const std::uint64_t second = recorder.open(draft(2));
  EXPECT_EQ(first, (3ull << 32) | 1);
  EXPECT_EQ(second, (3ull << 32) | 2);
  const auto record = recorder.find(first);
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->lane, 3u);
  EXPECT_EQ(record->seq, 1u);
  EXPECT_EQ(record->state, SessionState::kActive);
  EXPECT_FALSE(recorder.find(0).has_value());
  EXPECT_FALSE(recorder.find((3ull << 32) | 99).has_value());
}

TEST(FlightRecorder, RejectionsAndTimeoutsAreAlwaysKept) {
  SessionRecorderOptions options;
  options.happy_keep_per_1024 = 0;  // drop every happy-path completion
  SessionRecorder recorder(options);
  SessionRecord rejected = draft(5);
  rejected.reject_reason = RejectReason::kCapacityGuard;
  recorder.reject(std::move(rejected));
  const std::uint64_t timed_out = recorder.open(draft(6));
  recorder.close(timed_out, SessionState::kTimedOut, 46, 40);
  const std::uint64_t completed = recorder.open(draft(7));
  recorder.close(completed, SessionState::kCompleted, 9, 2);

  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].state, SessionState::kRejected);
  EXPECT_EQ(records[0].reject_reason, RejectReason::kCapacityGuard);
  EXPECT_EQ(records[0].end_slot, records[0].arrival_slot);
  EXPECT_EQ(records[1].state, SessionState::kTimedOut);

  const auto stats = recorder.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.kept, 2u);
  EXPECT_EQ(stats.sampled_out, 1u);
}

TEST(FlightRecorder, HappyPathSamplingFollowsTheIdHash) {
  SessionRecorderOptions options;
  options.lane = 1;
  options.happy_keep_per_1024 = 128;
  SessionRecorder recorder(options);
  std::size_t predicted_kept = 0;
  constexpr int kSessions = 400;
  for (int i = 0; i < kSessions; ++i) {
    const std::uint64_t id = recorder.open(draft(i));
    if ((SessionRecorder::mix(id) & 1023u) < 128u) ++predicted_kept;
    recorder.close(id, SessionState::kCompleted, i + 2, 2);
  }
  const auto stats = recorder.stats();
  EXPECT_EQ(stats.kept, predicted_kept);
  EXPECT_EQ(stats.kept + stats.sampled_out,
            static_cast<std::uint64_t>(kSessions));
  // The hash actually downsamples (128/1024 keeps roughly an eighth).
  EXPECT_LT(stats.kept, kSessions / 4u);
  EXPECT_GT(stats.kept, 0u);
}

TEST(FlightRecorder, SlowCompletionsSurviveSamplingOncePinnedToP99) {
  SessionRecorderOptions options;
  options.happy_keep_per_1024 = 0;
  SessionRecorder recorder(options);
  // Establish a p99 with fast completions (held 1 slot each).
  for (std::uint64_t i = 0; i < SessionRecorder::kMinCompletionsForP99; ++i) {
    recorder.close(recorder.open(draft(i)), SessionState::kCompleted, i + 1,
                   1);
  }
  EXPECT_EQ(recorder.stats().kept, 0u);  // all happy, all sampled out
  EXPECT_EQ(recorder.stats().p99_held_slots, 1u);
  // A completion slower than p99 is tail, kept despite keep-rate 0.
  const std::uint64_t slow = recorder.open(draft(500));
  recorder.close(slow, SessionState::kCompleted, 540, 40);
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].held_slots, 40u);
  EXPECT_EQ(recorder.stats().kept, 1u);
}

TEST(FlightRecorder, RingEvictsOldestBeyondCapacity) {
  SessionRecorderOptions options;
  options.capacity = 4;
  options.happy_keep_per_1024 = 1024;  // keep everything
  SessionRecorder recorder(options);
  for (std::uint64_t i = 0; i < 10; ++i) {
    recorder.close(recorder.open(draft(i)), SessionState::kCompleted, i + 1,
                   1);
  }
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().arrival_slot, 6u);  // oldest surviving
  EXPECT_EQ(records.back().arrival_slot, 9u);
  EXPECT_EQ(recorder.stats().kept, 10u);  // kept counts decisions, not ring
}

TEST(FlightRecorder, FiltersByStateLaneSlotRangeAndLimit) {
  SessionRecorderOptions options;
  options.lane = 2;
  options.happy_keep_per_1024 = 1024;
  SessionRecorder recorder(options);
  for (std::uint64_t i = 0; i < 6; ++i) {
    const std::uint64_t id = recorder.open(draft(i * 10));
    recorder.close(id,
                   i % 2 == 0 ? SessionState::kCompleted
                              : SessionState::kTimedOut,
                   i * 10 + 5, 5);
  }
  recorder.open(draft(100));  // stays active

  SessionFilter timed_out;
  timed_out.state = SessionState::kTimedOut;
  EXPECT_EQ(recorder.records(timed_out).size(), 3u);

  SessionFilter wrong_lane;
  wrong_lane.lane = 9;
  EXPECT_TRUE(recorder.records(wrong_lane).empty());

  SessionFilter slots;
  slots.min_slot = 20;
  slots.max_slot = 40;
  EXPECT_EQ(recorder.records(slots).size(), 3u);

  SessionFilter last_two;
  last_two.limit = 2;
  const auto limited = recorder.records(last_two);
  ASSERT_EQ(limited.size(), 2u);
  // limit keeps the LAST matches; open records sort after finalized ones.
  EXPECT_EQ(limited.back().state, SessionState::kActive);
  EXPECT_EQ(limited.back().arrival_slot, 100u);

  SessionFilter by_algorithm;
  by_algorithm.algorithm = "no-such";
  EXPECT_TRUE(recorder.records(by_algorithm).empty());
}

TEST(FlightRecorder, FinalizeOpenDrainsInSeqOrder) {
  SessionRecorder recorder;
  const std::uint64_t a = recorder.open(draft(1));
  const std::uint64_t b = recorder.open(draft(2));
  recorder.finalize_open(50);
  EXPECT_FALSE(recorder.records({}).empty());
  const auto first = recorder.find(a);
  const auto second = recorder.find(b);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->state, SessionState::kDrained);
  EXPECT_EQ(first->end_slot, 50u);
  EXPECT_EQ(second->state, SessionState::kDrained);
  EXPECT_EQ(recorder.stats().drained, 2u);
  const auto records = recorder.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_LT(records[0].seq, records[1].seq);
}

TEST(FlightRecorder, StatsMergeSumsCountsAndMaxesP99) {
  SessionRecorder::Stats a;
  a.opened = 5;
  a.kept = 2;
  a.p99_held_slots = 3;
  SessionRecorder::Stats b;
  b.opened = 7;
  b.rejected = 1;
  b.p99_held_slots = 9;
  a.merge(b);
  EXPECT_EQ(a.opened, 12u);
  EXPECT_EQ(a.rejected, 1u);
  EXPECT_EQ(a.kept, 2u);
  EXPECT_EQ(a.p99_held_slots, 9u);
}

TEST(FlightRecorder, RecordsJsonDocumentParsesWithStats) {
  SessionRecorder recorder;
  recorder.close(recorder.open(draft(1)), SessionState::kCompleted, 4, 3);
  const std::string body =
      session_records_json(recorder.records(), recorder.stats());
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["count"].number_value,
                   static_cast<double>(recorder.records().size()));
  EXPECT_DOUBLE_EQ(doc.value["stats"]["opened"].number_value, 1.0);
  EXPECT_EQ(doc.value["sessions"].elements.size(),
            recorder.records().size());
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(FlightRecorder, StubIsInertButServesValidEmptyDocuments) {
  SessionRecorder recorder;
  EXPECT_EQ(recorder.open(draft(1)), 0u);
  EXPECT_EQ(recorder.reject(draft(2)), 0u);
  recorder.close(1, SessionState::kCompleted, 3, 2);
  recorder.finalize_open(9);
  EXPECT_TRUE(recorder.records().empty());
  EXPECT_FALSE(recorder.find(1).has_value());
  EXPECT_EQ(recorder.stats().opened, 0u);
  const auto doc =
      json::parse(session_records_json(recorder.records(), recorder.stats()));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["count"].number_value, 0.0);
  EXPECT_TRUE(doc.value["sessions"].elements.empty());
  EXPECT_EQ(capture_routing_work(), RoutingWork{});
}

#endif  // MUERP_TELEMETRY_ENABLED

}  // namespace
}  // namespace muerp::support::telemetry
