#include "support/telemetry/http_exporter.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "support/json.hpp"
#include "support/telemetry/telemetry.hpp"

namespace muerp::support::telemetry {
namespace {

/// Blocking one-shot HTTP client: sends `request` to 127.0.0.1:`port` and
/// returns the whole response (the server closes after one response).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(HttpExporter, ServesMetricsOnEphemeralPort) {
  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.start(&error)) << error;
  ASSERT_NE(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  MUERP_COUNTER_ADD("http_test/scraped", 5);
  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const std::string body = body_of(response);
  // Valid exposition page in both builds; the counter sample only with
  // telemetry compiled in.
  EXPECT_NE(body.find("# EOF"), std::string::npos);
#if MUERP_TELEMETRY_ENABLED
  EXPECT_NE(body.find("muerp_http_test_scraped_total 5"), std::string::npos);
#endif
  exporter.stop();
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporter, HealthzReportsStatusAndCustomFields) {
  HttpExporter exporter;
  exporter.set_health_fields([](std::string& out) {
    out += ", \"algorithm\": \"alg3\", \"slot\": 12";
  });
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/healthz"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error << "\nbody: " << body;
  EXPECT_EQ(doc.value["status"].string_value, "ok");
  EXPECT_TRUE(doc.value["uptime_s"].is_number());
  EXPECT_TRUE(doc.value["requests"].is_number());
  EXPECT_EQ(doc.value["algorithm"].string_value, "alg3");
  EXPECT_DOUBLE_EQ(doc.value["slot"].number_value, 12.0);
  EXPECT_EQ(doc.value["telemetry"].bool_value,
            MUERP_TELEMETRY_ENABLED != 0);
}

TEST(HttpExporter, SnapshotJsonCombinesMetricsAndEvents) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/snapshot.json"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["metrics"].is_object());
  EXPECT_TRUE(doc.value["events"].is_array());
}

TEST(HttpExporter, UnknownPathIs404AndWrongMethodIs405) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  EXPECT_NE(http_get(exporter.port(), "/nope").find("404"),
            std::string::npos);
  const std::string post = http_request(
      exporter.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
  // The acceptor increments after closing, so only the first request is
  // guaranteed counted by the time the second response has been read.
  EXPECT_GE(exporter.requests_served(), 1u);
}

TEST(HttpExporter, StopIsIdempotentAndRestartable) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::uint16_t first_port = exporter.port();
  EXPECT_NE(first_port, 0);
  exporter.stop();
  exporter.stop();  // idempotent
  EXPECT_FALSE(exporter.running());

  HttpExporter second;
  ASSERT_TRUE(second.start());
  EXPECT_NE(second.port(), 0);
  EXPECT_NE(body_of(http_get(second.port(), "/healthz")).find("ok"),
            std::string::npos);
}

TEST(HttpExporter, IndexPageLinksTheEndpoints) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/"));
  EXPECT_NE(body.find("/metrics"), std::string::npos);
  EXPECT_NE(body.find("/healthz"), std::string::npos);
  EXPECT_NE(body.find("/snapshot.json"), std::string::npos);
}

}  // namespace
}  // namespace muerp::support::telemetry
