#include "support/telemetry/http_exporter.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>

#include "support/json.hpp"
#include "support/telemetry/telemetry.hpp"
#include "support/telemetry/timeseries.hpp"

namespace muerp::support::telemetry {
namespace {

/// Blocking one-shot HTTP client: sends `request` to 127.0.0.1:`port` and
/// returns the whole response (the server closes after one response).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port, "GET " + path +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(HttpExporter, ServesMetricsOnEphemeralPort) {
  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.start(&error)) << error;
  ASSERT_NE(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  MUERP_COUNTER_ADD("http_test/scraped", 5);
  const std::string response = http_get(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const std::string body = body_of(response);
  // Valid exposition page in both builds; the counter sample only with
  // telemetry compiled in.
  EXPECT_NE(body.find("# EOF"), std::string::npos);
#if MUERP_TELEMETRY_ENABLED
  EXPECT_NE(body.find("muerp_http_test_scraped_total 5"), std::string::npos);
#endif
  exporter.stop();
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporter, HealthzReportsStatusAndCustomFields) {
  HttpExporter exporter;
  exporter.set_health_fields([](std::string& out) {
    out += ", \"algorithm\": \"alg3\", \"slot\": 12";
  });
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/healthz"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error << "\nbody: " << body;
  EXPECT_EQ(doc.value["status"].string_value, "ok");
  EXPECT_TRUE(doc.value["uptime_s"].is_number());
  EXPECT_TRUE(doc.value["requests"].is_number());
  EXPECT_EQ(doc.value["algorithm"].string_value, "alg3");
  EXPECT_DOUBLE_EQ(doc.value["slot"].number_value, 12.0);
  EXPECT_EQ(doc.value["telemetry"].bool_value,
            MUERP_TELEMETRY_ENABLED != 0);
}

TEST(HttpExporter, SnapshotJsonCombinesMetricsAndEvents) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/snapshot.json"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["metrics"].is_object());
  EXPECT_TRUE(doc.value["events"].is_array());
}

TEST(HttpExporter, UnknownPathIs404AndWrongMethodIs405) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  EXPECT_NE(http_get(exporter.port(), "/nope").find("404"),
            std::string::npos);
  const std::string post = http_request(
      exporter.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("405"), std::string::npos);
  // The acceptor increments after closing, so only the first request is
  // guaranteed counted by the time the second response has been read.
  EXPECT_GE(exporter.requests_served(), 1u);
}

TEST(HttpExporter, StopIsIdempotentAndRestartable) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::uint16_t first_port = exporter.port();
  EXPECT_NE(first_port, 0);
  exporter.stop();
  exporter.stop();  // idempotent
  EXPECT_FALSE(exporter.running());

  HttpExporter second;
  ASSERT_TRUE(second.start());
  EXPECT_NE(second.port(), 0);
  EXPECT_NE(body_of(http_get(second.port(), "/healthz")).find("ok"),
            std::string::npos);
}

TEST(HttpExporter, IndexPageLinksTheEndpoints) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(exporter.port(), "/"));
  EXPECT_NE(body.find("/metrics"), std::string::npos);
  EXPECT_NE(body.find("/healthz"), std::string::npos);
  EXPECT_NE(body.find("/snapshot.json"), std::string::npos);
  EXPECT_NE(body.find("/api/v1/range"), std::string::npos);
}

TEST(HttpExporter, RangeApiWithoutStoreIs404) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.start());
  const std::string response =
      http_get(exporter.port(), "/api/v1/range?metric=x");
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("no time-series store attached"),
            std::string::npos);
  EXPECT_NE(http_get(exporter.port(), "/api/v1/metrics").find("404"),
            std::string::npos);
}

TEST(HttpExporter, RangeApiValidatesItsParameters) {
  TimeSeriesStore store(8);
  HttpExporter exporter;
  exporter.set_time_series(&store);
  ASSERT_TRUE(exporter.start());
  // Missing ?metric=.
  EXPECT_NE(http_get(exporter.port(), "/api/v1/range").find("400"),
            std::string::npos);
  // step > window, zero window, absurd window, unparsable numbers.
  for (const char* bad :
       {"window=1&step=5", "window=0", "step=0", "window=100000000",
        "window=abc", "step=1e999"}) {
    const std::string response = http_get(
        exporter.port(),
        std::string("/api/v1/range?metric=x&") + bad);
    EXPECT_NE(response.find("400"), std::string::npos) << bad;
  }
  // A well-formed query for an unknown metric answers kind "none".
  const std::string body = body_of(
      http_get(exporter.port(), "/api/v1/range?metric=nope&window=4&step=1"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_EQ(doc.value["kind"].string_value, "none");
  EXPECT_TRUE(doc.value["points"].elements.empty());
}

TEST(HttpExporter, OversizedRequestHeadIs431) {
  HttpExporter::Options options;
  options.max_request_bytes = 512;
  HttpExporter exporter(options);
  ASSERT_TRUE(exporter.start());
  const std::string padding(2048, 'x');
  const std::string response = http_request(
      exporter.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\nX-Pad: " +
                           padding + "\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("431"), std::string::npos) << response;
  // The exporter keeps serving afterwards.
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200"),
            std::string::npos);
}

TEST(HttpExporter, StalledClientIsDroppedByRecvTimeout) {
  HttpExporter::Options options;
  options.recv_timeout_ms = 100;
  HttpExporter exporter(options);
  ASSERT_TRUE(exporter.start());
  // A complete request line but no terminating CRLFCRLF: the server waits
  // out the recv timeout, then answers what it has instead of pinning the
  // acceptor forever.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string response = http_request(
      exporter.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
  // And an untouched connection (nothing sent) is dropped uncounted.
  EXPECT_NE(http_get(exporter.port(), "/healthz").find("200"),
            std::string::npos);
}

#if MUERP_TELEMETRY_ENABLED

TEST(HttpExporter, RangeApiServesSeriesFromAttachedStore) {
  static const Counter counter("http_test/range_counter");
  static const Histogram histogram("http_test/range_hist");
  constexpr std::uint64_t kSecond = 1'000'000'000ull;

  TimeSeriesStore store(16);
  Snapshot cumulative;
  cumulative.counters.resize(counter.id() + 1, 0);
  cumulative.histograms.resize(histogram.id() + 1);
  store.append(100 * kSecond, cumulative);  // baseline
  cumulative.counters[counter.id()] = 7;
  cumulative.histograms[histogram.id()].count = 3;
  cumulative.histograms[histogram.id()].sum = 18.0;
  cumulative.histograms[histogram.id()].buckets[3] = 3;  // {5, 6, 7}
  store.append(101 * kSecond, cumulative);

  HttpExporter exporter;
  exporter.set_time_series(&store);
  ASSERT_TRUE(exporter.start());

  const std::string counter_body = body_of(http_get(
      exporter.port(),
      "/api/v1/range?metric=http_test/range_counter&window=4&step=1"));
  const auto counter_doc = json::parse(counter_body);
  ASSERT_TRUE(counter_doc.ok()) << counter_doc.error;
  EXPECT_EQ(counter_doc.value["kind"].string_value, "counter");
  EXPECT_DOUBLE_EQ(counter_doc.value["samples"].number_value, 2.0);
  const auto& counter_points = counter_doc.value["points"].elements;
  ASSERT_FALSE(counter_points.empty());
  EXPECT_DOUBLE_EQ(counter_points.back()["value"].number_value, 7.0);

  const std::string hist_body = body_of(http_get(
      exporter.port(),
      "/api/v1/range?metric=http_test/range_hist&window=4&step=1"));
  const auto hist_doc = json::parse(hist_body);
  ASSERT_TRUE(hist_doc.ok()) << hist_doc.error;
  EXPECT_EQ(hist_doc.value["kind"].string_value, "histogram");
  const auto& hist_points = hist_doc.value["points"].elements;
  ASSERT_FALSE(hist_points.empty());
  EXPECT_NEAR(hist_points.back()["p50"].number_value,
              4.0 + 4.0 * (2.0 / 3.0), 1e-9);
  EXPECT_DOUBLE_EQ(hist_points.back()["p95"].number_value, 8.0);
  EXPECT_DOUBLE_EQ(hist_points.back()["p99"].number_value, 8.0);

  const std::string index_body =
      body_of(http_get(exporter.port(), "/api/v1/metrics"));
  const auto index_doc = json::parse(index_body);
  ASSERT_TRUE(index_doc.ok()) << index_doc.error;
  EXPECT_DOUBLE_EQ(index_doc.value["samples"].number_value, 2.0);
  bool listed = false;
  for (const auto& entry : index_doc.value["metrics"].elements) {
    if (entry["name"].string_value == "http_test/range_counter") {
      listed = true;
      EXPECT_EQ(entry["kind"].string_value, "counter");
    }
  }
  EXPECT_TRUE(listed);
}

TEST(HttpExporter, RangeApiClampsWindowsBeyondRetainedHistory) {
  static const Counter counter("http_test/range_clamp_counter");
  constexpr std::uint64_t kSecond = 1'000'000'000ull;

  TimeSeriesStore store(16);
  Snapshot cumulative;
  cumulative.counters.resize(counter.id() + 1, 0);
  store.append(100 * kSecond, cumulative);  // baseline
  cumulative.counters[counter.id()] = 7;
  store.append(101 * kSecond, cumulative);
  cumulative.counters[counter.id()] = 9;
  store.append(150 * kSecond, cumulative);

  HttpExporter exporter;
  exporter.set_time_series(&store);
  ASSERT_TRUE(exporter.start());

  // A window far larger than the retained span: the start saturates to the
  // oldest sample instead of underflowing past t = 0, and every sample is
  // served.
  const std::string wide_body = body_of(http_get(
      exporter.port(),
      "/api/v1/range?metric=http_test/range_clamp_counter"
      "&window=86400&step=86400"));
  const auto wide_doc = json::parse(wide_body);
  ASSERT_TRUE(wide_doc.ok()) << wide_doc.error;
  EXPECT_EQ(wide_doc.value["kind"].string_value, "counter");
  ASSERT_FALSE(wide_doc.value["points"].elements.empty());

  // A small window anchored at the newest sample (t = 150 s) excludes the
  // burst of 7 increments recorded around t = 101 s: only the final 2
  // increments remain visible.
  const std::string narrow_body = body_of(http_get(
      exporter.port(),
      "/api/v1/range?metric=http_test/range_clamp_counter"
      "&window=10&step=10"));
  const auto narrow_doc = json::parse(narrow_body);
  ASSERT_TRUE(narrow_doc.ok()) << narrow_doc.error;
  const auto& narrow_points = narrow_doc.value["points"].elements;
  ASSERT_EQ(narrow_points.size(), 1u);
  EXPECT_DOUBLE_EQ(narrow_points[0]["t_s"].number_value, 150.0);
  EXPECT_DOUBLE_EQ(narrow_points[0]["value"].number_value, 2.0 / 10.0);
}

#else  // MUERP_TELEMETRY_ENABLED

TEST(HttpExporter, RangeApiServesEmptySeriesWhenTelemetryOff) {
  TimeSeriesStore store(8);
  HttpExporter exporter;
  exporter.set_time_series(&store);
  ASSERT_TRUE(exporter.start());
  const std::string body = body_of(http_get(
      exporter.port(), "/api/v1/range?metric=x&window=4&step=1"));
  const auto doc = json::parse(body);
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_EQ(doc.value["kind"].string_value, "none");
  EXPECT_TRUE(doc.value["points"].elements.empty());
  const std::string index =
      body_of(http_get(exporter.port(), "/api/v1/metrics"));
  const auto index_doc = json::parse(index);
  ASSERT_TRUE(index_doc.ok()) << index_doc.error;
  EXPECT_TRUE(index_doc.value["metrics"].elements.empty());
}

#endif  // MUERP_TELEMETRY_ENABLED

TEST(HttpExporter, CustomRoutesServeGetAndPostWithBody) {
  HttpExporter exporter;
  exporter.add_route("GET", "/custom", [](const HttpRequest& request) {
    return HttpExporter::response(200, "text/plain",
                                  "query=" + request.query);
  });
  exporter.add_route("POST", "/echo", [](const HttpRequest& request) {
    return HttpExporter::response(200, "application/json", request.body);
  });
  ASSERT_TRUE(exporter.start());

  const std::string get = http_get(exporter.port(), "/custom?a=1");
  EXPECT_NE(get.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(get), "query=a=1");

  const std::string payload = R"({"k": 7})";
  const std::string post = http_request(
      exporter.port(),
      "POST /echo HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Type: application/json\r\nContent-Length: " +
          std::to_string(payload.size()) + "\r\n\r\n" + payload);
  EXPECT_NE(post.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(post), payload);
}

TEST(HttpExporter, MethodMismatchIs405JsonWithAllowHeader) {
  HttpExporter exporter;
  exporter.add_route("POST", "/only-post", [](const HttpRequest&) {
    return HttpExporter::response(200, "text/plain", "ok");
  });
  ASSERT_TRUE(exporter.start());

  const std::string response = http_get(exporter.port(), "/only-post");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(response.find("Allow: POST"), std::string::npos);
  const auto doc = json::parse(body_of(response));
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_NE(doc.value["error"].string_value.find("not allowed"),
            std::string::npos);
  EXPECT_NE(doc.value["error"].string_value.find("POST"), std::string::npos);

  // The built-in routes get the same treatment: /metrics is GET-only.
  const std::string post = http_request(
      exporter.port(),
      "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos);
  EXPECT_NE(post.find("Allow: GET"), std::string::npos);
}

TEST(HttpExporter, AddRouteReplacesSamePairAndCanShadowBuiltins) {
  HttpExporter exporter;
  exporter.add_route("GET", "/v", [](const HttpRequest&) {
    return HttpExporter::response(200, "text/plain", "one");
  });
  exporter.add_route("GET", "/v", [](const HttpRequest&) {
    return HttpExporter::response(200, "text/plain", "two");
  });
  // Shadowing a built-in (method, path) replaces the built-in handler.
  exporter.add_route("GET", "/healthz", [](const HttpRequest&) {
    return HttpExporter::response(200, "application/json",
                                  "{\"status\": \"shadowed\"}");
  });
  ASSERT_TRUE(exporter.start());
  EXPECT_EQ(body_of(http_get(exporter.port(), "/v")), "two");
  EXPECT_NE(body_of(http_get(exporter.port(), "/healthz")).find("shadowed"),
            std::string::npos);
}

TEST(HttpExporter, OversizedBodyIs413) {
  HttpExporter::Options options;
  options.max_body_bytes = 64;
  HttpExporter exporter(options);
  exporter.add_route("POST", "/sink", [](const HttpRequest&) {
    return HttpExporter::response(200, "text/plain", "ok");
  });
  ASSERT_TRUE(exporter.start());
  const std::string big(1024, 'x');
  const std::string response = http_request(
      exporter.port(),
      "POST /sink HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
      "Content-Length: " +
          std::to_string(big.size()) + "\r\n\r\n" + big);
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos);
}

}  // namespace
}  // namespace muerp::support::telemetry
