#include "support/union_find.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace muerp::support {
namespace {

TEST(UnionFind, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.set_size(i), 1u);
  }
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.set_size(0), 2u);
}

TEST(UnionFind, UniteSameSetReturnsFalse) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_FALSE(uf.unite(0, 0));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.unite(0, 1);
  uf.unite(2, 3);
  EXPECT_FALSE(uf.connected(0, 3));
  uf.unite(1, 2);
  EXPECT_TRUE(uf.connected(0, 3));
  EXPECT_EQ(uf.set_size(3), 4u);
}

TEST(UnionFind, ChainCollapsesToOneSet) {
  constexpr std::size_t kN = 1000;
  UnionFind uf(kN);
  for (std::size_t i = 0; i + 1 < kN; ++i) uf.unite(i, i + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_TRUE(uf.connected(0, kN - 1));
  EXPECT_EQ(uf.set_size(kN / 2), kN);
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind uf(10);
  uf.unite(0, 9);
  uf.unite(3, 4);
  uf.reset();
  EXPECT_EQ(uf.set_count(), 10u);
  EXPECT_FALSE(uf.connected(0, 9));
  EXPECT_EQ(uf.set_size(3), 1u);
}

TEST(UnionFind, EmptyStructure) {
  UnionFind uf(0);
  EXPECT_EQ(uf.set_count(), 0u);
  EXPECT_EQ(uf.size(), 0u);
}

/// Property: against a naive partition model over random operations.
class UnionFindRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnionFindRandomOps, AgreesWithNaiveModel) {
  constexpr std::size_t kN = 64;
  Rng rng(GetParam());
  UnionFind uf(kN);
  std::vector<std::size_t> model(kN);  // model[i] = naive group label
  for (std::size_t i = 0; i < kN; ++i) model[i] = i;

  for (int op = 0; op < 500; ++op) {
    const auto a = static_cast<std::size_t>(rng.uniform_index(kN));
    const auto b = static_cast<std::size_t>(rng.uniform_index(kN));
    if (rng.bernoulli(0.5)) {
      const bool merged = uf.unite(a, b);
      EXPECT_EQ(merged, model[a] != model[b]);
      if (model[a] != model[b]) {
        const std::size_t from = model[b];
        const std::size_t to = model[a];
        for (auto& label : model) {
          if (label == from) label = to;
        }
      }
    } else {
      EXPECT_EQ(uf.connected(a, b), model[a] == model[b]);
    }
  }

  std::set<std::size_t> labels(model.begin(), model.end());
  EXPECT_EQ(uf.set_count(), labels.size());
  std::map<std::size_t, std::size_t> sizes;
  for (std::size_t label : model) ++sizes[label];
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(uf.set_size(i), sizes[model[i]]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionFindRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace muerp::support
