#include "support/table.hpp"

#include <gtest/gtest.h>

#include <string>

namespace muerp::support {
namespace {

TEST(FormatRate, ZeroAndScientific) {
  EXPECT_EQ(format_rate(0.0), "0");
  EXPECT_EQ(format_rate(3.14159e-4), "3.142e-04");
  EXPECT_EQ(format_rate(1.0), "1.000e+00");
}

TEST(Table, RendersHeaderAndRows) {
  Table t("Fig X", {"param", "Alg-2", "Alg-3"});
  t.add_row("10", {1e-3, 2e-4});
  t.add_row("20", {0.0, 5e-5});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Fig X"), std::string::npos);
  EXPECT_NE(out.find("Alg-2"), std::string::npos);
  EXPECT_NE(out.find("1.000e-03"), std::string::npos);
  EXPECT_NE(out.find("5.000e-05"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t("title", {"a", "b"});
  t.add_text_row({"has,comma", "has\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvHeaderFirst) {
  Table t("title", {"x", "y"});
  t.add_row("1", {2.0});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv.substr(0, 4), "x,y\n");
}

TEST(Table, ColumnsAreAligned) {
  Table t("align", {"p", "value"});
  t.add_row("longlabel", {1.0});
  t.add_row("s", {2.0});
  const std::string out = t.to_string();
  // Both data rows must place the value column at the same offset.
  const auto pos1 = out.find("1.000e+00");
  const auto pos2 = out.find("2.000e+00");
  ASSERT_NE(pos1, std::string::npos);
  ASSERT_NE(pos2, std::string::npos);
  const auto line_start = [&](std::size_t pos) {
    return pos - out.rfind('\n', pos) - 1;
  };
  EXPECT_EQ(line_start(pos1), line_start(pos2));
}

}  // namespace
}  // namespace muerp::support
