#include "ctl/mailbox.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ctl/command_registry.hpp"

namespace muerp::ctl {
namespace {

using namespace std::chrono_literals;

TEST(ControlMailbox, SubmitBlocksUntilDrainRunsTheAction) {
  ControlMailbox mailbox;
  std::atomic<bool> ran{false};
  CommandResult result;
  std::thread submitter([&] {
    result = mailbox.submit([&] {
      ran = true;
      return CommandResult::success("42");
    });
  });
  // The action must not run until the loop thread drains.
  ASSERT_TRUE(mailbox.wait_pending(1000ms));
  EXPECT_FALSE(ran.load());
  EXPECT_EQ(mailbox.drain(), 1u);
  submitter.join();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.result_json, "42");
}

TEST(ControlMailbox, WakeFiresOnEverySubmit) {
  ControlMailbox mailbox;
  std::atomic<int> wakes{0};
  mailbox.set_wake([&] { ++wakes; });
  std::thread loop([&] {
    for (int drained = 0; drained < 2;) {
      drained += static_cast<int>(mailbox.drain());
      std::this_thread::sleep_for(1ms);
    }
  });
  mailbox.submit([] { return CommandResult::success(); });
  mailbox.submit([] { return CommandResult::success(); });
  loop.join();
  EXPECT_EQ(wakes.load(), 2);
}

TEST(ControlMailbox, ActionsRunInArrivalOrder) {
  ControlMailbox mailbox;
  std::vector<int> order;
  // The wake callback fires after each enqueue, so it is an exact "entry i
  // is in the deque" signal: thread i submits only once i entries are
  // queued, making the arrival order deterministically 0, 1, 2, 3.
  std::atomic<int> queued{0};
  mailbox.set_wake([&queued] { ++queued; });
  std::vector<std::thread> submitters;
  for (int i = 0; i < 4; ++i) {
    submitters.emplace_back([&mailbox, &order, &queued, i] {
      while (queued.load() != i) std::this_thread::yield();
      mailbox.submit([&order, i] {
        order.push_back(i);
        return CommandResult::success();
      });
    });
  }
  while (queued.load() != 4) std::this_thread::yield();
  EXPECT_EQ(mailbox.drain(), 4u);
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(ControlMailbox, ThrowingActionBecomesInternalError) {
  ControlMailbox mailbox;
  CommandResult result;
  std::thread submitter([&] {
    result = mailbox.submit(
        []() -> CommandResult { throw std::runtime_error("bad"); });
  });
  ASSERT_TRUE(mailbox.wait_pending(1000ms));
  EXPECT_EQ(mailbox.drain(), 1u);
  submitter.join();
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, kErrInternal);
}

TEST(ControlMailbox, CloseFailsPendingAndFutureSubmits) {
  ControlMailbox mailbox;
  CommandResult pending;
  std::thread submitter([&] {
    pending = mailbox.submit([] { return CommandResult::success(); });
  });
  ASSERT_TRUE(mailbox.wait_pending(1000ms));
  mailbox.close();
  submitter.join();
  EXPECT_FALSE(pending.ok);
  EXPECT_EQ(pending.code, kErrShuttingDown);
  EXPECT_TRUE(mailbox.closed());

  const CommandResult after =
      mailbox.submit([] { return CommandResult::success(); });
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.code, kErrShuttingDown);
  mailbox.close();  // idempotent
}

TEST(ControlMailbox, WaitPendingTimesOutWhenIdle) {
  ControlMailbox mailbox;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mailbox.wait_pending(20ms));
  EXPECT_GE(std::chrono::steady_clock::now() - start, 15ms);
}

TEST(ControlMailbox, WaitPendingReturnsOnClose) {
  ControlMailbox mailbox;
  std::thread closer([&] {
    std::this_thread::sleep_for(10ms);
    mailbox.close();
  });
  // Returns (false: nothing pending) well before the full timeout.
  EXPECT_FALSE(mailbox.wait_pending(5000ms));
  closer.join();
}

}  // namespace
}  // namespace muerp::ctl
