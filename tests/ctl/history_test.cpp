#include "ctl/history.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace muerp::ctl {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "muerp_history_" + name + ".bin";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Forges one well-formed frame the way HistoryLog writes it, so tests can
/// hand-build files (and then corrupt them precisely).
std::string forge_frame(const HistoryRecord& r) {
  std::string payload;
  put_u32(payload, r.kind);
  put_u32(payload, 0);  // reserved
  put_u64(payload, r.slots);
  put_u64(payload, r.arrived);
  put_u64(payload, r.admitted);
  put_u64(payload, r.completed);
  put_u64(payload, r.timed_out);
  put_u64(payload, r.rejected);
  std::string frame;
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32(frame, HistoryLog::crc32(payload.data(), payload.size()));
  frame += payload;
  return frame;
}

TEST(HistoryLog, FreshFileAccumulatesAndReplaysAcrossReopens) {
  const std::string path = temp_path("roundtrip");
  std::remove(path.c_str());
  {
    HistoryLog log;
    std::string error;
    ASSERT_TRUE(log.open(path, &error)) << error;
    EXPECT_EQ(log.replayed().records, 0u);
    EXPECT_EQ(log.bytes_truncated(), 0u);
    EXPECT_TRUE(log.begin_run());
    EXPECT_TRUE(log.append({0, 100, 7, 6, 5, 1, 2}));
    EXPECT_TRUE(log.append({0, 50, 3, 3, 3, 0, 0}));
    const HistoryTotals t = log.lifetime();
    EXPECT_EQ(t.runs, 1u);
    EXPECT_EQ(t.records, 3u);
    EXPECT_EQ(t.slots, 150u);
    EXPECT_EQ(t.arrived, 10u);
    EXPECT_EQ(t.admitted, 9u);
    EXPECT_EQ(t.completed, 8u);
    EXPECT_EQ(t.timed_out, 1u);
    EXPECT_EQ(t.rejected, 2u);
    log.close();
  }
  // A second process (simulated) replays the first run and adds its own.
  {
    HistoryLog log;
    ASSERT_TRUE(log.open(path));
    EXPECT_EQ(log.replayed().runs, 1u);
    EXPECT_EQ(log.replayed().slots, 150u);
    EXPECT_TRUE(log.begin_run());
    EXPECT_TRUE(log.append({0, 25, 1, 1, 1, 0, 0}));
    const HistoryTotals t = log.lifetime();
    EXPECT_EQ(t.runs, 2u);
    EXPECT_EQ(t.slots, 175u);
    EXPECT_EQ(t.arrived, 11u);
  }
  std::remove(path.c_str());
}

TEST(HistoryLog, TruncatedTailIsDroppedAndAppendContinues) {
  const std::string path = temp_path("torn");
  std::remove(path.c_str());
  {
    HistoryLog log;
    ASSERT_TRUE(log.open(path));
    ASSERT_TRUE(log.begin_run());
    ASSERT_TRUE(log.append({0, 10, 1, 1, 1, 0, 0}));
  }
  // Tear the last frame mid-write, as a crash between byte N and N+1 would.
  std::string bytes = read_file(path);
  const std::string torn = bytes.substr(0, bytes.size() - 5);
  write_file(path, torn);
  {
    HistoryLog log;
    ASSERT_TRUE(log.open(path));
    EXPECT_EQ(log.replayed().records, 1u);  // only the run marker survived
    EXPECT_EQ(log.replayed().slots, 0u);
    EXPECT_EQ(log.bytes_truncated(), 64u - 5u);  // the torn frame's bytes
    ASSERT_TRUE(log.append({0, 99, 9, 9, 9, 0, 0}));
    EXPECT_EQ(log.lifetime().slots, 99u);
  }
  // The repaired file replays cleanly and in full.
  {
    HistoryLog log;
    ASSERT_TRUE(log.open(path));
    EXPECT_EQ(log.bytes_truncated(), 0u);
    EXPECT_EQ(log.replayed().records, 2u);
    EXPECT_EQ(log.replayed().slots, 99u);
  }
  std::remove(path.c_str());
}

TEST(HistoryLog, CrcMismatchStopsReplayAtLastGoodRecord) {
  const std::string path = temp_path("crc");
  std::remove(path.c_str());
  {
    HistoryLog log;
    ASSERT_TRUE(log.open(path));
    ASSERT_TRUE(log.append({0, 1, 1, 1, 1, 0, 0}));
    ASSERT_TRUE(log.append({0, 2, 2, 2, 2, 0, 0}));
  }
  // Flip one payload byte of the SECOND record; the first must survive.
  std::string bytes = read_file(path);
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x5a);
  write_file(path, bytes);
  HistoryLog log;
  ASSERT_TRUE(log.open(path));
  EXPECT_EQ(log.replayed().records, 1u);
  EXPECT_EQ(log.replayed().slots, 1u);
  EXPECT_EQ(log.bytes_truncated(), 64u);  // the whole corrupt frame
  std::remove(path.c_str());
}

TEST(HistoryLog, ForeignMagicIsRejected) {
  const std::string path = temp_path("foreign");
  write_file(path, "NOTMUERP plus whatever follows");
  HistoryLog log;
  std::string error;
  EXPECT_FALSE(log.open(path, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(log.is_open());
  std::remove(path.c_str());
}

TEST(HistoryLog, ForgedFramesMatchTheWriterFormat) {
  // forge_frame mirrors append() byte for byte: build a file by hand,
  // replay it, and check the totals — this pins the on-disk format.
  const std::string path = temp_path("forged");
  std::string bytes("MUERPHL\x01", 8);
  bytes += forge_frame({1, 0, 0, 0, 0, 0, 0});
  bytes += forge_frame({0, 40, 4, 3, 2, 1, 0});
  // An unknown future kind must be tolerated and not pollute the sums.
  bytes += forge_frame({7, 1000, 1000, 1000, 1000, 1000, 1000});
  write_file(path, bytes);
  HistoryLog log;
  ASSERT_TRUE(log.open(path));
  EXPECT_EQ(log.bytes_truncated(), 0u);
  EXPECT_EQ(log.replayed().runs, 1u);
  EXPECT_EQ(log.replayed().records, 3u);
  EXPECT_EQ(log.replayed().slots, 40u);
  EXPECT_EQ(log.replayed().arrived, 4u);
  std::remove(path.c_str());
}

TEST(HistoryLog, AppendWithoutOpenFailsAndCloseIsIdempotent) {
  HistoryLog log;
  EXPECT_FALSE(log.append({0, 1, 0, 0, 0, 0, 0}));
  log.close();
  log.close();
  EXPECT_EQ(log.lifetime().records, 0u);
}

TEST(HistoryLog, Crc32MatchesKnownVector) {
  // The classic IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
  EXPECT_EQ(HistoryLog::crc32("123456789", 9), 0xCBF43926u);
}

}  // namespace
}  // namespace muerp::ctl
