#include "ctl/command_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "support/json.hpp"

namespace muerp::ctl {
namespace {

support::json::Value parse_ok(const std::string& text) {
  const support::json::ParseResult parsed = support::json::parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.error << " in: " << text;
  return parsed.value;
}

CommandRegistry make_registry() {
  CommandRegistry registry;
  registry.add({"echo",
                "returns its message argument",
                {{"message", ArgType::kString, true, "text to echo"}},
                [](const support::json::Value& args) {
                  return CommandResult::success(
                      json_quote(args["message"].string_value));
                }});
  registry.add({"clamp",
                "rejects values outside [0, 1]",
                {{"value", ArgType::kNumber, true, "probability"}},
                [](const support::json::Value& args) {
                  const double v = args["value"].number_value;
                  if (!(v >= 0.0 && v <= 1.0)) {
                    return CommandResult::failure(kErrOutOfRange,
                                                  "value must be in [0, 1]");
                  }
                  return CommandResult::success(json_number(v));
                }});
  registry.add({"ping", "no arguments", {}, [](const support::json::Value&) {
                  return CommandResult::success("\"pong\"");
                }});
  registry.add({"busy", "always draining", {},
                [](const support::json::Value&) {
                  return CommandResult::failure(kErrDraining,
                                                "daemon is draining");
                }});
  registry.add({"boom", "throws", {}, [](const support::json::Value&) -> CommandResult {
                  throw std::runtime_error("handler exploded");
                }});
  return registry;
}

TEST(CommandRegistry, SuccessEnvelopeRoundTripsThroughJsonReader) {
  const CommandRegistry registry = make_registry();
  const std::string envelope =
      registry.dispatch(R"({"cmd": "echo", "args": {"message": "hi \"there\""}})");
  const support::json::Value doc = parse_ok(envelope);
  ASSERT_TRUE(doc["ok"].is_bool());
  EXPECT_TRUE(doc["ok"].bool_value);
  ASSERT_TRUE(doc["result"].is_string());
  EXPECT_EQ(doc["result"].string_value, "hi \"there\"");
  EXPECT_EQ(doc.find("error"), nullptr);
  EXPECT_EQ(doc.find("code"), nullptr);
  EXPECT_EQ(envelope.back(), '\n');
}

TEST(CommandRegistry, NoArgsCommandAcceptsMissingAndEmptyArgs) {
  const CommandRegistry registry = make_registry();
  for (const char* request :
       {R"({"cmd": "ping"})", R"({"cmd": "ping", "args": {}})"}) {
    const support::json::Value doc = parse_ok(registry.dispatch(request));
    EXPECT_TRUE(doc["ok"].bool_value) << request;
    EXPECT_EQ(doc["result"].string_value, "pong");
  }
}

// The stable error-code table: each failure mode maps to exactly one code.
struct ErrorCase {
  const char* request;
  const char* code;
};

TEST(CommandRegistry, ErrorCodeTable) {
  const CommandRegistry registry = make_registry();
  const ErrorCase cases[] = {
      {"not json at all", kErrBadRequest},
      {R"([1, 2, 3])", kErrBadRequest},
      {R"({"args": {}})", kErrBadRequest},            // missing cmd
      {R"({"cmd": 7})", kErrBadRequest},              // cmd not a string
      {R"({"cmd": "ping", "args": []})", kErrBadRequest},  // args not object
      {R"({"cmd": "ping", "extra": 1})", kErrBadRequest},  // unknown member
      {R"({"cmd": "nope"})", kErrUnknownCommand},
      {R"({"cmd": "echo"})", kErrBadArg},             // required arg missing
      {R"({"cmd": "echo", "args": {"message": 9}})", kErrBadArg},  // type
      {R"({"cmd": "echo", "args": {"message": "x", "junk": 1}})", kErrBadArg},
      {R"({"cmd": "clamp", "args": {"value": 1.5}})", kErrOutOfRange},
      {R"({"cmd": "busy"})", kErrDraining},
      {R"({"cmd": "boom"})", kErrInternal},
  };
  for (const ErrorCase& c : cases) {
    const support::json::Value doc = parse_ok(registry.dispatch(c.request));
    ASSERT_TRUE(doc["ok"].is_bool()) << c.request;
    EXPECT_FALSE(doc["ok"].bool_value) << c.request;
    EXPECT_EQ(doc["code"].string_value, c.code) << c.request;
    EXPECT_TRUE(doc["error"].is_string()) << c.request;
    EXPECT_FALSE(doc["error"].string_value.empty()) << c.request;
  }
}

TEST(CommandRegistry, UnknownCommandListsTheKnownVerbs) {
  const CommandRegistry registry = make_registry();
  const support::json::Value doc =
      parse_ok(registry.dispatch(R"({"cmd": "zzz"})"));
  EXPECT_NE(doc["error"].string_value.find("echo"), std::string::npos);
  EXPECT_NE(doc["error"].string_value.find("ping"), std::string::npos);
}

TEST(CommandRegistry, RunDispatchesWithoutEnvelope) {
  const CommandRegistry registry = make_registry();
  const support::json::ParseResult args =
      support::json::parse(R"({"value": 0.5})");
  ASSERT_TRUE(args.ok());
  const CommandResult result = registry.run("clamp", args.value);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.result_json, json_number(0.5));
}

TEST(CommandRegistry, AddRejectsDuplicatesAndFindIsSorted) {
  CommandRegistry registry = make_registry();
  EXPECT_THROW(registry.add({"echo", "again", {}, nullptr}),
               std::invalid_argument);
  EXPECT_NE(registry.find("echo"), nullptr);
  EXPECT_EQ(registry.find("zzz"), nullptr);
}

TEST(CommandRegistry, DescribeJsonListsCommandsWithSchemas) {
  const CommandRegistry registry = make_registry();
  const support::json::Value doc = parse_ok(registry.describe_json());
  ASSERT_TRUE(doc["commands"].is_array());
  bool found_echo = false;
  for (const support::json::Value& command : doc["commands"].elements) {
    if (command["name"].string_value != "echo") continue;
    found_echo = true;
    EXPECT_EQ(command["summary"].string_value, "returns its message argument");
    ASSERT_EQ(command["args"].elements.size(), 1u);
    EXPECT_EQ(command["args"][0]["name"].string_value, "message");
    EXPECT_TRUE(command["args"][0]["required"].bool_value);
  }
  EXPECT_TRUE(found_echo);
}

TEST(JsonHelpers, QuoteEscapesAndNumberRoundTrips) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
  const support::json::Value n = parse_ok(json_number(0.1));
  EXPECT_EQ(n.number_value, 0.1);  // max_digits10 round-trips bitwise
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

}  // namespace
}  // namespace muerp::ctl
