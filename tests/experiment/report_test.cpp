#include "experiment/report.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace muerp::experiment {
namespace {

ReportOptions tiny_options() {
  ReportOptions options;
  options.repetitions = 2;  // keep the test quick
  options.seed = 7;
  return options;
}

TEST(Report, FigureShapes) {
  const ReportBuilder builder(tiny_options());
  const auto fig5 = builder.fig5_topology();
  EXPECT_EQ(fig5.id, "fig5");
  EXPECT_EQ(fig5.rates.row_count(), 3u);          // three topologies
  EXPECT_EQ(fig5.feasibility.row_count(), 3u);
  EXPECT_EQ(fig5.rates.columns().size(), 6u);     // param + 5 algorithms

  EXPECT_EQ(builder.fig6a_users().rates.row_count(), 6u);
  EXPECT_EQ(builder.fig8b_swap_rate().rates.row_count(), 4u);
}

TEST(Report, AllFiguresInPaperOrder) {
  const ReportBuilder builder(tiny_options());
  const auto figures = builder.all_figures();
  ASSERT_EQ(figures.size(), 7u);
  EXPECT_EQ(figures[0].id, "fig5");
  EXPECT_EQ(figures[1].id, "fig6a");
  EXPECT_EQ(figures[2].id, "fig6b");
  EXPECT_EQ(figures[3].id, "fig7a");
  EXPECT_EQ(figures[4].id, "fig7b");
  EXPECT_EQ(figures[5].id, "fig8a");
  EXPECT_EQ(figures[6].id, "fig8b");
}

TEST(Report, ParallelMatchesSerial) {
  ReportOptions serial = tiny_options();
  serial.parallel = false;
  ReportOptions parallel = tiny_options();
  parallel.parallel = true;
  const auto a = ReportBuilder(serial).fig8a_qubits();
  const auto b = ReportBuilder(parallel).fig8a_qubits();
  EXPECT_EQ(a.rates.to_csv(), b.rates.to_csv());
}

TEST(Report, WritesArtifactDirectory) {
  const std::string dir = ::testing::TempDir() + "/muerp_report";
  std::filesystem::remove_all(dir);
  const ReportBuilder builder(tiny_options());
  ASSERT_TRUE(builder.write_report(dir));

  std::ifstream md(dir + "/REPORT.md");
  ASSERT_TRUE(md.good());
  std::stringstream content;
  content << md.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("Fig. 5"), std::string::npos);
  EXPECT_NE(text.find("Fig. 8(b)"), std::string::npos);
  EXPECT_NE(text.find("| topology |"), std::string::npos);  // markdown table
  // Literal pipes in column names must be escaped, not column separators.
  EXPECT_NE(text.find("\\|U\\|"), std::string::npos);
  EXPECT_EQ(text.find("| |U| |"), std::string::npos);

  for (const char* id : {"fig5", "fig6a", "fig6b", "fig7a", "fig7b", "fig8a",
                         "fig8b"}) {
    EXPECT_TRUE(std::filesystem::exists(dir + "/" + id + ".csv")) << id;
  }
}

TEST(Report, DeterministicAcrossBuilds) {
  const std::string d1 = ::testing::TempDir() + "/muerp_report_a";
  const std::string d2 = ::testing::TempDir() + "/muerp_report_b";
  std::filesystem::remove_all(d1);
  std::filesystem::remove_all(d2);
  const ReportBuilder builder(tiny_options());
  ASSERT_TRUE(builder.write_report(d1));
  ASSERT_TRUE(builder.write_report(d2));
  for (const char* name : {"/REPORT.md", "/fig5.csv"}) {
    std::ifstream f1(d1 + name);
    std::ifstream f2(d2 + name);
    std::stringstream s1;
    std::stringstream s2;
    s1 << f1.rdbuf();
    s2 << f2.rdbuf();
    EXPECT_EQ(s1.str(), s2.str()) << name;
  }
}

TEST(Report, UnwritableDirectoryFails) {
  const ReportBuilder builder(tiny_options());
  EXPECT_FALSE(builder.write_report("/proc/definitely/not/writable"));
}

}  // namespace
}  // namespace muerp::experiment
