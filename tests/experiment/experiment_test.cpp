#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "graph/algorithms.hpp"
#include "network/channel.hpp"

namespace muerp::experiment {
namespace {

Scenario small_scenario() {
  Scenario s;
  s.switch_count = 20;
  s.user_count = 5;
  s.repetitions = 5;
  s.seed = 42;
  return s;
}

TEST(Scenario, InstantiateProducesRequestedShape) {
  const Scenario s = small_scenario();
  const Instance inst = instantiate(s, 0);
  EXPECT_EQ(inst.network.node_count(), 25u);
  EXPECT_EQ(inst.network.users().size(), 5u);
  EXPECT_EQ(inst.network.switches().size(), 20u);
  EXPECT_EQ(inst.users.size(), 5u);
  for (net::NodeId sw : inst.network.switches()) {
    EXPECT_EQ(inst.network.qubits(sw), 4);
  }
  EXPECT_DOUBLE_EQ(inst.network.physical().swap_success, 0.9);
  EXPECT_DOUBLE_EQ(inst.network.physical().attenuation, 1e-4);
}

TEST(Scenario, RepetitionsAreDeterministic) {
  const Scenario s = small_scenario();
  const Instance a = instantiate(s, 3);
  const Instance b = instantiate(s, 3);
  ASSERT_EQ(a.network.graph().edge_count(), b.network.graph().edge_count());
  for (graph::EdgeId e = 0; e < a.network.graph().edge_count(); ++e) {
    EXPECT_EQ(a.network.graph().edge(e).a, b.network.graph().edge(e).a);
    EXPECT_EQ(a.network.graph().edge(e).b, b.network.graph().edge(e).b);
  }
  ASSERT_EQ(a.users.size(), b.users.size());
  for (std::size_t i = 0; i < a.users.size(); ++i) {
    EXPECT_EQ(a.users[i], b.users[i]);
  }
}

TEST(Scenario, RepetitionsDiffer) {
  const Scenario s = small_scenario();
  const Instance a = instantiate(s, 0);
  const Instance b = instantiate(s, 1);
  // Positions are freshly sampled per repetition.
  bool any_diff = false;
  for (std::size_t v = 0; v < a.network.node_count(); ++v) {
    any_diff |= !(a.network.positions()[v] == b.network.positions()[v]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, AllTopologiesInstantiate) {
  for (TopologyKind kind : {TopologyKind::kWaxman, TopologyKind::kWattsStrogatz,
                            TopologyKind::kVolchenkov}) {
    Scenario s = small_scenario();
    s.topology = kind;
    const Instance inst = instantiate(s, 0);
    EXPECT_EQ(inst.network.node_count(), 25u) << topology_name(kind);
    EXPECT_EQ(inst.network.users().size(), 5u) << topology_name(kind);
  }
}

TEST(Scenario, TopologyNames) {
  EXPECT_STREQ(topology_name(TopologyKind::kWaxman), "Waxman");
  EXPECT_STREQ(topology_name(TopologyKind::kWattsStrogatz), "Watts-Strogatz");
  EXPECT_STREQ(topology_name(TopologyKind::kVolchenkov), "Volchenkov");
}

TEST(Scenario, UniformQubitOverride) {
  const Instance inst = instantiate(small_scenario(), 0);
  const auto boosted = net::with_uniform_switch_qubits(inst.network, 10);
  EXPECT_EQ(boosted.node_count(), inst.network.node_count());
  for (net::NodeId sw : boosted.switches()) {
    EXPECT_EQ(boosted.qubits(sw), 10);
  }
  for (net::NodeId u : boosted.users()) {
    EXPECT_TRUE(boosted.is_user(u));
  }
  EXPECT_EQ(boosted.graph().edge_count(), inst.network.graph().edge_count());
}

TEST(Runner, AlgorithmNames) {
  EXPECT_STREQ(algorithm_name(Algorithm::kAlg2Optimal), "Alg-2");
  EXPECT_STREQ(algorithm_name(Algorithm::kAlg3Conflict), "Alg-3");
  EXPECT_STREQ(algorithm_name(Algorithm::kAlg4Prim), "Alg-4");
  EXPECT_STREQ(algorithm_name(Algorithm::kEQCast), "E-Q-CAST");
  EXPECT_STREQ(algorithm_name(Algorithm::kNFusion), "N-Fusion");
}

TEST(Runner, RatesAreProbabilities) {
  const auto result = run_scenario(small_scenario());
  ASSERT_EQ(result.rates.size(), kAllAlgorithms.size());
  for (const auto& row : result.rates) {
    ASSERT_EQ(row.size(), 5u);
    for (double r : row) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(Runner, Alg2DominatesHeuristicsPerInstance) {
  // Algorithm 2 runs under boosted capacity, so per repetition it
  // upper-bounds Algorithms 3 and 4 on the same instance.
  const auto result = run_scenario(small_scenario());
  const auto& alg2 = result.rates[0];
  const auto& alg3 = result.rates[1];
  const auto& alg4 = result.rates[2];
  for (std::size_t r = 0; r < alg2.size(); ++r) {
    EXPECT_GE(alg2[r] * (1.0 + 1e-9), alg3[r]) << "rep " << r;
    EXPECT_GE(alg2[r] * (1.0 + 1e-9), alg4[r]) << "rep " << r;
  }
}

TEST(Runner, MeanAndFeasibleFraction) {
  ScenarioResult result;
  result.rates = {{0.0, 0.5, 0.25, 0.25}};
  EXPECT_DOUBLE_EQ(result.mean_rate(0), 0.25);
  EXPECT_DOUBLE_EQ(result.feasible_fraction(0), 0.75);
}

TEST(Runner, SubsetOfAlgorithms) {
  const std::array algorithms{Algorithm::kAlg3Conflict, Algorithm::kEQCast};
  const auto result = run_scenario(small_scenario(), algorithms);
  EXPECT_EQ(result.rates.size(), 2u);
}

TEST(Runner, ParallelMatchesSerialBitForBit) {
  const Scenario s = small_scenario();
  const auto serial = run_scenario(s);
  for (unsigned threads : {1u, 2u, 4u}) {
    const auto parallel =
        run_scenario_parallel(s, kAllAlgorithms, {}, threads);
    ASSERT_EQ(parallel.rates.size(), serial.rates.size());
    for (std::size_t a = 0; a < serial.rates.size(); ++a) {
      ASSERT_EQ(parallel.rates[a].size(), serial.rates[a].size());
      for (std::size_t rep = 0; rep < serial.rates[a].size(); ++rep) {
        EXPECT_DOUBLE_EQ(parallel.rates[a][rep], serial.rates[a][rep])
            << threads << " threads, algorithm " << a << ", rep " << rep;
      }
    }
  }
}

TEST(Runner, ParallelDefaultThreadCount) {
  const Scenario s = small_scenario();
  const auto result = run_scenario_parallel(s, kAllAlgorithms);
  EXPECT_EQ(result.rates.size(), kAllAlgorithms.size());
  EXPECT_EQ(result.rates[0].size(), s.repetitions);
}

TEST(Runner, DeterministicAcrossCalls) {
  const auto r1 = run_scenario(small_scenario());
  const auto r2 = run_scenario(small_scenario());
  for (std::size_t a = 0; a < r1.rates.size(); ++a) {
    for (std::size_t rep = 0; rep < r1.rates[a].size(); ++rep) {
      EXPECT_DOUBLE_EQ(r1.rates[a][rep], r2.rates[a][rep]);
    }
  }
}

// Regression: a throwing repetition used to escape a worker thread and call
// std::terminate. The runner must join every worker and rethrow the first
// exception on the calling thread instead.
TEST(Runner, ParallelForRepsRethrowsWorkerExceptions) {
  for (const unsigned threads : {1u, 2u, 4u}) {
    std::atomic<std::size_t> completed{0};
    EXPECT_THROW(
        detail::parallel_for_reps(16, threads,
                                  [&](std::size_t rep) {
                                    if (rep == 5) {
                                      throw std::runtime_error("rep 5 failed");
                                    }
                                    completed.fetch_add(1);
                                  }),
        std::runtime_error);
    // Workers were joined, not abandoned: nothing runs after the call.
    const std::size_t snapshot = completed.load();
    EXPECT_LE(snapshot, 15u);
    EXPECT_EQ(completed.load(), snapshot);
  }
}

TEST(Runner, ParallelForRepsRethrowsNonStdExceptions) {
  EXPECT_THROW(
      detail::parallel_for_reps(4, 2, [](std::size_t rep) {
        if (rep == 0) throw 42;  // NOLINT: exercising the catch (...) path
      }),
      int);
}

TEST(Runner, ParallelForRepsCompletesWithoutExceptions) {
  std::atomic<std::size_t> completed{0};
  detail::parallel_for_reps(10, 3,
                            [&](std::size_t) { completed.fetch_add(1); });
  EXPECT_EQ(completed.load(), 10u);
}

}  // namespace
}  // namespace muerp::experiment
