#include "experiment/config.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace muerp::experiment {
namespace {

Scenario parse_ok(const std::string& text) {
  std::istringstream in(text);
  auto result = parse_scenario(in);
  EXPECT_TRUE(std::holds_alternative<Scenario>(result))
      << std::get<std::string>(result);
  return std::get<Scenario>(result);
}

std::string parse_err(const std::string& text) {
  std::istringstream in(text);
  auto result = parse_scenario(in);
  EXPECT_TRUE(std::holds_alternative<std::string>(result));
  return std::holds_alternative<std::string>(result)
             ? std::get<std::string>(result)
             : "";
}

TEST(Config, EmptyKeepsPaperDefaults) {
  const Scenario s = parse_ok("");
  EXPECT_EQ(s.topology, TopologyKind::kWaxman);
  EXPECT_EQ(s.switch_count, 50u);
  EXPECT_EQ(s.user_count, 10u);
  EXPECT_DOUBLE_EQ(s.average_degree, 6.0);
  EXPECT_EQ(s.qubits_per_switch, 4);
  EXPECT_DOUBLE_EQ(s.swap_success, 0.9);
  EXPECT_DOUBLE_EQ(s.attenuation, 1e-4);
  EXPECT_EQ(s.repetitions, 20u);
}

TEST(Config, ParsesAllKeys) {
  const Scenario s = parse_ok(
      "topology = ws\n"
      "switches = 30\n"
      "users = 6\n"
      "degree = 8.5\n"
      "qubits = 6\n"
      "swap = 0.85\n"
      "alpha = 2e-4\n"
      "area = 5000\n"
      "repetitions = 7\n"
      "seed = 99\n");
  EXPECT_EQ(s.topology, TopologyKind::kWattsStrogatz);
  EXPECT_EQ(s.switch_count, 30u);
  EXPECT_EQ(s.user_count, 6u);
  EXPECT_DOUBLE_EQ(s.average_degree, 8.5);
  EXPECT_EQ(s.qubits_per_switch, 6);
  EXPECT_DOUBLE_EQ(s.swap_success, 0.85);
  EXPECT_DOUBLE_EQ(s.attenuation, 2e-4);
  EXPECT_DOUBLE_EQ(s.area_side_km, 5000.0);
  EXPECT_EQ(s.repetitions, 7u);
  EXPECT_EQ(s.seed, 99u);
}

TEST(Config, CommentsAndBlankLines) {
  const Scenario s = parse_ok(
      "# a full-line comment\n"
      "\n"
      "users = 4   # trailing comment\n"
      "   \t  \n"
      "qubits=8\n");
  EXPECT_EQ(s.user_count, 4u);
  EXPECT_EQ(s.qubits_per_switch, 8);
}

TEST(Config, TopologyAliases) {
  EXPECT_EQ(parse_ok("topology = watts-strogatz\n").topology,
            TopologyKind::kWattsStrogatz);
  EXPECT_EQ(parse_ok("topology = volchenkov\n").topology,
            TopologyKind::kVolchenkov);
}

TEST(Config, ErrorsCarryLineNumbers) {
  EXPECT_NE(parse_err("users = 4\nnot a setting\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(parse_err("bogus = 1\n").find("unknown key"), std::string::npos);
  EXPECT_NE(parse_err("swap = 1.5\n").find("(0, 1]"), std::string::npos);
  EXPECT_NE(parse_err("users = -3\n").find("bad user count"),
            std::string::npos);
  EXPECT_NE(parse_err("users =\n").find("missing value"), std::string::npos);
  EXPECT_NE(parse_err("topology = torus\n").find("unknown topology"),
            std::string::npos);
}

TEST(Config, RoundTripsThroughSerializer) {
  Scenario original;
  original.topology = TopologyKind::kVolchenkov;
  original.switch_count = 33;
  original.user_count = 7;
  original.average_degree = 5.25;
  original.qubits_per_switch = 6;
  original.swap_success = 0.75;
  original.attenuation = 3.5e-5;
  original.area_side_km = 2500.0;
  original.repetitions = 11;
  original.seed = 424242;

  std::istringstream in(scenario_to_config(original));
  auto result = parse_scenario(in);
  ASSERT_TRUE(std::holds_alternative<Scenario>(result));
  const Scenario& copy = std::get<Scenario>(result);
  EXPECT_EQ(copy.topology, original.topology);
  EXPECT_EQ(copy.switch_count, original.switch_count);
  EXPECT_EQ(copy.user_count, original.user_count);
  EXPECT_DOUBLE_EQ(copy.average_degree, original.average_degree);
  EXPECT_EQ(copy.qubits_per_switch, original.qubits_per_switch);
  EXPECT_DOUBLE_EQ(copy.swap_success, original.swap_success);
  EXPECT_DOUBLE_EQ(copy.attenuation, original.attenuation);
  EXPECT_DOUBLE_EQ(copy.area_side_km, original.area_side_km);
  EXPECT_EQ(copy.repetitions, original.repetitions);
  EXPECT_EQ(copy.seed, original.seed);
}

TEST(Config, MissingFileReportsError) {
  auto result = parse_scenario_file("/no/such/file.cfg");
  ASSERT_TRUE(std::holds_alternative<std::string>(result));
}

}  // namespace
}  // namespace muerp::experiment
