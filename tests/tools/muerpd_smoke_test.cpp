// End-to-end smoke test for the muerpd daemon: spawn the real binary on an
// ephemeral port, scrape its HTTP plane while the session loop is live, and
// verify a clean bounded-run exit. The binary path is injected by CMake as
// MUERPD_BINARY.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(MuerpdSmoke, ServesMetricsAndExitsCleanly) {
  // Bounded run: ~4000 paced slots at 1 ms leave several seconds of live
  // scraping window, then the daemon exits on its own.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 4000 --slot-ms 1"
                              " --arrival 0.2 --seed 3 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First stdout line announces the bound endpoint:
  //   muerpd: serving on 127.0.0.1:<port>
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  ASSERT_NE(serving.find("muerpd: serving on 127.0.0.1:"), std::string::npos)
      << serving;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Live scrape: a valid exposition page and a healthy health document.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);
  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"algorithm\""), std::string::npos);

  // Drain the remaining output; the daemon must finish its bounded run and
  // exit 0, printing the summary table.
  std::string rest;
  while (std::fgets(line, sizeof line, pipe) != nullptr) rest += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos);
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);
}

TEST(MuerpdSmoke, RejectsUnknownAlgorithm) {
  const std::string command =
      std::string(MUERPD_BINARY) +
      " --port 0 --slots 1 --algorithm no-such-router 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
}

}  // namespace
