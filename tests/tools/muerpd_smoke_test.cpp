// End-to-end smoke test for the muerpd daemon: spawn the real binary on an
// ephemeral port, scrape its HTTP plane while the session loop is live, and
// verify a clean bounded-run exit. The binary path is injected by CMake as
// MUERPD_BINARY.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/telemetry/metrics.hpp"

namespace {

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(MuerpdSmoke, ServesMetricsAndExitsCleanly) {
  // Bounded run: ~4000 paced slots at 1 ms leave several seconds of live
  // scraping window, then the daemon exits on its own.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 4000 --slot-ms 1"
                              " --arrival 0.2 --seed 3 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First stdout line announces the bound endpoint:
  //   muerpd: serving on 127.0.0.1:<port>
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  ASSERT_NE(serving.find("muerpd: serving on 127.0.0.1:"), std::string::npos)
      << serving;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Live scrape: a valid exposition page and a healthy health document.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);
  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"algorithm\""), std::string::npos);

  // Drain the remaining output; the daemon must finish its bounded run and
  // exit 0, printing the summary table.
  std::string rest;
  while (std::fgets(line, sizeof line, pipe) != nullptr) rest += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos);
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);
}

/// A muerpd child spawned directly (no shell) so the test owns its PID and
/// can deliver real signals. stdout arrives over `out`; stderr is dropped.
struct DaemonProcess {
  pid_t pid = -1;
  FILE* out = nullptr;
};

DaemonProcess spawn_muerpd(const std::vector<std::string>& extra_args) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    std::vector<std::string> args = {MUERPD_BINARY};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(MUERPD_BINARY, argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  return {pid, ::fdopen(fds[0], "r")};
}

/// Reads muerpd's announcement line and returns the bound port (0 on parse
/// failure).
std::uint16_t read_serving_port(FILE* out) {
  char line[256] = {};
  if (std::fgets(line, sizeof line, out) == nullptr) return 0;
  const std::string serving(line);
  if (serving.find("muerpd: serving on 127.0.0.1:") == std::string::npos) {
    return 0;
  }
  return static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
}

TEST(MuerpdSmoke, MuerptopOnceRendersLivePanels) {
  // Fast slots and a 50 ms sampler so a fraction of a second of wall time
  // already yields several time-series samples.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 6000 --slot-ms 1"
                              " --arrival 0.3 --seed 5"
                              " --sample-interval-ms 50 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Let the sampler take a handful of snapshots before rendering.
  ::usleep(500 * 1000);

#if MUERP_TELEMETRY_ENABLED
  // The range API serves real non-empty series while the daemon is live.
  const std::string index = http_get(port, "/api/v1/metrics");
  EXPECT_NE(index.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(index.find("muerpd/slots/"), std::string::npos) << index;
#endif

  const std::string top_command =
      std::string(MUERPTOP_BINARY) + " --once --ascii --endpoint 127.0.0.1:" +
      std::to_string(port) + " --window 10 2>/dev/null";
  FILE* top = ::popen(top_command.c_str(), "r");
  ASSERT_NE(top, nullptr);
  std::string dashboard;
  while (std::fgets(line, sizeof line, top) != nullptr) dashboard += line;
  const int top_status = ::pclose(top);
  ASSERT_TRUE(WIFEXITED(top_status));
  EXPECT_EQ(WEXITSTATUS(top_status), 0) << dashboard;

  // The three panels render in every build; the header carries live health.
  EXPECT_NE(dashboard.find("admission"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slot latency (us)"), std::string::npos);
  EXPECT_NE(dashboard.find("p50"), std::string::npos);
  EXPECT_NE(dashboard.find("p95"), std::string::npos);
  EXPECT_NE(dashboard.find("sessions"), std::string::npos);
  EXPECT_NE(dashboard.find("slot "), std::string::npos);
#if MUERP_TELEMETRY_ENABLED
  // With telemetry compiled in the admission panel shows real per-second
  // rates for the active algorithm (series fetched from /api/v1/range).
  EXPECT_NE(dashboard.find("requests/s"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slots/s"), std::string::npos);
#endif

  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MuerpdSmoke, SigtermDrainsAndWritesSnapshot) {
  const std::string snapshot_path =
      ::testing::TempDir() + "muerpd_smoke_snapshot.json";
  std::remove(snapshot_path.c_str());

  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.3",
       "--seed", "7", "--timeout", "50", "--sample-interval-ms", "50",
       "--snapshot-out", snapshot_path});
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.out, nullptr);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // Let it serve a few sessions, then ask for a graceful shutdown.
  ::usleep(300 * 1000);
  EXPECT_NE(http_get(port, "/healthz").find("\"status\": \"ok\""),
            std::string::npos);
  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);

  std::string rest;
  char line[256];
  while (std::fgets(line, sizeof line, daemon.out) != nullptr) rest += line;
  std::fclose(daemon.out);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  ASSERT_TRUE(WIFEXITED(status)) << rest;
  EXPECT_EQ(WEXITSTATUS(status), 0) << rest;
  // The summary table still prints after a signal-initiated drain.
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos) << rest;
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);

  // The farewell snapshot parses as the /snapshot.json document.
  std::ifstream in(snapshot_path);
  ASSERT_TRUE(in.good()) << snapshot_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = muerp::support::json::parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["metrics"].is_object());
  EXPECT_TRUE(doc.value["events"].is_array());
  std::remove(snapshot_path.c_str());
}

TEST(MuerpdSmoke, RejectsUnknownAlgorithm) {
  const std::string command =
      std::string(MUERPD_BINARY) +
      " --port 0 --slots 1 --algorithm no-such-router 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
}

}  // namespace
