// End-to-end smoke test for the muerpd daemon: spawn the real binary on an
// ephemeral port, scrape its HTTP plane while the session loop is live, and
// verify a clean bounded-run exit. The binary path is injected by CMake as
// MUERPD_BINARY.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ctl/client.hpp"
#include "support/json.hpp"
#include "support/telemetry/metrics.hpp"

namespace {

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(MuerpdSmoke, ServesMetricsAndExitsCleanly) {
  // Bounded run: ~4000 paced slots at 1 ms leave several seconds of live
  // scraping window, then the daemon exits on its own.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 4000 --slot-ms 1"
                              " --arrival 0.2 --seed 3 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First stdout line announces the bound endpoint:
  //   muerpd: serving on 127.0.0.1:<port>
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  ASSERT_NE(serving.find("muerpd: serving on 127.0.0.1:"), std::string::npos)
      << serving;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Live scrape: a valid exposition page and a healthy health document.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);
  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"algorithm\""), std::string::npos);

  // Drain the remaining output; the daemon must finish its bounded run and
  // exit 0, printing the summary table.
  std::string rest;
  while (std::fgets(line, sizeof line, pipe) != nullptr) rest += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos);
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);
}

/// A muerpd child spawned directly (no shell) so the test owns its PID and
/// can deliver real signals. stdout arrives over `out`; stderr is dropped.
struct DaemonProcess {
  pid_t pid = -1;
  FILE* out = nullptr;
};

DaemonProcess spawn_muerpd(const std::vector<std::string>& extra_args) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    std::vector<std::string> args = {MUERPD_BINARY};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(MUERPD_BINARY, argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  return {pid, ::fdopen(fds[0], "r")};
}

/// Reads muerpd's announcement line and returns the bound port (0 on parse
/// failure).
std::uint16_t read_serving_port(FILE* out) {
  char line[256] = {};
  if (std::fgets(line, sizeof line, out) == nullptr) return 0;
  const std::string serving(line);
  if (serving.find("muerpd: serving on 127.0.0.1:") == std::string::npos) {
    return 0;
  }
  return static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
}

TEST(MuerpdSmoke, MuerptopOnceRendersLivePanels) {
  // Fast slots and a 50 ms sampler so a fraction of a second of wall time
  // already yields several time-series samples.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 6000 --slot-ms 1"
                              " --arrival 0.3 --seed 5"
                              " --sample-interval-ms 50 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Let the sampler take a handful of snapshots before rendering.
  ::usleep(500 * 1000);

#if MUERP_TELEMETRY_ENABLED
  // The range API serves real non-empty series while the daemon is live.
  const std::string index = http_get(port, "/api/v1/metrics");
  EXPECT_NE(index.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(index.find("muerpd/slots/"), std::string::npos) << index;
#endif

  const std::string top_command =
      std::string(MUERPTOP_BINARY) + " --once --ascii --endpoint 127.0.0.1:" +
      std::to_string(port) + " --window 10 2>/dev/null";
  FILE* top = ::popen(top_command.c_str(), "r");
  ASSERT_NE(top, nullptr);
  std::string dashboard;
  while (std::fgets(line, sizeof line, top) != nullptr) dashboard += line;
  const int top_status = ::pclose(top);
  ASSERT_TRUE(WIFEXITED(top_status));
  EXPECT_EQ(WEXITSTATUS(top_status), 0) << dashboard;

  // The three panels render in every build; the header carries live health.
  EXPECT_NE(dashboard.find("admission"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slot latency (us)"), std::string::npos);
  EXPECT_NE(dashboard.find("p50"), std::string::npos);
  EXPECT_NE(dashboard.find("p95"), std::string::npos);
  EXPECT_NE(dashboard.find("sessions"), std::string::npos);
  EXPECT_NE(dashboard.find("slot "), std::string::npos);
#if MUERP_TELEMETRY_ENABLED
  // With telemetry compiled in the admission panel shows real per-second
  // rates for the active algorithm (series fetched from /api/v1/range).
  EXPECT_NE(dashboard.find("requests/s"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slots/s"), std::string::npos);
#endif

  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MuerpdSmoke, SigtermDrainsAndWritesSnapshot) {
  const std::string snapshot_path =
      ::testing::TempDir() + "muerpd_smoke_snapshot.json";
  std::remove(snapshot_path.c_str());

  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.3",
       "--seed", "7", "--timeout", "50", "--sample-interval-ms", "50",
       "--snapshot-out", snapshot_path});
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.out, nullptr);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // Let it serve a few sessions, then ask for a graceful shutdown.
  ::usleep(300 * 1000);
  EXPECT_NE(http_get(port, "/healthz").find("\"status\": \"ok\""),
            std::string::npos);
  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);

  std::string rest;
  char line[256];
  while (std::fgets(line, sizeof line, daemon.out) != nullptr) rest += line;
  std::fclose(daemon.out);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  ASSERT_TRUE(WIFEXITED(status)) << rest;
  EXPECT_EQ(WEXITSTATUS(status), 0) << rest;
  // The summary table still prints after a signal-initiated drain.
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos) << rest;
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);

  // The farewell snapshot parses as the /snapshot.json document.
  std::ifstream in(snapshot_path);
  ASSERT_TRUE(in.good()) << snapshot_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = muerp::support::json::parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["metrics"].is_object());
  EXPECT_TRUE(doc.value["events"].is_array());
  std::remove(snapshot_path.c_str());
}

/// Issues one ctl command against a live daemon and returns the parsed
/// envelope (ok() false on transport failure — asserted by callers).
muerp::support::json::ParseResult ctl(std::uint16_t port,
                                      const std::string& cmd,
                                      const std::string& args_json = "",
                                      const std::string& token = "") {
  muerp::ctl::HttpResult result;
  std::string error;
  if (!muerp::ctl::ctl_request(std::to_string(port), cmd, args_json, &result,
                               &error, token)) {
    muerp::support::json::ParseResult failed;
    failed.error = "transport: " + error;
    return failed;
  }
  return muerp::support::json::parse(result.body);
}

/// Polls waitpid(WNOHANG) until the child exits or `timeout_ms` elapses.
/// Returns the exit status, or -1 on timeout.
int wait_exit(pid_t pid, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    ::usleep(20 * 1000);
  }
  return -1;
}

/// One row's rendered value from muerpd's exit summary table — exact string
/// (scientific notation), so comparing rows compares the doubles bitwise.
std::string summary_row(const std::string& output, const std::string& label) {
  const std::size_t at = output.find(label);
  if (at == std::string::npos) return "<missing " + label + ">";
  const std::size_t start = at + label.size();
  const std::size_t end = output.find('\n', start);
  std::string value = output.substr(start, end - start);
  // Trim the padding the table aligns with.
  value.erase(0, value.find_first_not_of(' '));
  value.erase(value.find_last_not_of(' ') + 1);
  return value;
}

TEST(MuerpdSmoke, CtlVerbsDriveALiveDaemon) {
  DaemonProcess daemon = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.2",
                                       "--seed", "11", "--timeout", "40"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // status: lifecycle + live counters.
  auto doc = ctl(port, "status");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "running");

  // set/get round-trip a live retune.
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": 0.35})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  doc = ctl(port, "get", R"({"name": "arrival-rate"})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["result"].number_value, 0.35);

  // The stable error codes surface over the wire.
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": 7})");
  EXPECT_FALSE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["code"].string_value, "out_of_range");
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": "fast"})");
  EXPECT_EQ(doc.value["code"].string_value, "bad_arg");
  doc = ctl(port, "get", R"({"name": "lifetime"})");
  EXPECT_EQ(doc.value["code"].string_value, "unsupported");  // no --history
  doc = ctl(port, "nope");
  EXPECT_EQ(doc.value["code"].string_value, "unknown_command");

  // pause/resume transition /healthz state.
  doc = ctl(port, "pause");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"paused\""),
            std::string::npos);
  doc = ctl(port, "resume");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"running\""),
            std::string::npos);

  // snapshot returns the full metrics document inline.
  doc = ctl(port, "snapshot");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["result"]["metrics"].is_object());

  // commands serves the table for discovery.
  doc = ctl(port, "commands");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_FALSE(doc.value["result"]["commands"].elements.empty());

  // drain: arrivals stop, in-flight sessions finish, the daemon exits 0.
  doc = ctl(port, "drain");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "draining");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, PausedThenResumedRunIsBitIdenticalToUnpaused) {
  const std::vector<std::string> args = {
      "--port", "0",       "--slots", "1500", "--slot-ms", "1",
      "--arrival", "0.3",  "--seed",  "21",   "--timeout", "60"};

  // Reference run: plays its 1500 slots without interference.
  DaemonProcess plain = spawn_muerpd(args);
  ASSERT_GT(plain.pid, 0);
  ASSERT_NE(read_serving_port(plain.out), 0);
  std::string plain_output;
  char line[256];
  while (std::fgets(line, sizeof line, plain.out) != nullptr) {
    plain_output += line;
  }
  std::fclose(plain.out);
  int status = 0;
  ASSERT_EQ(::waitpid(plain.pid, &status, 0), plain.pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Same run, paused for ~400 ms in the middle. Commands apply at tick
  // boundaries and the paused loop keeps the deadline grid moving without
  // playing slots, so the slot trajectory must be unchanged.
  DaemonProcess paused = spawn_muerpd(args);
  ASSERT_GT(paused.pid, 0);
  const std::uint16_t port = read_serving_port(paused.out);
  ASSERT_NE(port, 0);
  ::usleep(300 * 1000);
  auto doc = ctl(port, "pause");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value);
  ::usleep(400 * 1000);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"paused\""),
            std::string::npos);
  doc = ctl(port, "resume");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  std::string paused_output;
  while (std::fgets(line, sizeof line, paused.out) != nullptr) {
    paused_output += line;
  }
  std::fclose(paused.out);
  ASSERT_EQ(::waitpid(paused.pid, &status, 0), paused.pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Every session metric row must match EXACTLY (the doubles render with
  // scientific precision, so string equality is bit equality in practice).
  for (const char* label :
       {"slots played", "sessions arrived", "sessions admitted",
        "sessions completed", "sessions timed out", "admitted fraction",
        "mean completion slots", "mean qubit utilization"}) {
    EXPECT_EQ(summary_row(plain_output, label),
              summary_row(paused_output, label))
        << label << "\n--- plain ---\n"
        << plain_output << "\n--- paused ---\n"
        << paused_output;
  }
}

TEST(MuerpdSmoke, RestartedDaemonReportsLifetimeAcrossRuns) {
  const std::string history_path =
      ::testing::TempDir() + "muerpd_smoke_history.bin";
  std::remove(history_path.c_str());

  // Run 1: a bounded unpaced burst; exits on its own, flushing its deltas.
  {
    DaemonProcess first = spawn_muerpd({"--port", "0", "--slots", "600",
                                        "--slot-ms", "0", "--arrival", "0.3",
                                        "--seed", "13", "--timeout", "40",
                                        "--history", history_path});
    ASSERT_GT(first.pid, 0);
    ASSERT_NE(read_serving_port(first.out), 0);
    char line[256];
    while (std::fgets(line, sizeof line, first.out) != nullptr) {
    }
    std::fclose(first.out);
    int status = 0;
    ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Run 2: replays run 1 and serves combined totals over ctl.
  DaemonProcess second = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.3",
                                       "--seed", "14", "--history",
                                       history_path});
  ASSERT_GT(second.pid, 0);
  const std::uint16_t port = read_serving_port(second.out);
  ASSERT_NE(port, 0);
  ::usleep(200 * 1000);
  const auto doc = ctl(port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  const auto& lifetime = doc.value["result"];
  EXPECT_EQ(lifetime["runs"].number_value, 2.0);
  // 600 slots from run 1 plus whatever run 2 played so far.
  EXPECT_GE(lifetime["slots"].number_value, 600.0);
  EXPECT_GT(lifetime["arrived"].number_value, 0.0);

  // Kill run 2 without ceremony; a crash must not poison the file.
  ASSERT_EQ(::kill(second.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  std::fclose(second.out);

  // Run 3: replays both prior runs (torn tail, if any, truncated away).
  DaemonProcess third = spawn_muerpd({"--port", "0", "--slots", "0",
                                      "--slot-ms", "1", "--arrival", "0.3",
                                      "--seed", "15", "--history",
                                      history_path});
  ASSERT_GT(third.pid, 0);
  const std::uint16_t third_port = read_serving_port(third.out);
  ASSERT_NE(third_port, 0);
  const auto after = ctl(third_port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(after.ok()) << after.error;
  ASSERT_TRUE(after.value["ok"].bool_value);
  EXPECT_EQ(after.value["result"]["runs"].number_value, 3.0);
  EXPECT_GE(after.value["result"]["slots"].number_value, 600.0);
  ::kill(third.pid, SIGTERM);
  wait_exit(third.pid, 10000);
  std::fclose(third.out);
  std::remove(history_path.c_str());
}

TEST(MuerpdSmoke, MuerpctlCtlTalksToTheDaemon) {
  DaemonProcess daemon = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.2",
                                       "--seed", "17", "--timeout", "40"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  const std::string base = std::string(MUERPCTL_BINARY) +
                           " ctl status --endpoint 127.0.0.1:" +
                           std::to_string(port) + " 2>/dev/null";
  FILE* pipe = ::popen(base.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) output += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  EXPECT_NE(output.find("\"ok\": true"), std::string::npos) << output;
  EXPECT_NE(output.find("\"state\": \"running\""), std::string::npos);

  // A failing command exits 1 with the envelope on stdout.
  const std::string bad = std::string(MUERPCTL_BINARY) +
                          " ctl get no-such-setting --endpoint 127.0.0.1:" +
                          std::to_string(port) + " 2>/dev/null";
  pipe = ::popen(bad.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  output.clear();
  while (std::fgets(line, sizeof line, pipe) != nullptr) output += line;
  const int bad_status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(bad_status));
  EXPECT_EQ(WEXITSTATUS(bad_status), 1) << output;
  EXPECT_NE(output.find("bad_arg"), std::string::npos) << output;

  ctl(port, "drain");
  const int exit_status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(exit_status, -1);
  std::fclose(daemon.out);
}

/// Body of a raw HTTP response captured by http_get.
std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

/// Runs a muerpctl command line, captures stdout, returns the exit code.
int run_muerpctl(const std::string& args, std::string* output) {
  const std::string command =
      std::string(MUERPCTL_BINARY) + " " + args + " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return -1;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) *output += line;
  const int status = ::pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(MuerpdSmoke, FlightRecorderAndAlertsServeTheTail) {
  // A starved fabric under heavy load: 3 qubits per switch refuse many
  // groups outright, a weak swap and a 4-slot timeout expire most admitted
  // sessions — both tail shapes (rejection, timeout) occur within the first
  // few hundred milliseconds and a rejection burn-rate SLO has real traffic
  // to breach on.
  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.9",
       "--switches", "30", "--users", "8", "--qubits", "3", "--swap", "0.5",
       "--timeout", "4", "--seed", "11", "--sample-interval-ms", "50"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);
  // Enough wall time for sessions to reject/time out and for the sampler to
  // evaluate the alert table at least three times (burn-rate for_count 3).
  ::usleep(700 * 1000);

#if MUERP_TELEMETRY_ENABLED
  // ctl sessions: both tail states are retrievable with full records.
  auto doc = ctl(port, "sessions", R"({"state": "rejected", "limit": 5})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  const auto& rejected = doc.value["result"]["sessions"].elements;
  ASSERT_FALSE(rejected.empty());
  EXPECT_EQ(rejected.back()["state"].string_value, "rejected");
  EXPECT_NE(rejected.back()["reject_reason"].string_value, "none");
  const std::uint64_t rejected_id =
      static_cast<std::uint64_t>(rejected.back()["id"].number_value);

  doc = ctl(port, "sessions", R"({"state": "timed_out", "limit": 5})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  const auto& timed_out = doc.value["result"]["sessions"].elements;
  ASSERT_FALSE(timed_out.empty());
  EXPECT_EQ(timed_out.back()["state"].string_value, "timed_out");
  EXPECT_GT(timed_out.back()["held_slots"].number_value, 0.0);
  const std::uint64_t timed_out_id =
      static_cast<std::uint64_t>(timed_out.back()["id"].number_value);

  // Single-record lookup by id, as a record and as a Chrome trace.
  doc = ctl(port, "session",
            "{\"id\": " + std::to_string(rejected_id) + "}");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "rejected");
  EXPECT_TRUE(doc.value["result"]["group"].is_array());
  doc = ctl(port, "session",
            "{\"id\": " + std::to_string(timed_out_id) +
                ", \"format\": \"trace\"}");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  EXPECT_FALSE(doc.value["result"]["traceEvents"].elements.empty());
  doc = ctl(port, "session", "{\"id\": 425201762305}");  // lane 99, seq 1
  EXPECT_FALSE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["code"].string_value, "not_found");

  // The GET routes serve the same documents.
  const std::string listed = http_get(
      port, "/api/v1/sessions?state=timed_out&limit=3");
  EXPECT_NE(listed.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto listed_doc = muerp::support::json::parse(body_of(listed));
  ASSERT_TRUE(listed_doc.ok()) << listed_doc.error;
  EXPECT_GE(listed_doc.value["count"].number_value, 1.0);
  const std::string traced = http_get(
      port, "/api/v1/session/" + std::to_string(timed_out_id) +
                "?format=trace");
  EXPECT_NE(traced.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(traced.find("traceEvents"), std::string::npos);
  EXPECT_NE(http_get(port, "/api/v1/session/425201762305").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/api/v1/session/abc").find("400"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/api/v1/sessions?state=bogus").find("400"),
            std::string::npos);

  // The default rejection-ratio rule is live against the rejected traffic
  // (this mixed workload rejects ~13% of arrivals — real but sub-threshold).
  std::string alerts = http_get(port, "/api/v1/alerts");
  EXPECT_NE(alerts.find("HTTP/1.1 200 OK"), std::string::npos);
  auto alerts_doc = muerp::support::json::parse(body_of(alerts));
  ASSERT_TRUE(alerts_doc.ok()) << alerts_doc.error;
  bool saw_rejection_rule = false;
  for (const auto& rule : alerts_doc.value["rules"].elements) {
    if (rule["name"].string_value != "rejection-ratio") continue;
    saw_rejection_rule = true;
    EXPECT_GE(rule["evaluations"].number_value, 1.0) << body_of(alerts);
    EXPECT_GT(rule["value"].number_value, 0.0) << body_of(alerts);
  }
  EXPECT_TRUE(saw_rejection_rule);

  // slo verb: list the defaults, then install a burn-rate rule tuned to this
  // workload and watch it fire on the next sampler evaluation.
  doc = ctl(port, "slo");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  EXPECT_FALSE(doc.value["result"]["rules"].elements.empty());
  doc = ctl(port, "slo",
            R"({"action": "set", "name": "smoke-rejections", "kind": "ratio",
                "metric": "session/rejected", "denominator": "session/arrived",
                "threshold": 0.05, "for": 1})");
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  ::usleep(250 * 1000);  // sampler cadence is 50 ms; one breach fires it
  alerts = http_get(port, "/api/v1/alerts");
  alerts_doc = muerp::support::json::parse(body_of(alerts));
  ASSERT_TRUE(alerts_doc.ok()) << alerts_doc.error;
  EXPECT_GE(alerts_doc.value["firing"].number_value, 1.0) << body_of(alerts);
  bool smoke_rule_fired = false;
  for (const auto& rule : alerts_doc.value["rules"].elements) {
    if (rule["name"].string_value != "smoke-rejections") continue;
    smoke_rule_fired = rule["firing"].bool_value;
    EXPECT_GT(rule["value"].number_value, 0.05) << body_of(alerts);
  }
  EXPECT_TRUE(smoke_rule_fired) << body_of(alerts);
  EXPECT_NE(http_get(port, "/healthz").find("\"alerts_firing\""),
            std::string::npos);

  // Remove it (twice: the second is a miss).
  doc = ctl(port, "slo", R"({"action": "remove", "name": "smoke-rejections"})");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  doc = ctl(port, "slo", R"({"action": "remove", "name": "smoke-rejections"})");
  EXPECT_FALSE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["code"].string_value, "not_found");

  // muerpctl renders the same planes from the command line.
  std::string output;
  EXPECT_EQ(run_muerpctl("ctl sessions state=rejected limit=2 --endpoint "
                         "127.0.0.1:" + std::to_string(port), &output), 0)
      << output;
  EXPECT_NE(output.find("\"state\": \"rejected\""), std::string::npos)
      << output;
  output.clear();
  EXPECT_EQ(run_muerpctl("ctl slo --endpoint 127.0.0.1:" +
                         std::to_string(port), &output), 0) << output;
  EXPECT_NE(output.find("rejection-ratio"), std::string::npos) << output;
#else   // MUERP_TELEMETRY_ENABLED
  // An OFF build serves the same endpoints as empty-but-valid documents.
  const std::string sessions = http_get(port, "/api/v1/sessions");
  EXPECT_NE(sessions.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto sessions_doc = muerp::support::json::parse(body_of(sessions));
  ASSERT_TRUE(sessions_doc.ok()) << sessions_doc.error;
  EXPECT_DOUBLE_EQ(sessions_doc.value["count"].number_value, 0.0);
  EXPECT_TRUE(sessions_doc.value["sessions"].elements.empty());
  const std::string alerts = http_get(port, "/api/v1/alerts");
  EXPECT_NE(alerts.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto alerts_doc = muerp::support::json::parse(body_of(alerts));
  ASSERT_TRUE(alerts_doc.ok()) << alerts_doc.error;
  EXPECT_DOUBLE_EQ(alerts_doc.value["firing"].number_value, 0.0);
#endif  // MUERP_TELEMETRY_ENABLED

  ctl(port, "drain");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, NetworkPlaneServesTopologyLinksAndExplain) {
  // The same starved fabric as the flight-recorder smoke: rejections and
  // admissions both occur quickly, so the link ledger has occupancy,
  // attempts, and contention to report.
  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.9",
       "--switches", "30", "--users", "8", "--qubits", "3", "--swap", "0.5",
       "--timeout", "4", "--seed", "11", "--sample-interval-ms", "50"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);
  ::usleep(500 * 1000);

  // Topology: static attributes render in every build.
  const std::string topology = http_get(port, "/api/v1/topology");
  EXPECT_NE(topology.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto topo_doc = muerp::support::json::parse(body_of(topology));
  ASSERT_TRUE(topo_doc.ok()) << topo_doc.error;
  EXPECT_EQ(topo_doc.value["nodes"].elements.size(), 38u);  // 30 + 8
  ASSERT_FALSE(topo_doc.value["edges"].elements.empty());
  EXPECT_EQ(topo_doc.value["switches"].elements.size(), 30u);
  const auto& first_edge = topo_doc.value["edges"].elements[0];
  EXPECT_GT(first_edge["length_km"].number_value, 0.0);
  EXPECT_TRUE(first_edge["utilization"].is_number());

  // The SVG heatmap is a finished vector document.
  const std::string svg = http_get(port, "/api/v1/topology.svg");
  EXPECT_NE(svg.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(svg.find("image/svg+xml"), std::string::npos);
  const std::string svg_body = body_of(svg);
  EXPECT_EQ(svg_body.rfind("<svg", 0), 0u);
  EXPECT_NE(svg_body.find("</svg>"), std::string::npos);
  EXPECT_NE(svg_body.find("muerpd link utilization"), std::string::npos);

  // Bad query parameters answer 400, not garbage documents.
  EXPECT_NE(http_get(port, "/api/v1/links?sort=hotness").find("400"),
            std::string::npos);
  EXPECT_NE(http_get(port, "/api/v1/explain/abc").find("400"),
            std::string::npos);

  const std::string links = http_get(port, "/api/v1/links?sort=util&limit=5");
  EXPECT_NE(links.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto links_doc = muerp::support::json::parse(body_of(links));
  ASSERT_TRUE(links_doc.ok()) << links_doc.error;

#if MUERP_TELEMETRY_ENABLED
  // The hot-links query serves a live, sorted, truncated document.
  const auto& hot = links_doc.value["links"].elements;
  ASSERT_EQ(hot.size(), 5u);
  EXPECT_GE(hot[0]["utilization"].number_value,
            hot[4]["utilization"].number_value);
  EXPECT_GT(hot[0]["attempts"].number_value, 0.0);

  // explain joins a real tail record with its lane's saturated links.
  auto doc = ctl(port, "sessions", R"({"state": "rejected", "limit": 1})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  const auto& rejected = doc.value["result"]["sessions"].elements;
  ASSERT_FALSE(rejected.empty());
  const std::uint64_t rejected_id =
      static_cast<std::uint64_t>(rejected.back()["id"].number_value);
  const std::string explained = http_get(
      port, "/api/v1/explain/" + std::to_string(rejected_id));
  EXPECT_NE(explained.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto explain_doc = muerp::support::json::parse(body_of(explained));
  ASSERT_TRUE(explain_doc.ok()) << explain_doc.error;
  EXPECT_TRUE(explain_doc.value["found"].bool_value) << body_of(explained);
  EXPECT_EQ(explain_doc.value["session"]["state"].string_value, "rejected");
  EXPECT_TRUE(explain_doc.value["saturated_links"]["edges"].is_array());

  // The ctl verbs serve the same documents.
  doc = ctl(port, "topology");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  EXPECT_EQ(doc.value["result"]["switches"].elements.size(), 30u);
  doc = ctl(port, "links", R"({"sort": "losses", "limit": 3})");
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  EXPECT_EQ(doc.value["result"]["links"].elements.size(), 3u);
  doc = ctl(port, "explain", "{\"id\": " + std::to_string(rejected_id) + "}");
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  EXPECT_TRUE(doc.value["result"]["found"].bool_value);

  // The exposition page carries the hot-link gauges and the per-reason
  // rejection counters this workload generates.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("muerp_net_link_util_top0"), std::string::npos);
  EXPECT_NE(metrics.find("muerp_net_link_util_pct"), std::string::npos);
  EXPECT_NE(metrics.find("muerp_muerpd_rejects_"), std::string::npos);

  // muerpctl renders the network plane from the command line.
  std::string output;
  EXPECT_EQ(run_muerpctl("ctl links sort=util limit=2 --endpoint 127.0.0.1:" +
                         std::to_string(port), &output), 0)
      << output;
  EXPECT_NE(output.find("\"utilization\""), std::string::npos) << output;
  output.clear();
  EXPECT_EQ(run_muerpctl("ctl explain " + std::to_string(rejected_id) +
                         " --endpoint 127.0.0.1:" + std::to_string(port),
                         &output), 0)
      << output;
  EXPECT_NE(output.find("\"found\": true"), std::string::npos) << output;
#else   // MUERP_TELEMETRY_ENABLED
  // OFF build: empty-but-valid documents with the same shapes.
  EXPECT_DOUBLE_EQ(links_doc.value["count"].number_value, 0.0);
  EXPECT_TRUE(links_doc.value["links"].elements.empty());
  EXPECT_DOUBLE_EQ(first_edge["held"].number_value, 0.0);
  const std::string explained = http_get(port, "/api/v1/explain/12345");
  EXPECT_NE(explained.find("HTTP/1.1 200 OK"), std::string::npos);
  const auto explain_doc = muerp::support::json::parse(body_of(explained));
  ASSERT_TRUE(explain_doc.ok()) << explain_doc.error;
  EXPECT_FALSE(explain_doc.value["found"].bool_value);
  EXPECT_TRUE(explain_doc.value["session"].is_null());
#endif  // MUERP_TELEMETRY_ENABLED

  // An unknown id still answers 200 with a found:false join in every build.
  const std::string missing = http_get(port, "/api/v1/explain/425201762305");
  EXPECT_NE(missing.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(missing.find("\"found\": false"), std::string::npos);

  ctl(port, "drain");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, CtlTokenGuardsThePostPlane) {
  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.2",
       "--seed", "23", "--timeout", "40", "--ctl-token", "smoke-secret"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // No token: the command plane answers 401 with the JSON envelope and a
  // WWW-Authenticate challenge; nothing executes.
  auto doc = ctl(port, "status");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_FALSE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["code"].string_value, "unauthorized");
  doc = ctl(port, "status", "", "wrong-token");
  EXPECT_EQ(doc.value["code"].string_value, "unauthorized");

  // The read-only GET plane stays open — the token guards mutations.
  EXPECT_NE(http_get(port, "/healthz").find("HTTP/1.1 200 OK"),
            std::string::npos);

  // The right token goes through.
  doc = ctl(port, "status", "", "smoke-secret");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "running");

  // muerpctl --token end to end: authorized exits 0, bare exits 1.
  std::string output;
  EXPECT_EQ(run_muerpctl("ctl status --token smoke-secret --endpoint "
                         "127.0.0.1:" + std::to_string(port), &output), 0)
      << output;
  EXPECT_NE(output.find("\"ok\": true"), std::string::npos) << output;
  output.clear();
  EXPECT_EQ(run_muerpctl("ctl status --endpoint 127.0.0.1:" +
                         std::to_string(port), &output), 1) << output;
  EXPECT_NE(output.find("unauthorized"), std::string::npos) << output;

  ctl(port, "drain", "", "smoke-secret");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, SamplerSurvivesRetuneWhilePaused) {
  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.2",
       "--seed", "29", "--timeout", "40", "--sample-interval-ms", "500"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // Pause the loop, retune the sampler while paused, resume. The restart
  // must take even though the slot loop is not playing.
  auto doc = ctl(port, "pause");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value);
  doc = ctl(port, "set", R"({"name": "sample-interval-ms", "value": 50})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  doc = ctl(port, "get", R"({"name": "sample-interval-ms"})");
  EXPECT_TRUE(doc.value["ok"].bool_value);
#if MUERP_TELEMETRY_ENABLED
  // The stub sampler of an OFF build reports interval 0; only a real
  // sampler echoes the retuned cadence back.
  EXPECT_DOUBLE_EQ(doc.value["result"].number_value, 50.0);
#endif
  doc = ctl(port, "resume");
  EXPECT_TRUE(doc.value["ok"].bool_value);

#if MUERP_TELEMETRY_ENABLED
  // Samples keep accumulating on the new 50 ms cadence.
  const auto samples_of = [port] {
    const auto doc = muerp::support::json::parse(
        body_of(http_get(port, "/api/v1/metrics")));
    return doc.ok() ? doc.value["samples"].number_value : -1.0;
  };
  const double before = samples_of();
  ASSERT_GE(before, 0.0);
  ::usleep(400 * 1000);
  EXPECT_GT(samples_of(), before);
#endif

  ctl(port, "drain");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, HistoryLifetimeCarriesRejectionOnlyTraffic) {
  const std::string history_path =
      ::testing::TempDir() + "muerpd_smoke_rejections.bin";
  std::remove(history_path.c_str());

  // Run 1: one qubit per switch relays nothing, so every arrival is
  // rejected — the run's whole story is in the admitted/rejected delta
  // fields. The unpaced burst finishes inside the 250 ms flush throttle, so
  // ONLY the forced shutdown flush writes it; dropping that delta (the old
  // throttle bug) would lose the run entirely.
  {
    DaemonProcess first = spawn_muerpd(
        {"--port", "0", "--slots", "400", "--slot-ms", "0", "--arrival",
         "0.9", "--switches", "20", "--users", "8", "--qubits", "1",
         "--seed", "19", "--history", history_path});
    ASSERT_GT(first.pid, 0);
    ASSERT_NE(read_serving_port(first.out), 0);
    char line[256];
    while (std::fgets(line, sizeof line, first.out) != nullptr) {
    }
    std::fclose(first.out);
    int status = 0;
    ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Run 2 replays the file: run 1's rejections survived the shutdown.
  DaemonProcess second = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.0",
       "--seed", "20", "--history", history_path});
  ASSERT_GT(second.pid, 0);
  const std::uint16_t port = read_serving_port(second.out);
  ASSERT_NE(port, 0);
  auto doc = ctl(port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  EXPECT_EQ(doc.value["result"]["runs"].number_value, 2.0);
  EXPECT_GE(doc.value["result"]["slots"].number_value, 400.0);
  const double arrived = doc.value["result"]["arrived"].number_value;
  const double rejected = doc.value["result"]["rejected"].number_value;
  EXPECT_GT(arrived, 0.0);
  EXPECT_GT(rejected, 0.0);

  // A second forced flush right away (well inside the 250 ms throttle) must
  // still answer, and totals never go backwards.
  doc = ctl(port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  EXPECT_GE(doc.value["result"]["arrived"].number_value, arrived);
  EXPECT_GE(doc.value["result"]["rejected"].number_value, rejected);

  ::kill(second.pid, SIGTERM);
  wait_exit(second.pid, 10000);
  std::fclose(second.out);
  std::remove(history_path.c_str());
}

TEST(MuerpdSmoke, RejectsUnknownAlgorithm) {
  const std::string command =
      std::string(MUERPD_BINARY) +
      " --port 0 --slots 1 --algorithm no-such-router 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
}

}  // namespace
