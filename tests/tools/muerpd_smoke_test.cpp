// End-to-end smoke test for the muerpd daemon: spawn the real binary on an
// ephemeral port, scrape its HTTP plane while the session loop is live, and
// verify a clean bounded-run exit. The binary path is injected by CMake as
// MUERPD_BINARY.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ctl/client.hpp"
#include "support/json.hpp"
#include "support/telemetry/metrics.hpp"

namespace {

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::string response;
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n";
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
      ::send(fd, request.data(), request.size(), 0) ==
          static_cast<ssize_t>(request.size())) {
    char buffer[4096];
    ssize_t n = 0;
    while ((n = ::recv(fd, buffer, sizeof buffer, 0)) > 0) {
      response.append(buffer, static_cast<std::size_t>(n));
    }
  }
  ::close(fd);
  return response;
}

TEST(MuerpdSmoke, ServesMetricsAndExitsCleanly) {
  // Bounded run: ~4000 paced slots at 1 ms leave several seconds of live
  // scraping window, then the daemon exits on its own.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 4000 --slot-ms 1"
                              " --arrival 0.2 --seed 3 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);

  // First stdout line announces the bound endpoint:
  //   muerpd: serving on 127.0.0.1:<port>
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  ASSERT_NE(serving.find("muerpd: serving on 127.0.0.1:"), std::string::npos)
      << serving;
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Live scrape: a valid exposition page and a healthy health document.
  const std::string metrics = http_get(port, "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);
  const std::string health = http_get(port, "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"algorithm\""), std::string::npos);

  // Drain the remaining output; the daemon must finish its bounded run and
  // exit 0, printing the summary table.
  std::string rest;
  while (std::fgets(line, sizeof line, pipe) != nullptr) rest += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos);
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);
}

/// A muerpd child spawned directly (no shell) so the test owns its PID and
/// can deliver real signals. stdout arrives over `out`; stderr is dropped.
struct DaemonProcess {
  pid_t pid = -1;
  FILE* out = nullptr;
};

DaemonProcess spawn_muerpd(const std::vector<std::string>& extra_args) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return {};
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return {};
  }
  if (pid == 0) {
    ::close(fds[0]);
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[1]);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) ::dup2(devnull, STDERR_FILENO);
    std::vector<std::string> args = {MUERPD_BINARY};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(MUERPD_BINARY, argv.data());
    ::_exit(127);
  }
  ::close(fds[1]);
  return {pid, ::fdopen(fds[0], "r")};
}

/// Reads muerpd's announcement line and returns the bound port (0 on parse
/// failure).
std::uint16_t read_serving_port(FILE* out) {
  char line[256] = {};
  if (std::fgets(line, sizeof line, out) == nullptr) return 0;
  const std::string serving(line);
  if (serving.find("muerpd: serving on 127.0.0.1:") == std::string::npos) {
    return 0;
  }
  return static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
}

TEST(MuerpdSmoke, MuerptopOnceRendersLivePanels) {
  // Fast slots and a 50 ms sampler so a fraction of a second of wall time
  // already yields several time-series samples.
  const std::string command = std::string(MUERPD_BINARY) +
                              " --port 0 --slots 6000 --slot-ms 1"
                              " --arrival 0.3 --seed 5"
                              " --sample-interval-ms 50 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof line, pipe), nullptr);
  const std::string serving(line);
  const std::uint16_t port = static_cast<std::uint16_t>(
      std::strtoul(serving.c_str() + serving.rfind(':') + 1, nullptr, 10));
  ASSERT_NE(port, 0);

  // Let the sampler take a handful of snapshots before rendering.
  ::usleep(500 * 1000);

#if MUERP_TELEMETRY_ENABLED
  // The range API serves real non-empty series while the daemon is live.
  const std::string index = http_get(port, "/api/v1/metrics");
  EXPECT_NE(index.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(index.find("muerpd/slots/"), std::string::npos) << index;
#endif

  const std::string top_command =
      std::string(MUERPTOP_BINARY) + " --once --ascii --endpoint 127.0.0.1:" +
      std::to_string(port) + " --window 10 2>/dev/null";
  FILE* top = ::popen(top_command.c_str(), "r");
  ASSERT_NE(top, nullptr);
  std::string dashboard;
  while (std::fgets(line, sizeof line, top) != nullptr) dashboard += line;
  const int top_status = ::pclose(top);
  ASSERT_TRUE(WIFEXITED(top_status));
  EXPECT_EQ(WEXITSTATUS(top_status), 0) << dashboard;

  // The three panels render in every build; the header carries live health.
  EXPECT_NE(dashboard.find("admission"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slot latency (us)"), std::string::npos);
  EXPECT_NE(dashboard.find("p50"), std::string::npos);
  EXPECT_NE(dashboard.find("p95"), std::string::npos);
  EXPECT_NE(dashboard.find("sessions"), std::string::npos);
  EXPECT_NE(dashboard.find("slot "), std::string::npos);
#if MUERP_TELEMETRY_ENABLED
  // With telemetry compiled in the admission panel shows real per-second
  // rates for the active algorithm (series fetched from /api/v1/range).
  EXPECT_NE(dashboard.find("requests/s"), std::string::npos) << dashboard;
  EXPECT_NE(dashboard.find("slots/s"), std::string::npos);
#endif

  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(MuerpdSmoke, SigtermDrainsAndWritesSnapshot) {
  const std::string snapshot_path =
      ::testing::TempDir() + "muerpd_smoke_snapshot.json";
  std::remove(snapshot_path.c_str());

  DaemonProcess daemon = spawn_muerpd(
      {"--port", "0", "--slots", "0", "--slot-ms", "1", "--arrival", "0.3",
       "--seed", "7", "--timeout", "50", "--sample-interval-ms", "50",
       "--snapshot-out", snapshot_path});
  ASSERT_GT(daemon.pid, 0);
  ASSERT_NE(daemon.out, nullptr);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // Let it serve a few sessions, then ask for a graceful shutdown.
  ::usleep(300 * 1000);
  EXPECT_NE(http_get(port, "/healthz").find("\"status\": \"ok\""),
            std::string::npos);
  ASSERT_EQ(::kill(daemon.pid, SIGTERM), 0);

  std::string rest;
  char line[256];
  while (std::fgets(line, sizeof line, daemon.out) != nullptr) rest += line;
  std::fclose(daemon.out);
  int status = 0;
  ASSERT_EQ(::waitpid(daemon.pid, &status, 0), daemon.pid);
  ASSERT_TRUE(WIFEXITED(status)) << rest;
  EXPECT_EQ(WEXITSTATUS(status), 0) << rest;
  // The summary table still prints after a signal-initiated drain.
  EXPECT_NE(rest.find("muerpd session service"), std::string::npos) << rest;
  EXPECT_NE(rest.find("sessions arrived"), std::string::npos);

  // The farewell snapshot parses as the /snapshot.json document.
  std::ifstream in(snapshot_path);
  ASSERT_TRUE(in.good()) << snapshot_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto doc = muerp::support::json::parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["metrics"].is_object());
  EXPECT_TRUE(doc.value["events"].is_array());
  std::remove(snapshot_path.c_str());
}

/// Issues one ctl command against a live daemon and returns the parsed
/// envelope (ok() false on transport failure — asserted by callers).
muerp::support::json::ParseResult ctl(std::uint16_t port,
                                      const std::string& cmd,
                                      const std::string& args_json = "") {
  muerp::ctl::HttpResult result;
  std::string error;
  if (!muerp::ctl::ctl_request(std::to_string(port), cmd, args_json, &result,
                               &error)) {
    muerp::support::json::ParseResult failed;
    failed.error = "transport: " + error;
    return failed;
  }
  return muerp::support::json::parse(result.body);
}

/// Polls waitpid(WNOHANG) until the child exits or `timeout_ms` elapses.
/// Returns the exit status, or -1 on timeout.
int wait_exit(pid_t pid, int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    int status = 0;
    const pid_t got = ::waitpid(pid, &status, WNOHANG);
    if (got == pid) return status;
    ::usleep(20 * 1000);
  }
  return -1;
}

/// One row's rendered value from muerpd's exit summary table — exact string
/// (scientific notation), so comparing rows compares the doubles bitwise.
std::string summary_row(const std::string& output, const std::string& label) {
  const std::size_t at = output.find(label);
  if (at == std::string::npos) return "<missing " + label + ">";
  const std::size_t start = at + label.size();
  const std::size_t end = output.find('\n', start);
  std::string value = output.substr(start, end - start);
  // Trim the padding the table aligns with.
  value.erase(0, value.find_first_not_of(' '));
  value.erase(value.find_last_not_of(' ') + 1);
  return value;
}

TEST(MuerpdSmoke, CtlVerbsDriveALiveDaemon) {
  DaemonProcess daemon = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.2",
                                       "--seed", "11", "--timeout", "40"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  // status: lifecycle + live counters.
  auto doc = ctl(port, "status");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "running");

  // set/get round-trip a live retune.
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": 0.35})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  doc = ctl(port, "get", R"({"name": "arrival-rate"})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_DOUBLE_EQ(doc.value["result"].number_value, 0.35);

  // The stable error codes surface over the wire.
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": 7})");
  EXPECT_FALSE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["code"].string_value, "out_of_range");
  doc = ctl(port, "set", R"({"name": "arrival-rate", "value": "fast"})");
  EXPECT_EQ(doc.value["code"].string_value, "bad_arg");
  doc = ctl(port, "get", R"({"name": "lifetime"})");
  EXPECT_EQ(doc.value["code"].string_value, "unsupported");  // no --history
  doc = ctl(port, "nope");
  EXPECT_EQ(doc.value["code"].string_value, "unknown_command");

  // pause/resume transition /healthz state.
  doc = ctl(port, "pause");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"paused\""),
            std::string::npos);
  doc = ctl(port, "resume");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"running\""),
            std::string::npos);

  // snapshot returns the full metrics document inline.
  doc = ctl(port, "snapshot");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_TRUE(doc.value["result"]["metrics"].is_object());

  // commands serves the table for discovery.
  doc = ctl(port, "commands");
  ASSERT_TRUE(doc.ok()) << doc.error;
  EXPECT_FALSE(doc.value["result"]["commands"].elements.empty());

  // drain: arrivals stop, in-flight sessions finish, the daemon exits 0.
  doc = ctl(port, "drain");
  EXPECT_TRUE(doc.value["ok"].bool_value);
  EXPECT_EQ(doc.value["result"]["state"].string_value, "draining");
  const int status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(status, -1) << "daemon did not exit after ctl drain";
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, PausedThenResumedRunIsBitIdenticalToUnpaused) {
  const std::vector<std::string> args = {
      "--port", "0",       "--slots", "1500", "--slot-ms", "1",
      "--arrival", "0.3",  "--seed",  "21",   "--timeout", "60"};

  // Reference run: plays its 1500 slots without interference.
  DaemonProcess plain = spawn_muerpd(args);
  ASSERT_GT(plain.pid, 0);
  ASSERT_NE(read_serving_port(plain.out), 0);
  std::string plain_output;
  char line[256];
  while (std::fgets(line, sizeof line, plain.out) != nullptr) {
    plain_output += line;
  }
  std::fclose(plain.out);
  int status = 0;
  ASSERT_EQ(::waitpid(plain.pid, &status, 0), plain.pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Same run, paused for ~400 ms in the middle. Commands apply at tick
  // boundaries and the paused loop keeps the deadline grid moving without
  // playing slots, so the slot trajectory must be unchanged.
  DaemonProcess paused = spawn_muerpd(args);
  ASSERT_GT(paused.pid, 0);
  const std::uint16_t port = read_serving_port(paused.out);
  ASSERT_NE(port, 0);
  ::usleep(300 * 1000);
  auto doc = ctl(port, "pause");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value);
  ::usleep(400 * 1000);
  EXPECT_NE(http_get(port, "/healthz").find("\"state\": \"paused\""),
            std::string::npos);
  doc = ctl(port, "resume");
  ASSERT_TRUE(doc.value["ok"].bool_value);
  std::string paused_output;
  while (std::fgets(line, sizeof line, paused.out) != nullptr) {
    paused_output += line;
  }
  std::fclose(paused.out);
  ASSERT_EQ(::waitpid(paused.pid, &status, 0), paused.pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  // Every session metric row must match EXACTLY (the doubles render with
  // scientific precision, so string equality is bit equality in practice).
  for (const char* label :
       {"slots played", "sessions arrived", "sessions admitted",
        "sessions completed", "sessions timed out", "admitted fraction",
        "mean completion slots", "mean qubit utilization"}) {
    EXPECT_EQ(summary_row(plain_output, label),
              summary_row(paused_output, label))
        << label << "\n--- plain ---\n"
        << plain_output << "\n--- paused ---\n"
        << paused_output;
  }
}

TEST(MuerpdSmoke, RestartedDaemonReportsLifetimeAcrossRuns) {
  const std::string history_path =
      ::testing::TempDir() + "muerpd_smoke_history.bin";
  std::remove(history_path.c_str());

  // Run 1: a bounded unpaced burst; exits on its own, flushing its deltas.
  {
    DaemonProcess first = spawn_muerpd({"--port", "0", "--slots", "600",
                                        "--slot-ms", "0", "--arrival", "0.3",
                                        "--seed", "13", "--timeout", "40",
                                        "--history", history_path});
    ASSERT_GT(first.pid, 0);
    ASSERT_NE(read_serving_port(first.out), 0);
    char line[256];
    while (std::fgets(line, sizeof line, first.out) != nullptr) {
    }
    std::fclose(first.out);
    int status = 0;
    ASSERT_EQ(::waitpid(first.pid, &status, 0), first.pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Run 2: replays run 1 and serves combined totals over ctl.
  DaemonProcess second = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.3",
                                       "--seed", "14", "--history",
                                       history_path});
  ASSERT_GT(second.pid, 0);
  const std::uint16_t port = read_serving_port(second.out);
  ASSERT_NE(port, 0);
  ::usleep(200 * 1000);
  const auto doc = ctl(port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(doc.ok()) << doc.error;
  ASSERT_TRUE(doc.value["ok"].bool_value) << doc.value["error"].string_value;
  const auto& lifetime = doc.value["result"];
  EXPECT_EQ(lifetime["runs"].number_value, 2.0);
  // 600 slots from run 1 plus whatever run 2 played so far.
  EXPECT_GE(lifetime["slots"].number_value, 600.0);
  EXPECT_GT(lifetime["arrived"].number_value, 0.0);

  // Kill run 2 without ceremony; a crash must not poison the file.
  ASSERT_EQ(::kill(second.pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(second.pid, &status, 0), second.pid);
  std::fclose(second.out);

  // Run 3: replays both prior runs (torn tail, if any, truncated away).
  DaemonProcess third = spawn_muerpd({"--port", "0", "--slots", "0",
                                      "--slot-ms", "1", "--arrival", "0.3",
                                      "--seed", "15", "--history",
                                      history_path});
  ASSERT_GT(third.pid, 0);
  const std::uint16_t third_port = read_serving_port(third.out);
  ASSERT_NE(third_port, 0);
  const auto after = ctl(third_port, "get", R"({"name": "lifetime"})");
  ASSERT_TRUE(after.ok()) << after.error;
  ASSERT_TRUE(after.value["ok"].bool_value);
  EXPECT_EQ(after.value["result"]["runs"].number_value, 3.0);
  EXPECT_GE(after.value["result"]["slots"].number_value, 600.0);
  ::kill(third.pid, SIGTERM);
  wait_exit(third.pid, 10000);
  std::fclose(third.out);
  std::remove(history_path.c_str());
}

TEST(MuerpdSmoke, MuerpctlCtlTalksToTheDaemon) {
  DaemonProcess daemon = spawn_muerpd({"--port", "0", "--slots", "0",
                                       "--slot-ms", "1", "--arrival", "0.2",
                                       "--seed", "17", "--timeout", "40"});
  ASSERT_GT(daemon.pid, 0);
  const std::uint16_t port = read_serving_port(daemon.out);
  ASSERT_NE(port, 0);

  const std::string base = std::string(MUERPCTL_BINARY) +
                           " ctl status --endpoint 127.0.0.1:" +
                           std::to_string(port) + " 2>/dev/null";
  FILE* pipe = ::popen(base.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char line[512];
  while (std::fgets(line, sizeof line, pipe) != nullptr) output += line;
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << output;
  EXPECT_NE(output.find("\"ok\": true"), std::string::npos) << output;
  EXPECT_NE(output.find("\"state\": \"running\""), std::string::npos);

  // A failing command exits 1 with the envelope on stdout.
  const std::string bad = std::string(MUERPCTL_BINARY) +
                          " ctl get no-such-setting --endpoint 127.0.0.1:" +
                          std::to_string(port) + " 2>/dev/null";
  pipe = ::popen(bad.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  output.clear();
  while (std::fgets(line, sizeof line, pipe) != nullptr) output += line;
  const int bad_status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(bad_status));
  EXPECT_EQ(WEXITSTATUS(bad_status), 1) << output;
  EXPECT_NE(output.find("bad_arg"), std::string::npos) << output;

  ctl(port, "drain");
  const int exit_status = wait_exit(daemon.pid, 10000);
  ASSERT_NE(exit_status, -1);
  std::fclose(daemon.out);
}

TEST(MuerpdSmoke, RejectsUnknownAlgorithm) {
  const std::string command =
      std::string(MUERPD_BINARY) +
      " --port 0 --slots 1 --algorithm no-such-router 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  char line[256];
  while (std::fgets(line, sizeof line, pipe) != nullptr) {
  }
  const int status = ::pclose(pipe);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_NE(WEXITSTATUS(status), 0);
}

}  // namespace
