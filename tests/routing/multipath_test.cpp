#include "routing/multipath.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/conflict_free.hpp"
#include "simulation/monte_carlo.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(BundleSuccess, SingleChannelIsItsRate) {
  net::Channel ch;
  ch.rate = 0.37;
  const std::vector<net::Channel> bundle{ch};
  EXPECT_NEAR(bundle_success(bundle), 0.37, 1e-15);
}

TEST(BundleSuccess, TwoChannelsComplement) {
  net::Channel a;
  a.rate = 0.5;
  net::Channel b;
  b.rate = 0.25;
  const std::vector<net::Channel> bundle{a, b};
  EXPECT_NEAR(bundle_success(bundle), 1.0 - 0.5 * 0.75, 1e-15);
}

TEST(BundleSuccess, TinyRatesStayAccurate) {
  net::Channel a;
  a.rate = 1e-12;
  net::Channel b;
  b.rate = 1e-12;
  const std::vector<net::Channel> bundle{a, b};
  EXPECT_NEAR(bundle_success(bundle), 2e-12, 1e-20);
}

TEST(BundleSuccess, CertainChannelSaturates) {
  net::Channel a;
  a.rate = 1.0;
  net::Channel b;
  b.rate = 0.1;
  const std::vector<net::Channel> bundle{a, b};
  EXPECT_DOUBLE_EQ(bundle_success(bundle), 1.0);
}

/// Two users joined by two parallel 2-hop routes with generous qubits.
struct TwoRoutes {
  net::QuantumNetwork net;
  NodeId u0, u1;
};

TwoRoutes two_routes(int qubits) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId s0 = b.add_switch({500, 100}, qubits);
  const NodeId s1 = b.add_switch({500, 600}, qubits);
  for (NodeId sw : {s0, s1}) {
    b.connect_euclidean(u0, sw);
    b.connect_euclidean(sw, u1);
  }
  return {std::move(b).build({1e-3, 0.9}), u0, u1};
}

TEST(Multipath, AddsRedundancyWhenCapacityAllows) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(tree.feasible);
  const auto plan = provision_multipath(fx.net, tree);
  ASSERT_EQ(plan.bundles.size(), 1u);
  EXPECT_GE(plan.redundant_channels, 1u);
  EXPECT_GT(plan.rate, tree.rate);
  EXPECT_GE(plan.bundles[0].channels.size(), 2u);
}

TEST(Multipath, NoCapacityNoRedundancy) {
  // Q = 2 switches: the tree itself consumes everything.
  auto fx = two_routes(2);
  const auto tree = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(tree.feasible);
  const auto plan = provision_multipath(fx.net, tree);
  // One redundant route exists via the second switch (its 2 qubits are
  // free) — but after that nothing more fits.
  EXPECT_LE(plan.redundant_channels, 1u);
  EXPECT_GE(plan.rate, tree.rate);
}

TEST(Multipath, RespectsMaxRedundancy) {
  auto fx = two_routes(20);
  const auto tree = conflict_free(fx.net, fx.net.users());
  MultipathOptions options;
  options.max_redundancy = 1;
  const auto plan = provision_multipath(fx.net, tree, options);
  for (const auto& bundle : plan.bundles) {
    EXPECT_LE(bundle.channels.size(), 2u);  // primary + 1
  }
}

TEST(Multipath, RateIsProductOfBundles) {
  auto fx = two_routes(8);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto plan = provision_multipath(fx.net, tree);
  double product = 1.0;
  for (const auto& bundle : plan.bundles) product *= bundle.bundle_rate;
  EXPECT_NEAR(plan.rate, product, 1e-12 * product);
}

TEST(Multipath, MonteCarloValidatesBundleModel) {
  // The 1 - prod(1 - P_i) closed form must match the physical process in
  // which every bundle member attempts and any success serves the edge.
  auto fx = two_routes(8);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto plan = provision_multipath(fx.net, tree);
  ASSERT_GE(plan.redundant_channels, 1u);
  const sim::MonteCarloSimulator mc(fx.net);
  support::Rng rng(11);
  const auto est = mc.estimate_multipath_rate(plan, 200000, rng);
  EXPECT_NEAR(est.rate, plan.rate, 4.0 * est.std_error + 1e-9);
  // And it must clearly exceed the single-path tree's simulated rate.
  support::Rng rng2(11);
  const auto single = mc.estimate_tree_rate(tree, 200000, rng2);
  EXPECT_GT(est.rate, single.rate);
}

/// Property: on random networks multipath never hurts, never over-commits.
class MultipathProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultipathProperty, MonotoneAndCapacityClean) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 8, {1e-4, 0.9}, rng);
  const auto tree = conflict_free(net, net.users());
  if (!tree.feasible) GTEST_SKIP();
  const auto plan = provision_multipath(net, tree);

  EXPECT_GE(plan.rate, tree.rate * (1.0 - 1e-12));
  // Combined qubit usage of every bundle channel stays within budgets.
  std::vector<int> used(net.node_count(), 0);
  for (const auto& bundle : plan.bundles) {
    EXPECT_GE(bundle.bundle_rate,
              bundle.channels.front().rate * (1.0 - 1e-12));
    for (const auto& ch : bundle.channels) {
      for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
        used[ch.path[i]] += 2;
      }
    }
  }
  for (net::NodeId sw : net.switches()) {
    EXPECT_LE(used[sw], net.qubits(sw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultipathProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace muerp::routing
