#include "routing/fiber_limits.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/channel_finder.hpp"
#include "routing/prim_based.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Three users star-connected to one big hub; all channels share the
/// hub-adjacent fibers only pairwise, but u0's fiber carries two channels
/// when u0 is the tree centre.
struct StarFixture {
  net::QuantumNetwork net;
  NodeId u0, u1, u2, hub;
};

StarFixture star() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({80, 60}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  return {std::move(b).build({1e-4, 0.9}), u0, u1, u2, hub};
}

TEST(JointCapacity, TracksQubitsAndCores) {
  auto fx = star();
  JointCapacity cap(fx.net, 2);
  const auto e = *fx.net.graph().find_edge(fx.u0, fx.hub);
  EXPECT_EQ(cap.free_cores(e), 2);
  EXPECT_EQ(cap.free_qubits(fx.hub), 20);
  const std::vector<NodeId> path{fx.u0, fx.hub, fx.u1};
  cap.commit_channel(path);
  EXPECT_EQ(cap.free_cores(e), 1);
  EXPECT_EQ(cap.free_qubits(fx.hub), 18);
  cap.release_channel(path);
  EXPECT_EQ(cap.free_cores(e), 2);
  EXPECT_EQ(cap.free_qubits(fx.hub), 20);
}

TEST(FiberAwareFinder, MatchesPlainFinderWithAmpleCores) {
  auto fx = star();
  JointCapacity joint(fx.net, 8);
  const net::CapacityState plain_cap(fx.net);
  const ChannelFinder plain(fx.net);
  const auto a = find_best_channel_fiber_aware(fx.net, fx.u0, fx.u1, joint);
  const auto b = plain.find_best_channel(fx.u0, fx.u1, plain_cap);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->path, b->path);
  EXPECT_NEAR(a->rate, b->rate, 1e-15);
}

TEST(FiberAwareFinder, SkipsExhaustedFiber) {
  auto fx = star();
  JointCapacity cap(fx.net, 1);
  const std::vector<NodeId> path{fx.u0, fx.hub, fx.u1};
  cap.commit_channel(path);  // u0-hub and hub-u1 fibers now exhausted
  // u0 can no longer reach anyone: its only fiber has no free core.
  EXPECT_FALSE(
      find_best_channel_fiber_aware(fx.net, fx.u0, fx.u2, cap).has_value());
  // u1 is likewise cut off, but u2's fiber is untouched... and the hub has
  // plenty of qubits — yet every route from u2 ends at an exhausted fiber.
  EXPECT_FALSE(
      find_best_channel_fiber_aware(fx.net, fx.u2, fx.u1, cap).has_value());
}

TEST(PrimFiberAware, SingleCoreStarIsProvablyInfeasible) {
  // Any 3-user tree needs 2 channels, each crossing 2 of the star's 3
  // fibers: 4 fiber slots > 3 single-core fibers. No algorithm can route
  // this — the fiber-aware Prim must detect it.
  auto fx = star();
  JointCapacity cap(fx.net, 1);
  const auto tree = prim_fiber_aware(fx.net, fx.net.users(), 0, cap);
  EXPECT_FALSE(tree.feasible);
}

TEST(PrimFiberAware, TwoCoresSufficeOnTheStar) {
  auto fx = star();
  JointCapacity cap(fx.net, 2);
  const auto tree = prim_fiber_aware(fx.net, fx.net.users(), 0, cap);
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(fx.net, fx.net.users(), tree), "");
  // No fiber may exceed its 2 cores.
  std::vector<int> fiber_use(fx.net.graph().edge_count(), 0);
  for (const auto& ch : tree.channels) {
    for (std::size_t i = 0; i + 1 < ch.path.size(); ++i) {
      ++fiber_use[*fx.net.graph().find_edge(ch.path[i], ch.path[i + 1])];
    }
  }
  for (int use : fiber_use) EXPECT_LE(use, 2);
}

TEST(PrimFiberAware, ZeroCoresIsAlwaysInfeasible) {
  auto fx = star();
  JointCapacity cap(fx.net, 0);
  const auto tree = prim_fiber_aware(fx.net, fx.net.users(), 0, cap);
  EXPECT_FALSE(tree.feasible);
}

/// Property: ample cores reproduce the unlimited-fiber Algorithm 4 exactly;
/// scarce cores never *exceed* it.
class FiberLimitsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FiberLimitsProperty, AmpleCoresMatchUnlimited) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 4, {1e-4, 0.9}, rng);

  const auto unlimited = prim_based_from(net, net.users(), 0);
  JointCapacity ample(net, 100);
  const auto with_ample = prim_fiber_aware(net, net.users(), 0, ample);
  EXPECT_EQ(unlimited.feasible, with_ample.feasible);
  EXPECT_NEAR(unlimited.rate, with_ample.rate,
              1e-12 * std::max(unlimited.rate, 1e-30));

  // Scarce cores: greedy routing is *not* monotone in resources (forced
  // detours can rescue instances the unlimited greedy dead-ends on), so no
  // rate ordering holds; what must hold is validity plus the core budget.
  JointCapacity scarce(net, 1);
  const auto with_scarce = prim_fiber_aware(net, net.users(), 0, scarce);
  EXPECT_EQ(net::validate_tree(net, net.users(), with_scarce), "");
  std::vector<int> fiber_use(net.graph().edge_count(), 0);
  for (const auto& ch : with_scarce.channels) {
    for (std::size_t i = 0; i + 1 < ch.path.size(); ++i) {
      ++fiber_use[*net.graph().find_edge(ch.path[i], ch.path[i + 1])];
    }
  }
  for (int use : fiber_use) EXPECT_LE(use, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FiberLimitsProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::routing
