#include "routing/backup.hpp"

#include <gtest/gtest.h>

#include <set>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/conflict_free.hpp"
#include "simulation/failure.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Two users joined by two fiber-disjoint 2-hop routes.
struct TwoRouteFixture {
  net::QuantumNetwork net;
  NodeId u0, u1, primary_sw, backup_sw;
};

TwoRouteFixture two_routes(int qubits_each) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId s_near = b.add_switch({500, 100}, qubits_each);
  const NodeId s_far = b.add_switch({500, 800}, qubits_each);
  for (NodeId sw : {s_near, s_far}) {
    b.connect_euclidean(u0, sw);
    b.connect_euclidean(sw, u1);
  }
  return {std::move(b).build({1e-4, 0.9}), u0, u1, s_near, s_far};
}

std::set<graph::EdgeId> edge_set(const net::QuantumNetwork& net,
                                 const net::Channel& ch) {
  std::set<graph::EdgeId> edges;
  for (std::size_t i = 0; i + 1 < ch.path.size(); ++i) {
    edges.insert(*net.graph().find_edge(ch.path[i], ch.path[i + 1]));
  }
  return edges;
}

TEST(Backup, FindsDisjointAlternative) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(tree.feasible);
  ASSERT_EQ(tree.channels.size(), 1u);
  EXPECT_EQ(tree.channels[0].path[1], fx.primary_sw);

  const auto plan = plan_backups(fx.net, tree);
  ASSERT_EQ(plan.backups.size(), 1u);
  ASSERT_TRUE(plan.backups[0].has_value());
  EXPECT_EQ(plan.protected_channels, 1u);
  EXPECT_EQ(plan.backups[0]->path[1], fx.backup_sw);

  // Fiber-disjointness.
  const auto primary_edges = edge_set(fx.net, tree.channels[0]);
  for (graph::EdgeId e : edge_set(fx.net, *plan.backups[0])) {
    EXPECT_FALSE(primary_edges.contains(e));
  }
}

TEST(Backup, NoneWhenNoDisjointRouteExists) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId sw = b.add_switch({500, 0}, 8);
  const NodeId u1 = b.add_user({1000, 0});
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const auto plan = plan_backups(net, tree);
  EXPECT_EQ(plan.protected_channels, 0u);
  EXPECT_FALSE(plan.backups[0].has_value());
}

TEST(Backup, RespectsResidualCapacity) {
  // Backup switch has only 2 qubits and the tree already exhausted... no:
  // primary switch exhausted by the tree; backup switch with 0 spare slots
  // cannot host the backup.
  auto fx = two_routes(2);
  const auto tree = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(tree.feasible);
  // Occupy the backup switch's only slot with a fake commitment by building
  // a tree-shaped plan: simulate by checking find_disjoint_backup under a
  // capacity state where the backup switch is full.
  net::CapacityState cap(fx.net);
  cap.commit_channel(tree.channels[0].path);
  const std::vector<NodeId> via_backup{fx.u0, fx.backup_sw, fx.u1};
  cap.commit_channel(via_backup);  // backup switch now full
  EXPECT_FALSE(
      find_disjoint_backup(fx.net, tree.channels[0], cap).has_value());
  // With a free slot it works.
  cap.release_channel(via_backup);
  EXPECT_TRUE(
      find_disjoint_backup(fx.net, tree.channels[0], cap).has_value());
}

TEST(Backup, CombinedCapacityNeverExceeded) {
  support::Rng rng(7);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    topology::WaxmanParams params;
    params.node_count = 40;
    support::Rng gen(seed);
    auto topo = topology::generate_waxman(params, gen);
    const auto net =
        net::assign_random_users(std::move(topo), 6, 4, {1e-4, 0.9}, gen);
    const auto tree = conflict_free(net, net.users());
    if (!tree.feasible) continue;
    const auto plan = plan_backups(net, tree);
    std::vector<int> used(net.node_count(), 0);
    auto charge = [&](const net::Channel& ch) {
      for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
        used[ch.path[i]] += 2;
      }
    };
    for (const auto& ch : tree.channels) charge(ch);
    for (const auto& backup : plan.backups) {
      if (backup) charge(*backup);
    }
    for (net::NodeId sw : net.switches()) {
      EXPECT_LE(used[sw], net.qubits(sw)) << "seed " << seed;
    }
  }
}

// ---- joint (Suurballe) protection ----

TEST(JointProtection, PairsEveryChannelWhenCapacityAllows) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto joint = plan_joint_protection(fx.net, tree);
  ASSERT_TRUE(joint.tree.feasible);
  EXPECT_EQ(joint.backups.protected_channels, 1u);
  EXPECT_EQ(net::validate_tree(fx.net, fx.net.users(), joint.tree), "");
  ASSERT_TRUE(joint.backups.backups[0].has_value());
  // Node-disjoint interiors (stronger than the greedy fiber-disjointness).
  const auto& primary = joint.tree.channels[0];
  const auto& backup = *joint.backups.backups[0];
  for (std::size_t i = 1; i + 1 < primary.path.size(); ++i) {
    for (std::size_t j = 1; j + 1 < backup.path.size(); ++j) {
      EXPECT_NE(primary.path[i], backup.path[j]);
    }
  }
}

TEST(JointProtection, KeepsOriginalWhenNoPairExists) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId sw = b.add_switch({500, 0}, 8);
  const NodeId u1 = b.add_user({1000, 0});
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = conflict_free(net, net.users());
  const auto joint = plan_joint_protection(net, tree);
  EXPECT_EQ(joint.backups.protected_channels, 0u);
  EXPECT_DOUBLE_EQ(joint.protected_rate, tree.rate);
  EXPECT_EQ(joint.tree.channels[0].path, tree.channels[0].path);
}

TEST(JointProtection, CombinedCapacityRespectedOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    topology::WaxmanParams params;
    params.node_count = 40;
    support::Rng gen(seed + 40);
    auto topo = topology::generate_waxman(params, gen);
    const auto net =
        net::assign_random_users(std::move(topo), 5, 6, {1e-4, 0.9}, gen);
    const auto tree = conflict_free(net, net.users());
    if (!tree.feasible) continue;
    const auto joint = plan_joint_protection(net, tree);
    EXPECT_EQ(net::validate_tree(net, net.users(), joint.tree), "");
    std::vector<int> used(net.node_count(), 0);
    auto charge = [&](const net::Channel& ch) {
      for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
        used[ch.path[i]] += 2;
      }
    };
    for (const auto& ch : joint.tree.channels) charge(ch);
    for (const auto& backup : joint.backups.backups) {
      if (backup) charge(*backup);
    }
    for (net::NodeId sw : net.switches()) {
      EXPECT_LE(used[sw], net.qubits(sw)) << "seed " << seed;
    }
  }
}

TEST(JointProtection, SurvivesFailuresAtLeastAsWellAsGreedyOnTrapGraph) {
  // On the fixture where both routes exist, joint planning must deliver a
  // protected plan whose failure-resilient rate matches or beats greedy.
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto greedy = plan_backups(fx.net, tree);
  const auto joint = plan_joint_protection(fx.net, tree);
  const sim::FailureSimulator sim(fx.net, {.failure_prob = 0.15});
  support::Rng r1(9);
  support::Rng r2(9);
  const auto greedy_rate =
      sim.estimate_resilient_rate(tree, &greedy, 100000, r1);
  const auto joint_rate =
      sim.estimate_resilient_rate(joint.tree, &joint.backups, 100000, r2);
  EXPECT_GE(joint_rate.rate + 3.0 * (joint_rate.std_error +
                                     greedy_rate.std_error),
            greedy_rate.rate);
}

// ---- failure simulation ----

TEST(FailureSim, NoFailuresMatchesPlainRate) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto plan = plan_backups(fx.net, tree);
  const sim::FailureSimulator sim(fx.net, {.failure_prob = 0.0});
  support::Rng rng(1);
  const auto est = sim.estimate_resilient_rate(tree, &plan, 100000, rng);
  EXPECT_NEAR(est.rate, tree.rate, 4.0 * est.std_error + 1e-9);
}

TEST(FailureSim, BackupsBeatNoBackupsUnderFailures) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto plan = plan_backups(fx.net, tree);
  const sim::FailureSimulator sim(fx.net, {.failure_prob = 0.2});
  support::Rng r1(2);
  support::Rng r2(2);
  const auto without = sim.estimate_resilient_rate(tree, nullptr, 100000, r1);
  const auto with = sim.estimate_resilient_rate(tree, &plan, 100000, r2);
  EXPECT_GT(with.rate, without.rate + 3.0 * (with.std_error + without.std_error));
}

TEST(FailureSim, AnalyticCheckSingleChannel) {
  // Without backups: success needs both primary fibers up AND the plain
  // channel success: rate = (1-f)^2 * P.
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const double f = 0.1;
  const sim::FailureSimulator sim(fx.net, {.failure_prob = f});
  support::Rng rng(3);
  const auto est = sim.estimate_resilient_rate(tree, nullptr, 200000, rng);
  const double expected = (1.0 - f) * (1.0 - f) * tree.rate;
  EXPECT_NEAR(est.rate, expected, 4.0 * est.std_error + 1e-9);
}

TEST(FailureSim, InfeasibleTreeScoresZero) {
  auto fx = two_routes(4);
  net::EntanglementTree infeasible{{}, 0.0, false};
  const sim::FailureSimulator sim(fx.net, {.failure_prob = 0.1});
  support::Rng rng(4);
  EXPECT_DOUBLE_EQ(
      sim.estimate_resilient_rate(infeasible, nullptr, 100, rng).rate, 0.0);
}

TEST(FailureSim, TotalFailureKillsEverything) {
  auto fx = two_routes(4);
  const auto tree = conflict_free(fx.net, fx.net.users());
  const auto plan = plan_backups(fx.net, tree);
  const sim::FailureSimulator sim(fx.net, {.failure_prob = 1.0});
  support::Rng rng(5);
  EXPECT_DOUBLE_EQ(
      sim.estimate_resilient_rate(tree, &plan, 1000, rng).rate, 0.0);
}

}  // namespace
}  // namespace muerp::routing
