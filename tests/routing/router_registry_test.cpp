// Router facade + RouterRegistry: the registry must expose all seven
// built-ins, and routing through the facade must be bit-identical to the
// legacy free functions on the paper's §V-A default scenario — the facade
// adds telemetry attribution, never behavior.
#include "routing/router.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "network/quantum_network.hpp"
#include "routing/conflict_free.hpp"
#include "routing/local_search.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"

namespace muerp::routing {
namespace {

void expect_same_tree(const net::EntanglementTree& got,
                      const net::EntanglementTree& expected,
                      const std::string& context) {
  EXPECT_EQ(got.feasible, expected.feasible) << context;
  EXPECT_EQ(got.rate, expected.rate) << context;  // bitwise, not approximate
  ASSERT_EQ(got.channels.size(), expected.channels.size()) << context;
  for (std::size_t i = 0; i < got.channels.size(); ++i) {
    EXPECT_EQ(got.channels[i].path, expected.channels[i].path)
        << context << " channel " << i;
    EXPECT_EQ(got.channels[i].rate, expected.channels[i].rate)
        << context << " channel " << i;
  }
}

RoutingRequest request_for(const experiment::Instance& instance,
                           support::Rng* rng = nullptr) {
  RoutingRequest request;
  request.network = &instance.network;
  request.users = instance.users;
  request.rng = rng;
  return request;
}

TEST(RouterRegistry, ListsAllSevenBuiltinsInOrder) {
  const RouterRegistry& registry = RouterRegistry::instance();
  const std::vector<std::string> expected = {
      "alg2", "alg3", "alg4", "eqcast", "nfusion", "alg4ls", "annealing"};
  EXPECT_EQ(registry.names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.at(name).name(), name);
  }
  EXPECT_EQ(registry.at("alg2").display_name(), "Alg-2");
  EXPECT_EQ(registry.at("nfusion").display_name(), "N-Fusion");
  EXPECT_EQ(registry.find("no_such_router"), nullptr);
  EXPECT_FALSE(registry.contains("no_such_router"));
}

TEST(RouterRegistry, UnknownNameThrowsWithTheKnownList) {
  try {
    RouterRegistry::instance().at("bogus");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("bogus"), std::string::npos) << message;
    EXPECT_NE(message.find("alg4"), std::string::npos) << message;
  }
}

TEST(Router, RejectsMalformedRequests) {
  const Router& router = RouterRegistry::instance().at("alg3");
  RoutingRequest request;  // null network
  EXPECT_THROW(router.route_tree(request), std::invalid_argument);

  // An empty user span falls back to network->users(), which is non-empty
  // for any instantiated scenario — so this must succeed.
  experiment::Scenario scenario;
  scenario.repetitions = 1;
  const experiment::Instance instance = experiment::instantiate(scenario, 0);
  request.network = &instance.network;
  request.users = {};
  EXPECT_NO_THROW(router.route_tree(request));
}

// Facade vs. legacy free functions, §V-A defaults (50 switches, 10 users,
// Waxman), several instantiations. Each algorithm must match bit-for-bit.
class RouterEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  experiment::Instance instance_ = experiment::instantiate({}, GetParam());
};

TEST_P(RouterEquivalence, Alg2MatchesOptimalSpecialCaseWithPinnedBudget) {
  const auto& registry = RouterRegistry::instance();
  const auto got = registry.at("alg2").route_tree(request_for(instance_));
  const auto boosted = net::with_uniform_switch_qubits(
      instance_.network, 2 * static_cast<int>(instance_.users.size()));
  expect_same_tree(got, optimal_special_case(boosted, instance_.users),
                   "alg2");

  // pin_alg2_sufficient=false must instead run on the raw network.
  RoutingRequest raw = request_for(instance_);
  raw.options.pin_alg2_sufficient = false;
  expect_same_tree(registry.at("alg2").route_tree(raw),
                   optimal_special_case(instance_.network, instance_.users),
                   "alg2 raw");
}

TEST_P(RouterEquivalence, Alg3MatchesConflictFree) {
  const auto got =
      RouterRegistry::instance().at("alg3").route_tree(request_for(instance_));
  expect_same_tree(got, conflict_free(instance_.network, instance_.users),
                   "alg3");
}

TEST_P(RouterEquivalence, Alg4MatchesPrimBasedOnTheSameRngStream) {
  const auto got = RouterRegistry::instance().at("alg4").route_tree(
      request_for(instance_, &instance_.rng));
  // Same scenario + repetition = same RNG stream for the oracle.
  experiment::Instance oracle = experiment::instantiate({}, GetParam());
  expect_same_tree(got, prim_based(oracle.network, oracle.users, oracle.rng),
                   "alg4");
}

TEST_P(RouterEquivalence, EqcastMatchesExtendedQcast) {
  const auto got = RouterRegistry::instance().at("eqcast").route_tree(
      request_for(instance_));
  expect_same_tree(got,
                   baselines::extended_qcast(instance_.network,
                                             instance_.users),
                   "eqcast");
}

TEST_P(RouterEquivalence, NFusionTreeCarriesThePlanVerbatim) {
  const auto got = RouterRegistry::instance().at("nfusion").route_tree(
      request_for(instance_));
  const baselines::FusionPlan plan =
      baselines::n_fusion(instance_.network, instance_.users);
  EXPECT_EQ(got.feasible, plan.feasible);
  EXPECT_EQ(got.rate, plan.rate);
  ASSERT_EQ(got.channels.size(), plan.channels.size());
  for (std::size_t i = 0; i < got.channels.size(); ++i) {
    EXPECT_EQ(got.channels[i].path, plan.channels[i].path);
  }
}

TEST_P(RouterEquivalence, Alg4LsMatchesPrimPlusImprove) {
  const auto got = RouterRegistry::instance().at("alg4ls").route_tree(
      request_for(instance_, &instance_.rng));
  experiment::Instance oracle = experiment::instantiate({}, GetParam());
  auto expected = prim_based(oracle.network, oracle.users, oracle.rng);
  improve_tree(oracle.network, oracle.users, expected);
  expect_same_tree(got, expected, "alg4ls");
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterEquivalence,
                         ::testing::Values<std::size_t>(0, 1, 2));

TEST(Router, RouteReportsElapsedAndTelemetry) {
  experiment::Scenario scenario;
  const experiment::Instance instance = experiment::instantiate(scenario, 0);
  const RoutingOutcome outcome =
      RouterRegistry::instance().at("alg3").route(request_for(instance));
  EXPECT_GE(outcome.elapsed_ms, 0.0);
  expect_same_tree(outcome.tree,
                   conflict_free(instance.network, instance.users), "route()");
#if MUERP_TELEMETRY_ENABLED
  // The delta must attribute this very call: the router/alg3 span fired
  // once, and Alg-3's Dijkstra counters moved.
  const auto id = support::telemetry::intern_span("router/alg3");
  ASSERT_GT(outcome.tree.channels.size(), 0u);
  ASSERT_GT(outcome.telemetry.spans.size(), id);
  EXPECT_EQ(outcome.telemetry.spans[id].count, 1u);
  EXPECT_FALSE(outcome.telemetry.empty());
#else
  EXPECT_TRUE(outcome.telemetry.empty());
#endif
}

TEST(Runner, NameSelectionMatchesEnumSelection) {
  experiment::Scenario scenario;
  scenario.repetitions = 4;
  const auto by_enum =
      experiment::run_scenario(scenario, experiment::kAllAlgorithms);
  const std::vector<std::string> names(
      experiment::paper_algorithm_names().begin(),
      experiment::paper_algorithm_names().end());
  const auto by_name = experiment::run_scenario(scenario, names);
  EXPECT_EQ(by_enum.rates, by_name.rates);  // bitwise

  const auto parallel = experiment::run_scenario_parallel(scenario, names);
  EXPECT_EQ(parallel.rates, by_name.rates);

#if MUERP_TELEMETRY_ENABLED
  ASSERT_EQ(by_name.telemetry.size(), names.size());
  for (std::size_t a = 0; a < names.size(); ++a) {
    EXPECT_FALSE(by_name.telemetry[a].empty()) << names[a];
    // Deterministic attribution: serial and parallel runs agree exactly on
    // everything but wall-clock (spans count the same, times differ).
    ASSERT_EQ(parallel.telemetry[a].counters.size(),
              by_name.telemetry[a].counters.size());
    EXPECT_EQ(parallel.telemetry[a].counters, by_name.telemetry[a].counters)
        << names[a];
  }
#else
  for (const auto& snapshot : by_name.telemetry) {
    EXPECT_TRUE(snapshot.empty());
  }
#endif
}

TEST(Runner, RunAlgorithmByNameMatchesEnum) {
  experiment::Scenario scenario;
  scenario.repetitions = 1;
  experiment::Instance a = experiment::instantiate(scenario, 0);
  experiment::Instance b = experiment::instantiate(scenario, 0);
  EXPECT_EQ(experiment::run_algorithm(experiment::Algorithm::kAlg4Prim, a),
            experiment::run_algorithm("alg4", b));
  EXPECT_THROW(experiment::run_algorithm("bogus", a), std::out_of_range);
}

}  // namespace
}  // namespace muerp::routing
