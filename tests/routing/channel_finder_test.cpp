#include "routing/channel_finder.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(ChannelFinder, DirectEdgeWhenCheapest) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  const NodeId sw = b.add_switch({50, 400}, 4);
  b.connect_euclidean(u0, u1);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-3, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path, (std::vector<NodeId>{u0, u1}));
  EXPECT_NEAR(ch->rate, std::exp(-1e-3 * 100.0), 1e-12);
}

TEST(ChannelFinder, RelayWhenDirectFiberIsLong) {
  // Direct fiber is hugely long; the 2-hop relay wins despite the swap.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({10000, 0});
  const NodeId sw = b.add_switch({5000, 0}, 2);
  b.connect(u0, u1, 30000.0);  // detour fiber
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path, (std::vector<NodeId>{u0, sw, u1}));
  EXPECT_NEAR(ch->rate, 0.9 * std::exp(-1e-4 * 10000.0), 1e-12);
}

TEST(ChannelFinder, SwapPenaltyFavoursFewerHops) {
  // Equal total length; more hops = more swaps = lower rate.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({300, 0});
  const NodeId s1 = b.add_switch({150, 10}, 4);
  const NodeId s2 = b.add_switch({100, -10}, 4);
  const NodeId s3 = b.add_switch({200, -10}, 4);
  b.connect(u0, s1, 150.0);
  b.connect(s1, u1, 150.0);
  b.connect(u0, s2, 100.0);
  b.connect(s2, s3, 100.0);
  b.connect(s3, u1, 100.0);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path.size(), 3u);  // the 2-hop route through s1
}

TEST(ChannelFinder, NeverRelaysThroughUsers) {
  // u0 - um - u1 chain with an expensive switch detour: the channel must
  // take the detour because user um cannot relay (Def. 2).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId um = b.add_user({100, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId sw = b.add_switch({100, 3000}, 4);
  b.connect_euclidean(u0, um);
  b.connect_euclidean(um, u1);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path, (std::vector<NodeId>{u0, sw, u1}));
}

TEST(ChannelFinder, SkipsExhaustedSwitches) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId good = b.add_switch({100, 0}, 4);
  const NodeId far = b.add_switch({100, 500}, 4);
  b.connect_euclidean(u0, good);
  b.connect_euclidean(good, u1);
  b.connect_euclidean(u0, far);
  b.connect_euclidean(far, u1);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  net::CapacityState cap(net);
  // Exhaust the good switch (2 channels x 2 qubits).
  const std::vector<NodeId> through_good{u0, good, u1};
  cap.commit_channel(through_good);
  cap.commit_channel(through_good);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path, (std::vector<NodeId>{u0, far, u1}));
}

TEST(ChannelFinder, SwitchWithOneQubitCannotRelay) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId sw = b.add_switch({100, 0}, 1);  // < 2 qubits
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  EXPECT_FALSE(finder.find_best_channel(u0, u1, cap).has_value());
}

TEST(ChannelFinder, NoRouteReturnsNullopt) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  b.add_switch({50, 0}, 4);  // isolated switch
  const auto net = std::move(b).build({1e-4, 0.9});
  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  EXPECT_FALSE(finder.find_best_channel(u0, u1, cap).has_value());
}

TEST(ChannelFinder, SingleRunCoversAllUsers) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  const NodeId u2 = b.add_user({0, 100});
  const NodeId sw = b.add_switch({50, 50}, 8);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, sw);
  const auto net = std::move(b).build({1e-4, 0.9});

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto channels = finder.find_best_channels(u0, cap);
  ASSERT_EQ(channels.size(), 2u);
  for (const auto& ch : channels) {
    EXPECT_EQ(ch.source(), u0);
    EXPECT_TRUE(ch.destination() == u1 || ch.destination() == u2);
    // Must agree with the pairwise query.
    const auto direct = finder.find_best_channel(u0, ch.destination(), cap);
    ASSERT_TRUE(direct.has_value());
    EXPECT_NEAR(ch.rate, direct->rate, 1e-15);
  }
}

// ---- Oracle property: Algorithm 1 equals brute-force path enumeration ----

/// All simple switch-interior paths between two users, best rate.
double brute_force_best_rate(const net::QuantumNetwork& net, NodeId src,
                             NodeId dst) {
  double best = 0.0;
  std::vector<NodeId> stack{src};
  std::vector<bool> used(net.node_count(), false);
  used[src] = true;
  auto dfs = [&](auto&& self, NodeId v) -> void {
    if (v == dst) {
      best = std::max(best, net::channel_rate(net, stack));
      return;
    }
    for (const graph::Neighbor& nb : net.graph().neighbors(v)) {
      const NodeId next = nb.node;
      if (used[next]) continue;
      if (next != dst && (!net.is_switch(next) || net.qubits(next) < 2)) {
        continue;
      }
      used[next] = true;
      stack.push_back(next);
      self(self, next);
      stack.pop_back();
      used[next] = false;
    }
  };
  dfs(dfs, src);
  return best;
}

class ChannelFinderOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChannelFinderOracle, MatchesBruteForceOnRandomNetworks) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(10, 0.35, {1000.0, 1000.0}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 3, 4, {1e-3, 0.85}, rng);
  ASSERT_EQ(net.users().size(), 3u);

  const ChannelFinder finder(net);
  const net::CapacityState cap(net);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      const NodeId a = net.users()[i];
      const NodeId b = net.users()[j];
      const double oracle = brute_force_best_rate(net, a, b);
      const auto ch = finder.find_best_channel(a, b, cap);
      if (oracle == 0.0) {
        EXPECT_FALSE(ch.has_value());
      } else {
        ASSERT_TRUE(ch.has_value());
        EXPECT_NEAR(ch->rate, oracle, 1e-9 * oracle);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelFinderOracle,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace muerp::routing
