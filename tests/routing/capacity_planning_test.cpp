#include "routing/capacity_planning.hpp"

#include <gtest/gtest.h>

#include "experiment/scenario.hpp"
#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/conflict_free.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Three users around one hub: a tree needs two channels = 4 hub qubits.
net::QuantumNetwork hub_net() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 0);  // budget replaced by planner
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  return std::move(b).build({1e-4, 0.9});
}

TEST(CapacityPlanning, FindsExactMinimumOnTheHub) {
  const auto net = hub_net();
  const auto result = min_uniform_qubits(net, net.users());
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->qubits_per_switch, 4);  // 2 channels x 2 qubits
  EXPECT_TRUE(result->tree.feasible);
  // The tree lives on the budgeted copy of the network.
  const auto budgeted = net::with_uniform_switch_qubits(
      net, result->qubits_per_switch);
  EXPECT_EQ(net::validate_tree(budgeted, net.users(), result->tree), "");
}

TEST(CapacityPlanning, SingletonNeedsNothing) {
  const auto net = hub_net();
  const std::vector<NodeId> one{net.users()[0]};
  const auto result = min_uniform_qubits(net, one);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->qubits_per_switch, 0);
  EXPECT_TRUE(result->tree.feasible);
}

TEST(CapacityPlanning, UnreachableGoalIsNullopt) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});  // no fibers at all
  const auto net = std::move(b).build({1e-4, 0.9});
  EXPECT_FALSE(min_uniform_qubits(net, net.users()).has_value());
}

TEST(CapacityPlanning, RateFloorRaisesTheBudget) {
  // Two relay tiers: a cheap-but-narrow route needs bigger Q to double up;
  // requesting a higher rate can only increase the minimal budget.
  support::Rng rng(4);
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 0, {1e-4, 0.9}, rng);

  const auto feasible_only = min_uniform_qubits(net, net.users(), 0.0);
  ASSERT_TRUE(feasible_only.has_value());
  const double achieved = feasible_only->tree.rate;
  const auto with_floor =
      min_uniform_qubits(net, net.users(), achieved * 1.000001);
  if (with_floor) {
    EXPECT_GE(with_floor->qubits_per_switch,
              feasible_only->qubits_per_switch);
    EXPECT_GE(with_floor->tree.rate, achieved * 1.000001);
  }
}

TEST(CapacityPlanning, ResultBudgetIsSufficientAndPredecessorIsNot) {
  // Empirical minimality: re-running Algorithm 3 one qubit below the
  // returned budget must miss the goal.
  support::Rng rng(7);
  topology::WaxmanParams params;
  params.node_count = 25;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 6, 0, {1e-4, 0.9}, rng);
  const auto result = min_uniform_qubits(net, net.users());
  ASSERT_TRUE(result.has_value());
  ASSERT_GT(result->qubits_per_switch, 0);

  // Rebuild one qubit short and verify Algorithm 3 fails.
  std::vector<net::NodeKind> kinds(net.node_count());
  std::vector<int> q(net.node_count());
  std::vector<support::Point2D> pos(net.positions().begin(),
                                    net.positions().end());
  for (net::NodeId v = 0; v < net.node_count(); ++v) {
    kinds[v] = net.kind(v);
    q[v] = net.is_switch(v) ? result->qubits_per_switch - 1 : 0;
  }
  const net::QuantumNetwork short_net(net.graph(), std::move(pos),
                                      std::move(kinds), std::move(q),
                                      net.physical());
  EXPECT_FALSE(conflict_free(short_net, net.users()).feasible);
}

}  // namespace
}  // namespace muerp::routing
