#include "routing/prim_based.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/optimal_tree.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

net::QuantumNetwork triangle_with_hub(int hub_qubits) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({200, 0});
  b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, hub_qubits);
  for (NodeId u = 0; u < 3; ++u) b.connect_euclidean(u, hub);
  return std::move(b).build({1e-4, 0.9});
}

TEST(PrimBased, BuildsValidTree) {
  const auto net = triangle_with_hub(8);
  const auto tree = prim_based_from(net, net.users(), 0);
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(tree.channels.size(), 2u);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(PrimBased, RespectsCapacity) {
  // Hub with 2 qubits: only one channel fits; no alternative -> infeasible.
  const auto net = triangle_with_hub(2);
  const auto tree = prim_based_from(net, net.users(), 0);
  EXPECT_FALSE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 0.0);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(PrimBased, ExactlyEnoughCapacity) {
  // Q=4 hub: exactly the two channels a 3-user tree needs.
  const auto net = triangle_with_hub(4);
  const auto tree = prim_based_from(net, net.users(), 0);
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(PrimBased, DeterministicForFixedSeedUser) {
  const auto net = triangle_with_hub(8);
  const auto t1 = prim_based_from(net, net.users(), 1);
  const auto t2 = prim_based_from(net, net.users(), 1);
  ASSERT_EQ(t1.channels.size(), t2.channels.size());
  EXPECT_DOUBLE_EQ(t1.rate, t2.rate);
  for (std::size_t i = 0; i < t1.channels.size(); ++i) {
    EXPECT_EQ(t1.channels[i].path, t2.channels[i].path);
  }
}

TEST(PrimBased, RandomizedEntryPointUsesRng) {
  const auto net = triangle_with_hub(8);
  support::Rng rng(7);
  const auto tree = prim_based(net, net.users(), rng);
  EXPECT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(PrimBased, SingleUser) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = prim_based_from(net, net.users(), 0);
  EXPECT_TRUE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 1.0);
}

TEST(PrimBasedShared, DeductsFromSharedPool) {
  const auto net = triangle_with_hub(8);
  net::CapacityState cap(net);
  const auto tree = prim_based_shared(net, net.users(), 0, cap);
  ASSERT_TRUE(tree.feasible);
  // Two channels through the hub: 4 qubits consumed from the shared pool.
  EXPECT_EQ(cap.free_qubits(3), 4);
}

TEST(PrimBasedShared, SecondGroupSeesReducedCapacity) {
  const auto net = triangle_with_hub(4);
  net::CapacityState cap(net);
  const auto first = prim_based_shared(net, net.users(), 0, cap);
  ASSERT_TRUE(first.feasible);
  // Pool exhausted: routing the same users again must fail.
  const auto second = prim_based_shared(net, net.users(), 0, cap);
  EXPECT_FALSE(second.feasible);
}

/// Property: valid output and bounded by the capacity-oblivious optimum for
/// every seed user.
class PrimBasedProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrimBasedProperty, AllSeedUsersYieldValidTrees) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 30;
  params.average_degree = 5.0;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 4, {1e-4, 0.9}, rng);
  const auto opt = optimal_special_case(net, net.users());

  for (std::size_t seed = 0; seed < net.users().size(); ++seed) {
    const auto tree = prim_based_from(net, net.users(), seed);
    EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
    if (tree.feasible) {
      EXPECT_LE(tree.rate, opt.rate * (1.0 + 1e-9));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrimBasedProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace muerp::routing
