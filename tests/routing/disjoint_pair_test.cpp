#include "routing/disjoint_pair.hpp"

#include <gtest/gtest.h>

#include <set>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Two users with three candidate relays at increasing detour.
struct ThreeRelays {
  net::QuantumNetwork net;
  NodeId u0, u1, near_sw, mid_sw, far_sw;
};

ThreeRelays three_relays() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId near_sw = b.add_switch({500, 50}, 4);
  const NodeId mid_sw = b.add_switch({500, 400}, 4);
  const NodeId far_sw = b.add_switch({500, 900}, 4);
  for (NodeId sw : {near_sw, mid_sw, far_sw}) {
    b.connect_euclidean(u0, sw);
    b.connect_euclidean(sw, u1);
  }
  return {std::move(b).build({1e-3, 0.9}), u0, u1, near_sw, mid_sw, far_sw};
}

/// Asserts the pair is internally node-disjoint.
void expect_disjoint(const net::Channel& a, const net::Channel& b) {
  std::set<NodeId> interior_a(a.path.begin() + 1, a.path.end() - 1);
  for (std::size_t i = 1; i + 1 < b.path.size(); ++i) {
    EXPECT_FALSE(interior_a.contains(b.path[i]))
        << "shared relay " << b.path[i];
  }
}

TEST(DisjointPair, PicksTheTwoBestRelays) {
  auto fx = three_relays();
  const net::CapacityState cap(fx.net);
  const auto pair = best_disjoint_channel_pair(fx.net, fx.u0, fx.u1, cap);
  ASSERT_TRUE(pair.has_value());
  expect_disjoint(pair->first, pair->second);
  EXPECT_EQ(pair->first.path[1], fx.near_sw);
  EXPECT_EQ(pair->second.path[1], fx.mid_sw);
  EXPECT_GE(pair->first.rate, pair->second.rate);
}

TEST(DisjointPair, NoneWhenOnlyOneRelayExists) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId sw = b.add_switch({500, 0}, 8);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-3, 0.9});
  const net::CapacityState cap(net);
  EXPECT_FALSE(best_disjoint_channel_pair(net, u0, u1, cap).has_value());
}

TEST(DisjointPair, DirectFiberPlusRelay) {
  // A direct user-user fiber plus a relay route: pair = {direct, relayed}.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({800, 0});
  const NodeId sw = b.add_switch({400, 300}, 4);
  b.connect_euclidean(u0, u1);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-3, 0.9});
  const net::CapacityState cap(net);
  const auto pair = best_disjoint_channel_pair(net, u0, u1, cap);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first.path.size(), 2u);   // the direct fiber
  EXPECT_EQ(pair->second.path.size(), 3u);  // via the switch
}

TEST(DisjointPair, BeatsGreedyWhenJointChoiceMatters) {
  // The trap graph: the single best path crosses the a-d diagonal, which
  // kills every disjoint complement; Suurballe must sacrifice the greedy
  // best and pick the two side routes.
  //
  //        a --- b          (top route:    u0-a-b-u1)
  //   u0    \          u1   (greedy route: u0-a-d-u1 via the diagonal)
  //        c --- d          (bottom route: u0-c-d-u1)
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({900, 0});
  const NodeId a = b.add_switch({300, 200}, 4);
  const NodeId bb = b.add_switch({600, 200}, 4);
  const NodeId c = b.add_switch({300, -200}, 4);
  const NodeId d = b.add_switch({600, -200}, 4);
  b.connect(u0, a, 310.0);
  b.connect(u0, c, 310.0);
  b.connect(a, bb, 340.0);
  b.connect(c, d, 340.0);
  b.connect(bb, u1, 310.0);
  b.connect(d, u1, 310.0);
  // Short diagonals make the mixed path the single best...
  b.connect(a, d, 250.0);
  const auto net = std::move(b).build({1e-3, 0.9});
  const net::CapacityState cap(net);

  const auto pair = best_disjoint_channel_pair(net, u0, u1, cap);
  ASSERT_TRUE(pair.has_value());
  expect_disjoint(pair->first, pair->second);
  // The union of the two returned channels must be the top and bottom
  // routes (the diagonal cannot appear in any disjoint pair).
  for (const auto& ch : {pair->first, pair->second}) {
    ASSERT_EQ(ch.path.size(), 4u);
    EXPECT_TRUE((ch.path[1] == a && ch.path[2] == bb) ||
                (ch.path[1] == c && ch.path[2] == d));
  }
}

TEST(DisjointPair, RespectsCapacity) {
  auto fx = three_relays();
  net::CapacityState cap(fx.net);
  // Exhaust the near switch entirely.
  const std::vector<NodeId> via_near{fx.u0, fx.near_sw, fx.u1};
  cap.commit_channel(via_near);
  cap.commit_channel(via_near);
  const auto pair = best_disjoint_channel_pair(fx.net, fx.u0, fx.u1, cap);
  ASSERT_TRUE(pair.has_value());
  EXPECT_EQ(pair->first.path[1], fx.mid_sw);
  EXPECT_EQ(pair->second.path[1], fx.far_sw);
}

/// Oracle: on small random graphs the returned pair maximizes the rate
/// product over ALL internally node-disjoint channel pairs (brute force).
class DisjointPairOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DisjointPairOracle, MatchesBruteForce) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(10, 0.4, {800, 800}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 2, 4, {1e-3, 0.9}, rng);
  const NodeId src = net.users()[0];
  const NodeId dst = net.users()[1];

  // Brute force: enumerate simple channel paths, then all disjoint pairs.
  std::vector<std::vector<NodeId>> paths;
  std::vector<NodeId> stack{src};
  std::vector<bool> used_node(net.node_count(), false);
  used_node[src] = true;
  auto dfs = [&](auto&& self, NodeId v) -> void {
    if (v == dst) {
      paths.push_back(stack);
      return;
    }
    for (const graph::Neighbor& nb : net.graph().neighbors(v)) {
      const NodeId next = nb.node;
      if (used_node[next]) continue;
      if (next != dst && (!net.is_switch(next) || net.qubits(next) < 2)) {
        continue;
      }
      used_node[next] = true;
      stack.push_back(next);
      self(self, next);
      stack.pop_back();
      used_node[next] = false;
    }
  };
  dfs(dfs, src);

  double best_product = 0.0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      std::set<NodeId> interior(paths[i].begin() + 1, paths[i].end() - 1);
      bool disjoint = true;
      for (std::size_t k = 1; k + 1 < paths[j].size(); ++k) {
        if (interior.contains(paths[j][k])) {
          disjoint = false;
          break;
        }
      }
      if (!disjoint) continue;
      best_product = std::max(best_product,
                              net::channel_rate(net, paths[i]) *
                                  net::channel_rate(net, paths[j]));
    }
  }

  const net::CapacityState cap(net);
  const auto pair = best_disjoint_channel_pair(net, src, dst, cap);
  if (best_product == 0.0) {
    EXPECT_FALSE(pair.has_value());
  } else {
    ASSERT_TRUE(pair.has_value());
    expect_disjoint(pair->first, pair->second);
    EXPECT_NEAR(pair->first.rate * pair->second.rate, best_product,
                1e-9 * best_product);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjointPairOracle,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace muerp::routing
