#include "routing/local_search.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "routing/exact_solver.hpp"
#include "routing/prim_based.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(LocalSearch, LeavesOptimalTreeAlone) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 8);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  auto tree = conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const double before = tree.rate;
  const auto stats = improve_tree(net, net.users(), tree);
  EXPECT_EQ(stats.exchanges, 0u);
  EXPECT_DOUBLE_EQ(tree.rate, before);
}

TEST(LocalSearch, RepairsDeliberatelyBadTree) {
  // Hand a tree that chains u0-u1-u2 the long way; the exchange pass must
  // find the short star channels.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({4000, 0});  // distant user
  const NodeId u2 = b.add_user({200, 0});
  const NodeId hub = b.add_switch({100, 50}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-3, 0.9});

  // Bad structure: u0-u1 and u1-u2 (both cross the long span).
  auto mk = [&](NodeId a, NodeId c) {
    net::Channel ch;
    ch.path = {a, hub, c};
    ch.rate = net::channel_rate(net, ch.path);
    return ch;
  };
  net::EntanglementTree tree;
  tree.channels = {mk(u0, u1), mk(u1, u2)};
  tree.feasible = true;
  tree.rate = net::tree_rate(tree.channels);

  const double before = tree.rate;
  const auto stats = improve_tree(net, net.users(), tree);
  EXPECT_GE(stats.exchanges, 1u);
  EXPECT_GT(tree.rate, before);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  // The improved tree keeps one long channel (u1 must connect somehow) and
  // swaps the other for the short u0-u2 hop.
  int long_channels = 0;
  for (const auto& ch : tree.channels) {
    if (ch.source() == u1 || ch.destination() == u1) ++long_channels;
  }
  EXPECT_EQ(long_channels, 1);
}

TEST(LocalSearch, SkipsInfeasibleTree) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  net::EntanglementTree tree{{}, 0.0, false};
  const auto stats = improve_tree(net, net.users(), tree);
  EXPECT_EQ(stats.sweeps, 0u);
  EXPECT_FALSE(tree.feasible);
}

TEST(LocalSearch, HonoursSweepLimit) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  auto tree = conflict_free(net, net.users());
  const auto stats = improve_tree(net, net.users(), tree, 0);
  EXPECT_EQ(stats.sweeps, 0u);
}

/// Properties on random capacity-tight networks: never worsens, stays
/// valid, never exceeds the exact optimum.
class LocalSearchProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchProperty, MonotoneValidAndBounded) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 24;
  params.average_degree = 5.0;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 2, {1e-4, 0.9}, rng);

  auto tree = prim_based_from(net, net.users(), 0);
  if (!tree.feasible) GTEST_SKIP() << "instance infeasible for Alg-4";
  const double before = tree.rate;
  improve_tree(net, net.users(), tree);
  EXPECT_GE(tree.rate, before * (1.0 - 1e-12));
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

/// On tiny instances the improved tree must never beat the exact optimum.
class LocalSearchVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchVsExact, BoundedByOptimum) {
  support::Rng rng(GetParam() + 500);
  auto topo = topology::make_erdos_renyi(10, 0.4, {800, 800}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 4, {1e-3, 0.9}, rng);
  auto tree = conflict_free(net, net.users());
  if (!tree.feasible) GTEST_SKIP();
  improve_tree(net, net.users(), tree);
  const auto exact = solve_exact(net, net.users());
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(exact->feasible);
  EXPECT_LE(tree.rate, exact->rate * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchVsExact,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::routing
