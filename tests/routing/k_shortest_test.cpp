#include "routing/k_shortest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/channel_finder.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Two users joined through three parallel switches at distinct distances.
struct ParallelFixture {
  net::QuantumNetwork net;
  NodeId u0, u1, near_sw, mid_sw, far_sw;
};

ParallelFixture parallel_fixture() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId near_sw = b.add_switch({500, 100}, 4);
  const NodeId mid_sw = b.add_switch({500, 600}, 4);
  const NodeId far_sw = b.add_switch({500, 1200}, 4);
  for (NodeId sw : {near_sw, mid_sw, far_sw}) {
    b.connect_euclidean(u0, sw);
    b.connect_euclidean(sw, u1);
  }
  return {std::move(b).build({1e-3, 0.9}), u0, u1, near_sw, mid_sw, far_sw};
}

TEST(KBestChannels, OrderedByRate) {
  auto fx = parallel_fixture();
  const net::CapacityState cap(fx.net);
  const auto channels = k_best_channels(fx.net, fx.u0, fx.u1, cap, 3);
  ASSERT_EQ(channels.size(), 3u);
  EXPECT_EQ(channels[0].path[1], fx.near_sw);
  EXPECT_EQ(channels[1].path[1], fx.mid_sw);
  EXPECT_EQ(channels[2].path[1], fx.far_sw);
  EXPECT_GT(channels[0].rate, channels[1].rate);
  EXPECT_GT(channels[1].rate, channels[2].rate);
}

TEST(KBestChannels, FirstMatchesAlgorithm1) {
  auto fx = parallel_fixture();
  const net::CapacityState cap(fx.net);
  const auto channels = k_best_channels(fx.net, fx.u0, fx.u1, cap, 1);
  const ChannelFinder finder(fx.net);
  const auto best = finder.find_best_channel(fx.u0, fx.u1, cap);
  ASSERT_EQ(channels.size(), 1u);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(channels[0].path, best->path);
  EXPECT_NEAR(channels[0].rate, best->rate, 1e-15);
}

TEST(KBestChannels, FewerThanKWhenGraphIsSmall) {
  auto fx = parallel_fixture();
  const net::CapacityState cap(fx.net);
  const auto channels = k_best_channels(fx.net, fx.u0, fx.u1, cap, 10);
  EXPECT_EQ(channels.size(), 3u);  // only 3 simple channels exist
}

TEST(KBestChannels, ZeroKAndNoRoute) {
  auto fx = parallel_fixture();
  const net::CapacityState cap(fx.net);
  EXPECT_TRUE(k_best_channels(fx.net, fx.u0, fx.u1, cap, 0).empty());

  net::NetworkBuilder b;
  const NodeId a = b.add_user({0, 0});
  const NodeId c = b.add_user({1, 0});
  const auto disconnected = std::move(b).build({1e-4, 0.9});
  const net::CapacityState cap2(disconnected);
  EXPECT_TRUE(k_best_channels(disconnected, a, c, cap2, 3).empty());
}

TEST(KBestChannels, PathsAreDistinctAndSimple) {
  support::Rng rng(3);
  auto topo = topology::make_erdos_renyi(12, 0.4, {1000, 1000}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 2, 4, {1e-3, 0.9}, rng);
  const net::CapacityState cap(net);
  const auto channels =
      k_best_channels(net, net.users()[0], net.users()[1], cap, 8);
  std::set<std::vector<NodeId>> unique;
  for (const auto& ch : channels) {
    EXPECT_TRUE(unique.insert(ch.path).second) << "duplicate path";
    std::set<NodeId> nodes(ch.path.begin(), ch.path.end());
    EXPECT_EQ(nodes.size(), ch.path.size()) << "path not simple";
    // Interior vertices are switches.
    for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
      EXPECT_TRUE(net.is_switch(ch.path[i]));
    }
    // Stored rate agrees with Eq. (1).
    EXPECT_NEAR(ch.rate, net::channel_rate(net, ch.path), 1e-9 * ch.rate);
  }
  // Non-increasing rates.
  for (std::size_t i = 1; i < channels.size(); ++i) {
    EXPECT_LE(channels[i].rate, channels[i - 1].rate * (1 + 1e-12));
  }
}

TEST(KBestChannels, RespectsCapacity) {
  auto fx = parallel_fixture();
  net::CapacityState cap(fx.net);
  const std::vector<NodeId> via_near{fx.u0, fx.near_sw, fx.u1};
  cap.commit_channel(via_near);
  cap.commit_channel(via_near);  // exhaust the near switch
  const auto channels = k_best_channels(fx.net, fx.u0, fx.u1, cap, 3);
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0].path[1], fx.mid_sw);
  EXPECT_EQ(channels[1].path[1], fx.far_sw);
}

/// Oracle: on small random graphs, k_best must equal the top-k of the full
/// brute-force channel enumeration.
class KBestOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KBestOracle, MatchesBruteForceTopK) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(9, 0.45, {800, 800}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 2, 4, {1e-3, 0.85}, rng);
  const NodeId src = net.users()[0];
  const NodeId dst = net.users()[1];

  // Brute force: enumerate all simple switch-interior channels.
  std::vector<double> all_rates;
  std::vector<NodeId> stack{src};
  std::vector<bool> used(net.node_count(), false);
  used[src] = true;
  auto dfs = [&](auto&& self, NodeId v) -> void {
    if (v == dst) {
      all_rates.push_back(net::channel_rate(net, stack));
      return;
    }
    for (const graph::Neighbor& nb : net.graph().neighbors(v)) {
      const NodeId next = nb.node;
      if (used[next]) continue;
      if (next != dst && (!net.is_switch(next) || net.qubits(next) < 2)) {
        continue;
      }
      used[next] = true;
      stack.push_back(next);
      self(self, next);
      stack.pop_back();
      used[next] = false;
    }
  };
  dfs(dfs, src);
  std::sort(all_rates.rbegin(), all_rates.rend());

  const net::CapacityState cap(net);
  constexpr std::size_t kK = 5;
  const auto channels = k_best_channels(net, src, dst, cap, kK);
  ASSERT_EQ(channels.size(), std::min(kK, all_rates.size()));
  for (std::size_t i = 0; i < channels.size(); ++i) {
    EXPECT_NEAR(channels[i].rate, all_rates[i],
                1e-9 * std::max(all_rates[i], 1e-30))
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KBestOracle,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::routing
