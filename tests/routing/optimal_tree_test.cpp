#include "routing/optimal_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/exact_solver.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(SufficientCondition, DetectsThreshold) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({1, 0});
  b.add_user({2, 0});
  const NodeId sw = b.add_switch({1, 1}, 6);
  b.connect_euclidean(0, sw);
  const auto net = std::move(b).build({1e-4, 0.9});
  EXPECT_TRUE(sufficient_condition_holds(net, net.users()));  // 6 >= 2*3
  net::NetworkBuilder b2;
  b2.add_user({0, 0});
  b2.add_user({1, 0});
  b2.add_user({2, 0});
  b2.add_switch({1, 1}, 5);
  const auto net2 = std::move(b2).build({1e-4, 0.9});
  EXPECT_FALSE(sufficient_condition_holds(net2, net2.users()));  // 5 < 6
}

TEST(OptimalTree, SingleUserIsTrivial) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = optimal_special_case(net, net.users());
  EXPECT_TRUE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 1.0);
  EXPECT_TRUE(tree.channels.empty());
}

TEST(OptimalTree, TwoUsersOneChannel) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId sw = b.add_switch({100, 0}, 4);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = optimal_special_case(net, net.users());
  ASSERT_TRUE(tree.feasible);
  ASSERT_EQ(tree.channels.size(), 1u);
  const double p = std::exp(-1e-4 * 100.0);
  EXPECT_NEAR(tree.rate, p * p * 0.9, 1e-12);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(OptimalTree, PicksCheapTreeOverChain) {
  // Three users around one big hub: the best tree uses the two short
  // channels, never the long u1-u2 detour.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  const NodeId u2 = b.add_user({0, 1000});
  const NodeId hub = b.add_switch({300, 300}, 20);
  b.connect_euclidean(u0, hub);
  b.connect_euclidean(u1, hub);
  b.connect_euclidean(u2, hub);
  const auto net = std::move(b).build({1e-3, 0.9});
  const auto tree = optimal_special_case(net, net.users());
  ASSERT_TRUE(tree.feasible);
  ASSERT_EQ(tree.channels.size(), 2u);
  // u0 is closest to the hub, so both selected channels have u0 as one end.
  for (const auto& ch : tree.channels) {
    EXPECT_TRUE(ch.source() == u0 || ch.destination() == u0);
  }
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(OptimalTree, InfeasibleWhenUsersUnreachable) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});  // no fibers at all
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = optimal_special_case(net, net.users());
  EXPECT_FALSE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 0.0);
}

TEST(OptimalTree, DirectUserEdgesFormTree) {
  // Complete graph of 4 users (all direct fibers, no switches).
  auto topo = topology::make_complete(4, 100.0);
  std::vector<net::NodeKind> kinds(4, net::NodeKind::kUser);
  std::vector<int> qubits(4, 0);
  const net::QuantumNetwork net(std::move(topo.graph),
                                std::move(topo.positions), std::move(kinds),
                                std::move(qubits), {1e-4, 0.9});
  const auto tree = optimal_special_case(net, net.users());
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(tree.channels.size(), 3u);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

/// Theorem 3 property: under the sufficient condition, Algorithm 2 matches
/// the exhaustive optimum.
class OptimalTreeOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalTreeOracle, MatchesExactSolverUnderSufficientCondition) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(9, 0.4, {1000.0, 1000.0}, rng);
  // Huge switch budgets: sufficient condition holds for 4 users.
  const auto net =
      net::assign_random_users(std::move(topo), 4, 100, {1e-3, 0.8}, rng);
  ASSERT_TRUE(sufficient_condition_holds(net, net.users()));

  const auto greedy = optimal_special_case(net, net.users());
  const auto exact = solve_exact(net, net.users());
  ASSERT_TRUE(exact.has_value()) << "oracle limits too small";
  EXPECT_EQ(greedy.feasible, exact->feasible);
  if (greedy.feasible) {
    EXPECT_EQ(net::validate_tree(net, net.users(), greedy), "");
    EXPECT_NEAR(greedy.rate, exact->rate, 1e-9 * exact->rate)
        << "Theorem 3 violated: greedy " << greedy.rate << " vs optimal "
        << exact->rate;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalTreeOracle,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::routing
