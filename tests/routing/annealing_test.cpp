#include "routing/annealing.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "routing/exact_solver.hpp"
#include "routing/prim_based.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(Annealing, InfeasibleInputUntouched) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  net::EntanglementTree tree{{}, 0.0, false};
  support::Rng rng(1);
  const auto stats = anneal_tree(net, net.users(), tree, {}, rng);
  EXPECT_EQ(stats.proposals, 0u);
  EXPECT_FALSE(tree.feasible);
}

TEST(Annealing, NeverRegressesBelowInput) {
  support::Rng gen(2);
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, gen);
  const auto net =
      net::assign_random_users(std::move(topo), 6, 2, {1e-4, 0.9}, gen);
  auto tree = prim_based_from(net, net.users(), 0);
  if (!tree.feasible) GTEST_SKIP();
  const double before = tree.rate;
  support::Rng rng(3);
  anneal_tree(net, net.users(), tree, {}, rng);
  EXPECT_GE(tree.rate, before * (1.0 - 1e-12));
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(Annealing, RepairsDeliberatelyBadTree) {
  // Same trap as the local-search test: chained channels over a long span.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({4000, 0});
  const NodeId u2 = b.add_user({200, 0});
  const NodeId hub = b.add_switch({100, 50}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-3, 0.9});
  auto mk = [&](NodeId a, NodeId c) {
    net::Channel ch;
    ch.path = {a, hub, c};
    ch.rate = net::channel_rate(net, ch.path);
    return ch;
  };
  net::EntanglementTree tree;
  tree.channels = {mk(u0, u1), mk(u1, u2)};
  tree.feasible = true;
  tree.rate = net::tree_rate(tree.channels);
  const double before = tree.rate;
  support::Rng rng(4);
  AnnealingParams params;
  params.iterations = 200;
  const auto stats = anneal_tree(net, net.users(), tree, params, rng);
  EXPECT_GT(tree.rate, before);
  EXPECT_GE(stats.improved_best, 1u);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(Annealing, DeterministicGivenSeed) {
  support::Rng gen(5);
  topology::WaxmanParams params;
  params.node_count = 30;
  auto topo = topology::generate_waxman(params, gen);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 4, {1e-4, 0.9}, gen);
  auto t1 = conflict_free(net, net.users());
  auto t2 = t1;
  if (!t1.feasible) GTEST_SKIP();
  support::Rng r1(6);
  support::Rng r2(6);
  anneal_tree(net, net.users(), t1, {}, r1);
  anneal_tree(net, net.users(), t2, {}, r2);
  EXPECT_DOUBLE_EQ(t1.rate, t2.rate);
}

/// Property: bounded by the exact optimum on small instances, valid always.
class AnnealingVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnnealingVsExact, BoundedByOptimum) {
  support::Rng gen(GetParam() + 900);
  auto topo = topology::make_erdos_renyi(10, 0.4, {800, 800}, gen);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 2, {1e-3, 0.9}, gen);
  auto tree = conflict_free(net, net.users());
  if (!tree.feasible) GTEST_SKIP();
  support::Rng rng(GetParam());
  anneal_tree(net, net.users(), tree, {}, rng);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  const auto exact = solve_exact(net, net.users());
  ASSERT_TRUE(exact.has_value());
  EXPECT_LE(tree.rate, exact->rate * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealingVsExact,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::routing
