#include "routing/exact_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "routing/prim_based.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(ExactSolver, RefusesOversizedInstances) {
  net::NetworkBuilder b;
  for (int i = 0; i < 20; ++i) b.add_user({static_cast<double>(i), 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  ExactSolverLimits limits;
  limits.max_nodes = 10;
  EXPECT_FALSE(solve_exact(net, net.users(), limits).has_value());
}

TEST(ExactSolver, TwoUsersDirectEdge) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({500, 0});
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto result = solve_exact(net, net.users());
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->feasible);
  EXPECT_NEAR(result->rate, std::exp(-1e-4 * 500.0), 1e-12);
}

TEST(ExactSolver, ChoosesBetterOfTwoPaths) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId near_sw = b.add_switch({100, 10}, 2);
  const NodeId far_sw = b.add_switch({100, 900}, 2);
  b.connect_euclidean(u0, near_sw);
  b.connect_euclidean(near_sw, u1);
  b.connect_euclidean(u0, far_sw);
  b.connect_euclidean(far_sw, u1);
  const auto net = std::move(b).build({1e-3, 0.9});
  const auto result = solve_exact(net, net.users());
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->feasible);
  ASSERT_EQ(result->channels.size(), 1u);
  EXPECT_EQ(result->channels[0].path[1], near_sw);
}

TEST(ExactSolver, DetectsInfeasibility) {
  // 3 users, single Q=2 hub: only one of the two needed channels fits.
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({200, 0});
  b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 2);
  for (NodeId u = 0; u < 3; ++u) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto result = solve_exact(net, net.users());
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->feasible);
  EXPECT_DOUBLE_EQ(result->rate, 0.0);
}

TEST(ExactSolver, FindsFeasibleWhenGreedyStructureMatters) {
  // A hub that can carry both channels (Q=4) — exact must use it and beat
  // nothing else (sanity: rate equals the two-star-channel product).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 4);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto result = solve_exact(net, net.users());
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->feasible);
  EXPECT_EQ(net::validate_tree(net, net.users(), *result), "");
  EXPECT_EQ(result->channels.size(), 2u);
}

TEST(ExactSolver, ValidatesOnStructuredGrid) {
  auto topo = topology::make_grid(3, 3, 100.0);
  std::vector<net::NodeKind> kinds(9, net::NodeKind::kSwitch);
  std::vector<int> qubits(9, 4);
  // Corner users.
  for (NodeId u : {0u, 2u, 6u}) {
    kinds[u] = net::NodeKind::kUser;
    qubits[u] = 0;
  }
  const net::QuantumNetwork net(std::move(topo.graph),
                                std::move(topo.positions), std::move(kinds),
                                std::move(qubits), {1e-3, 0.9});
  const auto result = solve_exact(net, net.users());
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->feasible);
  EXPECT_EQ(net::validate_tree(net, net.users(), *result), "");
}

/// Property: the heuristics never beat the exact optimum, and when the
/// exact solver proves feasibility with slack the heuristics' results are
/// valid trees.
class ExactDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactDominance, HeuristicsNeverExceedOptimum) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(10, 0.35, {1000.0, 1000.0}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 4, {1e-3, 0.85}, rng);
  const auto exact = solve_exact(net, net.users());
  ASSERT_TRUE(exact.has_value());

  const auto alg3 = conflict_free(net, net.users());
  EXPECT_EQ(net::validate_tree(net, net.users(), alg3), "");
  const auto alg4 = prim_based_from(net, net.users(), 0);
  EXPECT_EQ(net::validate_tree(net, net.users(), alg4), "");

  EXPECT_LE(alg3.rate, exact->rate * (1.0 + 1e-9));
  EXPECT_LE(alg4.rate, exact->rate * (1.0 + 1e-9));
  // A heuristic success implies the instance is feasible.
  if (alg3.feasible || alg4.feasible) {
    EXPECT_TRUE(exact->feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominance,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace muerp::routing
