#include "routing/batch_router.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "extensions/multigroup.hpp"
#include "graph/spf_kernel.hpp"
#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/router.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Random Waxman instance with `user_count` users split into `group_count`
/// disjoint groups (round-robin) — the standard contention workload.
struct Workload {
  net::QuantumNetwork network;
  std::vector<std::vector<NodeId>> groups;

  std::vector<BatchRequest> requests() const {
    std::vector<BatchRequest> out;
    for (const auto& g : groups) out.push_back({g});
    return out;
  }

  std::vector<ext::GroupRequest> ext_requests() const {
    std::vector<ext::GroupRequest> out;
    for (const auto& g : groups) {
      ext::GroupRequest r;
      r.users = g;
      out.push_back(std::move(r));
    }
    return out;
  }
};

Workload make_workload(std::uint64_t seed, std::size_t user_count = 9,
                       std::size_t group_count = 3, int qubits = 4) {
  support::Rng rng(seed);
  topology::WaxmanParams params;
  params.node_count = 40;
  auto topo = topology::generate_waxman(params, rng);
  Workload w{net::assign_random_users(std::move(topo), user_count, qubits,
                                      {1e-4, 0.9}, rng),
             {}};
  w.groups.resize(group_count);
  for (std::size_t i = 0; i < user_count; ++i) {
    w.groups[i % group_count].push_back(w.network.users()[i]);
  }
  return w;
}

/// Bit-identity against the sequential reference, all three orders, many
/// seeds. route_groups already delegates to BatchRouter, so the comparison
/// pits the kernel against the preserved reference implementation.
class BatchOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchOracle, SequentialPoliciesMatchReference) {
  const Workload w = make_workload(GetParam());
  const auto groups = w.ext_requests();
  for (ext::GroupOrder order :
       {ext::GroupOrder::kGivenOrder, ext::GroupOrder::kSmallestFirst,
        ext::GroupOrder::kLargestFirst}) {
    support::Rng r1(GetParam() * 97 + 5);
    support::Rng r2(GetParam() * 97 + 5);
    const auto expected =
        ext::route_groups_reference(w.network, groups, order, r1);
    const auto actual = ext::route_groups(w.network, groups, order, r2);
    ASSERT_EQ(expected.outcomes.size(), actual.outcomes.size());
    EXPECT_EQ(expected.groups_served, actual.groups_served);
    EXPECT_EQ(expected.served_product_rate, actual.served_product_rate);
    for (std::size_t i = 0; i < expected.outcomes.size(); ++i) {
      EXPECT_EQ(expected.outcomes[i].request_index,
                actual.outcomes[i].request_index);
      EXPECT_EQ(expected.outcomes[i].tree.feasible,
                actual.outcomes[i].tree.feasible);
      EXPECT_EQ(expected.outcomes[i].tree.rate, actual.outcomes[i].tree.rate);
      ASSERT_EQ(expected.outcomes[i].tree.channels.size(),
                actual.outcomes[i].tree.channels.size());
      for (std::size_t c = 0; c < expected.outcomes[i].tree.channels.size();
           ++c) {
        EXPECT_EQ(expected.outcomes[i].tree.channels[c].path,
                  actual.outcomes[i].tree.channels[c].path);
      }
    }
  }
}

TEST_P(BatchOracle, FairShareMatchesInterleavedReference) {
  const Workload w = make_workload(GetParam() + 1000);
  const auto groups = w.ext_requests();
  support::Rng r1(GetParam() * 31 + 7);
  support::Rng r2(GetParam() * 31 + 7);
  const auto expected =
      ext::route_groups_interleaved_reference(w.network, groups, r1);
  const auto actual = ext::route_groups_interleaved(w.network, groups, r2);
  ASSERT_EQ(expected.outcomes.size(), actual.outcomes.size());
  EXPECT_EQ(expected.groups_served, actual.groups_served);
  EXPECT_EQ(expected.served_product_rate, actual.served_product_rate);
  for (std::size_t i = 0; i < expected.outcomes.size(); ++i) {
    EXPECT_EQ(expected.outcomes[i].tree.feasible,
              actual.outcomes[i].tree.feasible);
    EXPECT_EQ(expected.outcomes[i].tree.rate, actual.outcomes[i].tree.rate);
    ASSERT_EQ(expected.outcomes[i].tree.channels.size(),
              actual.outcomes[i].tree.channels.size());
    for (std::size_t c = 0; c < expected.outcomes[i].tree.channels.size();
         ++c) {
      EXPECT_EQ(expected.outcomes[i].tree.channels[c].path,
                actual.outcomes[i].tree.channels[c].path);
    }
  }
}

/// The scan/heap mode switch in the SPF kernel must not change results:
/// force heap mode (threshold 0) and compare against default (scan for
/// these sizes).
TEST_P(BatchOracle, ScanAndHeapModesAgree) {
  const Workload w = make_workload(GetParam() + 2000);
  const auto requests = w.requests();
  BatchOptions options;
  options.policy = BatchPolicy::kFairShare;

  support::Rng r1(GetParam() + 3);
  BatchRouter router1(w.network);
  const BatchResult scan = router1.route(requests, options, r1);

  const std::size_t saved = graph::spf::scan_frontier_max_nodes();
  graph::spf::scan_frontier_max_nodes() = 0;  // force heap mode
  support::Rng r2(GetParam() + 3);
  BatchRouter router2(w.network);
  const BatchResult heap = router2.route(requests, options, r2);
  graph::spf::scan_frontier_max_nodes() = saved;

  ASSERT_EQ(scan.outcomes.size(), heap.outcomes.size());
  EXPECT_EQ(scan.served_product_rate, heap.served_product_rate);
  for (std::size_t i = 0; i < scan.outcomes.size(); ++i) {
    EXPECT_EQ(scan.outcomes[i].tree.rate, heap.outcomes[i].tree.rate);
    ASSERT_EQ(scan.outcomes[i].tree.channels.size(),
              heap.outcomes[i].tree.channels.size());
    for (std::size_t c = 0; c < scan.outcomes[i].tree.channels.size(); ++c) {
      EXPECT_EQ(scan.outcomes[i].tree.channels[c].path,
                heap.outcomes[i].tree.channels[c].path);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchOracle,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Concurrent batches on separate threads reproduce the serial result:
/// the SPF thread context and the router's slab state are per-instance /
/// per-thread, so nothing leaks across.
TEST(BatchRouter, DeterministicAcrossThreadCounts) {
  const Workload w = make_workload(42);
  const auto requests = w.requests();
  BatchOptions options;
  options.policy = BatchPolicy::kGivenOrder;

  support::Rng serial_rng(7);
  BatchRouter serial_router(w.network);
  const BatchResult serial = serial_router.route(requests, options, serial_rng);

  for (int threads : {2, 4}) {
    std::vector<BatchResult> results(threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        support::Rng rng(7);
        BatchRouter router(w.network);
        results[t] = router.route(requests, options, rng);
      });
    }
    for (auto& th : pool) th.join();
    for (const BatchResult& r : results) {
      ASSERT_EQ(r.outcomes.size(), serial.outcomes.size());
      EXPECT_EQ(r.served_product_rate, serial.served_product_rate);
      for (std::size_t i = 0; i < r.outcomes.size(); ++i) {
        EXPECT_EQ(r.outcomes[i].tree.rate, serial.outcomes[i].tree.rate);
        ASSERT_EQ(r.outcomes[i].tree.channels.size(),
                  serial.outcomes[i].tree.channels.size());
        for (std::size_t c = 0; c < r.outcomes[i].tree.channels.size(); ++c) {
          EXPECT_EQ(r.outcomes[i].tree.channels[c].path,
                    serial.outcomes[i].tree.channels[c].path);
        }
      }
    }
  }
}

/// Two 2-user groups whose only routes share one hub switch.
struct SharedHub {
  net::QuantumNetwork network;
  std::vector<NodeId> g1, g2;
};

SharedHub shared_hub(int hub_qubits) {
  net::NetworkBuilder b;
  const NodeId a0 = b.add_user({0, 0});
  const NodeId a1 = b.add_user({200, 0});
  const NodeId b0 = b.add_user({0, 200});
  const NodeId b1 = b.add_user({200, 200});
  const NodeId hub = b.add_switch({100, 100}, hub_qubits);
  for (NodeId u : {a0, a1, b0, b1}) b.connect_euclidean(u, hub);
  return {std::move(b).build({1e-4, 0.9}), {a0, a1}, {b0, b1}};
}

TEST(BatchRouter, EmptyAndSingletonGroups) {
  SharedHub fx = shared_hub(4);
  const std::vector<NodeId> solo{fx.g1[0]};
  const std::vector<NodeId> none;
  const std::vector<BatchRequest> requests{{none}, {solo}, {fx.g2}};
  for (BatchPolicy policy :
       {BatchPolicy::kGivenOrder, BatchPolicy::kSmallestFirst,
        BatchPolicy::kLargestFirst, BatchPolicy::kGreedy,
        BatchPolicy::kFairShare}) {
    support::Rng rng(9);
    BatchRouter router(fx.network);
    BatchOptions options;
    options.policy = policy;
    const BatchResult result = router.route(requests, options, rng);
    ASSERT_EQ(result.outcomes.size(), 3u) << batch_policy_name(policy);
    EXPECT_TRUE(result.all_served) << batch_policy_name(policy);
    for (const BatchGroupOutcome& outcome : result.outcomes) {
      EXPECT_TRUE(outcome.tree.feasible);
      if (outcome.request_index == 0 || outcome.request_index == 1) {
        // Empty and singleton groups: trivial tree, rate 1, no channels.
        EXPECT_TRUE(outcome.tree.channels.empty());
        EXPECT_DOUBLE_EQ(outcome.tree.rate, 1.0);
      }
    }
  }
}

TEST(BatchRouter, EmptyRequestListTriviallyServed) {
  SharedHub fx = shared_hub(4);
  support::Rng rng(10);
  BatchRouter router(fx.network);
  const BatchResult result = router.route({}, {}, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_EQ(result.groups_served, 0u);
  EXPECT_DOUBLE_EQ(result.served_product_rate, 1.0);
}

TEST(BatchRouter, SharedCapacityDeductsFromCallerPool) {
  SharedHub fx = shared_hub(4);
  net::CapacityState capacity(fx.network);
  const NodeId hub = fx.network.switches()[0];
  support::Rng rng(11);
  BatchRouter router(fx.network);
  const std::vector<BatchRequest> requests{{fx.g1}, {fx.g2}};
  const BatchResult result = router.route_shared(requests, {}, rng, capacity);
  EXPECT_TRUE(result.all_served);
  // Two channels through the hub: all 4 qubits pledged in the caller pool.
  EXPECT_EQ(capacity.free_qubits(hub), 0);
}

TEST(BatchRouter, ReleaseOnFailureLeavesNothingHeld) {
  SharedHub fx = shared_hub(2);  // one channel slot for two groups
  net::CapacityState capacity(fx.network);
  const NodeId hub = fx.network.switches()[0];
  support::Rng rng(12);
  BatchRouter router(fx.network);
  BatchOptions options;
  options.release_on_failure = true;
  const std::vector<BatchRequest> requests{{fx.g1}, {fx.g2}};
  const BatchResult result =
      router.route_shared(requests, options, rng, capacity);
  EXPECT_EQ(result.groups_served, 1u);
  // The served group holds the hub's 2 qubits; the failed group holds none.
  EXPECT_EQ(capacity.free_qubits(hub), 0);
  capacity.release_channel(result.outcomes[0].tree.channels[0].path);
  EXPECT_EQ(capacity.free_qubits(hub), 2);
}

TEST(BatchRouter, GreedyAdmitsCheapestFirst) {
  // Greedy on the hub with one slot: both pairs are symmetric, so exactly
  // one is served; with ample capacity both are.
  SharedHub tight = shared_hub(2);
  support::Rng r1(13);
  BatchRouter router1(tight.network);
  BatchOptions options;
  options.policy = BatchPolicy::kGreedy;
  const std::vector<BatchRequest> requests{{tight.g1}, {tight.g2}};
  const BatchResult starved = router1.route(requests, options, r1);
  EXPECT_EQ(starved.groups_served, 1u);

  SharedHub ample = shared_hub(4);
  support::Rng r2(13);
  BatchRouter router2(ample.network);
  const std::vector<BatchRequest> requests2{{ample.g1}, {ample.g2}};
  const BatchResult served = router2.route(requests2, options, r2);
  EXPECT_TRUE(served.all_served);
}

TEST(BatchRouter, GreedyPrefersShorterTree) {
  // One distant pair and one close pair contend for a single hub slot:
  // greedy admits the close (cheaper) pair regardless of request order.
  net::NetworkBuilder b;
  const NodeId far0 = b.add_user({0, 0});
  const NodeId far1 = b.add_user({4000, 0});
  const NodeId near0 = b.add_user({1990, 200});
  const NodeId near1 = b.add_user({2010, 200});
  const NodeId hub = b.add_switch({2000, 100}, 2);
  for (NodeId u : {far0, far1, near0, near1}) b.connect_euclidean(u, hub);
  const auto network = std::move(b).build({1e-4, 0.9});

  const std::vector<NodeId> far{far0, far1};
  const std::vector<NodeId> near{near0, near1};
  const std::vector<BatchRequest> requests{{far}, {near}};
  support::Rng rng(14);
  BatchRouter router(network);
  BatchOptions options;
  options.policy = BatchPolicy::kGreedy;
  const BatchResult result = router.route(requests, options, rng);
  EXPECT_EQ(result.groups_served, 1u);
  // Admission order: the near pair (request 1) first.
  EXPECT_EQ(result.outcomes[0].request_index, 1u);
  EXPECT_TRUE(result.outcomes[0].tree.feasible);
  EXPECT_FALSE(result.outcomes[1].tree.feasible);
}

TEST(BatchRouter, AdmitLatencySinkFilledPerGroup) {
  SharedHub fx = shared_hub(4);
  std::vector<double> admit_us;
  BatchOptions options;
  options.admit_us = &admit_us;
  support::Rng rng(15);
  BatchRouter router(fx.network);
  const std::vector<BatchRequest> requests{{fx.g1}, {fx.g2}};
  router.route(requests, options, rng);
  ASSERT_EQ(admit_us.size(), 2u);
  for (double us : admit_us) EXPECT_GE(us, 0.0);
}

TEST(BatchPolicyNames, RoundTrip) {
  for (BatchPolicy policy :
       {BatchPolicy::kGivenOrder, BatchPolicy::kSmallestFirst,
        BatchPolicy::kLargestFirst, BatchPolicy::kGreedy,
        BatchPolicy::kFairShare}) {
    BatchPolicy parsed;
    ASSERT_TRUE(parse_batch_policy(batch_policy_name(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  BatchPolicy unused = BatchPolicy::kGreedy;
  EXPECT_FALSE(parse_batch_policy("round-robin", &unused));
  EXPECT_EQ(unused, BatchPolicy::kGreedy);  // untouched on failure
}

// --- Router registry integration -----------------------------------------

TEST(RouterBatch, Alg4BatchMatchesKernel) {
  const Workload w = make_workload(77);
  const auto requests = w.requests();

  support::Rng r1(21);
  BatchRouter kernel(w.network);
  BatchOptions options;
  options.policy = BatchPolicy::kFairShare;
  const BatchResult direct = kernel.route(requests, options, r1);

  support::Rng r2(21);
  BatchRoutingRequest request;
  request.network = &w.network;
  request.groups = requests;
  request.batch = options;
  request.rng = &r2;
  const BatchResult via_router =
      RouterRegistry::instance().at("alg4").route_batch_trees(request);

  ASSERT_EQ(direct.outcomes.size(), via_router.outcomes.size());
  EXPECT_EQ(direct.served_product_rate, via_router.served_product_rate);
  for (std::size_t i = 0; i < direct.outcomes.size(); ++i) {
    EXPECT_EQ(direct.outcomes[i].tree.rate, via_router.outcomes[i].tree.rate);
    ASSERT_EQ(direct.outcomes[i].tree.channels.size(),
              via_router.outcomes[i].tree.channels.size());
    for (std::size_t c = 0; c < direct.outcomes[i].tree.channels.size(); ++c) {
      EXPECT_EQ(direct.outcomes[i].tree.channels[c].path,
                via_router.outcomes[i].tree.channels[c].path);
    }
  }
}

TEST(RouterBatch, GenericPassRespectsCapacity) {
  const Workload w = make_workload(78);
  const auto requests = w.requests();
  for (const char* name : {"alg3", "eqcast"}) {
    support::Rng rng(22);
    net::CapacityState capacity(w.network);
    BatchRoutingRequest request;
    request.network = &w.network;
    request.groups = requests;
    request.rng = &rng;
    request.capacity = &capacity;
    const BatchResult result =
        RouterRegistry::instance().at(name).route_batch_trees(request);
    ASSERT_EQ(result.outcomes.size(), requests.size()) << name;
    // Combined commits never exceed any switch budget.
    std::vector<int> used(w.network.node_count(), 0);
    for (const auto& outcome : result.outcomes) {
      if (!outcome.tree.feasible) continue;
      for (const auto& ch : outcome.tree.channels) {
        for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
          used[ch.path[i]] += 2;
        }
      }
    }
    for (NodeId sw : w.network.switches()) {
      EXPECT_LE(used[sw], w.network.qubits(sw)) << name << " switch " << sw;
      EXPECT_EQ(capacity.free_qubits(sw), w.network.qubits(sw) - used[sw]);
    }
  }
}

TEST(RouterBatch, GenericGreedyOrdersByProbeCost) {
  const Workload w = make_workload(79);
  const auto requests = w.requests();
  support::Rng rng(23);
  BatchRoutingRequest request;
  request.network = &w.network;
  request.groups = requests;
  request.batch.policy = BatchPolicy::kGreedy;
  request.rng = &rng;
  const BatchResult result =
      RouterRegistry::instance().at("eqcast").route_batch_trees(request);
  ASSERT_EQ(result.outcomes.size(), requests.size());
  // Outcomes form a permutation of the request indices.
  std::vector<bool> seen(requests.size(), false);
  for (const auto& outcome : result.outcomes) {
    ASSERT_LT(outcome.request_index, requests.size());
    EXPECT_FALSE(seen[outcome.request_index]);
    seen[outcome.request_index] = true;
  }
}

TEST(RouterBatch, GenericFairShareThrows) {
  const Workload w = make_workload(80);
  const auto requests = w.requests();
  support::Rng rng(24);
  BatchRoutingRequest request;
  request.network = &w.network;
  request.groups = requests;
  request.batch.policy = BatchPolicy::kFairShare;
  request.rng = &rng;
  EXPECT_THROW(
      RouterRegistry::instance().at("eqcast").route_batch_trees(request),
      std::invalid_argument);
}

TEST(RouterBatch, NullNetworkThrows) {
  BatchRoutingRequest request;
  EXPECT_THROW(
      RouterRegistry::instance().at("alg4").route_batch_trees(request),
      std::invalid_argument);
}

TEST(RouterBatch, RouteBatchReportsElapsed) {
  const Workload w = make_workload(81);
  const auto requests = w.requests();
  support::Rng rng(25);
  BatchRoutingRequest request;
  request.network = &w.network;
  request.groups = requests;
  request.rng = &rng;
  const BatchRoutingOutcome outcome =
      RouterRegistry::instance().at("alg4").route_batch(request);
  EXPECT_EQ(outcome.result.outcomes.size(), requests.size());
  EXPECT_GE(outcome.elapsed_ms, 0.0);
}

// --- ResidualNetworkView ---------------------------------------------------

TEST(ResidualNetworkView, SyncTracksCapacity) {
  SharedHub fx = shared_hub(4);
  const NodeId hub = fx.network.switches()[0];
  net::ResidualNetworkView view(fx.network);
  net::CapacityState capacity(fx.network);
  EXPECT_EQ(view.sync(capacity).qubits(hub), 4);

  const std::vector<NodeId> path{fx.g1[0], hub, fx.g1[1]};
  capacity.commit_channel(path);
  EXPECT_EQ(view.sync(capacity).qubits(hub), 2);
  capacity.release_channel(path);
  EXPECT_EQ(view.sync(capacity).qubits(hub), 4);
  // The view shares the base topology version, so SPF CSR caches persist.
  EXPECT_EQ(view.network().graph().topology_version(),
            fx.network.graph().topology_version());
}

}  // namespace
}  // namespace muerp::routing
