#include "routing/feasibility.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "routing/exact_solver.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

TEST(Feasibility, SingletonAlwaysFeasible) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kFeasible);
}

TEST(Feasibility, DisconnectedUsersAreInfeasible) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});  // no fibers at all
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kInfeasible);
  EXPECT_NE(report.reason.find("N1"), std::string::npos);
}

TEST(Feasibility, LowCapacityRelayBreaksConnectivity) {
  // Only path between the users runs through a 1-qubit switch: N1 fires.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId sw = b.add_switch({100, 0}, 1);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kInfeasible);
}

TEST(Feasibility, SufficientConditionProvesFeasible) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 6);  // >= 2|U| = 6
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kFeasible);
  EXPECT_NE(report.reason.find("Theorem 3"), std::string::npos);
}

TEST(Feasibility, CutSwitchWithTooFewQubits) {
  // Hub splits 3 users; Q=2 < 2*(3-1). N2 proves it, though the aggregate
  // screen N3 may conclude first — any conclusive proof is acceptable.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 2);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kInfeasible);
  EXPECT_TRUE(report.reason.find("N2") != std::string::npos ||
              report.reason.find("N3") != std::string::npos)
      << report.reason;
}

TEST(Feasibility, CutSwitchCaughtByN2Specifically) {
  // Give the users one direct fiber so N3 cannot fire, leaving N2 as the
  // only screen able to prove infeasibility: a 2-qubit hub must bridge the
  // far user to both near users (2 channels = 4 qubits).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId u3 = b.add_user({100, 400});
  const NodeId hub = b.add_switch({100, 250}, 2);
  b.connect_euclidean(u0, u1);  // direct fiber disarms N3
  b.connect_euclidean(u0, hub);
  b.connect_euclidean(u1, hub);
  b.connect_euclidean(u2, hub);
  b.connect_euclidean(u3, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kInfeasible);
  EXPECT_NE(report.reason.find("N2"), std::string::npos) << report.reason;
}

TEST(Feasibility, AggregateCapacityShortfall) {
  // 4 users on a cycle of 1-channel switches: 3 channels needed, but the
  // two 2-qubit switches supply only 2 channel slots and there is no direct
  // user-user fiber: N3 fires (or N2, whichever screen concludes first —
  // the verdict is what matters).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({200, 200});
  const NodeId u3 = b.add_user({0, 200});
  const NodeId s0 = b.add_switch({100, -20}, 2);
  const NodeId s1 = b.add_switch({100, 220}, 2);
  b.connect_euclidean(u0, s0);
  b.connect_euclidean(s0, u1);
  b.connect_euclidean(u2, s1);
  b.connect_euclidean(s1, u3);
  b.connect_euclidean(u1, s1);
  b.connect_euclidean(u3, s0);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kInfeasible);
}

TEST(Feasibility, UnknownWhenScreensCannotDecide) {
  // Capacity-tight but plausibly feasible: hub Q=4 serving 3 users needs 2
  // channels = 4 qubits, exactly met. Sufficient condition (needs 6) fails;
  // no necessary condition fires -> unknown.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 4);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto report = screen_feasibility(net, net.users());
  EXPECT_EQ(report.verdict, Feasibility::kUnknown);
}

TEST(Feasibility, VerdictNames) {
  EXPECT_STREQ(feasibility_name(Feasibility::kFeasible), "feasible");
  EXPECT_STREQ(feasibility_name(Feasibility::kInfeasible), "infeasible");
  EXPECT_STREQ(feasibility_name(Feasibility::kUnknown), "unknown");
}

/// Soundness: on random small instances, a conclusive verdict must agree
/// with the exhaustive solver. (kUnknown is always acceptable.)
class FeasibilitySoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeasibilitySoundness, NeverContradictsExactSolver) {
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(10, 0.3, {800, 800}, rng);
  // Tight budgets so all three verdicts actually occur across seeds.
  const int qubits = 2 + static_cast<int>(rng.uniform_index(4));
  const auto net =
      net::assign_random_users(std::move(topo), 4, qubits, {1e-3, 0.9}, rng);

  const auto report = screen_feasibility(net, net.users());
  const auto exact = solve_exact(net, net.users());
  ASSERT_TRUE(exact.has_value());
  if (report.verdict == Feasibility::kFeasible) {
    EXPECT_TRUE(exact->feasible) << report.reason;
  } else if (report.verdict == Feasibility::kInfeasible) {
    EXPECT_FALSE(exact->feasible) << report.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FeasibilitySoundness,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace muerp::routing
