// CachedChannelFinder correctness: the memoized finder must be externally
// indistinguishable from a fresh ChannelFinder under any interleaving of
// commits and releases, in both cache modes. Also covers the CapacityState
// epoch / RelayFlip accounting the invalidation contract rests on, and the
// neg_log_rate sentinel fix (rates that underflow to 0 stay feasible).
#include "routing/channel_finder.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "network/network_builder.hpp"
#include "routing/conflict_free.hpp"
#include "routing/perf_counters.hpp"
#include "routing/prim_based.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

// Counter assertions are meaningful only when the telemetry layer is
// compiled in: MUERP_TELEMETRY=OFF builds stub the registry-backed counters
// to zero, while every behavioral expectation below still applies.
#if MUERP_TELEMETRY_ENABLED
#define MUERP_EXPECT_COUNTERS 1
#else
#define MUERP_EXPECT_COUNTERS 0
#endif

/// Restores the global cache toggle on scope exit so a failing test cannot
/// poison the rest of the suite.
struct CacheToggleGuard {
  bool saved = finder_cache_enabled();
  ~CacheToggleGuard() { set_finder_cache_enabled(saved); }
};

net::QuantumNetwork two_path_network(int good_qubits, int far_qubits) {
  // u0 - good - u1 is the shortest route; far is a reachable detour.
  net::NetworkBuilder b;
  b.add_user({0, 0});                    // u0 = 0
  b.add_user({200, 0});                  // u1 = 1
  b.add_switch({100, 0}, good_qubits);   // good = 2
  b.add_switch({100, 500}, far_qubits);  // far = 3
  b.connect_euclidean(0, 2);
  b.connect_euclidean(2, 1);
  b.connect_euclidean(0, 3);
  b.connect_euclidean(3, 1);
  return std::move(b).build({1e-4, 0.9});
}

TEST(CapacityStateFlips, EpochAdvancesOnlyOnRelayStatusChanges) {
  const auto net = two_path_network(/*good_qubits=*/4, /*far_qubits=*/2);
  net::CapacityState cap(net);
  EXPECT_EQ(cap.epoch(), 0u);

  const std::vector<NodeId> through_good{0, 2, 1};
  cap.commit_channel(through_good);  // 4 -> 2 free: still can relay
  EXPECT_EQ(cap.epoch(), 0u);
  cap.commit_channel(through_good);  // 2 -> 0 free: flips to false
  ASSERT_EQ(cap.epoch(), 1u);
  EXPECT_EQ(cap.flips_since(0)[0].node, 2u);
  EXPECT_FALSE(cap.flips_since(0)[0].can_relay_now);

  cap.release_channel(through_good);  // 0 -> 2 free: flips back to true
  ASSERT_EQ(cap.epoch(), 2u);
  EXPECT_EQ(cap.flips_since(1)[0].node, 2u);
  EXPECT_TRUE(cap.flips_since(1)[0].can_relay_now);
  cap.release_channel(through_good);  // 2 -> 4 free: no status change
  EXPECT_EQ(cap.epoch(), 2u);
  EXPECT_TRUE(cap.flips_since(2).empty());
}

TEST(CapacityStateFlips, CopiesStartAFreshIdentity) {
  const auto net = two_path_network(4, 2);
  net::CapacityState cap(net);
  const std::vector<NodeId> path{0, 2, 1};
  cap.commit_channel(path);
  cap.commit_channel(path);
  ASSERT_EQ(cap.epoch(), 1u);

  const net::CapacityState copy(cap);
  EXPECT_NE(copy.id(), cap.id());
  EXPECT_EQ(copy.epoch(), 0u);
  EXPECT_EQ(copy.free_qubits(2), cap.free_qubits(2));
}

TEST(CachedFinder, LossOffTheUserPathsKeepsTheTree) {
  CacheToggleGuard guard;
  set_finder_cache_enabled(true);
  const auto net = two_path_network(/*good_qubits=*/4, /*far_qubits=*/2);
  net::CapacityState cap(net);
  CachedChannelFinder finder(net);

  reset_perf_counters();
  (void)finder.distances(0, cap);
#if MUERP_EXPECT_COUNTERS
  EXPECT_EQ(perf_counters().dijkstra_runs, 1u);
#endif

  // The detour switch loses relay capability. It is reachable from u0 but
  // lies on no u0->user shortest path, so the cached tree must survive.
  const std::vector<NodeId> through_far{0, 3, 1};
  cap.commit_channel(through_far);
  ASSERT_EQ(cap.epoch(), 1u);
  (void)finder.distances(0, cap);
#if MUERP_EXPECT_COUNTERS
  EXPECT_EQ(perf_counters().dijkstra_runs, 1u);
  EXPECT_EQ(perf_counters().cache_hits, 1u);
#endif

  // Gaining relay capability anywhere reachable may open shorter paths:
  // releasing the detour must invalidate.
  cap.release_channel(through_far);
  (void)finder.distances(0, cap);
#if MUERP_EXPECT_COUNTERS
  EXPECT_EQ(perf_counters().dijkstra_runs, 2u);
  EXPECT_EQ(perf_counters().cache_invalidations, 1u);
#endif
}

TEST(CachedFinder, LossOnTheUserPathInvalidates) {
  CacheToggleGuard guard;
  set_finder_cache_enabled(true);
  const auto net = two_path_network(/*good_qubits=*/2, /*far_qubits=*/4);
  net::CapacityState cap(net);
  CachedChannelFinder finder(net);

  reset_perf_counters();
  const auto before = finder.find_best_channel(0, 1, cap);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->path, (std::vector<NodeId>{0, 2, 1}));

  cap.commit_channel(before->path);  // good: 2 -> 0 free, on the user path
  const auto after = finder.find_best_channel(0, 1, cap);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->path, (std::vector<NodeId>{0, 3, 1}));
#if MUERP_EXPECT_COUNTERS
  EXPECT_EQ(perf_counters().cache_invalidations, 1u);
#endif
}

TEST(CachedFinder, ReleaseRecommitPairsCoalesceToANoOp) {
  CacheToggleGuard guard;
  set_finder_cache_enabled(true);
  const auto net = two_path_network(/*good_qubits=*/2, /*far_qubits=*/4);
  net::CapacityState cap(net);
  CachedChannelFinder finder(net);

  const std::vector<NodeId> through_good{0, 2, 1};
  cap.commit_channel(through_good);  // good flips false before the tree runs

  reset_perf_counters();
  (void)finder.distances(0, cap);
#if MUERP_EXPECT_COUNTERS
  ASSERT_EQ(perf_counters().dijkstra_runs, 1u);
#endif

  // local_search's signature move: release a channel, then re-commit the
  // very same path. Both flips at `good` cancel; the tree must be served
  // from cache even though the raw flip log grew by two entries.
  cap.release_channel(through_good);
  cap.commit_channel(through_good);
  ASSERT_EQ(cap.epoch(), 3u);
  (void)finder.distances(0, cap);
#if MUERP_EXPECT_COUNTERS
  EXPECT_EQ(perf_counters().dijkstra_runs, 1u);
  EXPECT_EQ(perf_counters().cache_hits, 1u);
  EXPECT_EQ(perf_counters().cache_invalidations, 0u);
#endif
}

TEST(CachedFinder, ExtractScannedMatchesFreshExtraction) {
  CacheToggleGuard guard;
  for (const bool cached : {false, true}) {
    set_finder_cache_enabled(cached);
    support::Rng rng(11);
    auto topo = topology::make_erdos_renyi(14, 0.3, {1000.0, 1000.0}, rng);
    const auto net =
        net::assign_random_users(std::move(topo), 4, 4, {1e-3, 0.9}, rng);
    const ChannelFinder oracle(net);
    CachedChannelFinder finder(net);
    const net::CapacityState cap(net);

    for (const NodeId src : net.users()) {
      const auto dist = finder.distances(src, cap);
      for (const NodeId dst : net.users()) {
        if (dst == src) continue;
        double oracle_dist = 0.0;
        const auto expected =
            oracle.find_best_channel(src, dst, cap, &oracle_dist);
        const auto got = finder.extract_scanned(src, dst, cap);
        ASSERT_EQ(got.has_value(), expected.has_value());
        if (!expected.has_value()) {
          EXPECT_EQ(dist[dst], std::numeric_limits<double>::infinity());
          continue;
        }
        EXPECT_EQ(dist[dst], oracle_dist);  // bitwise: same Dijkstra
        EXPECT_EQ(got->path, expected->path);
        EXPECT_EQ(got->rate, expected->rate);
        EXPECT_EQ(got->neg_log_rate, expected->neg_log_rate);
      }
    }
  }
}

// The core acceptance property: under a random interleaving of queries,
// commits, and releases, the cached finder answers exactly like a fresh
// ChannelFinder at every step.
class CachedFinderInterleaved : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CachedFinderInterleaved, BitIdenticalToUncachedOracle) {
  CacheToggleGuard guard;
  set_finder_cache_enabled(true);
  support::Rng rng(GetParam());
  auto topo = topology::make_erdos_renyi(16, 0.3, {1000.0, 1000.0}, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 4, {1e-3, 0.9}, rng);
  const ChannelFinder oracle(net);
  CachedChannelFinder finder(net);
  net::CapacityState cap(net);

  std::vector<std::vector<NodeId>> committed;
  const auto users = net.users();
  for (int step = 0; step < 120; ++step) {
    const std::size_t ai = rng.uniform_index(users.size());
    const std::size_t bi =
        (ai + 1 + rng.uniform_index(users.size() - 1)) % users.size();
    const NodeId a = users[ai];
    const NodeId b = users[bi];
    const auto expected = oracle.find_best_channel(a, b, cap);
    const auto got = finder.find_best_channel(a, b, cap);
    ASSERT_EQ(got.has_value(), expected.has_value()) << "step " << step;
    if (expected.has_value()) {
      EXPECT_EQ(got->path, expected->path) << "step " << step;
      EXPECT_EQ(got->rate, expected->rate) << "step " << step;
      EXPECT_EQ(got->neg_log_rate, expected->neg_log_rate) << "step " << step;
    }

    const double action = rng.uniform();
    if (action < 0.45 && expected.has_value()) {
      cap.commit_channel(expected->path);
      committed.push_back(expected->path);
    } else if (action < 0.65 && !committed.empty()) {
      const std::size_t idx = rng.uniform_index(committed.size());
      cap.release_channel(committed[idx]);
      committed.erase(committed.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachedFinderInterleaved,
                         ::testing::Range<std::uint64_t>(1, 13));

// Whole-algorithm equivalence: flipping the global toggle must not change
// what the greedy algorithms compute, only how often they run Dijkstra.
class CacheToggleAlgorithms : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheToggleAlgorithms, GreedyAlgorithmsUnaffectedByCacheMode) {
  CacheToggleGuard guard;
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 48;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 8, 4, {1e-4, 0.9}, rng);

  set_finder_cache_enabled(false);
  const auto prim_off = prim_based_from(net, net.users(), 0);
  const auto conflict_off = conflict_free(net, net.users());
  set_finder_cache_enabled(true);
  const auto prim_on = prim_based_from(net, net.users(), 0);
  const auto conflict_on = conflict_free(net, net.users());

  EXPECT_EQ(prim_on.feasible, prim_off.feasible);
  EXPECT_EQ(prim_on.rate, prim_off.rate);
  ASSERT_EQ(prim_on.channels.size(), prim_off.channels.size());
  for (std::size_t i = 0; i < prim_on.channels.size(); ++i) {
    EXPECT_EQ(prim_on.channels[i].path, prim_off.channels[i].path);
  }
  EXPECT_EQ(conflict_on.feasible, conflict_off.feasible);
  EXPECT_EQ(conflict_on.rate, conflict_off.rate);
  ASSERT_EQ(conflict_on.channels.size(), conflict_off.channels.size());
  for (std::size_t i = 0; i < conflict_on.channels.size(); ++i) {
    EXPECT_EQ(conflict_on.channels[i].path, conflict_off.channels[i].path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheToggleAlgorithms,
                         ::testing::Range<std::uint64_t>(1, 9));

// Regression for the `rate == 0.0` sentinel bug: a channel over extremely
// lossy fiber underflows rate to 0 but is still a real, feasible channel —
// neg_log_rate stays finite and the greedy algorithms must not treat it as
// "no channel found".
TEST(CachedFinder, UnderflowedRateStaysFeasible) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1, 0});
  const NodeId sw = b.add_switch({0, 1}, 4);
  b.connect(u0, sw, 1.0e7);  // alpha * L = 1000 per link
  b.connect(sw, u1, 1.0e7);
  const auto net = std::move(b).build({1e-4, 0.9});

  CachedChannelFinder finder(net);
  const net::CapacityState cap(net);
  const auto ch = finder.find_best_channel(u0, u1, cap);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->rate, 0.0);  // exp(-2000) underflows
  EXPECT_TRUE(std::isfinite(ch->neg_log_rate));
  EXPECT_NEAR(ch->neg_log_rate, 2000.0 - std::log(0.9), 1e-6);

  const auto tree = prim_based_from(net, net.users(), 0);
  EXPECT_TRUE(tree.feasible);
  EXPECT_EQ(tree.rate, 0.0);
  ASSERT_EQ(tree.channels.size(), 1u);
  EXPECT_TRUE(std::isfinite(tree.channels[0].neg_log_rate));
}

}  // namespace
}  // namespace muerp::routing
