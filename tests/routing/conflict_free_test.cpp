#include "routing/conflict_free.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/optimal_tree.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"
#include "topology/waxman.hpp"

namespace muerp::routing {
namespace {

using net::NodeId;

/// Three users around a tiny hub (Q=2: one channel) plus a remote fallback
/// switch ring — the canonical capacity-conflict fixture (paper Fig. 4).
struct ConflictFixture {
  net::QuantumNetwork net;
  NodeId u0, u1, u2, hub, fallback;
};

ConflictFixture conflict_fixture(int hub_qubits) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, hub_qubits);
  const NodeId fallback = b.add_switch({100, -300}, 8);
  for (NodeId u : {u0, u1, u2}) {
    b.connect_euclidean(u, hub);
    b.connect_euclidean(u, fallback);
  }
  return {std::move(b).build({1e-4, 0.9}), u0, u1, u2, hub, fallback};
}

TEST(ConflictFree, NoConflictMatchesOptimal) {
  auto fx = conflict_fixture(/*hub_qubits=*/8);  // >= 2|U|: no conflicts
  const auto opt = optimal_special_case(fx.net, fx.net.users());
  const auto repaired = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(repaired.feasible);
  EXPECT_NEAR(repaired.rate, opt.rate, 1e-12);
  EXPECT_EQ(net::validate_tree(fx.net, fx.net.users(), repaired), "");
}

TEST(ConflictFree, ReroutesAroundExhaustedHub) {
  // Hub holds one channel; the second tree channel must detour via the
  // fallback switch.
  auto fx = conflict_fixture(/*hub_qubits=*/2);
  const auto tree = conflict_free(fx.net, fx.net.users());
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(fx.net, fx.net.users(), tree), "");
  int through_hub = 0;
  int through_fallback = 0;
  for (const auto& ch : tree.channels) {
    for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
      if (ch.path[i] == fx.hub) ++through_hub;
      if (ch.path[i] == fx.fallback) ++through_fallback;
    }
  }
  EXPECT_EQ(through_hub, 1);
  EXPECT_EQ(through_fallback, 1);
  // Capacity repair costs rate relative to the unconstrained optimum.
  const auto opt = optimal_special_case(fx.net, fx.net.users());
  EXPECT_LT(tree.rate, opt.rate);
  EXPECT_GT(tree.rate, 0.0);
}

TEST(ConflictFree, InfeasibleWithoutFallback) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 2);  // only 1 channel total
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = conflict_free(net, net.users());
  EXPECT_FALSE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 0.0);
}

TEST(ConflictFree, SucceedsWhereSeedTreeOverloads) {
  // Q=2 everywhere: Algorithm 2's tree (built assuming capacity) overloads,
  // but a capacity-aware reroute exists; Algorithm 3 must find it.
  auto fx = conflict_fixture(/*hub_qubits=*/2);
  const auto seed = optimal_special_case(fx.net, fx.net.users());
  ASSERT_TRUE(seed.feasible);  // seed uses the hub twice (capacity-oblivious)
  const auto tree = conflict_free_from(fx.net, fx.net.users(), seed);
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(fx.net, fx.net.users(), tree), "");
}

TEST(ConflictFree, SingleAndTwoUsers) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto two = conflict_free(net, net.users());
  ASSERT_TRUE(two.feasible);
  EXPECT_EQ(two.channels.size(), 1u);

  const std::vector<NodeId> one{u0};
  const auto single = conflict_free(net, one);
  EXPECT_TRUE(single.feasible);
  EXPECT_DOUBLE_EQ(single.rate, 1.0);
}

/// Property: on random networks the result is always a valid MUERP solution
/// (capacity respected) and never beats the capacity-oblivious optimum.
class ConflictFreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConflictFreeProperty, AlwaysValidAndBoundedByOptimal) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 30;
  params.average_degree = 5.0;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 6, 4, {1e-4, 0.9}, rng);

  const auto tree = conflict_free(net, net.users());
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  if (tree.feasible) {
    // The capacity-oblivious optimum upper-bounds any feasible solution.
    const auto opt = optimal_special_case(net, net.users());
    EXPECT_LE(tree.rate, opt.rate * (1.0 + 1e-9));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictFreeProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace muerp::routing
