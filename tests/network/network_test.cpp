#include "network/quantum_network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "support/rng.hpp"
#include "topology/structured.hpp"

namespace muerp::net {
namespace {

/// Alice - switch - Bob line, 100 km fibers, Q=4, q=0.9, alpha=1e-4.
QuantumNetwork line_network() {
  NetworkBuilder b;
  const NodeId alice = b.add_user({0, 0});
  const NodeId sw = b.add_switch({100, 0}, 4);
  const NodeId bob = b.add_user({200, 0});
  b.connect_euclidean(alice, sw);
  b.connect_euclidean(sw, bob);
  return std::move(b).build({1e-4, 0.9});
}

TEST(QuantumNetwork, RolesAndSets) {
  const auto net = line_network();
  EXPECT_EQ(net.node_count(), 3u);
  EXPECT_TRUE(net.is_user(0));
  EXPECT_TRUE(net.is_switch(1));
  EXPECT_TRUE(net.is_user(2));
  ASSERT_EQ(net.users().size(), 2u);
  ASSERT_EQ(net.switches().size(), 1u);
  EXPECT_EQ(net.switches()[0], 1u);
}

TEST(QuantumNetwork, QubitsAndChannelCapacity) {
  const auto net = line_network();
  EXPECT_EQ(net.qubits(1), 4);
  EXPECT_EQ(net.channel_capacity(1), 2);  // floor(4/2)
  EXPECT_EQ(net.qubits(0), 0);            // users normalized to 0
}

TEST(QuantumNetwork, OddQubitBudgetRoundsDown) {
  NetworkBuilder b;
  b.add_user({0, 0});
  const NodeId sw = b.add_switch({1, 0}, 5);
  b.add_user({2, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  EXPECT_EQ(net.channel_capacity(sw), 2);  // floor(5/2), Def. 3
}

TEST(QuantumNetwork, LinkSuccessMatchesExpDecay) {
  const auto net = line_network();
  const auto e = net.graph().find_edge(0, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_NEAR(net.link_success(*e), std::exp(-1e-4 * 100.0), 1e-12);
}

TEST(QuantumNetwork, EdgeRoutingWeight) {
  const auto net = line_network();
  const auto e = net.graph().find_edge(0, 1);
  EXPECT_NEAR(net.edge_routing_weight(*e), 1e-4 * 100.0 - std::log(0.9),
              1e-12);
  EXPECT_GT(net.edge_routing_weight(*e), 0.0);  // Dijkstra precondition
}

TEST(QuantumNetwork, SetTopologyReplacesGraph) {
  auto net = line_network();
  graph::Graph pruned(3);
  pruned.add_edge(0, 1, 100.0);  // drop the switch-bob fiber
  net.set_topology(std::move(pruned));
  EXPECT_EQ(net.graph().edge_count(), 1u);
  EXPECT_FALSE(net.graph().has_edge(1, 2));
}

TEST(CapacityState, UsersAreUnbounded) {
  const auto net = line_network();
  const CapacityState cap(net);
  EXPECT_GT(cap.free_qubits(0), 1 << 29);
  EXPECT_TRUE(cap.can_relay(0));
}

TEST(CapacityState, CommitAndRelease) {
  const auto net = line_network();
  CapacityState cap(net);
  EXPECT_EQ(cap.free_qubits(1), 4);
  const std::vector<NodeId> path{0, 1, 2};
  cap.commit_channel(path);
  EXPECT_EQ(cap.free_qubits(1), 2);
  cap.commit_channel(path);
  EXPECT_EQ(cap.free_qubits(1), 0);
  EXPECT_FALSE(cap.can_relay(1));
  cap.release_channel(path);
  EXPECT_EQ(cap.free_qubits(1), 2);
  EXPECT_TRUE(cap.can_relay(1));
}

TEST(CapacityState, DirectChannelTouchesNoSwitch) {
  NetworkBuilder b;
  const NodeId a = b.add_user({0, 0});
  const NodeId c = b.add_user({10, 0});
  b.add_switch({5, 5}, 2);
  b.connect_euclidean(a, c);
  const auto net = std::move(b).build({1e-4, 0.9});
  CapacityState cap(net);
  const std::vector<NodeId> direct{a, c};
  cap.commit_channel(direct);
  EXPECT_EQ(cap.free_qubits(2), 2);  // untouched
}

TEST(AssignRandomUsers, CountsAndDeterminism) {
  support::Rng rng(5);
  auto topo = topology::make_grid(4, 5, 100.0);
  const auto net = assign_random_users(std::move(topo), 6, 4, {1e-4, 0.9}, rng);
  EXPECT_EQ(net.users().size(), 6u);
  EXPECT_EQ(net.switches().size(), 14u);
  for (NodeId sw : net.switches()) EXPECT_EQ(net.qubits(sw), 4);

  support::Rng rng2(5);
  auto topo2 = topology::make_grid(4, 5, 100.0);
  const auto net2 =
      assign_random_users(std::move(topo2), 6, 4, {1e-4, 0.9}, rng2);
  ASSERT_EQ(net2.users().size(), net.users().size());
  for (std::size_t i = 0; i < net.users().size(); ++i) {
    EXPECT_EQ(net.users()[i], net2.users()[i]);
  }
}

// ---- validate_tree ----

TEST(ValidateTree, AcceptsCorrectTree) {
  const auto net = line_network();
  Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = channel_rate(net, ch.path);
  EntanglementTree tree{{ch}, ch.rate, true};
  EXPECT_EQ(validate_tree(net, net.users(), tree), "");
}

TEST(ValidateTree, RejectsWrongChannelCount) {
  const auto net = line_network();
  EntanglementTree tree{{}, 1.0, true};
  EXPECT_NE(validate_tree(net, net.users(), tree), "");
}

TEST(ValidateTree, RejectsWrongRate) {
  const auto net = line_network();
  Channel ch;
  ch.path = {0, 1, 2};
  ch.rate = 0.5;  // wrong on purpose
  EntanglementTree tree{{ch}, 0.5, true};
  EXPECT_NE(validate_tree(net, net.users(), tree), "");
}

TEST(ValidateTree, RejectsNonexistentEdge) {
  const auto net = line_network();
  Channel ch;
  ch.path = {0, 2};  // no direct fiber alice-bob
  ch.rate = 1.0;
  EntanglementTree tree{{ch}, 1.0, true};
  EXPECT_NE(validate_tree(net, net.users(), tree), "");
}

TEST(ValidateTree, RejectsCapacityViolation) {
  // Hub with Q=2 can carry one channel; a 3-user star through it with two
  // channels must be rejected.
  NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2, 0});
  const NodeId u2 = b.add_user({0, 2});
  const NodeId hub = b.add_switch({1, 1}, 2);
  b.connect_euclidean(u0, hub);
  b.connect_euclidean(u1, hub);
  b.connect_euclidean(u2, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  Channel c1;
  c1.path = {u0, hub, u1};
  c1.rate = channel_rate(net, c1.path);
  Channel c2;
  c2.path = {u0, hub, u2};
  c2.rate = channel_rate(net, c2.path);
  EntanglementTree tree{{c1, c2}, c1.rate * c2.rate, true};
  const auto err = validate_tree(net, net.users(), tree);
  EXPECT_NE(err.find("capacity"), std::string::npos) << err;
}

TEST(ValidateTree, RejectsCycle) {
  NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1, 0});
  const NodeId u2 = b.add_user({0, 1});
  b.connect_euclidean(u0, u1);
  b.connect_euclidean(u1, u2);
  b.connect_euclidean(u2, u0);
  const auto net = std::move(b).build({1e-4, 0.9});

  auto mk = [&](NodeId a, NodeId c) {
    Channel ch;
    ch.path = {a, c};
    ch.rate = channel_rate(net, ch.path);
    return ch;
  };
  // Three channels over three users: one too many, forming a cycle.
  EntanglementTree tree{{mk(u0, u1), mk(u1, u2), mk(u2, u0)}, 1.0, true};
  EXPECT_NE(validate_tree(net, net.users(), tree), "");
}

TEST(ValidateTree, InfeasibleMustHaveRateZero) {
  const auto net = line_network();
  EntanglementTree bad{{}, 0.25, false};
  EXPECT_NE(validate_tree(net, net.users(), bad), "");
  EntanglementTree ok{{}, 0.0, false};
  EXPECT_EQ(validate_tree(net, net.users(), ok), "");
}

TEST(ValidateTree, SingletonUserSet) {
  NetworkBuilder b;
  const NodeId u = b.add_user({0, 0});
  b.add_switch({1, 0}, 2);
  b.connect_euclidean(u, 1);
  const auto net = std::move(b).build({1e-4, 0.9});
  EntanglementTree tree{{}, 1.0, true};
  EXPECT_EQ(validate_tree(net, net.users(), tree), "");
}

}  // namespace
}  // namespace muerp::net
