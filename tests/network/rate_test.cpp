#include "network/rate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"

namespace muerp::net {
namespace {

constexpr double kAlpha = 1e-4;
constexpr double kQ = 0.9;

/// users u0, u1 joined by a chain of `switches` switches, uniform segment
/// length `seg_km`.
QuantumNetwork chain(std::size_t switches, double seg_km) {
  NetworkBuilder b;
  NodeId prev = b.add_user({0, 0});
  for (std::size_t i = 0; i < switches; ++i) {
    const NodeId sw =
        b.add_switch({seg_km * static_cast<double>(i + 1), 0}, 4);
    b.connect(prev, sw, seg_km);
    prev = sw;
  }
  const NodeId last =
      b.add_user({seg_km * static_cast<double>(switches + 1), 0});
  b.connect(prev, last, seg_km);
  return std::move(b).build({kAlpha, kQ});
}

// Builder ids are already in chain order: u0, s1..sk, u1.
std::vector<NodeId> full_path(const QuantumNetwork& net) {
  std::vector<NodeId> path;
  for (NodeId v = 0; v < net.node_count(); ++v) path.push_back(v);
  return path;
}

TEST(Eq1, DirectLinkIsPureAttenuation) {
  // l = 1: no swaps, rate = exp(-alpha*L) (paper Fig. 4a discussion).
  const auto net = chain(0, 250.0);
  const std::vector<NodeId> path{0, 1};
  EXPECT_NEAR(channel_rate(net, path), std::exp(-kAlpha * 250.0), 1e-12);
}

TEST(Eq1, SingleSwitchIsPSquaredQ) {
  // The paper's worked example: two links of rate p and one switch -> p^2*q.
  const auto net = chain(1, 100.0);
  const std::vector<NodeId> path{0, 1, 2};
  const double p = std::exp(-kAlpha * 100.0);
  EXPECT_NEAR(channel_rate(net, path), p * p * kQ, 1e-12);
}

TEST(Eq1, GeneralChain) {
  // l = 4 links, 3 swaps: q^3 * exp(-alpha * total length).
  const auto net = chain(3, 80.0);
  const auto path = full_path(net);
  EXPECT_NEAR(channel_rate(net, path),
              std::pow(kQ, 3) * std::exp(-kAlpha * 4 * 80.0), 1e-12);
}

TEST(Eq1, NegLogConsistency) {
  const auto net = chain(2, 120.0);
  const auto path = full_path(net);
  EXPECT_NEAR(std::exp(-channel_neg_log_rate(net, path)),
              channel_rate(net, path), 1e-15);
}

TEST(Eq1, PerfectSwapLeavesOnlyAttenuation) {
  NetworkBuilder b;
  b.add_user({0, 0});
  b.add_switch({100, 0}, 4);
  b.add_user({200, 0});
  b.connect(0, 1, 100.0);
  b.connect(1, 2, 100.0);
  const auto net = std::move(b).build({kAlpha, 1.0});
  const std::vector<NodeId> path{0, 1, 2};
  EXPECT_NEAR(channel_rate(net, path), std::exp(-kAlpha * 200.0), 1e-12);
}

TEST(Eq1, ZeroAttenuationLeavesOnlySwaps) {
  NetworkBuilder b;
  b.add_user({0, 0});
  b.add_switch({100, 0}, 4);
  b.add_user({200, 0});
  b.connect(0, 1, 100.0);
  b.connect(1, 2, 100.0);
  const auto net = std::move(b).build({0.0, 0.9});
  const std::vector<NodeId> path{0, 1, 2};
  EXPECT_NEAR(channel_rate(net, path), 0.9, 1e-12);
}

TEST(Eq2, ProductOfChannelRates) {
  Channel a;
  a.rate = 0.5;
  Channel b;
  b.rate = 0.25;
  const std::vector<Channel> channels{a, b};
  EXPECT_DOUBLE_EQ(tree_rate(channels), 0.125);
  EXPECT_DOUBLE_EQ(tree_rate(std::span<const Channel>{}), 1.0);
}

TEST(RoutingDistance, RoundTripsThroughDijkstraWeights) {
  // A channel's Dijkstra distance is sum(alpha*L - ln q); converting back
  // must reproduce Eq. (1) exactly (Algorithm 1 Line 27).
  const auto net = chain(2, 150.0);
  const auto path = full_path(net);
  double dist = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    dist += net.edge_routing_weight(*net.graph().find_edge(path[i], path[i + 1]));
  }
  EXPECT_NEAR(rate_from_routing_distance(dist, kQ), channel_rate(net, path),
              1e-12);
}

TEST(RoutingDistance, DirectEdgeDividesSwapBackOut) {
  const auto net = chain(0, 300.0);
  const double dist =
      net.edge_routing_weight(*net.graph().find_edge(0, 1));
  // One edge: distance includes one -ln q but no swap happens.
  EXPECT_NEAR(rate_from_routing_distance(dist, kQ),
              std::exp(-kAlpha * 300.0), 1e-12);
}

class Eq1ChainLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Eq1ChainLengths, ClosedFormMatches) {
  const std::size_t switches = GetParam();
  const double seg = 60.0;
  const auto net = chain(switches, seg);
  std::vector<NodeId> path;
  for (NodeId v = 0; v < net.node_count(); ++v) path.push_back(v);
  const double links = static_cast<double>(switches + 1);
  EXPECT_NEAR(channel_rate(net, path),
              std::pow(kQ, links - 1) * std::exp(-kAlpha * links * seg),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Switches, Eq1ChainLengths,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace muerp::net
