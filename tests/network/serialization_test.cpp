#include "network/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "experiment/scenario.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"

namespace muerp::net {
namespace {

QuantumNetwork sample_network() {
  NetworkBuilder b;
  b.add_user({0.5, 1.25});
  b.add_switch({100.75, 2.5}, 4);
  b.add_user({200.0, 0.0});
  b.connect(0, 1, 101.0);
  b.connect(1, 2, 99.25);
  b.connect(0, 2, 250.5);
  return std::move(b).build({1.5e-4, 0.85});
}

TEST(Serialization, RoundTripPreservesEverything) {
  const auto original = sample_network();
  std::stringstream stream;
  save_network(original, stream);
  auto loaded = load_network(stream);
  ASSERT_TRUE(std::holds_alternative<QuantumNetwork>(loaded))
      << std::get<std::string>(loaded);
  const auto& copy = std::get<QuantumNetwork>(loaded);

  ASSERT_EQ(copy.node_count(), original.node_count());
  ASSERT_EQ(copy.graph().edge_count(), original.graph().edge_count());
  EXPECT_DOUBLE_EQ(copy.physical().attenuation,
                   original.physical().attenuation);
  EXPECT_DOUBLE_EQ(copy.physical().swap_success,
                   original.physical().swap_success);
  for (NodeId v = 0; v < original.node_count(); ++v) {
    EXPECT_EQ(copy.kind(v), original.kind(v));
    EXPECT_EQ(copy.qubits(v), original.qubits(v));
    EXPECT_DOUBLE_EQ(copy.positions()[v].x, original.positions()[v].x);
    EXPECT_DOUBLE_EQ(copy.positions()[v].y, original.positions()[v].y);
  }
  for (graph::EdgeId e = 0; e < original.graph().edge_count(); ++e) {
    EXPECT_EQ(copy.graph().edge(e).a, original.graph().edge(e).a);
    EXPECT_EQ(copy.graph().edge(e).b, original.graph().edge(e).b);
    EXPECT_DOUBLE_EQ(copy.graph().edge(e).length_km,
                     original.graph().edge(e).length_km);
  }
}

TEST(Serialization, RoundTripPreservesRoutingResults) {
  // The loaded network must route identically to the original.
  experiment::Scenario scenario;
  scenario.switch_count = 20;
  scenario.user_count = 5;
  const auto inst = experiment::instantiate(scenario, 0);
  std::stringstream stream;
  save_network(inst.network, stream);
  auto loaded = load_network(stream);
  ASSERT_TRUE(std::holds_alternative<QuantumNetwork>(loaded));
  const auto& copy = std::get<QuantumNetwork>(loaded);
  const auto t1 = routing::conflict_free(inst.network, inst.users);
  const auto t2 = routing::conflict_free(copy, inst.users);
  EXPECT_EQ(t1.feasible, t2.feasible);
  EXPECT_DOUBLE_EQ(t1.rate, t2.rate);
}

TEST(Serialization, RejectsBadHeader) {
  std::stringstream s("not-a-network 1\n");
  const auto r = load_network(s);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
}

TEST(Serialization, RejectsWrongVersion) {
  std::stringstream s("muerp-network 99\n");
  const auto r = load_network(s);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
  EXPECT_NE(std::get<std::string>(r).find("version"), std::string::npos);
}

TEST(Serialization, RejectsDuplicateNode) {
  std::stringstream s(
      "muerp-network 1\nphysical 1e-4 0.9\nnodes 2\n"
      "user 0 0 0\nuser 0 1 1\nedges 0\n");
  const auto r = load_network(s);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
  EXPECT_NE(std::get<std::string>(r).find("duplicate"), std::string::npos);
}

TEST(Serialization, RejectsOutOfRangeEdge) {
  std::stringstream s(
      "muerp-network 1\nphysical 1e-4 0.9\nnodes 2\n"
      "user 0 0 0\nuser 1 1 1\nedges 1\nedge 0 7 5.0\n");
  const auto r = load_network(s);
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
}

TEST(Serialization, RejectsSelfLoopAndDuplicateEdges) {
  std::stringstream loop(
      "muerp-network 1\nphysical 1e-4 0.9\nnodes 2\n"
      "user 0 0 0\nuser 1 1 1\nedges 1\nedge 1 1 5.0\n");
  ASSERT_TRUE(std::holds_alternative<std::string>(load_network(loop)));
  std::stringstream dup(
      "muerp-network 1\nphysical 1e-4 0.9\nnodes 2\n"
      "user 0 0 0\nuser 1 1 1\nedges 2\nedge 0 1 5.0\nedge 1 0 5.0\n");
  ASSERT_TRUE(std::holds_alternative<std::string>(load_network(dup)));
}

TEST(Serialization, RejectsBadSwapRate) {
  std::stringstream s("muerp-network 1\nphysical 1e-4 1.5\nnodes 0\nedges 0\n");
  ASSERT_TRUE(std::holds_alternative<std::string>(load_network(s)));
}

TEST(Serialization, RejectsTruncatedInput) {
  std::stringstream s(
      "muerp-network 1\nphysical 1e-4 0.9\nnodes 3\nuser 0 0 0\n");
  ASSERT_TRUE(std::holds_alternative<std::string>(load_network(s)));
}

TEST(Serialization, FileRoundTrip) {
  const auto original = sample_network();
  const std::string path = ::testing::TempDir() + "/muerp_net.txt";
  ASSERT_TRUE(save_network_file(original, path));
  const auto r = load_network_file(path);
  ASSERT_TRUE(std::holds_alternative<QuantumNetwork>(r));
  EXPECT_EQ(std::get<QuantumNetwork>(r).node_count(), 3u);
}

TEST(Serialization, MissingFileReportsError) {
  const auto r = load_network_file("/definitely/not/here.txt");
  ASSERT_TRUE(std::holds_alternative<std::string>(r));
}

TEST(Dot, ContainsNodesEdgesAndTreeOverlay) {
  const auto net = sample_network();
  const auto tree = routing::conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const std::string dot = to_dot(net, &tree);
  EXPECT_NE(dot.find("graph muerp"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("Q=4"), std::string::npos);
  EXPECT_NE(dot.find("--"), std::string::npos);
  EXPECT_NE(dot.find("penwidth"), std::string::npos);  // channel overlay
  // Plain rendering without a tree has no highlighted edges.
  const std::string plain = to_dot(net);
  EXPECT_EQ(plain.find("penwidth"), std::string::npos);
}

}  // namespace
}  // namespace muerp::net
