#include "network/svg.hpp"

#include <gtest/gtest.h>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"

namespace muerp::net {
namespace {

QuantumNetwork sample() {
  NetworkBuilder b;
  b.add_user({0, 0});
  b.add_switch({500, 250}, 4);
  b.add_user({1000, 0});
  b.connect_euclidean(0, 1);
  b.connect_euclidean(1, 2);
  return std::move(b).build({1e-4, 0.9});
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t count = 0;
  for (auto pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Svg, WellFormedDocument) {
  const auto net = sample();
  const std::string svg = to_svg(net);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, OneGlyphPerNodeAndLinePerFiber) {
  const auto net = sample();
  const std::string svg = to_svg(net);
  EXPECT_EQ(count_occurrences(svg, "<circle"), 2u);  // two users
  // One switch square + the background rect.
  EXPECT_EQ(count_occurrences(svg, "<rect"), 2u);
  EXPECT_EQ(count_occurrences(svg, "<line"), 2u);
}

TEST(Svg, LabelsIncludeQubitBudget) {
  const auto net = sample();
  const std::string svg = to_svg(net);
  EXPECT_NE(svg.find("s1:4"), std::string::npos);
  EXPECT_NE(svg.find("u0"), std::string::npos);
}

TEST(Svg, LabelsCanBeDisabled) {
  const auto net = sample();
  SvgOptions options;
  options.label_nodes = false;
  const std::string svg = to_svg(net, nullptr, options);
  EXPECT_EQ(svg.find("<text"), std::string::npos);
}

TEST(Svg, TreeOverlayColoursChannels) {
  const auto net = sample();
  const auto tree = routing::conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const std::string svg = to_svg(net, &tree);
  // Both fibers belong to the single channel -> two wide coloured strokes.
  EXPECT_EQ(count_occurrences(svg, "stroke-width=\"3\""), 2u);
  const std::string plain = to_svg(net);
  EXPECT_EQ(count_occurrences(plain, "stroke-width=\"3\""), 0u);
}

TEST(Svg, CoordinatesStayInsideCanvas) {
  const auto net = sample();
  SvgOptions options;
  options.width_px = 400;
  options.height_px = 300;
  options.margin_px = 20;
  const std::string svg = to_svg(net, nullptr, options);
  // Extract all cx values and check bounds (coarse: search "cx=\"").
  std::size_t pos = 0;
  while ((pos = svg.find("cx=\"", pos)) != std::string::npos) {
    pos += 4;
    const double value = std::strtod(svg.c_str() + pos, nullptr);
    EXPECT_GE(value, 20.0 - 1e-9);
    EXPECT_LE(value, 380.0 + 1e-9);
  }
}

TEST(Svg, DegenerateSingleNode) {
  NetworkBuilder b;
  b.add_user({5, 5});
  const auto net = std::move(b).build({1e-4, 0.9});
  const std::string svg = to_svg(net);
  EXPECT_NE(svg.find("<circle"), std::string::npos);  // no crash, renders
}

TEST(Svg, EmptyNetworkStillRendersValidDocument) {
  NetworkBuilder b;
  const auto net = std::move(b).build({1e-4, 0.9});
  const std::string svg = to_svg(net);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(count_occurrences(svg, "<circle"), 0u);
  EXPECT_EQ(count_occurrences(svg, "<line"), 0u);
}

TEST(Svg, TitleIsXmlEscaped) {
  const auto net = sample();
  SvgOptions options;
  options.title = "slot <7> & \"hot\"";
  const std::string svg = to_svg(net, nullptr, options);
  EXPECT_NE(svg.find("slot &lt;7&gt; &amp; &quot;hot&quot;"),
            std::string::npos);
  EXPECT_EQ(svg.find("<7>"), std::string::npos);  // raw text must not leak
}

TEST(Svg, HeatColorRampAnchorsAndClamps) {
  EXPECT_EQ(heat_color(0.0), "#2c7a4b");   // green
  EXPECT_EQ(heat_color(0.5), "#e6b41e");   // amber
  EXPECT_EQ(heat_color(1.0), "#c0392b");   // red
  EXPECT_EQ(heat_color(-3.0), heat_color(0.0));  // clamped
  EXPECT_EQ(heat_color(2.0), heat_color(1.0));
  // Midpoints interpolate between adjacent anchors, not across the ramp.
  EXPECT_NE(heat_color(0.25), heat_color(0.0));
  EXPECT_NE(heat_color(0.25), heat_color(0.5));
}

TEST(Svg, UtilizationHeatStrokesHotEdges) {
  const auto net = sample();
  SvgOptions options;
  std::vector<double> utilization = {1.0, 0.0};  // edge 0 hot, edge 1 idle
  options.edge_utilization = &utilization;
  const std::string svg = to_svg(net, nullptr, options);
  // The hot edge takes the red end of the ramp with a widened stroke; the
  // idle edge keeps the neutral fiber grey.
  EXPECT_EQ(count_occurrences(svg, heat_color(1.0)), 1u);
  EXPECT_EQ(count_occurrences(svg, "stroke-width=\"4\""), 1u);  // 1.2+2.8
  EXPECT_EQ(count_occurrences(svg, "#c9c4ba"), 1u);

  // Channel colouring from a routed tree wins over heat on its edges.
  const auto tree = routing::conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  const std::string overlay = to_svg(net, &tree, options);
  EXPECT_EQ(count_occurrences(overlay, "stroke-width=\"3\""), 2u);
  EXPECT_EQ(count_occurrences(overlay, "stroke-width=\"4\""), 0u);
}

}  // namespace
}  // namespace muerp::net
