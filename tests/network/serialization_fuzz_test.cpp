// Robustness: the network parser must reject arbitrary garbage with an
// error message — never crash, hang, or return a half-built network.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "network/serialization.hpp"
#include "support/rng.hpp"

namespace muerp::net {
namespace {

TEST(SerializationFuzz, RandomBytesAlwaysRejected) {
  support::Rng rng(0xF022);
  for (int trial = 0; trial < 200; ++trial) {
    std::string blob;
    const std::size_t length = rng.uniform_index(400);
    for (std::size_t i = 0; i < length; ++i) {
      blob.push_back(static_cast<char>(rng.uniform_index(256)));
    }
    std::istringstream in(blob);
    const auto result = load_network(in);
    // Pure noise essentially never forms a valid header; assert rejection
    // with a non-empty reason.
    ASSERT_TRUE(std::holds_alternative<std::string>(result)) << trial;
    EXPECT_FALSE(std::get<std::string>(result).empty());
  }
}

TEST(SerializationFuzz, MutatedValidFilesNeverCrash) {
  // Start from a valid serialization and flip tokens; the parser must
  // either accept (if the mutation stayed valid) or produce an error —
  // validated structurally by re-serializing on accept.
  const std::string valid =
      "muerp-network 1\n"
      "physical 0.0001 0.9\n"
      "nodes 3\n"
      "user 0 0 0\n"
      "switch 1 10 0 4\n"
      "user 2 20 0\n"
      "edges 2\n"
      "edge 0 1 10\n"
      "edge 1 2 10\n";
  support::Rng rng(0xBEEF);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = valid;
    const std::size_t edits = 1 + rng.uniform_index(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform_index(mutated.size());
      const char replacement =
          "0123456789 -\nabcdefguser"[rng.uniform_index(24)];
      mutated[pos] = replacement;
    }
    std::istringstream in(mutated);
    const auto result = load_network(in);
    if (std::holds_alternative<QuantumNetwork>(result)) {
      const auto& network = std::get<QuantumNetwork>(result);
      // Whatever was accepted must be internally consistent enough to
      // re-serialize and re-load.
      std::stringstream round;
      save_network(network, round);
      const auto again = load_network(round);
      EXPECT_TRUE(std::holds_alternative<QuantumNetwork>(again)) << trial;
    } else {
      EXPECT_FALSE(std::get<std::string>(result).empty()) << trial;
    }
  }
}

TEST(SerializationFuzz, TruncationsAtEveryPointRejectedOrValid) {
  const std::string valid =
      "muerp-network 1\n"
      "physical 0.0001 0.9\n"
      "nodes 2\n"
      "user 0 0 0\n"
      "user 1 5 5\n"
      "edges 1\n"
      "edge 0 1 7\n";
  // Trailing whitespace is optional to the tokenizer, so only prefixes cut
  // before the last meaningful character must fail.
  const std::size_t last_content = valid.find_last_not_of(" \n");
  for (std::size_t cut = 0; cut <= last_content; ++cut) {
    std::istringstream in(valid.substr(0, cut));
    const auto result = load_network(in);
    EXPECT_TRUE(std::holds_alternative<std::string>(result)) << "cut " << cut;
  }
  std::istringstream full(valid);
  EXPECT_TRUE(std::holds_alternative<QuantumNetwork>(load_network(full)));
}

}  // namespace
}  // namespace muerp::net
