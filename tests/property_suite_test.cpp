// Cross-module randomized property harness.
//
// Per-module tests check local contracts; this suite stresses the *joint*
// invariants that hold across the whole library on randomized instances:
// dominance chains between algorithms, oracle agreement, serialization
// transparency, and simulator consistency. Every property runs over many
// seeded instances (deterministic, so failures reproduce).
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/serialization.hpp"
#include "routing/backup.hpp"
#include "routing/channel_finder.hpp"
#include "routing/conflict_free.hpp"
#include "routing/exact_solver.hpp"
#include "routing/feasibility.hpp"
#include "routing/k_shortest.hpp"
#include "routing/local_search.hpp"
#include "routing/multipath.hpp"
#include "routing/optimal_tree.hpp"
#include "routing/prim_based.hpp"
#include "simulation/monte_carlo.hpp"
#include "simulation/qubit_machine.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp {
namespace {

struct RandomInstance {
  net::QuantumNetwork network;
  std::vector<net::NodeId> users;
};

RandomInstance make_instance(std::uint64_t seed, std::size_t nodes,
                             std::size_t users, int qubits) {
  support::Rng rng(seed);
  topology::WaxmanParams params;
  params.node_count = nodes;
  params.average_degree = 5.0;
  auto topo = topology::generate_waxman(params, rng);
  auto network =
      net::assign_random_users(std::move(topo), users, qubits, {1e-4, 0.9},
                               rng);
  std::vector<net::NodeId> ids(network.users().begin(),
                               network.users().end());
  return {std::move(network), std::move(ids)};
}

class CrossModule : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossModule, DominanceChainHolds) {
  // Capacity-oblivious optimum >= every capacity-feasible solution,
  // including after local search and regardless of which heuristic made it.
  auto inst = make_instance(GetParam(), 36, 6, 4);
  const auto boosted = [&] {
    std::vector<net::NodeKind> kinds(inst.network.node_count());
    std::vector<int> q(inst.network.node_count());
    std::vector<support::Point2D> pos(inst.network.positions().begin(),
                                      inst.network.positions().end());
    for (net::NodeId v = 0; v < inst.network.node_count(); ++v) {
      kinds[v] = inst.network.kind(v);
      q[v] = inst.network.is_switch(v) ? 2 * static_cast<int>(inst.users.size())
                                       : 0;
    }
    return net::QuantumNetwork(inst.network.graph(), std::move(pos),
                               std::move(kinds), std::move(q),
                               inst.network.physical());
  }();
  const auto alg2 = routing::optimal_special_case(boosted, inst.users);

  net::EntanglementTree solutions[4];
  solutions[0] = routing::conflict_free(inst.network, inst.users);
  solutions[1] = routing::prim_based_from(inst.network, inst.users, 0);
  solutions[2] = solutions[1];
  if (solutions[2].feasible) {
    routing::improve_tree(inst.network, inst.users, solutions[2]);
  }
  solutions[3] = baselines::extended_qcast(inst.network, inst.users);

  for (const auto& tree : solutions) {
    ASSERT_EQ(net::validate_tree(inst.network, inst.users, tree), "");
    EXPECT_LE(tree.rate, alg2.rate * (1.0 + 1e-9));
    if (tree.feasible) {
      EXPECT_TRUE(alg2.feasible);
    }
  }
  // Local search on top of Alg-4 never loses to plain Alg-4.
  EXPECT_GE(solutions[2].rate, solutions[1].rate * (1.0 - 1e-12));
}

TEST_P(CrossModule, FeasibilityScreenNeverLies) {
  auto inst = make_instance(GetParam() + 100, 30, 5, 3);
  const auto report =
      routing::screen_feasibility(inst.network, inst.users);
  const auto alg3 = routing::conflict_free(inst.network, inst.users);
  if (report.verdict == routing::Feasibility::kInfeasible) {
    // A proof of infeasibility must silence every heuristic and baseline.
    EXPECT_FALSE(alg3.feasible) << report.reason;
    EXPECT_FALSE(
        routing::prim_based_from(inst.network, inst.users, 0).feasible);
    EXPECT_FALSE(
        baselines::extended_qcast(inst.network, inst.users).feasible);
  }
  if (report.verdict == routing::Feasibility::kFeasible) {
    // Theorem 3's constructive proof: Algorithm 2's tree must fit. Verify
    // via Algorithm 3 on the *boosted* premise — the screen only returns
    // kFeasible when the sufficient condition holds on the real budgets,
    // so Algorithm 3 itself must succeed.
    EXPECT_TRUE(alg3.feasible) << report.reason;
  }
}

TEST_P(CrossModule, KBestHeadMatchesAlgorithm1Everywhere) {
  auto inst = make_instance(GetParam() + 200, 24, 4, 4);
  const routing::ChannelFinder finder(inst.network);
  const net::CapacityState cap(inst.network);
  for (std::size_t i = 0; i < inst.users.size(); ++i) {
    for (std::size_t j = i + 1; j < inst.users.size(); ++j) {
      const auto best =
          finder.find_best_channel(inst.users[i], inst.users[j], cap);
      const auto top = routing::k_best_channels(inst.network, inst.users[i],
                                                inst.users[j], cap, 1);
      ASSERT_EQ(best.has_value(), !top.empty());
      if (best) {
        EXPECT_NEAR(best->rate, top[0].rate, 1e-12 * best->rate);
      }
    }
  }
}

TEST_P(CrossModule, SerializationIsTransparentToEverything) {
  auto inst = make_instance(GetParam() + 300, 28, 5, 4);
  std::stringstream stream;
  net::save_network(inst.network, stream);
  auto loaded = net::load_network(stream);
  ASSERT_TRUE(std::holds_alternative<net::QuantumNetwork>(loaded));
  const auto& copy = std::get<net::QuantumNetwork>(loaded);

  const auto t1 = routing::conflict_free(inst.network, inst.users);
  const auto t2 = routing::conflict_free(copy, inst.users);
  EXPECT_EQ(t1.feasible, t2.feasible);
  EXPECT_DOUBLE_EQ(t1.rate, t2.rate);
  const auto n1 = baselines::n_fusion(inst.network, inst.users);
  const auto n2 = baselines::n_fusion(copy, inst.users);
  EXPECT_DOUBLE_EQ(n1.rate, n2.rate);
  const auto s1 = routing::screen_feasibility(inst.network, inst.users);
  const auto s2 = routing::screen_feasibility(copy, inst.users);
  EXPECT_EQ(s1.verdict, s2.verdict);
}

TEST_P(CrossModule, SimulatorsAgreeOnTheSamePlan) {
  auto inst = make_instance(GetParam() + 400, 26, 4, 6);
  // Gentle attenuation so Monte-Carlo rates are resolvable quickly.
  std::vector<net::NodeKind> kinds(inst.network.node_count());
  std::vector<int> q(inst.network.node_count());
  std::vector<support::Point2D> pos(inst.network.positions().begin(),
                                    inst.network.positions().end());
  for (net::NodeId v = 0; v < inst.network.node_count(); ++v) {
    kinds[v] = inst.network.kind(v);
    q[v] = inst.network.qubits(v);
  }
  const net::QuantumNetwork gentle(inst.network.graph(), std::move(pos),
                                   std::move(kinds), std::move(q),
                                   {2e-5, 0.95});
  const auto tree = routing::conflict_free(gentle, inst.users);
  if (!tree.feasible) GTEST_SKIP();

  support::Rng r1(GetParam());
  support::Rng r2(GetParam());
  const auto mc =
      sim::MonteCarloSimulator(gentle).estimate_tree_rate(tree, 30000, r1);
  const auto machine =
      sim::QubitMachine(gentle).estimate_rate(tree, 30000, r2);
  const double sigma = std::sqrt(mc.std_error * mc.std_error +
                                 machine.std_error * machine.std_error);
  EXPECT_NEAR(mc.rate, machine.rate, 4.0 * sigma + 1e-9);
  EXPECT_NEAR(mc.rate, tree.rate, 4.0 * mc.std_error + 1e-9);
}

TEST_P(CrossModule, ProtectionLayersComposeWithinCapacity) {
  auto inst = make_instance(GetParam() + 500, 34, 5, 8);
  const auto tree = routing::conflict_free(inst.network, inst.users);
  if (!tree.feasible) GTEST_SKIP();
  const auto backups = routing::plan_backups(inst.network, tree);
  const auto multipath = routing::provision_multipath(inst.network, tree);

  // Each layer alone respects capacity (multipath asserts internally; the
  // backup plan is re-checked here together with the tree).
  std::vector<int> used(inst.network.node_count(), 0);
  auto charge = [&](const net::Channel& ch) {
    for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
      used[ch.path[i]] += 2;
    }
  };
  for (const auto& ch : tree.channels) charge(ch);
  for (const auto& backup : backups.backups) {
    if (backup) charge(*backup);
  }
  for (net::NodeId sw : inst.network.switches()) {
    EXPECT_LE(used[sw], inst.network.qubits(sw));
  }
  EXPECT_GE(multipath.rate, tree.rate * (1.0 - 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModule,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace muerp
