#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "support/rng.hpp"

namespace muerp::graph {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Graph triangle_plus_tail() {
  // 0-1-2 triangle, 2-3 tail.
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 4.0);
  g.add_edge(2, 3, 1.0);
  return g;
}

TEST(Connectivity, ConnectedAndNot) {
  Graph g = triangle_plus_tail();
  EXPECT_TRUE(is_connected(g));
  Graph h(3);
  h.add_edge(0, 1, 1.0);
  EXPECT_FALSE(is_connected(h));
  EXPECT_EQ(component_count(h), 2u);
}

TEST(Connectivity, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(Graph{}));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_EQ(component_count(Graph(1)), 1u);
}

TEST(Connectivity, ComponentLabelsPartition) {
  Graph g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto labels = connected_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[2], labels[3]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[5], labels[0]);
  EXPECT_NE(labels[5], labels[2]);
  EXPECT_EQ(component_count(g), 3u);
}

TEST(Bfs, HopCounts) {
  Graph g = triangle_plus_tail();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);
  EXPECT_EQ(hops[3], 2u);
}

TEST(Bfs, UnreachableIsNullopt) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto hops = bfs_hops(g, 0);
  EXPECT_TRUE(hops[1].has_value());
  EXPECT_FALSE(hops[2].has_value());
}

TEST(Dijkstra, ShortestDistances) {
  Graph g = triangle_plus_tail();
  const auto weight = [&](EdgeId e) { return g.edge(e).length_km; };
  const auto sp = dijkstra(g, 0, weight);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 3.0);  // via 1, not the direct 4.0 edge
  EXPECT_DOUBLE_EQ(sp.distance[3], 4.0);
}

TEST(Dijkstra, PathReconstruction) {
  Graph g = triangle_plus_tail();
  const auto weight = [&](EdgeId e) { return g.edge(e).length_km; };
  const auto sp = dijkstra(g, 0, weight);
  EXPECT_EQ(reconstruct_path(g, sp, 0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(reconstruct_path(g, sp, 0, 0), (std::vector<NodeId>{0}));
}

TEST(Dijkstra, UnreachableIsInfinity) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto sp = dijkstra(g, 0, [&](EdgeId) { return 1.0; });
  EXPECT_EQ(sp.distance[2], kInf);
  EXPECT_TRUE(reconstruct_path(g, sp, 0, 2).empty());
}

TEST(Dijkstra, AllowThroughBlocksRelay) {
  // 0-1-2 path plus expensive direct edge 0-2; with vertex 1 blocked the
  // path must take the direct edge.
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(0, 2, 10.0);
  const auto weight = [&](EdgeId e) { return g.edge(e).length_km; };
  const auto blocked = [](NodeId v) { return v != 1; };
  const auto sp = dijkstra(g, 0, weight, blocked);
  EXPECT_DOUBLE_EQ(sp.distance[2], 10.0);
  // Vertex 1 is still *reachable* as an endpoint.
  EXPECT_DOUBLE_EQ(sp.distance[1], 1.0);
}

TEST(Dijkstra, AllowThroughNeverBlocksSource) {
  Graph g(2);
  g.add_edge(0, 1, 3.0);
  const auto sp = dijkstra(
      g, 0, [&](EdgeId e) { return g.edge(e).length_km; },
      [](NodeId) { return false; });
  EXPECT_DOUBLE_EQ(sp.distance[1], 3.0);
}

/// Oracle property: Dijkstra equals Bellman-Ford on random graphs.
class DijkstraVsBellmanFord : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraVsBellmanFord, DistancesAgree) {
  support::Rng rng(GetParam());
  constexpr std::size_t kN = 15;
  Graph g(kN);
  for (NodeId a = 0; a < kN; ++a) {
    for (NodeId b = a + 1; b < kN; ++b) {
      if (rng.bernoulli(0.3)) g.add_edge(a, b, rng.uniform(0.1, 10.0));
    }
  }
  const auto weight = [&](EdgeId e) { return g.edge(e).length_km; };
  const auto sp = dijkstra(g, 0, weight);

  // Bellman–Ford reference.
  std::vector<double> dist(kN, kInf);
  dist[0] = 0.0;
  for (std::size_t round = 0; round + 1 < kN; ++round) {
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const Edge& edge = g.edge(e);
      const double w = weight(e);
      if (dist[edge.a] + w < dist[edge.b]) dist[edge.b] = dist[edge.a] + w;
      if (dist[edge.b] + w < dist[edge.a]) dist[edge.a] = dist[edge.b] + w;
    }
  }
  for (NodeId v = 0; v < kN; ++v) {
    if (dist[v] == kInf) {
      EXPECT_EQ(sp.distance[v], kInf);
    } else {
      EXPECT_NEAR(sp.distance[v], dist[v], 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraVsBellmanFord,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

TEST(Mst, KnownMinimumTree) {
  Graph g = triangle_plus_tail();
  const auto weight = [&](EdgeId e) { return g.edge(e).length_km; };
  const auto mst = minimum_spanning_forest(g, weight);
  ASSERT_EQ(mst.size(), 3u);
  double total = 0.0;
  for (EdgeId e : mst) total += weight(e);
  EXPECT_DOUBLE_EQ(total, 4.0);  // edges 0-1 (1), 1-2 (2), 2-3 (1)
  EXPECT_TRUE(is_spanning_tree(g, mst));
}

TEST(Mst, ForestOnDisconnectedGraph) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  const auto forest =
      minimum_spanning_forest(g, [&](EdgeId e) { return g.edge(e).length_km; });
  EXPECT_EQ(forest.size(), 2u);
  EXPECT_FALSE(is_spanning_tree(g, forest));  // graph itself disconnected
}

TEST(SpanningTreeCheck, RejectsCycleAndWrongCount) {
  Graph g = triangle_plus_tail();
  EXPECT_FALSE(is_spanning_tree(g, {0, 1, 2}));     // 0-1,1-2,0-2 is a cycle
  EXPECT_FALSE(is_spanning_tree(g, {0, 1}));        // too few edges
  EXPECT_TRUE(is_spanning_tree(g, {0, 1, 3}));      // path 0-1-2-3
}

}  // namespace
}  // namespace muerp::graph
