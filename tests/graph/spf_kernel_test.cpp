// SPF kernel tests: CSR equivalence against the adjacency list, workspace
// reuse (including the generation-counter wrap), heap ordering under
// decrease-key, scan-vs-heap frontier bit-identity, and the §V-A regression
// that pins the kernel to the seed's lazy-heap Dijkstra bit for bit.
#include "graph/spf_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include "experiment/scenario.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "network/quantum_network.hpp"

namespace muerp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A connected random graph with uniform random lengths.
graph::Graph random_graph(std::mt19937& rng, std::size_t nodes,
                          double extra_edge_probability) {
  graph::Graph g(nodes);
  std::uniform_real_distribution<double> length(0.1, 100.0);
  std::uniform_int_distribution<graph::NodeId> pick(0, 0);
  for (graph::NodeId v = 1; v < nodes; ++v) {
    // Random spanning tree first: connect v to an earlier vertex.
    pick.param(decltype(pick)::param_type(0, v - 1));
    g.add_edge(v, pick(rng), length(rng));
  }
  std::bernoulli_distribution flip(extra_edge_probability);
  for (graph::NodeId a = 0; a < nodes; ++a) {
    for (graph::NodeId b = a + 1; b < nodes; ++b) {
      if (!g.has_edge(a, b) && flip(rng)) g.add_edge(a, b, length(rng));
    }
  }
  return g;
}

/// Forces run() onto one frontier for the lifetime of the object.
class ScopedFrontier {
 public:
  explicit ScopedFrontier(std::size_t limit)
      : saved_(graph::spf::scan_frontier_max_nodes()) {
    graph::spf::scan_frontier_max_nodes() = limit;
  }
  ~ScopedFrontier() { graph::spf::scan_frontier_max_nodes() = saved_; }

 private:
  std::size_t saved_;
};

TEST(Csr, MatchesAdjacencyOnRandomTopologies) {
  std::mt19937 rng(7);
  for (int round = 0; round < 10; ++round) {
    const std::size_t nodes = 2 + round * 7;
    const graph::Graph g = random_graph(rng, nodes, 0.15);
    graph::spf::Csr csr;
    csr.build_from(g);
    ASSERT_EQ(csr.node_count(), g.node_count());
    ASSERT_EQ(csr.arc_count(), 2 * g.edge_count());
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      const auto row = g.neighbors(v);
      ASSERT_EQ(csr.offsets[v + 1] - csr.offsets[v], row.size());
      for (std::size_t i = 0; i < row.size(); ++i) {
        const std::size_t slot = csr.offsets[v] + i;
        EXPECT_EQ(csr.target(slot), row[i].node);
        EXPECT_EQ(csr.edge_id(slot), row[i].edge);
        EXPECT_EQ(csr.value(slot), g.edge(row[i].edge).length_km);
      }
    }
  }
}

TEST(Csr, EmptyAndEdgelessGraphs) {
  graph::spf::Csr csr;
  csr.build_from(graph::Graph{});
  EXPECT_EQ(csr.node_count(), 0u);
  EXPECT_EQ(csr.arc_count(), 0u);
  csr.build_from(graph::Graph{5});
  EXPECT_EQ(csr.node_count(), 5u);
  EXPECT_EQ(csr.arc_count(), 0u);
}

TEST(Context, CachesViewsPerTopologyVersion) {
  auto& ctx = graph::spf::thread_context();
  std::mt19937 rng(11);
  graph::Graph g = random_graph(rng, 12, 0.2);
  const graph::spf::Csr* first = &ctx.csr_for(g);
  EXPECT_EQ(first, &ctx.csr_for(g)) << "same topology must hit the cache";

  const graph::spf::Csr* affine = &ctx.affine_csr_for(g, 2.0, 1.0);
  EXPECT_EQ(affine, &ctx.affine_csr_for(g, 2.0, 1.0));
  EXPECT_NE(affine, &ctx.affine_csr_for(g, 2.0, 1.5))
      << "a different metric needs its own view";
  for (std::size_t slot = 0; slot < affine->arc_count(); ++slot) {
    EXPECT_EQ(affine->value(slot), 2.0 * first->value(slot) + 1.0);
  }

  // Mutation changes the version: the cached view must be rebuilt.
  g.add_edge(0, 11, 3.0);
  const graph::spf::Csr& rebuilt = ctx.csr_for(g);
  EXPECT_EQ(rebuilt.arc_count(), 2 * g.edge_count());
}

TEST(SpfWorkspace, ReuseAcrossSizesAndQueries) {
  std::mt19937 rng(23);
  graph::spf::SpfWorkspace ws;
  // Alternate between a large and a small graph through one workspace; every
  // result must match a fresh single-use workspace bit for bit.
  const graph::Graph big = random_graph(rng, 60, 0.1);
  const graph::Graph small = random_graph(rng, 9, 0.3);
  graph::spf::Csr big_csr, small_csr;
  big_csr.build_from(big);
  small_csr.build_from(small);
  auto value_weight = [](const graph::spf::Csr& csr) {
    return [&csr](std::size_t slot) { return csr.value(slot); };
  };
  auto all = [](graph::NodeId) { return true; };
  for (int round = 0; round < 6; ++round) {
    const bool use_big = (round % 2) == 0;
    const graph::Graph& g = use_big ? big : small;
    const graph::spf::Csr& csr = use_big ? big_csr : small_csr;
    const auto source = static_cast<graph::NodeId>(round % g.node_count());
    graph::spf::run(csr, ws, source, value_weight(csr), all);
    graph::spf::SpfWorkspace fresh;
    graph::spf::run(csr, fresh, source, value_weight(csr), all);
    ASSERT_EQ(ws.node_count(), g.node_count());
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      EXPECT_EQ(ws.dist(v), fresh.dist(v));
      EXPECT_EQ(ws.parent(v), fresh.parent(v));
    }
  }
}

TEST(SpfWorkspace, GenerationRolloverCannotResurrectStaleEntries) {
  std::mt19937 rng(31);
  const graph::Graph g = random_graph(rng, 20, 0.2);
  graph::spf::Csr csr;
  csr.build_from(g);
  auto weight = [&](std::size_t slot) { return csr.value(slot); };
  auto all = [](graph::NodeId) { return true; };

  graph::spf::SpfWorkspace ws;
  // Populate stamps with a full query, then fast-forward to the wrap point:
  // the next begin() must hard-reset the stamps, so entries written under
  // the old generation can never read as reached in the new one.
  graph::spf::run(csr, ws, 0, weight, all);
  ws.debug_set_generation(std::numeric_limits<std::uint32_t>::max());
  ws.begin(g.node_count());
  EXPECT_EQ(ws.generation(), 1u);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_FALSE(ws.reached(v));
    EXPECT_EQ(ws.dist(v), kInf);
    EXPECT_EQ(ws.parent(v), graph::kInvalidEdge);
  }
  // And a full query straight through the wrap still gives exact results.
  ws.debug_set_generation(std::numeric_limits<std::uint32_t>::max());
  graph::spf::run(csr, ws, 3, weight, all);
  graph::spf::SpfWorkspace fresh;
  graph::spf::run(csr, fresh, 3, weight, all);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(ws.dist(v), fresh.dist(v));
    EXPECT_EQ(ws.parent(v), fresh.parent(v));
  }
}

TEST(SpfWorkspace, IndexedHeapPopsInDistanceNodeOrderUnderDecreaseKey) {
  // Property test against the heap's contract: after a burst of pushes and
  // random decrease-keys, pops come out in ascending (distance, id) order.
  std::mt19937 rng(47);
  std::uniform_real_distribution<double> key(0.0, 50.0);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 40;
    graph::spf::SpfWorkspace ws;
    ws.begin(n);
    ws.seed(0);
    for (graph::NodeId v = 1; v < n; ++v) {
      ws.relax(v, 0, key(rng));
    }
    // Decrease a random subset (relax adopts strictly better keys only).
    std::uniform_int_distribution<graph::NodeId> pick(1, n - 1);
    for (int i = 0; i < 25; ++i) {
      const graph::NodeId v = pick(rng);
      if (!ws.settled(v)) ws.relax(v, 1, ws.dist(v) * 0.5);
    }
    double last_dist = -1.0;
    graph::NodeId last_node = graph::kInvalidNode;
    std::size_t pops = 0;
    while (!ws.heap_empty()) {
      const graph::NodeId v = ws.heap_pop_min();
      const double d = ws.dist(v);
      if (pops > 0) {
        EXPECT_TRUE(d > last_dist || (d == last_dist && v > last_node))
            << "heap order violated at pop " << pops;
      }
      last_dist = d;
      last_node = v;
      ++pops;
    }
    EXPECT_EQ(pops, n);
  }
}

TEST(SpfKernel, ScanAndHeapFrontiersAreBitIdentical) {
  std::mt19937 rng(59);
  for (int round = 0; round < 20; ++round) {
    const std::size_t nodes = 3 + round * 5;
    const graph::Graph g = random_graph(rng, nodes, 0.2);
    graph::spf::Csr csr;
    csr.build_from(g);
    auto weight = [&](std::size_t slot) { return csr.value(slot); };
    // A stable pseudo-random expansion gate (mirrors the relay rule).
    auto gate = [](graph::NodeId v) { return (v * 2654435761u) % 8u != 0; };
    const auto source = static_cast<graph::NodeId>(round % nodes);

    graph::spf::SpfWorkspace heap_ws, scan_ws;
    {
      ScopedFrontier force_heap(0);
      graph::spf::run(csr, heap_ws, source, weight, gate);
    }
    {
      ScopedFrontier force_scan(nodes);
      graph::spf::run(csr, scan_ws, source, weight, gate);
    }
    for (graph::NodeId v = 0; v < nodes; ++v) {
      EXPECT_EQ(heap_ws.dist(v), scan_ws.dist(v));
      EXPECT_EQ(heap_ws.parent(v), scan_ws.parent(v));
    }
  }
}

TEST(SpfKernel, SettleTargetStopsEarlyWithExactDistance) {
  std::mt19937 rng(61);
  const graph::Graph g = random_graph(rng, 30, 0.15);
  graph::spf::Csr csr;
  csr.build_from(g);
  auto weight = [&](std::size_t slot) { return csr.value(slot); };
  auto all = [](graph::NodeId) { return true; };
  graph::spf::SpfWorkspace full, targeted;
  graph::spf::run(csr, full, 0, weight, all);
  for (graph::NodeId target = 1; target < g.node_count(); ++target) {
    graph::spf::run(csr, targeted, 0, weight, all, target);
    EXPECT_EQ(targeted.dist(target), full.dist(target));
    EXPECT_EQ(targeted.parent(target), full.parent(target));
  }
}

/// The tentpole's contract on the paper's own workload: on §V-A default
/// instances, the kernel (through the graph::dijkstra shim) reproduces the
/// seed's lazy-heap Dijkstra bit for bit — distances AND parent edges —
/// under the routing metric and the Def. 2 relay gate, on both frontiers.
TEST(SpfKernel, BitIdenticalToLegacyOnSectionVADefaults) {
  experiment::Scenario scenario;  // §V-A defaults
  for (std::size_t rep : {0u, 7u, 19u}) {
    const experiment::Instance inst =
        experiment::instantiate(scenario, rep);
    const net::QuantumNetwork& network = inst.network;
    const graph::Graph& g = network.graph();
    net::CapacityState capacity(network);
    auto weight = [&](graph::EdgeId e) {
      return network.edge_routing_weight(e);
    };
    auto relay_gate = [&](graph::NodeId v) {
      return network.is_switch(v) && capacity.free_qubits(v) >= 2;
    };
    for (const net::NodeId source : inst.users) {
      const graph::ShortestPaths legacy =
          graph::dijkstra_legacy(g, source, weight, relay_gate);
      for (const std::size_t limit : {std::size_t{0}, g.node_count()}) {
        ScopedFrontier frontier(limit);
        const graph::ShortestPaths kernel =
            graph::dijkstra(g, source, weight, relay_gate);
        ASSERT_EQ(kernel.distance.size(), legacy.distance.size());
        for (graph::NodeId v = 0; v < g.node_count(); ++v) {
          EXPECT_EQ(kernel.distance[v], legacy.distance[v])
              << "rep " << rep << " source " << source << " node " << v;
          EXPECT_EQ(kernel.parent_edge[v], legacy.parent_edge[v]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace muerp
