#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "support/rng.hpp"

namespace muerp::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 0.0);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  const EdgeId e = g.add_edge(0, 1, 5.0);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.edge(e).a, 0u);
  EXPECT_EQ(g.edge(e).b, 1u);
  EXPECT_DOUBLE_EQ(g.edge(e).length_km, 5.0);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, AddNodeGrowsGraph) {
  Graph g(1);
  const NodeId v = g.add_node();
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(g.node_count(), 2u);
  g.add_edge(0, v, 1.0);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(Graph, EdgeNormalizesEndpointOrder) {
  Graph g(4);
  const EdgeId e = g.add_edge(3, 1, 2.0);
  EXPECT_EQ(g.edge(e).a, 1u);
  EXPECT_EQ(g.edge(e).b, 3u);
  EXPECT_EQ(g.edge(e).other(1), 3u);
  EXPECT_EQ(g.edge(e).other(3), 1u);
}

TEST(Graph, FindEdge) {
  Graph g(3);
  const EdgeId e = g.add_edge(0, 2, 7.0);
  ASSERT_TRUE(g.find_edge(2, 0).has_value());
  EXPECT_EQ(*g.find_edge(2, 0), e);
  EXPECT_FALSE(g.find_edge(0, 1).has_value());
}

TEST(Graph, NeighborsAndDegree) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(0, 3, 1.0);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  std::set<NodeId> nbrs;
  for (const Neighbor& n : g.neighbors(0)) nbrs.insert(n.node);
  EXPECT_EQ(nbrs, (std::set<NodeId>{1, 2, 3}));
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(Graph, RemoveEdgeBasic) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const EdgeId e = g.add_edge(1, 2, 2.0);
  g.remove_edge(e);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RemoveEdgeSwapWithLastKeepsConsistency) {
  Graph g(4);
  const EdgeId first = g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.remove_edge(first);  // last edge (2,3) moves into slot `first`
  EXPECT_EQ(g.edge_count(), 2u);
  EXPECT_FALSE(g.has_edge(0, 1));
  ASSERT_TRUE(g.find_edge(2, 3).has_value());
  const EdgeId moved = *g.find_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.edge(moved).length_km, 3.0);
  // Adjacency entries must agree with the index.
  for (const Neighbor& n : g.neighbors(2)) {
    EXPECT_EQ(g.edge(n.edge).other(2), n.node);
  }
}

TEST(Graph, RemoveLastEdge) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.remove_edge(e);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

/// Property: after random removals every invariant holds.
class GraphRandomRemoval : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphRandomRemoval, InvariantsSurvive) {
  support::Rng rng(GetParam());
  constexpr std::size_t kN = 20;
  Graph g(kN);
  for (NodeId a = 0; a < kN; ++a) {
    for (NodeId b = a + 1; b < kN; ++b) {
      if (rng.bernoulli(0.3)) {
        g.add_edge(a, b, rng.uniform(1.0, 100.0));
      }
    }
  }
  while (g.edge_count() > 0) {
    const auto victim =
        static_cast<EdgeId>(rng.uniform_index(g.edge_count()));
    g.remove_edge(victim);
    // Invariant 1: adjacency <-> edge list agreement.
    std::size_t adjacency_total = 0;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      adjacency_total += g.degree(v);
      for (const Neighbor& n : g.neighbors(v)) {
        ASSERT_LT(n.edge, g.edge_count());
        ASSERT_EQ(g.edge(n.edge).other(v), n.node);
        ASSERT_TRUE(g.has_edge(v, n.node));
      }
    }
    ASSERT_EQ(adjacency_total, 2 * g.edge_count());
    // Invariant 2: index lookups agree with edge storage.
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto found = g.find_edge(g.edge(e).a, g.edge(e).b);
      ASSERT_TRUE(found.has_value());
      ASSERT_EQ(*found, e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandomRemoval,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace muerp::graph
