// Targeted tests for paths the per-module suites exercise only implicitly:
// runner options plumbing, seed-channel edge cases in Algorithm 3, scenario
// corner cases, validator branches, and output helpers.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/nfusion.hpp"
#include "experiment/runner.hpp"
#include "experiment/scenario.hpp"
#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "routing/exact_solver.hpp"
#include "support/table.hpp"

namespace muerp {
namespace {

using net::NodeId;

TEST(RunnerOptions, FusionPenaltyFlowsThrough) {
  experiment::Scenario s;
  s.switch_count = 20;
  s.user_count = 5;
  s.repetitions = 4;
  s.seed = 77;
  experiment::RunnerOptions harsh;
  harsh.nfusion.fusion_penalty = 0.5;
  const std::array algorithms{experiment::Algorithm::kNFusion};
  const auto gentle_result = experiment::run_scenario(s, algorithms);
  const auto harsh_result = experiment::run_scenario(s, algorithms, harsh);
  // Identical networks; only the fusion model differs. Wherever N-FUSION is
  // feasible, the harsher penalty must strictly lower its rate.
  bool any_feasible = false;
  for (std::size_t rep = 0; rep < s.repetitions; ++rep) {
    const double gentle = gentle_result.rates[0][rep];
    const double hard = harsh_result.rates[0][rep];
    EXPECT_EQ(gentle > 0.0, hard > 0.0) << "feasibility must not change";
    if (gentle > 0.0) {
      any_feasible = true;
      EXPECT_LT(hard, gentle);
    }
  }
  EXPECT_TRUE(any_feasible);
}

TEST(ValidateTree, RejectsUserInteriors) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId um = b.add_user({100, 0});
  const NodeId u1 = b.add_user({200, 0});
  b.connect_euclidean(u0, um);
  b.connect_euclidean(um, u1);
  const auto net = std::move(b).build({1e-4, 0.9});

  // A "channel" relaying through user um violates Def. 2.
  net::Channel bad;
  bad.path = {u0, um, u1};
  bad.rate = net::channel_rate(net, bad.path);
  net::Channel ok;
  ok.path = {u0, um};
  ok.rate = net::channel_rate(net, ok.path);
  net::EntanglementTree tree{{bad, ok}, bad.rate * ok.rate, true};
  const auto err = net::validate_tree(net, net.users(), tree);
  EXPECT_NE(err.find("Def. 2"), std::string::npos) << err;
}

TEST(ValidateTree, RejectsForeignEndpoint) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  const NodeId outsider = b.add_user({50, 80});
  b.connect_euclidean(u0, u1);
  b.connect_euclidean(u0, outsider);
  const auto net = std::move(b).build({1e-4, 0.9});

  net::Channel ch;
  ch.path = {u0, outsider};  // outsider not in the requested set
  ch.rate = net::channel_rate(net, ch.path);
  net::EntanglementTree tree{{ch}, ch.rate, true};
  const std::vector<NodeId> requested{u0, u1};
  EXPECT_NE(net::validate_tree(net, requested, tree), "");
}

TEST(ConflictFree, IgnoresForeignSeedChannels) {
  // Algorithm 3 fed a seed tree containing channels between users outside
  // the requested set must skip them and still solve the instance.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId stranger = b.add_user({300, 300});
  const NodeId hub = b.add_switch({100, 60}, 8);
  for (NodeId u : {u0, u1, stranger}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  net::Channel foreign;
  foreign.path = {stranger, hub, u0};
  foreign.rate = net::channel_rate(net, foreign.path);
  net::EntanglementTree seed{{foreign}, foreign.rate, true};

  const std::vector<NodeId> requested{u0, u1};
  const auto tree = routing::conflict_free_from(net, requested, seed);
  ASSERT_TRUE(tree.feasible);
  EXPECT_EQ(net::validate_tree(net, requested, tree), "");
  for (const auto& ch : tree.channels) {
    EXPECT_NE(ch.source(), stranger);
    EXPECT_NE(ch.destination(), stranger);
  }
}

TEST(Scenario, OddDegreeRoundsDownForWattsStrogatz) {
  experiment::Scenario s;
  s.topology = experiment::TopologyKind::kWattsStrogatz;
  s.average_degree = 7.0;  // WS lattice needs even k -> 6
  s.switch_count = 20;
  s.user_count = 4;
  const auto inst = experiment::instantiate(s, 0);
  // Rewiring preserves edge count: n*k/2 with k = 6.
  EXPECT_EQ(inst.network.graph().edge_count(), 24u * 6u / 2u);
}

TEST(ExactSolver, PathCapStillYieldsSolution) {
  // A tiny cap on enumerated paths per pair must degrade gracefully (the
  // solver keeps the best-rate paths, enumerated via DFS, and still finds
  // some feasible solution here).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({400, 0});
  const NodeId s0 = b.add_switch({200, 50}, 4);
  const NodeId s1 = b.add_switch({200, 300}, 4);
  for (NodeId sw : {s0, s1}) {
    b.connect_euclidean(u0, sw);
    b.connect_euclidean(sw, u1);
  }
  const auto net = std::move(b).build({1e-3, 0.9});
  routing::ExactSolverLimits limits;
  limits.max_paths_per_pair = 1;
  const auto result = routing::solve_exact(net, net.users(), limits);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->feasible);
}

TEST(Table, AccessorsAndStreaming) {
  support::Table t("demo", {"a", "b"});
  EXPECT_EQ(t.title(), "demo");
  ASSERT_EQ(t.columns().size(), 2u);
  EXPECT_EQ(t.columns()[1], "b");
  t.add_row("x", {0.5});
  std::ostringstream os;
  os << t;
  EXPECT_NE(os.str().find("demo"), std::string::npos);
  EXPECT_NE(os.str().find("5.000e-01"), std::string::npos);
}

TEST(NFusion, TwoUsersPreferDirectRoute) {
  // |U| = 2: no central fusion factor; the star degenerates to the best
  // (fusion-weighted) channel between the two users.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({300, 0});
  const NodeId sw = b.add_switch({150, 200}, 4);
  b.connect_euclidean(u0, u1);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-3, 0.9});
  const auto plan = baselines::n_fusion(net, net.users());
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.channels.size(), 1u);
  EXPECT_EQ(plan.channels[0].path.size(), 2u);  // the direct fiber
  EXPECT_NEAR(plan.rate, std::exp(-1e-3 * 300.0), 1e-12);
}

TEST(Runner, Alg4ConsumesInstanceRngOnly) {
  // Two copies of the same instance must give Algorithm 4 identical results
  // (its randomness comes only from instance.rng).
  experiment::Scenario s;
  s.switch_count = 20;
  s.user_count = 5;
  s.seed = 5;
  experiment::Instance a = experiment::instantiate(s, 0);
  experiment::Instance b2 = experiment::instantiate(s, 0);
  const double r1 =
      experiment::run_algorithm(experiment::Algorithm::kAlg4Prim, a);
  const double r2 =
      experiment::run_algorithm(experiment::Algorithm::kAlg4Prim, b2);
  EXPECT_DOUBLE_EQ(r1, r2);
}

}  // namespace
}  // namespace muerp
