#include "extensions/multigroup.hpp"

#include <gtest/gtest.h>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::ext {
namespace {

using net::NodeId;

/// Two 2-user groups whose only routes share one hub switch.
struct SharedHub {
  net::QuantumNetwork net;
  GroupRequest g1, g2;
};

SharedHub shared_hub(int hub_qubits) {
  net::NetworkBuilder b;
  const NodeId a0 = b.add_user({0, 0});
  const NodeId a1 = b.add_user({200, 0});
  const NodeId b0 = b.add_user({0, 200});
  const NodeId b1 = b.add_user({200, 200});
  const NodeId hub = b.add_switch({100, 100}, hub_qubits);
  for (NodeId u : {a0, a1, b0, b1}) b.connect_euclidean(u, hub);
  SharedHub fixture{std::move(b).build({1e-4, 0.9}), {}, {}};
  fixture.g1.users = {a0, a1};
  fixture.g2.users = {b0, b1};
  return fixture;
}

TEST(MultiGroup, BothServedWithAmpleCapacity) {
  auto fx = shared_hub(4);  // 2 channels fit
  support::Rng rng(1);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto result =
      route_groups(fx.net, groups, GroupOrder::kGivenOrder, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_EQ(result.groups_served, 2u);
  ASSERT_EQ(result.outcomes.size(), 2u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.tree.feasible);
    EXPECT_GT(outcome.tree.rate, 0.0);
  }
  EXPECT_GT(result.served_product_rate, 0.0);
  EXPECT_LT(result.served_product_rate, 1.0);
}

TEST(MultiGroup, CapacityContentionDropsSecondGroup) {
  auto fx = shared_hub(2);  // only 1 channel fits
  support::Rng rng(2);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto result =
      route_groups(fx.net, groups, GroupOrder::kGivenOrder, rng);
  EXPECT_FALSE(result.all_served);
  EXPECT_EQ(result.groups_served, 1u);
  EXPECT_TRUE(result.outcomes[0].tree.feasible);   // admitted first
  EXPECT_FALSE(result.outcomes[1].tree.feasible);  // starved
}

TEST(MultiGroup, GivenOrderRespectsRequestSequence) {
  auto fx = shared_hub(2);
  support::Rng rng(3);
  // Swap the order: now g2 gets the hub.
  const std::vector<GroupRequest> groups{fx.g2, fx.g1};
  const auto result =
      route_groups(fx.net, groups, GroupOrder::kGivenOrder, rng);
  EXPECT_EQ(result.outcomes[0].request_index, 0u);
  EXPECT_TRUE(result.outcomes[0].tree.feasible);
  EXPECT_FALSE(result.outcomes[1].tree.feasible);
}

TEST(MultiGroup, SmallestFirstAdmitsSmallGroupFirst) {
  // A 3-user group and a 2-user group contending for a Q=4 hub: smallest-
  // first serves the pair before the triple.
  net::NetworkBuilder b;
  const NodeId a0 = b.add_user({0, 0});
  const NodeId a1 = b.add_user({200, 0});
  const NodeId a2 = b.add_user({100, 170});
  const NodeId c0 = b.add_user({0, 300});
  const NodeId c1 = b.add_user({200, 300});
  const NodeId hub = b.add_switch({100, 100}, 4);
  for (NodeId u : {a0, a1, a2, c0, c1}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  GroupRequest triple;
  triple.users = {a0, a1, a2};
  GroupRequest pair;
  pair.users = {c0, c1};
  const std::vector<GroupRequest> groups{triple, pair};

  support::Rng rng(4);
  const auto smallest =
      route_groups(net, groups, GroupOrder::kSmallestFirst, rng);
  // Pair (index 1) admitted first and served; triple needs 2 channels but
  // only 1 hub slot remains.
  EXPECT_EQ(smallest.outcomes[0].request_index, 1u);
  EXPECT_TRUE(smallest.outcomes[0].tree.feasible);
  EXPECT_FALSE(smallest.outcomes[1].tree.feasible);

  support::Rng rng2(4);
  const auto largest =
      route_groups(net, groups, GroupOrder::kLargestFirst, rng2);
  EXPECT_EQ(largest.outcomes[0].request_index, 0u);
  EXPECT_TRUE(largest.outcomes[0].tree.feasible);
  EXPECT_FALSE(largest.outcomes[1].tree.feasible);
}

TEST(MultiGroup, EmptyRequestListTriviallyServed) {
  auto fx = shared_hub(4);
  support::Rng rng(5);
  const auto result = route_groups(fx.net, {}, GroupOrder::kGivenOrder, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_EQ(result.groups_served, 0u);
  EXPECT_DOUBLE_EQ(result.served_product_rate, 1.0);
}

TEST(MultiGroup, SingletonGroupAlwaysServed) {
  auto fx = shared_hub(2);
  GroupRequest solo;
  solo.users = {fx.g1.users[0]};
  support::Rng rng(6);
  const std::vector<GroupRequest> groups{solo};
  const auto result =
      route_groups(fx.net, groups, GroupOrder::kGivenOrder, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_DOUBLE_EQ(result.outcomes[0].tree.rate, 1.0);
}

TEST(MultiGroup, OrderNames) {
  EXPECT_STREQ(group_order_name(GroupOrder::kGivenOrder), "given-order");
  EXPECT_STREQ(group_order_name(GroupOrder::kSmallestFirst), "smallest-first");
  EXPECT_STREQ(group_order_name(GroupOrder::kLargestFirst), "largest-first");
}

TEST(MultiGroupInterleaved, BothServedWithAmpleCapacity) {
  auto fx = shared_hub(4);
  support::Rng rng(11);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto result = route_groups_interleaved(fx.net, groups, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_EQ(result.groups_served, 2u);
  for (const auto& outcome : result.outcomes) {
    EXPECT_TRUE(outcome.tree.feasible);
  }
}

TEST(MultiGroupInterleaved, ContentionDropsOneGroup) {
  auto fx = shared_hub(2);  // one channel slot for two groups
  support::Rng rng(12);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto result = route_groups_interleaved(fx.net, groups, rng);
  EXPECT_EQ(result.groups_served, 1u);
  EXPECT_FALSE(result.all_served);
}

TEST(MultiGroupInterleaved, SingletonAndEmptyGroups) {
  auto fx = shared_hub(4);
  GroupRequest solo;
  solo.users = {fx.g1.users[0]};
  GroupRequest empty;
  support::Rng rng(13);
  const std::vector<GroupRequest> groups{solo, empty};
  const auto result = route_groups_interleaved(fx.net, groups, rng);
  EXPECT_TRUE(result.all_served);
  EXPECT_EQ(result.groups_served, 2u);
}

TEST(MultiGroupInterleaved, FairnessVersusSequentialOnAsymmetricLoad) {
  // A big group and a small group contend for a hub that can serve both
  // only partially. Interleaving cannot serve fewer groups than sequential
  // can here, and its min served rate is defined (sanity of the metric).
  auto fx = shared_hub(4);
  support::Rng r1(14);
  support::Rng r2(14);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto sequential =
      route_groups(fx.net, groups, GroupOrder::kGivenOrder, r1);
  const auto interleaved = route_groups_interleaved(fx.net, groups, r2);
  EXPECT_EQ(interleaved.groups_served, sequential.groups_served);
  if (interleaved.groups_served > 0) {
    EXPECT_GT(min_served_rate(interleaved), 0.0);
    EXPECT_LE(min_served_rate(interleaved), 1.0);
  }
}

TEST(MultiGroupInterleaved, LongChainSurvivesRateUnderflow) {
  // Regression: two users joined only by a chain so lossy that the Eq. (1)
  // rate underflows to exactly 0.0. The interleaved scheduler used to
  // select candidates by `rate > best.rate` with best.rate initialized to
  // 0.0 — an underflowed (but real) channel never beat the "no channel"
  // sentinel and the group failed spuriously. Selection now compares
  // neg_log_rate (finite for any found channel, +inf for none), matching
  // the sequential path's underflow fix.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  NodeId prev = u0;
  for (int i = 0; i < 20; ++i) {
    const NodeId sw = b.add_switch({10.0 * (i + 1), 0}, 2);
    b.connect(prev, sw, 5.0e5);  // 500k km per hop: alpha*L = 50 per edge
    prev = sw;
  }
  b.connect(prev, u1, 5.0e5);
  const auto network = std::move(b).build({1e-4, 0.9});

  GroupRequest pair;
  pair.users = {u0, u1};
  const std::vector<GroupRequest> groups{pair};

  support::Rng r1(21);
  const auto reference =
      route_groups_interleaved_reference(network, groups, r1);
  EXPECT_TRUE(reference.outcomes[0].tree.feasible);
  EXPECT_EQ(reference.groups_served, 1u);
  EXPECT_EQ(reference.outcomes[0].tree.rate, 0.0);  // underflowed, yet served

  support::Rng r2(21);
  const auto batched = route_groups_interleaved(network, groups, r2);
  EXPECT_TRUE(batched.outcomes[0].tree.feasible);
  EXPECT_EQ(batched.groups_served, 1u);
  EXPECT_EQ(batched.outcomes[0].tree.rate, 0.0);

  // The sequential path (fixed in an earlier change) agrees.
  support::Rng r3(21);
  const auto sequential =
      route_groups(network, groups, GroupOrder::kGivenOrder, r3);
  EXPECT_TRUE(sequential.outcomes[0].tree.feasible);
}

TEST(MultiGroupInterleaved, MinServedRateMatchesOutcomes) {
  auto fx = shared_hub(4);
  support::Rng rng(15);
  const std::vector<GroupRequest> groups{fx.g1, fx.g2};
  const auto result = route_groups_interleaved(fx.net, groups, rng);
  double expected = 1.0;
  for (const auto& outcome : result.outcomes) {
    if (outcome.tree.feasible) {
      expected = std::min(expected, outcome.tree.rate);
    }
  }
  EXPECT_DOUBLE_EQ(min_served_rate(result), expected);
}

/// Property: interleaved routing also never over-commits combined capacity.
class MultiGroupInterleavedProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiGroupInterleavedProperty, CombinedCapacityRespected) {
  support::Rng rng(GetParam() + 300);
  topology::WaxmanParams params;
  params.node_count = 40;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 9, 4, {1e-4, 0.9}, rng);
  std::vector<GroupRequest> groups(3);
  for (std::size_t i = 0; i < 9; ++i) {
    groups[i % 3].users.push_back(net.users()[i]);
  }
  const auto result = route_groups_interleaved(net, groups, rng);
  std::vector<int> used(net.node_count(), 0);
  for (const auto& outcome : result.outcomes) {
    if (outcome.tree.feasible) {
      const auto& users = groups[outcome.request_index].users;
      EXPECT_EQ(net::validate_tree(net, users, outcome.tree), "");
    }
    for (const auto& ch : outcome.tree.channels) {
      for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
        used[ch.path[i]] += 2;
      }
    }
  }
  for (net::NodeId sw : net.switches()) {
    EXPECT_LE(used[sw], net.qubits(sw));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiGroupInterleavedProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

/// Property: on random networks, served trees are valid and capacity is
/// never over-committed across groups combined.
class MultiGroupProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiGroupProperty, CombinedCapacityRespected) {
  support::Rng rng(GetParam());
  topology::WaxmanParams params;
  params.node_count = 40;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 8, 4, {1e-4, 0.9}, rng);

  // Split the 8 users into two disjoint groups of 4.
  GroupRequest g1;
  GroupRequest g2;
  for (std::size_t i = 0; i < 8; ++i) {
    (i < 4 ? g1 : g2).users.push_back(net.users()[i]);
  }
  const std::vector<GroupRequest> groups{g1, g2};
  const auto result =
      route_groups(net, groups, GroupOrder::kGivenOrder, rng);

  // Per-group validity.
  for (const auto& outcome : result.outcomes) {
    if (outcome.tree.feasible) {
      const auto& users = groups[outcome.request_index].users;
      EXPECT_EQ(net::validate_tree(net, users, outcome.tree), "");
    }
  }
  // Combined capacity: sum of per-switch channel relays across all groups.
  std::vector<int> used(net.node_count(), 0);
  for (const auto& outcome : result.outcomes) {
    for (const auto& ch : outcome.tree.channels) {
      for (std::size_t i = 1; i + 1 < ch.path.size(); ++i) {
        used[ch.path[i]] += 2;
      }
    }
  }
  for (net::NodeId sw : net.switches()) {
    EXPECT_LE(used[sw], net.qubits(sw)) << "switch " << sw;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiGroupProperty,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace muerp::ext
