#include "extensions/purification.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::ext {
namespace {

using net::NodeId;

TEST(Bbpssw, PerfectPairIsFixedPoint) {
  const auto out = bbpssw(1.0);
  EXPECT_NEAR(out.fidelity, 1.0, 1e-12);
  EXPECT_NEAR(out.success_prob, 1.0, 1e-12);
}

TEST(Bbpssw, ImprovesAboveOneHalf) {
  for (double f : {0.55, 0.7, 0.8, 0.9, 0.95}) {
    const auto out = bbpssw(f);
    EXPECT_GT(out.fidelity, f) << "f = " << f;
    EXPECT_GT(out.success_prob, 0.0);
    EXPECT_LE(out.success_prob, 1.0);
  }
}

TEST(Bbpssw, HalfIsAFixedPoint) {
  const auto out = bbpssw(0.5);
  EXPECT_NEAR(out.fidelity, 0.5, 1e-12);
}

TEST(Bbpssw, KnownValue) {
  // f = 0.7: g = 0.1, success = 0.49 + 0.14 + 0.05 = 0.68,
  // f' = (0.49 + 0.01) / 0.68 = 0.7353...
  const auto out = bbpssw(0.7);
  EXPECT_NEAR(out.success_prob, 0.68, 1e-12);
  EXPECT_NEAR(out.fidelity, 0.50 / 0.68, 1e-12);
}

TEST(Ladder, FidelityMonotoneAndCostDoubles) {
  const auto ladder = purification_ladder(0.8, 0.6, 4);
  ASSERT_EQ(ladder.size(), 5u);
  EXPECT_DOUBLE_EQ(ladder[0].fidelity, 0.8);
  EXPECT_DOUBLE_EQ(ladder[0].success_prob, 0.6);
  for (std::size_t k = 1; k < ladder.size(); ++k) {
    EXPECT_GT(ladder[k].fidelity, ladder[k - 1].fidelity);
    // Success collapses at least quadratically per level.
    EXPECT_LT(ladder[k].success_prob,
              ladder[k - 1].success_prob * ladder[k - 1].success_prob + 1e-12);
    EXPECT_EQ(ladder[k].level, k);
  }
}

TEST(Ladder, ApproachesUnitFidelity) {
  // Near F = 1 the BBPSSW map contracts 1-F by ~2/3 per round, so the
  // ladder approaches unit fidelity geometrically (never jumps there).
  const auto ladder = purification_ladder(0.75, 0.9, 12);
  EXPECT_GT(ladder.back().fidelity, 0.99);
  const auto longer = purification_ladder(0.75, 0.9, 24);
  EXPECT_GT(longer.back().fidelity, ladder.back().fidelity);
  EXPECT_GT(longer.back().fidelity, 0.9995);
}

TEST(CheapestLevel, FindsMinimalRung) {
  const auto rung = cheapest_level_reaching(0.8, 0.9, 0.9, 5);
  ASSERT_TRUE(rung.has_value());
  EXPECT_GE(rung->fidelity, 0.9);
  if (rung->level > 0) {
    // The rung below must miss the target (minimality).
    const auto ladder = purification_ladder(0.8, 0.9, rung->level);
    EXPECT_LT(ladder[rung->level - 1].fidelity, 0.9);
  }
}

TEST(CheapestLevel, ZeroRoundsWhenAlreadyGoodEnough) {
  const auto rung = cheapest_level_reaching(0.95, 0.9, 0.9, 5);
  ASSERT_TRUE(rung.has_value());
  EXPECT_EQ(rung->level, 0u);
}

TEST(CheapestLevel, UnreachableTarget) {
  // f0 below the 0.5 fixed point: purification cannot climb.
  EXPECT_FALSE(cheapest_level_reaching(0.45, 0.9, 0.9, 8).has_value());
}

/// Long two-hop network where raw links miss the fidelity floor but one
/// purification round clears it.
struct PurifyFixture {
  net::QuantumNetwork net;
  NodeId u0, u1;
  FidelityParams fparams;
};

PurifyFixture purify_fixture() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId sw = b.add_switch({1500, 0}, 4);
  const NodeId u1 = b.add_user({3000, 0});
  b.connect(u0, sw, 1500.0);
  b.connect(sw, u1, 1500.0);
  FidelityParams fparams;
  fparams.fresh_fidelity = 0.98;
  fparams.decay_per_km = 1e-4;  // raw link F ~ 0.88, channel F ~ 0.80
  return {std::move(b).build({1e-4, 0.9}), u0, u1, fparams};
}

TEST(PurifiedChannel, RawWhenFloorIsLoose) {
  auto fx = purify_fixture();
  fx.fparams.min_fidelity = 0.6;
  const net::CapacityState cap(fx.net);
  const auto ch = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                        fx.fparams, {});
  ASSERT_TRUE(ch.has_value());
  for (std::size_t level : ch->link_levels) {
    EXPECT_EQ(level, 0u);  // no purification needed
  }
  EXPECT_GE(ch->fidelity, 0.6);
}

TEST(PurifiedChannel, PurifiesWhenFloorIsTight) {
  auto fx = purify_fixture();
  fx.fparams.min_fidelity = 0.9;
  const net::CapacityState cap(fx.net);
  const auto raw_only = find_fidelity_constrained_channel(
      fx.net, fx.u0, fx.u1, cap, fx.fparams);
  EXPECT_FALSE(raw_only.has_value());  // unreachable without purification
  const auto ch = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                        fx.fparams, {.max_rounds = 3});
  ASSERT_TRUE(ch.has_value());
  EXPECT_GE(ch->fidelity, 0.9 - 1e-9);
  std::size_t total_levels = 0;
  for (std::size_t level : ch->link_levels) total_levels += level;
  EXPECT_GE(total_levels, 1u);  // purification actually used
}

TEST(PurifiedChannel, PurificationCostsRate) {
  auto fx = purify_fixture();
  const net::CapacityState cap(fx.net);
  fx.fparams.min_fidelity = 0.6;
  const auto loose = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                           fx.fparams, {.max_rounds = 3});
  fx.fparams.min_fidelity = 0.9;
  const auto tight = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                           fx.fparams, {.max_rounds = 3});
  ASSERT_TRUE(loose.has_value());
  ASSERT_TRUE(tight.has_value());
  EXPECT_LT(tight->channel.rate, loose->channel.rate);
}

TEST(PurifiedChannel, InfeasibleBeyondLadder) {
  auto fx = purify_fixture();
  fx.fparams.min_fidelity = 0.999999;
  const net::CapacityState cap(fx.net);
  const auto ch = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                        fx.fparams, {.max_rounds = 2});
  EXPECT_FALSE(ch.has_value());
}

TEST(PurifiedChannel, LinkLevelsAlignWithPath) {
  auto fx = purify_fixture();
  fx.fparams.min_fidelity = 0.9;
  const net::CapacityState cap(fx.net);
  const auto ch = find_purified_channel(fx.net, fx.u0, fx.u1, cap,
                                        fx.fparams, {.max_rounds = 3});
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->link_levels.size(), ch->channel.path.size() - 1);
}

TEST(PurifiedPrim, TreeMeetsFloorOnRandomNetworks) {
  support::Rng rng(5);
  topology::WaxmanParams params;
  params.node_count = 25;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 6, {1e-4, 0.9}, rng);
  FidelityParams fparams;
  fparams.fresh_fidelity = 0.98;
  fparams.decay_per_km = 5e-5;
  fparams.min_fidelity = 0.85;
  const auto tree =
      purified_prim(net, net.users(), fparams, {.max_rounds = 3}, rng);
  if (!tree.feasible) GTEST_SKIP() << "instance infeasible";
  ASSERT_EQ(tree.channels.size(), net.users().size() - 1);
  double product = 1.0;
  for (const auto& pc : tree.channels) {
    EXPECT_GE(pc.fidelity, 0.85 - 1e-9);
    product *= pc.channel.rate;
  }
  EXPECT_NEAR(tree.rate, product, 1e-12 * product);
}

TEST(PurifiedPrim, BeatsRawFidelityPrimWhenFloorIsTight) {
  // Where the raw fidelity router fails outright, the purified one can
  // still serve (at reduced rate).
  auto fx = purify_fixture();
  fx.fparams.min_fidelity = 0.9;
  support::Rng r1(9);
  const auto raw = fidelity_aware_prim(
      fx.net, fx.net.users(), fx.fparams, r1);
  EXPECT_FALSE(raw.feasible);
  support::Rng r2(9);
  const auto purified = purified_prim(fx.net, fx.net.users(), fx.fparams,
                                      {.max_rounds = 3}, r2);
  EXPECT_TRUE(purified.feasible);
  EXPECT_GT(purified.rate, 0.0);
}

/// Oracle: on a two-route fork, exhaustively enumerate every (path, per-
/// link level) combination and verify the Pareto search returns the
/// maximum-rate qualifying one.
class PurifiedChannelOracle : public ::testing::TestWithParam<double> {};

TEST_P(PurifiedChannelOracle, MatchesExhaustiveEnumeration) {
  const double min_fidelity = GetParam();
  // Two parallel 2-hop routes of different lengths.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({2400, 0});
  const NodeId near_sw = b.add_switch({1200, 0}, 4);
  const NodeId far_sw = b.add_switch({1200, 1800}, 4);
  b.connect(u0, near_sw, 1200.0);
  b.connect(near_sw, u1, 1200.0);
  b.connect(u0, far_sw, 2200.0);
  b.connect(far_sw, u1, 2200.0);
  const auto net = std::move(b).build({1e-4, 0.9});

  FidelityParams fparams;
  fparams.fresh_fidelity = 0.98;
  fparams.decay_per_km = 1e-4;
  fparams.min_fidelity = min_fidelity;
  const PurificationParams pparams{.max_rounds = 3};

  // Exhaustive: both routes x all level assignments per link.
  const std::vector<std::vector<NodeId>> routes = {
      {u0, near_sw, u1}, {u0, far_sw, u1}};
  double best_rate = 0.0;
  const double log_q = std::log(0.9);
  for (const auto& route : routes) {
    // Per-link ladders.
    std::vector<std::vector<PurifiedPair>> ladders;
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      const auto e = net.graph().find_edge(route[i], route[i + 1]);
      const double length = net.graph().edge(*e).length_km;
      const double f0 =
          0.25 + 0.75 * link_werner(fparams, length);
      ladders.push_back(
          purification_ladder(f0, net.link_success(*e), pparams.max_rounds));
    }
    // All level combinations (2 links x 4 levels = 16).
    for (const auto& l0 : ladders[0]) {
      for (const auto& l1 : ladders[1]) {
        const double w = ((4.0 * l0.fidelity - 1.0) / 3.0) *
                         ((4.0 * l1.fidelity - 1.0) / 3.0);
        if (0.25 + 0.75 * w < min_fidelity) continue;
        // Two links, one swap: success = s0 * s1 * q. In routing-weight
        // terms: exp(-(sum(-ln s_i) - 2 ln q)) / q.
        const double cost =
            (-std::log(l0.success_prob) - log_q) +
            (-std::log(l1.success_prob) - log_q);
        best_rate = std::max(best_rate, std::exp(-cost) / 0.9);
      }
    }
  }

  const net::CapacityState cap(net);
  const auto found =
      find_purified_channel(net, u0, u1, cap, fparams, pparams);
  if (best_rate == 0.0) {
    EXPECT_FALSE(found.has_value());
  } else {
    ASSERT_TRUE(found.has_value());
    EXPECT_NEAR(found->channel.rate, best_rate, 1e-9 * best_rate);
    EXPECT_GE(found->fidelity, min_fidelity - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Floors, PurifiedChannelOracle,
                         ::testing::Values(0.5, 0.7, 0.8, 0.85, 0.9, 0.95,
                                           0.99));

}  // namespace
}  // namespace muerp::ext
