#include "extensions/ghz.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/network_builder.hpp"
#include "network/rate.hpp"
#include "routing/conflict_free.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::ext {
namespace {

using net::NodeId;

net::QuantumNetwork hub_network(int qubits) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, qubits);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  return std::move(b).build({1e-4, 0.9});
}

TEST(GhzViaTree, ClosedForm) {
  const auto net = hub_network(8);
  const auto tree = routing::conflict_free(net, net.users());
  ASSERT_TRUE(tree.feasible);
  GhzParams params;
  params.local_merge_success = 0.95;
  // |U|-1 = 2 merges, one per tree edge.
  EXPECT_NEAR(ghz_via_tree_rate(tree, params), tree.rate * 0.95 * 0.95,
              1e-15);
}

TEST(GhzViaTree, PerfectLocalOpsEqualTreeRate) {
  const auto net = hub_network(8);
  const auto tree = routing::conflict_free(net, net.users());
  GhzParams params;
  params.local_merge_success = 1.0;
  EXPECT_DOUBLE_EQ(ghz_via_tree_rate(tree, params), tree.rate);
}

TEST(GhzViaTree, InfeasibleTreeGivesZero) {
  net::EntanglementTree infeasible{{}, 0.0, false};
  EXPECT_DOUBLE_EQ(ghz_via_tree_rate(infeasible, {}), 0.0);
}

TEST(GhzViaTree, SingletonIsTrivial) {
  net::EntanglementTree empty{{}, 1.0, true};
  EXPECT_DOUBLE_EQ(ghz_via_tree_rate(empty, {}), 1.0);
}

TEST(GhzComparison, TreeDominatesAtGoodLocalOps) {
  // The paper's thesis: BSM-built Bell trees beat n-fusion for multi-user
  // entanglement. With local merges at 0.99 the tree route must win on the
  // default-style network.
  support::Rng rng(3);
  topology::WaxmanParams params;
  params.node_count = 40;
  auto topo = topology::generate_waxman(params, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 6, 4, {1e-4, 0.9}, rng);
  const auto cmp = compare_ghz_distribution(net, net.users());
  ASSERT_TRUE(cmp.tree_feasible);
  EXPECT_GT(cmp.via_tree, cmp.via_fusion);
}

TEST(GhzComparison, TerribleLocalOpsFlipTheOrdering) {
  // Symmetric single-hub star: both routes use the same physical channels,
  // so the comparison reduces to local merges vs the central fusion. With
  // p_local driven to near zero the fusion star must win.
  const auto net = hub_network(20);
  GhzParams params;
  params.local_merge_success = 0.01;
  const auto cmp = compare_ghz_distribution(net, net.users(), params);
  ASSERT_TRUE(cmp.tree_feasible);
  ASSERT_TRUE(cmp.fusion_feasible);
  EXPECT_LT(cmp.via_tree, cmp.via_fusion);
}

TEST(GhzComparison, InfeasibleNetworkReportsBothZero) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  b.add_user({100, 0});  // disconnected
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto cmp = compare_ghz_distribution(net, net.users());
  EXPECT_FALSE(cmp.tree_feasible);
  EXPECT_FALSE(cmp.fusion_feasible);
  EXPECT_DOUBLE_EQ(cmp.via_tree, 0.0);
  EXPECT_DOUBLE_EQ(cmp.via_fusion, 0.0);
}

TEST(GhzComparison, MonotoneInLocalMergeSuccess) {
  const auto net = hub_network(20);
  double previous = -1.0;
  for (double p_local : {0.5, 0.8, 0.95, 1.0}) {
    GhzParams params;
    params.local_merge_success = p_local;
    const auto cmp = compare_ghz_distribution(net, net.users(), params);
    EXPECT_GT(cmp.via_tree, previous);
    previous = cmp.via_tree;
  }
}

}  // namespace
}  // namespace muerp::ext
