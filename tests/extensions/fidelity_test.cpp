#include "extensions/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/channel_finder.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::ext {
namespace {

using net::NodeId;

TEST(Werner, FreshPairAtZeroDistance) {
  FidelityParams params;
  params.fresh_fidelity = 0.99;
  EXPECT_NEAR(link_werner(params, 0.0), (4.0 * 0.99 - 1.0) / 3.0, 1e-12);
}

TEST(Werner, DecaysWithLength) {
  FidelityParams params;
  EXPECT_GT(link_werner(params, 100.0), link_werner(params, 1000.0));
  EXPECT_GT(link_werner(params, 1000.0), 0.0);
}

TEST(ChannelFidelity, SingleLinkClosedForm) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1000, 0});
  b.connect(u0, u1, 1000.0);
  const auto net = std::move(b).build({1e-4, 0.9});
  FidelityParams params;
  const double w = link_werner(params, 1000.0);
  EXPECT_NEAR(channel_fidelity(net, std::vector<NodeId>{u0, u1}, params),
              0.25 + 0.75 * w, 1e-12);
}

TEST(ChannelFidelity, SwapsComposeMultiplicatively) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId sw = b.add_switch({500, 0}, 4);
  const NodeId u1 = b.add_user({1000, 0});
  b.connect(u0, sw, 500.0);
  b.connect(sw, u1, 500.0);
  const auto net = std::move(b).build({1e-4, 0.9});
  FidelityParams params;
  const double w = link_werner(params, 500.0);
  EXPECT_NEAR(channel_fidelity(net, std::vector<NodeId>{u0, sw, u1}, params),
              0.25 + 0.75 * w * w, 1e-12);
}

/// Short low-fidelity-budget detour vs long direct path.
struct Fork {
  net::QuantumNetwork net;
  NodeId u0, u1, near_sw, far_sw;
};

/// Two parallel 2-hop routes: via near_sw total 2x600 km, via far_sw total
/// 2x2400 km. The short route has the higher rate AND the higher fidelity.
Fork fork_network() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({1200, 0});
  const NodeId near_sw = b.add_switch({600, 0}, 4);
  const NodeId far_sw = b.add_switch({600, 2300}, 4);
  b.connect(u0, near_sw, 600.0);
  b.connect(near_sw, u1, 600.0);
  b.connect(u0, far_sw, 2400.0);
  b.connect(far_sw, u1, 2400.0);
  return {std::move(b).build({1e-4, 0.9}), u0, u1, near_sw, far_sw};
}

TEST(ConstrainedFinder, MatchesUnconstrainedWhenBudgetLoose) {
  auto fx = fork_network();
  FidelityParams params;
  params.min_fidelity = 0.3;  // nearly no constraint
  const net::CapacityState cap(fx.net);
  const auto constrained = find_fidelity_constrained_channel(
      fx.net, fx.u0, fx.u1, cap, params);
  const routing::ChannelFinder finder(fx.net);
  const auto unconstrained = finder.find_best_channel(fx.u0, fx.u1, cap);
  ASSERT_TRUE(constrained.has_value());
  ASSERT_TRUE(unconstrained.has_value());
  EXPECT_EQ(constrained->path, unconstrained->path);
  EXPECT_NEAR(constrained->rate, unconstrained->rate, 1e-12);
}

TEST(ConstrainedFinder, RejectsWhenNoPathMeetsBudget) {
  auto fx = fork_network();
  FidelityParams params;
  params.min_fidelity = 0.999;  // unattainable over 1200 km
  const net::CapacityState cap(fx.net);
  EXPECT_FALSE(find_fidelity_constrained_channel(fx.net, fx.u0, fx.u1, cap,
                                                 params)
                   .has_value());
}

TEST(ConstrainedFinder, ReturnedChannelMeetsConstraint) {
  auto fx = fork_network();
  FidelityParams params;
  params.min_fidelity = 0.9;
  params.decay_per_km = 5e-5;
  const net::CapacityState cap(fx.net);
  const auto ch = find_fidelity_constrained_channel(fx.net, fx.u0, fx.u1, cap,
                                                    params);
  if (ch) {
    EXPECT_GE(channel_fidelity(fx.net, ch->path, params),
              params.min_fidelity - 1e-9);
  }
}

TEST(ConstrainedFinder, PrefersHigherRateAmongQualifying) {
  // Add a third, slow-but-pristine route; while both 2-hop routes qualify,
  // the finder must still return the faster one.
  auto fx = fork_network();
  FidelityParams params;
  params.min_fidelity = 0.5;
  const net::CapacityState cap(fx.net);
  const auto ch = find_fidelity_constrained_channel(fx.net, fx.u0, fx.u1, cap,
                                                    params);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path[1], fx.near_sw);
}

TEST(ConstrainedFinder, RespectsCapacity) {
  auto fx = fork_network();
  FidelityParams params;
  params.min_fidelity = 0.3;
  net::CapacityState cap(fx.net);
  const std::vector<NodeId> through_near{fx.u0, fx.near_sw, fx.u1};
  cap.commit_channel(through_near);
  cap.commit_channel(through_near);  // near switch exhausted (Q=4)
  const auto ch = find_fidelity_constrained_channel(fx.net, fx.u0, fx.u1, cap,
                                                    params);
  ASSERT_TRUE(ch.has_value());
  EXPECT_EQ(ch->path[1], fx.far_sw);
}

TEST(FidelityPrim, BuildsValidTreeMeetingConstraints) {
  support::Rng rng(3);
  topology::WaxmanParams wparams;
  wparams.node_count = 30;
  auto topo = topology::generate_waxman(wparams, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 6, {1e-4, 0.9}, rng);
  FidelityParams params;
  params.min_fidelity = 0.6;
  params.decay_per_km = 1e-5;
  const auto tree = fidelity_aware_prim(net, net.users(), params, rng);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  if (tree.feasible) {
    for (const auto& ch : tree.channels) {
      EXPECT_GE(channel_fidelity(net, ch.path, params),
                params.min_fidelity - 1e-9);
    }
  }
}

TEST(FidelityGreedy, ValidAndMeetsFloor) {
  support::Rng rng(6);
  topology::WaxmanParams wparams;
  wparams.node_count = 30;
  auto topo = topology::generate_waxman(wparams, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 5, 6, {1e-4, 0.9}, rng);
  FidelityParams params;
  params.min_fidelity = 0.6;
  params.decay_per_km = 1e-5;
  const auto tree = fidelity_aware_greedy(net, net.users(), params);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
  if (tree.feasible) {
    for (const auto& ch : tree.channels) {
      EXPECT_GE(channel_fidelity(net, ch.path, params),
                params.min_fidelity - 1e-9);
    }
  }
}

TEST(FidelityGreedy, MatchesPrimWhenUnconstrainedStructureIsForced) {
  // Two users: both variants must return the single best qualifying
  // channel.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({800, 0});
  const NodeId sw = b.add_switch({400, 100}, 4);
  b.connect_euclidean(u0, sw);
  b.connect_euclidean(sw, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  FidelityParams params;
  params.min_fidelity = 0.5;
  const auto greedy = fidelity_aware_greedy(net, net.users(), params);
  support::Rng rng(1);
  const auto prim = fidelity_aware_prim(net, net.users(), params, rng);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(prim.feasible);
  EXPECT_DOUBLE_EQ(greedy.rate, prim.rate);
}

TEST(FidelityGreedy, InfeasibleWhenFloorUnreachable) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({5000, 0});
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  FidelityParams params;
  params.min_fidelity = 0.99;
  params.decay_per_km = 1e-3;  // fidelity collapses over 5000 km
  const auto tree = fidelity_aware_greedy(net, net.users(), params);
  EXPECT_FALSE(tree.feasible);
}

TEST(FidelityPrim, TighterBudgetNeverImprovesRate) {
  support::Rng rng(4);
  topology::WaxmanParams wparams;
  wparams.node_count = 30;
  auto topo = topology::generate_waxman(wparams, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 8, {1e-4, 0.9}, rng);

  double loose_rate = 0.0;
  double tight_rate = 0.0;
  {
    FidelityParams params;
    params.min_fidelity = 0.3;
    support::Rng algo_rng(7);
    loose_rate = fidelity_aware_prim(net, net.users(), params, algo_rng).rate;
  }
  {
    FidelityParams params;
    params.min_fidelity = 0.9;
    support::Rng algo_rng(7);  // same seed user
    tight_rate = fidelity_aware_prim(net, net.users(), params, algo_rng).rate;
  }
  EXPECT_LE(tight_rate, loose_rate * (1.0 + 1e-9));
}

}  // namespace
}  // namespace muerp::ext
