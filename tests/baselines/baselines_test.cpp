#include <gtest/gtest.h>

#include <cmath>

#include "baselines/eqcast.hpp"
#include "baselines/nfusion.hpp"
#include "network/channel.hpp"
#include "network/network_builder.hpp"
#include "routing/optimal_tree.hpp"
#include "support/rng.hpp"
#include "topology/waxman.hpp"

namespace muerp::baselines {
namespace {

using net::NodeId;

/// Four users on a line with ample switch capacity between them.
net::QuantumNetwork line_of_users() {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId s0 = b.add_switch({100, 0}, 8);
  const NodeId u1 = b.add_user({200, 0});
  const NodeId s1 = b.add_switch({300, 0}, 8);
  const NodeId u2 = b.add_user({400, 0});
  const NodeId s2 = b.add_switch({500, 0}, 8);
  const NodeId u3 = b.add_user({600, 0});
  b.connect_euclidean(u0, s0);
  b.connect_euclidean(s0, u1);
  b.connect_euclidean(u1, s1);
  b.connect_euclidean(s1, u2);
  b.connect_euclidean(u2, s2);
  b.connect_euclidean(s2, u3);
  return std::move(b).build({1e-4, 0.9});
}

TEST(EQCast, ChainsConsecutivePairs) {
  const auto net = line_of_users();
  const auto tree = extended_qcast(net, net.users());
  ASSERT_TRUE(tree.feasible);
  ASSERT_EQ(tree.channels.size(), 3u);
  // The chain is <u0,u1>, <u1,u2>, <u2,u3> in user order.
  EXPECT_EQ(tree.channels[0].source(), net.users()[0]);
  EXPECT_EQ(tree.channels[0].destination(), net.users()[1]);
  EXPECT_EQ(tree.channels[1].source(), net.users()[1]);
  EXPECT_EQ(tree.channels[1].destination(), net.users()[2]);
  EXPECT_EQ(net::validate_tree(net, net.users(), tree), "");
}

TEST(EQCast, FailsWhenAnyPairUnroutable) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({100, 0});
  b.add_user({1000, 1000});  // isolated third user
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = extended_qcast(net, net.users());
  EXPECT_FALSE(tree.feasible);
  EXPECT_DOUBLE_EQ(tree.rate, 0.0);
}

TEST(EQCast, ChainStructureCanLoseToTree) {
  // Star geometry: chaining u0-u1-u2 in index order is strictly worse than
  // the star tree Algorithm 2 finds (channels u1-u0, u1-u2 vs... here the
  // chain forces the long u0..u2 spans twice through the hub).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({4000, 0});   // far-away middle-index user
  const NodeId u2 = b.add_user({200, 0});
  const NodeId hub = b.add_switch({100, 50}, 20);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-3, 0.9});

  const auto chain = extended_qcast(net, net.users());
  const auto opt = routing::optimal_special_case(net, net.users());
  ASSERT_TRUE(chain.feasible);
  ASSERT_TRUE(opt.feasible);
  EXPECT_LT(chain.rate, opt.rate);
}

TEST(EQCast, RespectsCapacity) {
  // Both consecutive pairs must relay through the single Q=2 hub: the
  // second pair cannot route, so the baseline fails.
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 2);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto tree = extended_qcast(net, net.users());
  EXPECT_FALSE(tree.feasible);
}

TEST(NFusion, StarAroundBestCentre) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({100, 170});
  const NodeId hub = b.add_switch({100, 60}, 8);
  for (NodeId u : {u0, u1, u2}) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});

  const auto plan = n_fusion(net, net.users());
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.channels.size(), 2u);
  EXPECT_GT(plan.rate, 0.0);
  // Centre is one of the users.
  bool centre_is_user = false;
  for (NodeId u : net.users()) centre_is_user |= (u == plan.center);
  EXPECT_TRUE(centre_is_user);
}

TEST(NFusion, RateModelMatchesClosedForm) {
  // Two users, direct fiber: one channel, no relay fusion, no central
  // fusion (|U|-2 = 0) -> rate = exp(-alpha*L).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({300, 0});
  b.connect_euclidean(u0, u1);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto plan = n_fusion(net, net.users());
  ASSERT_TRUE(plan.feasible);
  EXPECT_NEAR(plan.rate, std::exp(-1e-4 * 300.0), 1e-12);
}

TEST(NFusion, ThreeUserClosedForm) {
  // Symmetric 3-user star through one switch, segment length L each:
  // each channel: q_f * exp(-2 alpha L); central fusion: q_f^(3-2).
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId u1 = b.add_user({200, 0});
  const NodeId u2 = b.add_user({-200, 0});
  const NodeId sw = b.add_switch({0, 200}, 8);
  // Equalize the three spoke sets: u0 direct neighbours via switch at equal
  // lengths by explicit connect lengths.
  b.connect(u0, sw, 100.0);
  b.connect(u1, sw, 100.0);
  b.connect(u2, sw, 100.0);
  const auto net = std::move(b).build({1e-4, 0.9});
  NFusionParams params;
  params.fusion_penalty = 0.75;
  const double qf = 0.75 * 0.9;

  const auto plan = n_fusion(net, net.users(), params);
  ASSERT_TRUE(plan.feasible);
  // Centre user: two channels of 2 links each through sw (the third user's
  // channel), rate per channel qf * exp(-alpha*200); central fusion qf.
  const double channel = qf * std::exp(-1e-4 * 200.0);
  EXPECT_NEAR(plan.rate, qf * channel * channel, 1e-12);
}

TEST(NFusion, CapacityLimitsStar) {
  // 5 users around a Q=4 hub: the centre needs 4 channels but each relay
  // consumes 2 qubits -> hub supports only 2 channels -> infeasible.
  net::NetworkBuilder b;
  std::vector<NodeId> users;
  for (int i = 0; i < 5; ++i) {
    users.push_back(b.add_user({100.0 * i, 0}));
  }
  const NodeId hub = b.add_switch({200, 100}, 4);
  for (NodeId u : users) b.connect_euclidean(u, hub);
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto plan = n_fusion(net, net.users());
  EXPECT_FALSE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.rate, 0.0);
}

TEST(NFusion, PenaltyLowersRateMonotonically) {
  support::Rng rng(5);
  topology::WaxmanParams wparams;
  wparams.node_count = 30;
  auto topo = topology::generate_waxman(wparams, rng);
  const auto net =
      net::assign_random_users(std::move(topo), 4, 8, {1e-4, 0.9}, rng);

  double previous = 2.0;
  for (double penalty : {1.0, 0.75, 0.5, 0.25}) {
    NFusionParams params;
    params.fusion_penalty = penalty;
    const auto plan = n_fusion(net, net.users(), params);
    if (!plan.feasible) continue;
    EXPECT_LT(plan.rate, previous);
    previous = plan.rate;
  }
}

TEST(NFusion, FusionChannelRateHelper) {
  net::NetworkBuilder b;
  const NodeId u0 = b.add_user({0, 0});
  const NodeId sw = b.add_switch({100, 0}, 4);
  const NodeId u1 = b.add_user({200, 0});
  b.connect(u0, sw, 100.0);
  b.connect(sw, u1, 100.0);
  const auto net = std::move(b).build({1e-4, 0.9});
  const std::vector<NodeId> path{u0, sw, u1};
  NFusionParams params;
  params.fusion_penalty = 0.5;
  EXPECT_NEAR(fusion_channel_rate(net, path, params),
              0.45 * std::exp(-1e-4 * 200.0), 1e-12);
}

TEST(NFusion, PicksTheGeometricallyCentralUser) {
  // One user sits between the others; choosing it as centre halves every
  // spoke, so the star around it must win.
  net::NetworkBuilder b;
  const NodeId west = b.add_user({0, 0});
  const NodeId centre = b.add_user({2000, 0});
  const NodeId east = b.add_user({4000, 0});
  const NodeId sw_w = b.add_switch({1000, 0}, 8);
  const NodeId sw_e = b.add_switch({3000, 0}, 8);
  b.connect(west, sw_w, 1000.0);
  b.connect(sw_w, centre, 1000.0);
  b.connect(centre, sw_e, 1000.0);
  b.connect(sw_e, east, 1000.0);
  const auto net = std::move(b).build({3e-4, 0.9});
  const auto plan = n_fusion(net, net.users());
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.center, centre);
}

TEST(NFusion, SingleUserTrivial) {
  net::NetworkBuilder b;
  b.add_user({0, 0});
  const auto net = std::move(b).build({1e-4, 0.9});
  const auto plan = n_fusion(net, net.users());
  EXPECT_TRUE(plan.feasible);
  EXPECT_DOUBLE_EQ(plan.rate, 1.0);
}

}  // namespace
}  // namespace muerp::baselines
