file(REMOVE_RECURSE
  "CMakeFiles/muerpctl.dir/muerpctl.cpp.o"
  "CMakeFiles/muerpctl.dir/muerpctl.cpp.o.d"
  "muerpctl"
  "muerpctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muerpctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
