# Empty compiler generated dependencies file for muerpctl.
# This may be replaced when dependencies are built.
