file(REMOVE_RECURSE
  "CMakeFiles/repeater_tuning.dir/repeater_tuning.cpp.o"
  "CMakeFiles/repeater_tuning.dir/repeater_tuning.cpp.o.d"
  "repeater_tuning"
  "repeater_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repeater_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
