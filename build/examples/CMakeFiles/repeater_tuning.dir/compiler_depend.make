# Empty compiler generated dependencies file for repeater_tuning.
# This may be replaced when dependencies are built.
