file(REMOVE_RECURSE
  "CMakeFiles/distributed_qc.dir/distributed_qc.cpp.o"
  "CMakeFiles/distributed_qc.dir/distributed_qc.cpp.o.d"
  "distributed_qc"
  "distributed_qc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_qc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
