# Empty compiler generated dependencies file for distributed_qc.
# This may be replaced when dependencies are built.
