file(REMOVE_RECURSE
  "CMakeFiles/secret_sharing.dir/secret_sharing.cpp.o"
  "CMakeFiles/secret_sharing.dir/secret_sharing.cpp.o.d"
  "secret_sharing"
  "secret_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secret_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
