# Empty compiler generated dependencies file for secret_sharing.
# This may be replaced when dependencies are built.
