file(REMOVE_RECURSE
  "CMakeFiles/fig8b_swap_rate.dir/fig8b_swap_rate.cpp.o"
  "CMakeFiles/fig8b_swap_rate.dir/fig8b_swap_rate.cpp.o.d"
  "fig8b_swap_rate"
  "fig8b_swap_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_swap_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
