# Empty compiler generated dependencies file for fig8b_swap_rate.
# This may be replaced when dependencies are built.
