file(REMOVE_RECURSE
  "CMakeFiles/protocol_service.dir/protocol_service.cpp.o"
  "CMakeFiles/protocol_service.dir/protocol_service.cpp.o.d"
  "protocol_service"
  "protocol_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
