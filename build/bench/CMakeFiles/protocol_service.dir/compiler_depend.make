# Empty compiler generated dependencies file for protocol_service.
# This may be replaced when dependencies are built.
