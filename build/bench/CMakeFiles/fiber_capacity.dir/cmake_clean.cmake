file(REMOVE_RECURSE
  "CMakeFiles/fiber_capacity.dir/fiber_capacity.cpp.o"
  "CMakeFiles/fiber_capacity.dir/fiber_capacity.cpp.o.d"
  "fiber_capacity"
  "fiber_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiber_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
