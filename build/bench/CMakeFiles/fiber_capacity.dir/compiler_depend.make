# Empty compiler generated dependencies file for fiber_capacity.
# This may be replaced when dependencies are built.
