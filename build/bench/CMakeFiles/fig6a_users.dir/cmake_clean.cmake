file(REMOVE_RECURSE
  "CMakeFiles/fig6a_users.dir/fig6a_users.cpp.o"
  "CMakeFiles/fig6a_users.dir/fig6a_users.cpp.o.d"
  "fig6a_users"
  "fig6a_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
