# Empty dependencies file for fig6a_users.
# This may be replaced when dependencies are built.
