# Empty compiler generated dependencies file for swap_policies.
# This may be replaced when dependencies are built.
