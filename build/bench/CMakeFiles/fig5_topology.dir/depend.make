# Empty dependencies file for fig5_topology.
# This may be replaced when dependencies are built.
