file(REMOVE_RECURSE
  "CMakeFiles/fig8a_qubits.dir/fig8a_qubits.cpp.o"
  "CMakeFiles/fig8a_qubits.dir/fig8a_qubits.cpp.o.d"
  "fig8a_qubits"
  "fig8a_qubits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_qubits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
