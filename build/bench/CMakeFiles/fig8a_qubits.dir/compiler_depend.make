# Empty compiler generated dependencies file for fig8a_qubits.
# This may be replaced when dependencies are built.
