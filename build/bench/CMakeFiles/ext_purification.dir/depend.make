# Empty dependencies file for ext_purification.
# This may be replaced when dependencies are built.
