file(REMOVE_RECURSE
  "CMakeFiles/ext_purification.dir/ext_purification.cpp.o"
  "CMakeFiles/ext_purification.dir/ext_purification.cpp.o.d"
  "ext_purification"
  "ext_purification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_purification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
