file(REMOVE_RECURSE
  "CMakeFiles/fig6b_switches.dir/fig6b_switches.cpp.o"
  "CMakeFiles/fig6b_switches.dir/fig6b_switches.cpp.o.d"
  "fig6b_switches"
  "fig6b_switches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_switches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
