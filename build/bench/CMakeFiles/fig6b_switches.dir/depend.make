# Empty dependencies file for fig6b_switches.
# This may be replaced when dependencies are built.
