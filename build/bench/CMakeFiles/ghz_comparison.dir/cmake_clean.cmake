file(REMOVE_RECURSE
  "CMakeFiles/ghz_comparison.dir/ghz_comparison.cpp.o"
  "CMakeFiles/ghz_comparison.dir/ghz_comparison.cpp.o.d"
  "ghz_comparison"
  "ghz_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghz_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
