# Empty dependencies file for ghz_comparison.
# This may be replaced when dependencies are built.
