# Empty dependencies file for multipath.
# This may be replaced when dependencies are built.
