file(REMOVE_RECURSE
  "CMakeFiles/ext_multigroup.dir/ext_multigroup.cpp.o"
  "CMakeFiles/ext_multigroup.dir/ext_multigroup.cpp.o.d"
  "ext_multigroup"
  "ext_multigroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multigroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
