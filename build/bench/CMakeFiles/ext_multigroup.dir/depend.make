# Empty dependencies file for ext_multigroup.
# This may be replaced when dependencies are built.
