file(REMOVE_RECURSE
  "CMakeFiles/fig7a_degree.dir/fig7a_degree.cpp.o"
  "CMakeFiles/fig7a_degree.dir/fig7a_degree.cpp.o.d"
  "fig7a_degree"
  "fig7a_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
