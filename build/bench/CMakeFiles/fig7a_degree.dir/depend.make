# Empty dependencies file for fig7a_degree.
# This may be replaced when dependencies are built.
