# Empty dependencies file for ext_fidelity.
# This may be replaced when dependencies are built.
