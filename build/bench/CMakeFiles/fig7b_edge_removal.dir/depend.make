# Empty dependencies file for fig7b_edge_removal.
# This may be replaced when dependencies are built.
