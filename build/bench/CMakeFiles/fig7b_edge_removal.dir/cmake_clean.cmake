file(REMOVE_RECURSE
  "CMakeFiles/fig7b_edge_removal.dir/fig7b_edge_removal.cpp.o"
  "CMakeFiles/fig7b_edge_removal.dir/fig7b_edge_removal.cpp.o.d"
  "fig7b_edge_removal"
  "fig7b_edge_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_edge_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
