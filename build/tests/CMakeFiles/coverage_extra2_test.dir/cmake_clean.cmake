file(REMOVE_RECURSE
  "CMakeFiles/coverage_extra2_test.dir/coverage_extra2_test.cpp.o"
  "CMakeFiles/coverage_extra2_test.dir/coverage_extra2_test.cpp.o.d"
  "coverage_extra2_test"
  "coverage_extra2_test.pdb"
  "coverage_extra2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_extra2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
