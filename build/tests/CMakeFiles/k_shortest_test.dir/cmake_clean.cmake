file(REMOVE_RECURSE
  "CMakeFiles/k_shortest_test.dir/routing/k_shortest_test.cpp.o"
  "CMakeFiles/k_shortest_test.dir/routing/k_shortest_test.cpp.o.d"
  "k_shortest_test"
  "k_shortest_test.pdb"
  "k_shortest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k_shortest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
