# Empty dependencies file for k_shortest_test.
# This may be replaced when dependencies are built.
