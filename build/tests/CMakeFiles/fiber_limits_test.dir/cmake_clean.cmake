file(REMOVE_RECURSE
  "CMakeFiles/fiber_limits_test.dir/routing/fiber_limits_test.cpp.o"
  "CMakeFiles/fiber_limits_test.dir/routing/fiber_limits_test.cpp.o.d"
  "fiber_limits_test"
  "fiber_limits_test.pdb"
  "fiber_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiber_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
