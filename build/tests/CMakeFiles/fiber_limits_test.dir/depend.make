# Empty dependencies file for fiber_limits_test.
# This may be replaced when dependencies are built.
