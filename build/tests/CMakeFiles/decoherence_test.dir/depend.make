# Empty dependencies file for decoherence_test.
# This may be replaced when dependencies are built.
