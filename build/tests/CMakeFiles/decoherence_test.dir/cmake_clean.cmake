file(REMOVE_RECURSE
  "CMakeFiles/decoherence_test.dir/simulation/decoherence_test.cpp.o"
  "CMakeFiles/decoherence_test.dir/simulation/decoherence_test.cpp.o.d"
  "decoherence_test"
  "decoherence_test.pdb"
  "decoherence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoherence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
