# Empty dependencies file for optimal_tree_test.
# This may be replaced when dependencies are built.
