file(REMOVE_RECURSE
  "CMakeFiles/optimal_tree_test.dir/routing/optimal_tree_test.cpp.o"
  "CMakeFiles/optimal_tree_test.dir/routing/optimal_tree_test.cpp.o.d"
  "optimal_tree_test"
  "optimal_tree_test.pdb"
  "optimal_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
