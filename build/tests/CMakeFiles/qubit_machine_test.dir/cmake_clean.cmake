file(REMOVE_RECURSE
  "CMakeFiles/qubit_machine_test.dir/simulation/qubit_machine_test.cpp.o"
  "CMakeFiles/qubit_machine_test.dir/simulation/qubit_machine_test.cpp.o.d"
  "qubit_machine_test"
  "qubit_machine_test.pdb"
  "qubit_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubit_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
