# Empty dependencies file for qubit_machine_test.
# This may be replaced when dependencies are built.
