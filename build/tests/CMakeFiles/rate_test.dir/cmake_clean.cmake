file(REMOVE_RECURSE
  "CMakeFiles/rate_test.dir/network/rate_test.cpp.o"
  "CMakeFiles/rate_test.dir/network/rate_test.cpp.o.d"
  "rate_test"
  "rate_test.pdb"
  "rate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
