file(REMOVE_RECURSE
  "CMakeFiles/multigroup_test.dir/extensions/multigroup_test.cpp.o"
  "CMakeFiles/multigroup_test.dir/extensions/multigroup_test.cpp.o.d"
  "multigroup_test"
  "multigroup_test.pdb"
  "multigroup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multigroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
