# Empty compiler generated dependencies file for multigroup_test.
# This may be replaced when dependencies are built.
