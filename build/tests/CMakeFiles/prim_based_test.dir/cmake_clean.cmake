file(REMOVE_RECURSE
  "CMakeFiles/prim_based_test.dir/routing/prim_based_test.cpp.o"
  "CMakeFiles/prim_based_test.dir/routing/prim_based_test.cpp.o.d"
  "prim_based_test"
  "prim_based_test.pdb"
  "prim_based_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prim_based_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
