# Empty compiler generated dependencies file for prim_based_test.
# This may be replaced when dependencies are built.
