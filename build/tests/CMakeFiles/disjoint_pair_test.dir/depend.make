# Empty dependencies file for disjoint_pair_test.
# This may be replaced when dependencies are built.
