file(REMOVE_RECURSE
  "CMakeFiles/disjoint_pair_test.dir/routing/disjoint_pair_test.cpp.o"
  "CMakeFiles/disjoint_pair_test.dir/routing/disjoint_pair_test.cpp.o.d"
  "disjoint_pair_test"
  "disjoint_pair_test.pdb"
  "disjoint_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disjoint_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
