file(REMOVE_RECURSE
  "CMakeFiles/ghz_test.dir/extensions/ghz_test.cpp.o"
  "CMakeFiles/ghz_test.dir/extensions/ghz_test.cpp.o.d"
  "ghz_test"
  "ghz_test.pdb"
  "ghz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
