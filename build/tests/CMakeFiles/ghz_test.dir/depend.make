# Empty dependencies file for ghz_test.
# This may be replaced when dependencies are built.
