# Empty dependencies file for channel_finder_test.
# This may be replaced when dependencies are built.
