file(REMOVE_RECURSE
  "CMakeFiles/channel_finder_test.dir/routing/channel_finder_test.cpp.o"
  "CMakeFiles/channel_finder_test.dir/routing/channel_finder_test.cpp.o.d"
  "channel_finder_test"
  "channel_finder_test.pdb"
  "channel_finder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_finder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
