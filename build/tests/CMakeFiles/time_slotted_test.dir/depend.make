# Empty dependencies file for time_slotted_test.
# This may be replaced when dependencies are built.
