file(REMOVE_RECURSE
  "CMakeFiles/time_slotted_test.dir/simulation/time_slotted_test.cpp.o"
  "CMakeFiles/time_slotted_test.dir/simulation/time_slotted_test.cpp.o.d"
  "time_slotted_test"
  "time_slotted_test.pdb"
  "time_slotted_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_slotted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
