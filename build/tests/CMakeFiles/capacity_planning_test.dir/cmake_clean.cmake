file(REMOVE_RECURSE
  "CMakeFiles/capacity_planning_test.dir/routing/capacity_planning_test.cpp.o"
  "CMakeFiles/capacity_planning_test.dir/routing/capacity_planning_test.cpp.o.d"
  "capacity_planning_test"
  "capacity_planning_test.pdb"
  "capacity_planning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capacity_planning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
