# Empty dependencies file for capacity_planning_test.
# This may be replaced when dependencies are built.
