file(REMOVE_RECURSE
  "CMakeFiles/purification_test.dir/extensions/purification_test.cpp.o"
  "CMakeFiles/purification_test.dir/extensions/purification_test.cpp.o.d"
  "purification_test"
  "purification_test.pdb"
  "purification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/purification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
