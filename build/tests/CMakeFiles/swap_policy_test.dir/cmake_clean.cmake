file(REMOVE_RECURSE
  "CMakeFiles/swap_policy_test.dir/simulation/swap_policy_test.cpp.o"
  "CMakeFiles/swap_policy_test.dir/simulation/swap_policy_test.cpp.o.d"
  "swap_policy_test"
  "swap_policy_test.pdb"
  "swap_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swap_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
