# Empty dependencies file for swap_policy_test.
# This may be replaced when dependencies are built.
