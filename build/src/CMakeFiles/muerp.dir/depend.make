# Empty dependencies file for muerp.
# This may be replaced when dependencies are built.
