file(REMOVE_RECURSE
  "libmuerp.a"
)
