
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/eqcast.cpp" "src/CMakeFiles/muerp.dir/baselines/eqcast.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/baselines/eqcast.cpp.o.d"
  "/root/repo/src/baselines/nfusion.cpp" "src/CMakeFiles/muerp.dir/baselines/nfusion.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/baselines/nfusion.cpp.o.d"
  "/root/repo/src/experiment/config.cpp" "src/CMakeFiles/muerp.dir/experiment/config.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/experiment/config.cpp.o.d"
  "/root/repo/src/experiment/report.cpp" "src/CMakeFiles/muerp.dir/experiment/report.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/experiment/report.cpp.o.d"
  "/root/repo/src/experiment/runner.cpp" "src/CMakeFiles/muerp.dir/experiment/runner.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/experiment/runner.cpp.o.d"
  "/root/repo/src/experiment/scenario.cpp" "src/CMakeFiles/muerp.dir/experiment/scenario.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/experiment/scenario.cpp.o.d"
  "/root/repo/src/extensions/fidelity.cpp" "src/CMakeFiles/muerp.dir/extensions/fidelity.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/extensions/fidelity.cpp.o.d"
  "/root/repo/src/extensions/ghz.cpp" "src/CMakeFiles/muerp.dir/extensions/ghz.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/extensions/ghz.cpp.o.d"
  "/root/repo/src/extensions/multigroup.cpp" "src/CMakeFiles/muerp.dir/extensions/multigroup.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/extensions/multigroup.cpp.o.d"
  "/root/repo/src/extensions/purification.cpp" "src/CMakeFiles/muerp.dir/extensions/purification.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/extensions/purification.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "src/CMakeFiles/muerp.dir/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/muerp.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/graph/graph.cpp.o.d"
  "/root/repo/src/network/channel.cpp" "src/CMakeFiles/muerp.dir/network/channel.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/channel.cpp.o.d"
  "/root/repo/src/network/network_builder.cpp" "src/CMakeFiles/muerp.dir/network/network_builder.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/network_builder.cpp.o.d"
  "/root/repo/src/network/quantum_network.cpp" "src/CMakeFiles/muerp.dir/network/quantum_network.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/quantum_network.cpp.o.d"
  "/root/repo/src/network/rate.cpp" "src/CMakeFiles/muerp.dir/network/rate.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/rate.cpp.o.d"
  "/root/repo/src/network/serialization.cpp" "src/CMakeFiles/muerp.dir/network/serialization.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/serialization.cpp.o.d"
  "/root/repo/src/network/svg.cpp" "src/CMakeFiles/muerp.dir/network/svg.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/network/svg.cpp.o.d"
  "/root/repo/src/routing/annealing.cpp" "src/CMakeFiles/muerp.dir/routing/annealing.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/annealing.cpp.o.d"
  "/root/repo/src/routing/backup.cpp" "src/CMakeFiles/muerp.dir/routing/backup.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/backup.cpp.o.d"
  "/root/repo/src/routing/capacity_planning.cpp" "src/CMakeFiles/muerp.dir/routing/capacity_planning.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/capacity_planning.cpp.o.d"
  "/root/repo/src/routing/channel_finder.cpp" "src/CMakeFiles/muerp.dir/routing/channel_finder.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/channel_finder.cpp.o.d"
  "/root/repo/src/routing/conflict_free.cpp" "src/CMakeFiles/muerp.dir/routing/conflict_free.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/conflict_free.cpp.o.d"
  "/root/repo/src/routing/disjoint_pair.cpp" "src/CMakeFiles/muerp.dir/routing/disjoint_pair.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/disjoint_pair.cpp.o.d"
  "/root/repo/src/routing/exact_solver.cpp" "src/CMakeFiles/muerp.dir/routing/exact_solver.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/exact_solver.cpp.o.d"
  "/root/repo/src/routing/feasibility.cpp" "src/CMakeFiles/muerp.dir/routing/feasibility.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/feasibility.cpp.o.d"
  "/root/repo/src/routing/fiber_limits.cpp" "src/CMakeFiles/muerp.dir/routing/fiber_limits.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/fiber_limits.cpp.o.d"
  "/root/repo/src/routing/k_shortest.cpp" "src/CMakeFiles/muerp.dir/routing/k_shortest.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/k_shortest.cpp.o.d"
  "/root/repo/src/routing/local_search.cpp" "src/CMakeFiles/muerp.dir/routing/local_search.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/local_search.cpp.o.d"
  "/root/repo/src/routing/multipath.cpp" "src/CMakeFiles/muerp.dir/routing/multipath.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/multipath.cpp.o.d"
  "/root/repo/src/routing/optimal_tree.cpp" "src/CMakeFiles/muerp.dir/routing/optimal_tree.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/optimal_tree.cpp.o.d"
  "/root/repo/src/routing/plan.cpp" "src/CMakeFiles/muerp.dir/routing/plan.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/plan.cpp.o.d"
  "/root/repo/src/routing/prim_based.cpp" "src/CMakeFiles/muerp.dir/routing/prim_based.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/routing/prim_based.cpp.o.d"
  "/root/repo/src/simulation/decoherence.cpp" "src/CMakeFiles/muerp.dir/simulation/decoherence.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/decoherence.cpp.o.d"
  "/root/repo/src/simulation/failure.cpp" "src/CMakeFiles/muerp.dir/simulation/failure.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/failure.cpp.o.d"
  "/root/repo/src/simulation/monte_carlo.cpp" "src/CMakeFiles/muerp.dir/simulation/monte_carlo.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/monte_carlo.cpp.o.d"
  "/root/repo/src/simulation/protocol.cpp" "src/CMakeFiles/muerp.dir/simulation/protocol.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/protocol.cpp.o.d"
  "/root/repo/src/simulation/qubit_machine.cpp" "src/CMakeFiles/muerp.dir/simulation/qubit_machine.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/qubit_machine.cpp.o.d"
  "/root/repo/src/simulation/swap_policy.cpp" "src/CMakeFiles/muerp.dir/simulation/swap_policy.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/swap_policy.cpp.o.d"
  "/root/repo/src/simulation/time_slotted.cpp" "src/CMakeFiles/muerp.dir/simulation/time_slotted.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/simulation/time_slotted.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/muerp.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/geometry.cpp" "src/CMakeFiles/muerp.dir/support/geometry.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/geometry.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/muerp.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/statistics.cpp" "src/CMakeFiles/muerp.dir/support/statistics.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/statistics.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/muerp.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/table.cpp.o.d"
  "/root/repo/src/support/union_find.cpp" "src/CMakeFiles/muerp.dir/support/union_find.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/support/union_find.cpp.o.d"
  "/root/repo/src/topology/analysis.cpp" "src/CMakeFiles/muerp.dir/topology/analysis.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/analysis.cpp.o.d"
  "/root/repo/src/topology/perturb.cpp" "src/CMakeFiles/muerp.dir/topology/perturb.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/perturb.cpp.o.d"
  "/root/repo/src/topology/reference.cpp" "src/CMakeFiles/muerp.dir/topology/reference.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/reference.cpp.o.d"
  "/root/repo/src/topology/structured.cpp" "src/CMakeFiles/muerp.dir/topology/structured.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/structured.cpp.o.d"
  "/root/repo/src/topology/volchenkov.cpp" "src/CMakeFiles/muerp.dir/topology/volchenkov.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/volchenkov.cpp.o.d"
  "/root/repo/src/topology/watts_strogatz.cpp" "src/CMakeFiles/muerp.dir/topology/watts_strogatz.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/watts_strogatz.cpp.o.d"
  "/root/repo/src/topology/waxman.cpp" "src/CMakeFiles/muerp.dir/topology/waxman.cpp.o" "gcc" "src/CMakeFiles/muerp.dir/topology/waxman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
