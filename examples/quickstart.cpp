// Quickstart: build a small quantum network by hand, route multi-user
// entanglement with each algorithm, and verify the analytic rate against a
// Monte-Carlo execution of the entanglement process.
//
//   $ ./build/examples/quickstart
//
// This walks the full public API surface: NetworkBuilder -> routing
// algorithms -> validate_tree -> MonteCarloSimulator.
#include <iostream>

#include "muerp.hpp"

int main() {
  using namespace muerp;

  // A metro-scale network: 4 quantum users (A-D) and 3 BSM switches, fiber
  // lengths in km. Switch s1 is the attractive hub but holds only 4 qubits
  // (2 channels); s2/s3 are detours.
  net::NetworkBuilder builder;
  const auto a = builder.add_user({0, 0});
  const auto b = builder.add_user({120, 0});
  const auto c = builder.add_user({120, 90});
  const auto d = builder.add_user({0, 90});
  const auto s1 = builder.add_switch({60, 45}, 4);
  const auto s2 = builder.add_switch({60, -35}, 4);
  const auto s3 = builder.add_switch({60, 125}, 4);
  for (auto u : {a, b, c, d}) builder.connect_euclidean(u, s1);
  for (auto u : {a, b}) builder.connect_euclidean(u, s2);
  for (auto u : {c, d}) builder.connect_euclidean(u, s3);

  // alpha = 2e-3 / km, BSM swap success 0.9.
  const auto network = std::move(builder).build({2e-3, 0.9});
  const auto users = network.users();

  std::cout << "Network: " << network.node_count() << " nodes, "
            << network.graph().edge_count() << " fibers, "
            << users.size() << " users\n\n";

  // Route with each algorithm.
  const auto alg2 = routing::optimal_special_case(network, users);
  const auto alg3 = routing::conflict_free(network, users);
  const auto alg4 = routing::prim_based_from(network, users, 0);
  const auto eq = baselines::extended_qcast(network, users);
  const auto nf = baselines::n_fusion(network, users);

  support::Table table("Routing results", {"algorithm", "rate", "feasible"});
  auto row = [&](const char* name, double rate, bool ok) {
    table.add_text_row({name, support::format_rate(rate), ok ? "yes" : "no"});
  };
  row("Alg-2 (capacity-oblivious optimum)", alg2.rate, alg2.feasible);
  row("Alg-3 (conflict-free)", alg3.rate, alg3.feasible);
  row("Alg-4 (Prim-based)", alg4.rate, alg4.feasible);
  row("E-Q-CAST baseline", eq.rate, eq.feasible);
  row("N-FUSION baseline", nf.rate, nf.feasible);
  std::cout << table << '\n';

  // Inspect Algorithm 3's tree.
  std::cout << "Algorithm 3 entanglement tree ("
            << (net::validate_tree(network, users, alg3).empty() ? "valid"
                                                                 : "INVALID")
            << "):\n";
  for (const auto& channel : alg3.channels) {
    std::cout << "  channel";
    for (auto v : channel.path) {
      std::cout << ' ' << v << (network.is_switch(v) ? "(sw)" : "(user)");
    }
    std::cout << "  rate=" << support::format_rate(channel.rate) << '\n';
  }

  // Verify Eq. (2) against the simulated entanglement process (§II-B).
  support::Rng rng(7);
  const sim::MonteCarloSimulator mc(network);
  const auto estimate = mc.estimate_tree_rate(alg3, 200000, rng);
  std::cout << "\nEq. (2) closed form : " << support::format_rate(alg3.rate)
            << "\nMonte-Carlo (200k)  : " << support::format_rate(estimate.rate)
            << "  (std err " << support::format_rate(estimate.std_error)
            << ")\n";
  return 0;
}
