// Backbone study: run MUERP on a *real* reference backbone instead of a
// random graph — the question an operator retrofitting quantum switches
// onto an existing fiber plant would ask. NSFNET (default) or the GEANT
// core is instantiated at continental scale; a chosen set of sites become
// quantum users and the rest become switches; the study reports per-
// algorithm rates, feasibility screening, the k-best alternative channels
// of the weakest pair, and (optionally) writes the network + routed tree to
// disk as the versioned text format and Graphviz DOT.
//
//   $ ./build/examples/backbone_study --topology nsfnet --users 5
//         [--qubits 4] [--dot /tmp/plan.dot] [--save /tmp/net.txt]
#include <fstream>
#include <iostream>

#include "muerp.hpp"

int main(int argc, char** argv) {
  using namespace muerp;

  support::CliParser cli("MUERP on reference backbone topologies");
  cli.add_flag("topology", "nsfnet or geant", "nsfnet");
  cli.add_flag("users", "number of user sites", "5");
  cli.add_flag("qubits", "qubits per switch", "4");
  cli.add_flag("scale", "region width in km", "4500");
  cli.add_flag("seed", "site-selection seed", "1");
  cli.add_flag("dot", "write Graphviz DOT of the routed plan here", "");
  cli.add_flag("save", "write the network text format here", "");
  if (!cli.parse(argc, argv)) return 1;

  const auto& reference =
      topology::reference_by_name(cli.get_string("topology"));
  const double scale = cli.get_double("scale").value_or(4500.0);
  auto topo = topology::instantiate_reference(
      reference, {scale, scale * 0.6});  // continental aspect ratio

  support::Rng rng(cli.get_int("seed").value_or(1));
  const auto user_count =
      static_cast<std::size_t>(cli.get_int("users").value_or(5));
  const auto network = net::assign_random_users(
      std::move(topo), user_count,
      static_cast<int>(cli.get_int("qubits").value_or(4)),
      {2e-4, 0.9}, rng);

  std::cout << reference.name << " @ " << scale << " km: "
            << network.switches().size() << " switches, "
            << network.users().size() << " user sites\n\n";

  // Feasibility screen before spending routing effort.
  const auto screen = routing::screen_feasibility(network, network.users());
  std::cout << "feasibility screen: "
            << routing::feasibility_name(screen.verdict) << " ("
            << screen.reason << ")\n\n";

  // Route with every algorithm; polish the heuristics with local search.
  auto alg3 = routing::conflict_free(network, network.users());
  const auto ls3 = routing::improve_tree(network, network.users(), alg3);
  auto alg4 = routing::prim_based_from(network, network.users(), 0);
  const auto ls4 = routing::improve_tree(network, network.users(), alg4);
  const auto eq = baselines::extended_qcast(network, network.users());
  const auto nf = baselines::n_fusion(network, network.users());

  support::Table table("Backbone routing", {"algorithm", "rate", "notes"});
  table.add_text_row({"Alg-3 + local search", support::format_rate(alg3.rate),
                      std::to_string(ls3.exchanges) + " exchanges"});
  table.add_text_row({"Alg-4 + local search", support::format_rate(alg4.rate),
                      std::to_string(ls4.exchanges) + " exchanges"});
  table.add_text_row({"E-Q-CAST", support::format_rate(eq.rate), ""});
  table.add_text_row({"N-FUSION", support::format_rate(nf.rate), ""});
  std::cout << table << '\n';

  // Inspect the weakest channel's alternatives (operator head-room view).
  if (alg3.feasible && !alg3.channels.empty()) {
    const auto* weakest = &alg3.channels[0];
    for (const auto& ch : alg3.channels) {
      if (ch.rate < weakest->rate) weakest = &ch;
    }
    net::CapacityState fresh(network);
    const auto alternatives = routing::k_best_channels(
        network, weakest->source(), weakest->destination(), fresh, 3);
    std::cout << "weakest pair " << weakest->source() << "-"
              << weakest->destination() << " alternatives:\n";
    for (std::size_t i = 0; i < alternatives.size(); ++i) {
      std::cout << "  #" << i + 1 << " rate "
                << support::format_rate(alternatives[i].rate) << " via "
                << alternatives[i].switch_count() << " switches\n";
    }
    std::cout << '\n';
  }

  if (const std::string path = cli.get_string("save"); !path.empty()) {
    if (net::save_network_file(network, path)) {
      std::cout << "network written to " << path << '\n';
    }
  }
  if (const std::string path = cli.get_string("dot"); !path.empty()) {
    std::ofstream out(path);
    out << net::to_dot(network, alg3.feasible ? &alg3 : nullptr);
    std::cout << "DOT plan written to " << path
              << "  (render: neato -Tpng " << path << " -o plan.png)\n";
  }
  return 0;
}
