// Distributed quantum computing — the paper's motivating application (§I):
// monolithic quantum processors cap out around a hundred qubits, so larger
// computations entangle a *cluster* of processors across the quantum
// Internet. This example provisions a national-scale Waxman network, selects
// processor sites, sizes the cluster against a target entanglement rate, and
// reports how long (in time slots) the cluster takes to come online with and
// without short-lived quantum memories.
//
//   $ ./build/examples/distributed_qc [seed]
#include <cstdlib>
#include <iostream>

#include "muerp.hpp"

int main(int argc, char** argv) {
  using namespace muerp;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;

  // A 10,000 x 10,000 km deployment with 50 repeater switches, as in the
  // paper's evaluation; 12 candidate processor sites.
  experiment::Scenario scenario;
  scenario.user_count = 12;
  scenario.qubits_per_switch = 6;
  scenario.seed = seed;
  experiment::Instance inst = experiment::instantiate(scenario, 0);

  std::cout << "Quantum data-centre fabric: " << inst.network.switches().size()
            << " switches, " << inst.users.size()
            << " candidate processor sites\n\n";

  // How large a cluster can we entangle while keeping the per-window success
  // rate above target? Grow the cluster greedily site by site.
  constexpr double kTargetRate = 1e-3;
  std::vector<net::NodeId> cluster{inst.users[0]};
  net::EntanglementTree best_tree{{}, 1.0, true};
  for (std::size_t i = 1; i < inst.users.size(); ++i) {
    cluster.push_back(inst.users[i]);
    const auto tree = routing::conflict_free(inst.network, cluster);
    if (!tree.feasible || tree.rate < kTargetRate) {
      cluster.pop_back();
      continue;
    }
    best_tree = tree;
  }

  std::cout << "Largest cluster meeting rate >= "
            << support::format_rate(kTargetRate) << ": " << cluster.size()
            << " processors, entanglement rate "
            << support::format_rate(best_tree.rate) << '\n';

  support::Table table("Cluster routing comparison",
                       {"algorithm", "rate", "channels"});
  const auto alg3 = routing::conflict_free(inst.network, cluster);
  const auto alg4 = routing::prim_based_from(inst.network, cluster, 0);
  const auto eq = baselines::extended_qcast(inst.network, cluster);
  const auto nf = baselines::n_fusion(inst.network, cluster);
  auto row = [&](const char* name, double rate, std::size_t channels) {
    table.add_text_row({name, support::format_rate(rate),
                        std::to_string(channels)});
  };
  row("Alg-3", alg3.rate, alg3.channels.size());
  row("Alg-4", alg4.rate, alg4.channels.size());
  row("E-Q-CAST", eq.rate, eq.channels.size());
  row("N-FUSION", nf.rate, nf.channels.size());
  std::cout << '\n' << table << '\n';

  // Cluster boot latency: slots until all channels are simultaneously up.
  support::Rng rng(seed ^ 0xD15C);
  support::Table latency("Cluster boot latency (time slots)",
                         {"memory window", "mean slots", "runs completed"});
  for (std::uint32_t memory : {0u, 3u, 10u}) {
    sim::TimeSlottedParams params;
    params.memory_slots = memory;
    const sim::TimeSlottedSimulator sim(inst.network, params);
    const auto stats = sim.measure(alg3, 2000, rng);
    latency.add_text_row({std::to_string(memory),
                          support::format_rate(stats.mean_slots),
                          std::to_string(stats.completed_runs)});
  }
  std::cout << latency
            << "\nEven a few slots of quantum memory slash the cluster's "
               "time-to-entanglement —\nthe quantitative case for the "
               "paper's synchronized-window execution model.\n";
  return 0;
}
