// Quantum secret sharing — another application the paper motivates (§I,
// [21]): a dealer splits a secret among N players such that only authorized
// coalitions can reconstruct it, which requires multi-user entanglement of
// {dealer} + players with *adequate fidelity*. This example exercises the
// fidelity-aware routing extension: the dealer demands every channel keep
// end-to-end Werner fidelity above a threshold, and we chart how the
// achievable entanglement rate degrades as the requirement tightens.
//
//   $ ./build/examples/secret_sharing
#include <iostream>

#include "muerp.hpp"

int main() {
  using namespace muerp;

  // Dealer in the centre, five players spread across a regional network.
  experiment::Scenario scenario;
  scenario.user_count = 6;
  scenario.switch_count = 40;
  scenario.area_side_km = 2000.0;  // regional, so fidelity budgets bind
  scenario.attenuation = 5e-4;
  scenario.qubits_per_switch = 6;
  scenario.seed = 1234;
  experiment::Instance inst = experiment::instantiate(scenario, 0);

  std::cout << "Secret-sharing session: dealer + "
            << inst.users.size() - 1 << " players over "
            << inst.network.switches().size() << " switches\n\n";

  // Baseline: fidelity-oblivious routing (Algorithm 3).
  const auto oblivious = routing::conflict_free(inst.network, inst.users);
  std::cout << "Fidelity-oblivious Alg-3 rate: "
            << support::format_rate(oblivious.rate) << '\n';

  ext::FidelityParams fparams;
  fparams.fresh_fidelity = 0.99;
  fparams.decay_per_km = 1e-4;

  // Report the worst channel fidelity the oblivious plan would deliver.
  if (oblivious.feasible) {
    double worst = 1.0;
    for (const auto& ch : oblivious.channels) {
      worst = std::min(worst,
                       ext::channel_fidelity(inst.network, ch.path, fparams));
    }
    std::cout << "  worst channel fidelity if used as-is: " << worst << "\n\n";
  }

  support::Table table(
      "Rate vs. required minimum channel fidelity",
      {"min fidelity", "rate", "feasible", "worst channel fidelity"});
  for (double min_f : {0.50, 0.75, 0.85, 0.90, 0.95}) {
    fparams.min_fidelity = min_f;
    support::Rng rng(9);
    const auto tree =
        ext::fidelity_aware_prim(inst.network, inst.users, fparams, rng);
    double worst = 1.0;
    for (const auto& ch : tree.channels) {
      worst = std::min(worst,
                       ext::channel_fidelity(inst.network, ch.path, fparams));
    }
    char f_label[16];
    std::snprintf(f_label, sizeof f_label, "%.2f", min_f);
    char worst_label[16];
    std::snprintf(worst_label, sizeof worst_label, "%.4f",
                  tree.feasible ? worst : 0.0);
    table.add_text_row({f_label, support::format_rate(tree.rate),
                        tree.feasible ? "yes" : "no", worst_label});
  }
  std::cout << table
            << "\nTightening the fidelity floor prunes long channels first; "
               "past the knee the\nsession becomes infeasible — the "
               "fidelity-aware extension the paper lists as\nfuture work "
               "(§VII) makes that trade-off explicit.\n";
  return 0;
}
