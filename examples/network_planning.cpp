// Quantum-Internet capacity planning: how many qubits must each switch
// carry, and how dense must the fiber plant be, for several independent
// tenant groups to entangle concurrently? This example drives the
// multi-group extension (§II-D / §VII: "concurrent routing of multiple
// independent entanglement groups") plus the experiment harness to produce
// a provisioning table an operator could act on.
//
//   $ ./build/examples/network_planning
#include <iostream>

#include "muerp.hpp"
// (routing/capacity_planning.hpp and experiment/scenario.hpp arrive via the
// umbrella header.)

int main() {
  using namespace muerp;

  experiment::Scenario scenario;
  scenario.user_count = 12;  // three tenants x four users
  scenario.switch_count = 50;
  scenario.seed = 99;

  support::Table table("Tenants served vs. switch qubit budget",
                       {"Q", "tenants served (of 3)", "product rate",
                        "order"});

  for (int qubits : {2, 4, 6, 8}) {
    scenario.qubits_per_switch = qubits;
    experiment::Instance inst = experiment::instantiate(scenario, 0);

    // Three tenants of four users each, fixed assignment.
    std::vector<ext::GroupRequest> tenants(3);
    for (std::size_t i = 0; i < inst.users.size(); ++i) {
      tenants[i % 3].users.push_back(inst.users[i]);
    }

    // Compare admission orders under contention.
    ext::MultiGroupResult best;
    const char* best_order = "";
    for (ext::GroupOrder order :
         {ext::GroupOrder::kGivenOrder, ext::GroupOrder::kSmallestFirst,
          ext::GroupOrder::kLargestFirst}) {
      support::Rng rng(7);
      auto result = ext::route_groups(inst.network, tenants, order, rng);
      if (result.groups_served > best.groups_served ||
          (result.groups_served == best.groups_served &&
           result.served_product_rate > best.served_product_rate)) {
        best = std::move(result);
        best_order = ext::group_order_name(order);
      }
    }
    table.add_text_row({std::to_string(qubits),
                        std::to_string(best.groups_served),
                        support::format_rate(best.served_product_rate),
                        best_order});
  }
  std::cout << table << '\n';

  // Degree sweep at the chosen budget: what fiber density buys.
  scenario.qubits_per_switch = 6;
  support::Table degree_table(
      "Single-tenant rate vs. average fiber degree (Q=6)",
      {"degree", "Alg-3 mean rate", "feasible fraction"});
  for (double degree : {3.0, 4.0, 6.0, 8.0}) {
    scenario.average_degree = degree;
    scenario.user_count = 4;
    const std::array algorithms{experiment::Algorithm::kAlg3Conflict};
    const auto result = experiment::run_scenario(scenario, algorithms);
    char d_label[8];
    std::snprintf(d_label, sizeof d_label, "%.0f", degree);
    degree_table.add_text_row(
        {d_label, support::format_rate(result.mean_rate(0)),
         support::format_rate(result.feasible_fraction(0))});
  }
  std::cout << degree_table << '\n';

  // Inverse planning: the smallest uniform switch budget serving one
  // 12-user request, with and without a rate floor (binary search over
  // Algorithm 3 — routing/capacity_planning.hpp).
  scenario.user_count = 12;
  scenario.average_degree = 6.0;
  const experiment::Instance inst = experiment::instantiate(scenario, 0);
  support::Table sizing("Minimum uniform qubits per switch (12-user request)",
                        {"goal", "min Q", "achieved rate"});
  const auto feasible =
      routing::min_uniform_qubits(inst.network, inst.users);
  if (feasible) {
    sizing.add_text_row({"feasible at all",
                         std::to_string(feasible->qubits_per_switch),
                         support::format_rate(feasible->tree.rate)});
    // The rate ceiling is set by the topology, not the budget: measure it
    // at a generous Q, then size for 90% of it.
    const auto boosted = net::with_uniform_switch_qubits(
        inst.network, 64);
    const double best_rate =
        routing::conflict_free(boosted, inst.users).rate;
    const auto near_ceiling = routing::min_uniform_qubits(
        inst.network, inst.users, 0.9 * best_rate);
    if (near_ceiling) {
      sizing.add_text_row({"rate >= 90% of ceiling",
                           std::to_string(near_ceiling->qubits_per_switch),
                           support::format_rate(near_ceiling->tree.rate)});
    }
  }
  std::cout << sizing
            << "\nPlanning takeaway: qubit budget gates *how many* tenants "
               "fit; fiber degree\ngates *how well* each one runs; the "
               "binary-search sizer turns a target into\na procurement "
               "number.\n";
  return 0;
}
