// Repeater-chain tuning: picking the swap schedule and memory window for a
// long-haul channel.
//
// An operator bridging two distant users through a chain of BSM switches
// faces two knobs the paper's single-window model abstracts away: in what
// ORDER the switches swap when windows are retried, and how long quantum
// memories hold partial entanglement. This example sweeps both with the
// swap-policy and decoherence simulators and prints the latency/fidelity
// frontier an operator would tune against.
//
//   $ ./build/examples/repeater_tuning [--switches 6] [--segment 700]
#include <iostream>

#include "muerp.hpp"

int main(int argc, char** argv) {
  using namespace muerp;
  support::CliParser cli("repeater-chain swap schedule & memory tuning");
  cli.add_flag("switches", "relay switches in the chain", "6");
  cli.add_flag("segment", "fiber segment length in km", "700");
  if (!cli.parse(argc, argv)) return 1;
  const auto switches =
      static_cast<std::size_t>(cli.get_int("switches").value_or(6));
  const double segment = cli.get_double("segment").value_or(700.0);

  // Build the chain u0 - s1 - ... - sk - u1.
  net::NetworkBuilder b;
  net::NodeId prev = b.add_user({0, 0});
  std::vector<net::NodeId> path{prev};
  for (std::size_t i = 0; i < switches; ++i) {
    const net::NodeId sw = b.add_switch({segment * (i + 1.0), 0}, 2);
    b.connect(prev, sw, segment);
    prev = sw;
    path.push_back(sw);
  }
  const net::NodeId far_user =
      b.add_user({segment * (switches + 1.0), 0});
  b.connect(prev, far_user, segment);
  path.push_back(far_user);
  const auto network = std::move(b).build({4e-4, 0.85});

  net::Channel channel;
  channel.rate = net::channel_rate(network, path);
  channel.path = path;
  std::cout << "chain: " << switches << " switches x " << segment
            << " km segments, single-window rate "
            << support::format_rate(channel.rate) << "\n\n";

  // 1. Swap-order policies at a fixed memory window.
  const sim::SwapPolicySimulator swap_sim(network, channel);
  support::Table policies("Swap schedule (memory 8 slots)",
                          {"policy", "mean slots", "completed"});
  for (sim::SwapPolicy policy :
       {sim::SwapPolicy::kAsap, sim::SwapPolicy::kBalanced,
        sim::SwapPolicy::kLinear}) {
    support::Rng rng(11 + static_cast<int>(policy));
    const auto stats =
        swap_sim.measure({.policy = policy, .memory_slots = 8}, 2000, rng);
    char slots[16];
    std::snprintf(slots, sizeof slots, "%.1f", stats.mean_slots);
    policies.add_text_row({sim::swap_policy_name(policy), slots,
                           std::to_string(stats.completed_runs)});
  }
  std::cout << policies << '\n';

  // 2. Memory window: latency vs delivered fidelity. The window only
  //    matters when channels wait for *each other*, so this part serves a
  //    third user halfway along the chain: two channels, each covering one
  //    half, held in memory until both are up.
  net::NetworkBuilder b2;
  const net::NodeId left = b2.add_user({0, 0});
  net::NodeId cursor = left;
  const std::size_t half = std::max<std::size_t>(1, switches / 2);
  std::vector<net::NodeId> first_half{cursor};
  for (std::size_t i = 0; i < half; ++i) {
    const net::NodeId sw =
        b2.add_switch({segment * (i + 1.0), 0}, 2);
    b2.connect(cursor, sw, segment);
    cursor = sw;
    first_half.push_back(sw);
  }
  const net::NodeId mid = b2.add_user({segment * (half + 1.0), 0});
  b2.connect(cursor, mid, segment);
  first_half.push_back(mid);
  cursor = mid;
  std::vector<net::NodeId> second_half{cursor};
  for (std::size_t i = 0; i < half; ++i) {
    const net::NodeId sw =
        b2.add_switch({segment * (half + i + 2.0), 0}, 2);
    b2.connect(cursor, sw, segment);
    cursor = sw;
    second_half.push_back(sw);
  }
  const net::NodeId right =
      b2.add_user({segment * (2.0 * half + 2.0), 0});
  b2.connect(cursor, right, segment);
  second_half.push_back(right);
  const auto relay_net = std::move(b2).build({4e-4, 0.85});

  net::Channel c1;
  c1.rate = net::channel_rate(relay_net, first_half);
  c1.path = first_half;
  net::Channel c2;
  c2.rate = net::channel_rate(relay_net, second_half);
  c2.path = second_half;
  net::EntanglementTree tree{{c1, c2}, c1.rate * c2.rate, true};

  support::Table memory(
      "Memory window (3-user relay): latency vs delivered fidelity",
      {"memory slots", "mean slots", "mean worst fidelity"});
  for (std::uint32_t window : {0u, 2u, 8u, 32u}) {
    sim::DecoherenceParams params;
    params.memory_slots = window;
    params.memory_decay_per_slot = 0.995;
    params.fidelity.fresh_fidelity = 0.99;
    params.fidelity.decay_per_km = 2e-5;
    const sim::DecoherenceSimulator sim(relay_net, params);
    support::Rng rng(100 + window);
    const auto stats = sim.measure(tree, 1500, rng);
    char slots[16];
    char fid[16];
    std::snprintf(slots, sizeof slots, "%.1f", stats.mean_slots);
    std::snprintf(fid, sizeof fid, "%.4f", stats.mean_worst_fidelity);
    memory.add_text_row({std::to_string(window), slots, fid});
  }
  std::cout << memory
            << "\nTuning takeaway: schedule swaps ASAP/balanced, and size "
               "the memory window at the\nknee where latency stops falling "
               "— beyond it you only pay fidelity.\n";
  return 0;
}
