// bench_diff — perf-regression gate over perf_algorithms --compare files.
//
// Compares a freshly generated routing benchmark JSON against the committed
// baseline (BENCH_routing.json) and exits non-zero when the hot path
// regressed. CI runs:
//
//   perf_algorithms --compare BENCH_fresh.json
//   bench_diff --baseline BENCH_routing.json --current BENCH_fresh.json
//
// Machines differ, so the gate never judges absolute milliseconds. It
// checks what is machine-independent:
//
//   * speedup ratios (cached-vs-uncached per algorithm, greedy hot path and
//     total, SPF kernel) must stay within --tolerance of the baseline;
//   * "identical" result flags that were true must stay true;
//   * per-repetition rate arrays must match the baseline bit for bit
//     (--allow-rate-drift downgrades this to a warning for PRs that
//     intentionally change routing results and will re-commit the baseline);
//   * telemetry counters and span call counts (deterministic work counts:
//     Dijkstra runs, heap pops, channel searches) must stay within
//     --tolerance in either direction — quiet workload growth is how perf
//     regressions sneak past ratio checks.
//
// Wall-clock columns (and per-span self/total ms) are printed in the diff
// tables for the reviewer but never gate.
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace {

using muerp::support::json::ParseResult;
using muerp::support::json::Value;

int fail(const std::string& message) {
  std::cerr << "bench_diff: " << message << '\n';
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream file(path);
  if (!file) return false;
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *out = buffer.str();
  return true;
}

struct Gate {
  int failures = 0;
  double tolerance = 0.15;

  /// Ratio metric (speedup): only a *drop* beyond tolerance fails.
  void check_speedup(const std::string& what, double baseline,
                     double current) {
    if (baseline <= 0.0) return;
    const double floor = baseline * (1.0 - tolerance);
    if (current < floor) {
      ++failures;
      std::cerr << "FAIL " << what << ": speedup " << current << " below "
                << floor << " (baseline " << baseline << " - "
                << tolerance * 100 << "%)\n";
    }
  }

  /// Work-count metric: drift beyond tolerance in either direction fails.
  void check_count(const std::string& what, double baseline, double current) {
    if (baseline == 0.0) {
      if (current != 0.0) {
        ++failures;
        std::cerr << "FAIL " << what << ": baseline 0, current " << current
                  << '\n';
      }
      return;
    }
    const double drift = std::abs(current - baseline) / std::abs(baseline);
    if (drift > tolerance) {
      ++failures;
      std::cerr << "FAIL " << what << ": " << baseline << " -> " << current
                << " (" << drift * 100 << "% drift, tolerance "
                << tolerance * 100 << "%)\n";
    }
  }

  void check_flag(const std::string& what, bool baseline, bool current) {
    if (baseline && !current) {
      ++failures;
      std::cerr << "FAIL " << what << ": was identical, now differs\n";
    }
  }
};

const Value* find_algorithm(const Value& doc, const std::string& name) {
  const Value& algorithms = doc["algorithms"];
  for (const Value& alg : algorithms.elements) {
    if (alg["name"].string_value == name) return &alg;
  }
  return nullptr;
}

const Value* find_span(const Value& spans, const std::string& label) {
  for (const Value& span : spans.elements) {
    if (span["label"].string_value == label) return &span;
  }
  return nullptr;
}

bool rates_identical(const Value& base, const Value& cur) {
  const Value& b = base["rates"];
  const Value& c = cur["rates"];
  if (b.elements.size() != c.elements.size()) return false;
  for (std::size_t i = 0; i < b.elements.size(); ++i) {
    // The emitter round-trips doubles (max_digits10), so string-level
    // equality of re-parsed values is bit-level equality of the rates.
    if (b.elements[i].number_value != c.elements[i].number_value) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  muerp::support::CliParser cli(
      "bench_diff — gate a fresh perf_algorithms --compare run against the "
      "committed baseline");
  cli.add_flag("baseline", "committed benchmark JSON", "BENCH_routing.json");
  cli.add_flag("current", "freshly generated benchmark JSON", "");
  cli.add_flag("batch-baseline",
               "committed batch_routing JSON (gates run only when "
               "--batch-current is also given)",
               "");
  cli.add_flag("batch-current", "freshly generated batch_routing JSON", "");
  cli.add_flag("session-baseline",
               "committed session_throughput JSON (gates run only when "
               "--session-current is also given)",
               "");
  cli.add_flag("session-current", "freshly generated session_throughput JSON",
               "");
  cli.add_flag("tolerance", "allowed relative drift (0.15 = 15%)", "0.15");
  cli.add_flag("allow-rate-drift",
               "rate array mismatch warns instead of failing");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;
  if (cli.get_string("current").empty()) {
    return fail("--current <file> is required");
  }

  std::string baseline_text;
  std::string current_text;
  if (!read_file(cli.get_string("baseline"), &baseline_text)) {
    return fail("cannot read " + cli.get_string("baseline"));
  }
  if (!read_file(cli.get_string("current"), &current_text)) {
    return fail("cannot read " + cli.get_string("current"));
  }
  const ParseResult baseline = muerp::support::json::parse(baseline_text);
  if (!baseline.ok()) {
    return fail(cli.get_string("baseline") + ": " + baseline.error);
  }
  const ParseResult current = muerp::support::json::parse(current_text);
  if (!current.ok()) {
    return fail(cli.get_string("current") + ": " + current.error);
  }

  Gate gate;
  gate.tolerance = cli.get_double("tolerance").value_or(0.15);
  const bool allow_rate_drift = cli.get_bool("allow-rate-drift");

  // Per-algorithm: speedup ratio, identical flag, rate bit-identity, and
  // the cached-run work counters.
  muerp::support::Table algorithms(
      "per-algorithm speedups (cached vs uncached)",
      {"algorithm", "base", "current", "base ms", "current ms"});
  for (const Value& base_alg : baseline.value["algorithms"].elements) {
    const std::string& name = base_alg["name"].string_value;
    const Value* cur_alg = find_algorithm(current.value, name);
    if (cur_alg == nullptr) {
      ++gate.failures;
      std::cerr << "FAIL algorithm '" << name << "' missing from current\n";
      continue;
    }
    algorithms.add_row(name, {base_alg["speedup"].number_value,
                              (*cur_alg)["speedup"].number_value,
                              base_alg["cached_ms"].number_value,
                              (*cur_alg)["cached_ms"].number_value});
    gate.check_speedup(name + " speedup", base_alg["speedup"].number_value,
                       (*cur_alg)["speedup"].number_value);
    gate.check_flag(name + " identical", base_alg["identical"].bool_value,
                    (*cur_alg)["identical"].bool_value);
    if (!rates_identical(base_alg, *cur_alg)) {
      if (allow_rate_drift) {
        std::cerr << "WARN " << name
                  << ": rate arrays differ from baseline (allowed)\n";
      } else {
        ++gate.failures;
        std::cerr << "FAIL " << name
                  << ": rate arrays differ from baseline (routing results "
                     "changed; re-commit the baseline if intended)\n";
      }
    }
    for (const auto& [counter, base_value] : base_alg["cached"].members) {
      gate.check_count(name + " cached." + counter, base_value.number_value,
                       (*cur_alg)["cached"][counter].number_value);
    }
  }
  std::cout << algorithms;

  // Aggregate hot-path ratios.
  for (const char* section : {"greedy_hot_path", "greedy_total"}) {
    gate.check_speedup(section,
                       baseline.value[section]["speedup"].number_value,
                       current.value[section]["speedup"].number_value);
  }
  gate.check_speedup("spf_kernel",
                     baseline.value["spf_kernel"]["speedup"].number_value,
                     current.value["spf_kernel"]["speedup"].number_value);
  gate.check_flag("spf_kernel identical",
                  baseline.value["spf_kernel"]["identical"].bool_value,
                  current.value["spf_kernel"]["identical"].bool_value);

  // Telemetry counters + per-span diff (only when both runs captured them
  // — OFF builds write "enabled": false and an empty snapshot).
  const Value& base_tel = baseline.value["telemetry"];
  const Value& cur_tel = current.value["telemetry"];
  if (base_tel["enabled"].bool_value && cur_tel["enabled"].bool_value) {
    for (const auto& [counter, base_value] :
         base_tel["snapshot"]["counters"].members) {
      gate.check_count("counter " + counter, base_value.number_value,
                       cur_tel["snapshot"]["counters"][counter].number_value);
    }
    muerp::support::Table spans(
        "per-span diff (calls gate; ms informational)",
        {"span", "base calls", "cur calls", "base self ms", "cur self ms",
         "self ms delta %"});
    const Value& base_spans = base_tel["snapshot"]["spans"];
    const Value& cur_spans = cur_tel["snapshot"]["spans"];
    for (const Value& base_span : base_spans.elements) {
      const std::string& label = base_span["label"].string_value;
      const Value* cur_span = find_span(cur_spans, label);
      if (cur_span == nullptr) {
        ++gate.failures;
        std::cerr << "FAIL span '" << label << "' missing from current\n";
        continue;
      }
      const double base_ms = base_span["self_ms"].number_value;
      const double cur_ms = (*cur_span)["self_ms"].number_value;
      spans.add_row(label,
                    {base_span["count"].number_value,
                     (*cur_span)["count"].number_value, base_ms, cur_ms,
                     base_ms > 0.0 ? (cur_ms / base_ms - 1.0) * 100.0 : 0.0});
      gate.check_count("span " + label + " calls",
                       base_span["count"].number_value,
                       (*cur_span)["count"].number_value);
    }
    std::cout << spans;
  } else {
    std::cout << "(telemetry snapshot missing from one side; span and "
                 "counter gates skipped)\n";
  }

  // Batch-kernel gates (bench/batch_routing output). Same philosophy: the
  // batch-vs-reference speedup and the groups/sec ratio are machine-
  // relative and gate drop-only; the identical flags and rate arrays are
  // exact; admission-latency quantiles are absolute microseconds and only
  // inform. Runs only when both files are supplied so the routing gate
  // keeps working standalone.
  const std::string batch_baseline_path = cli.get_string("batch-baseline");
  const std::string batch_current_path = cli.get_string("batch-current");
  if (!batch_baseline_path.empty() && !batch_current_path.empty()) {
    std::string batch_baseline_text;
    std::string batch_current_text;
    if (!read_file(batch_baseline_path, &batch_baseline_text)) {
      return fail("cannot read " + batch_baseline_path);
    }
    if (!read_file(batch_current_path, &batch_current_text)) {
      return fail("cannot read " + batch_current_path);
    }
    const ParseResult batch_baseline =
        muerp::support::json::parse(batch_baseline_text);
    if (!batch_baseline.ok()) {
      return fail(batch_baseline_path + ": " + batch_baseline.error);
    }
    const ParseResult batch_current =
        muerp::support::json::parse(batch_current_text);
    if (!batch_current.ok()) {
      return fail(batch_current_path + ": " + batch_current.error);
    }

    muerp::support::Table batch_table(
        "batch kernel vs sequential reference",
        {"policy", "base speedup", "cur speedup", "base groups/s",
         "cur groups/s"});
    for (const char* section : {"given_order", "fair_share"}) {
      const Value& base_sec = batch_baseline.value[section];
      const Value& cur_sec = batch_current.value[section];
      batch_table.add_row(section,
                          {base_sec["speedup"].number_value,
                           cur_sec["speedup"].number_value,
                           base_sec["batch_groups_per_sec"].number_value,
                           cur_sec["batch_groups_per_sec"].number_value});
      gate.check_speedup(std::string("batch ") + section + " speedup",
                         base_sec["speedup"].number_value,
                         cur_sec["speedup"].number_value);
      gate.check_flag(std::string("batch ") + section + " identical",
                      base_sec["identical"].bool_value,
                      cur_sec["identical"].bool_value);
      if (!rates_identical(base_sec, cur_sec)) {
        if (allow_rate_drift) {
          std::cerr << "WARN batch " << section
                    << ": rate arrays differ from baseline (allowed)\n";
        } else {
          ++gate.failures;
          std::cerr << "FAIL batch " << section
                    << ": rate arrays differ from baseline (routing results "
                       "changed; re-commit the baseline if intended)\n";
        }
      }
    }
    std::cout << batch_table;
    const Value& base_admit = batch_baseline.value["admit_us"];
    const Value& cur_admit = batch_current.value["admit_us"];
    std::cout << "admission latency us (informational): p50 "
              << base_admit["p50"].number_value << " -> "
              << cur_admit["p50"].number_value << ", p99 "
              << base_admit["p99"].number_value << " -> "
              << cur_admit["p99"].number_value << '\n';

    const Value& base_batch_tel = batch_baseline.value["telemetry"];
    const Value& cur_batch_tel = batch_current.value["telemetry"];
    if (base_batch_tel["enabled"].bool_value &&
        cur_batch_tel["enabled"].bool_value) {
      for (const auto& [counter, base_value] :
           base_batch_tel["snapshot"]["counters"].members) {
        gate.check_count(
            "batch counter " + counter, base_value.number_value,
            cur_batch_tel["snapshot"]["counters"][counter].number_value);
      }
    } else {
      std::cout << "(batch telemetry snapshot missing from one side; "
                   "counter gates skipped)\n";
    }
  }

  // Sharded session-plane gates (bench/session_throughput output). The
  // sessions/sec speedup of the 8-shard arm over the cold single-service
  // baseline is machine-relative and gates drop-only; the two bit-identity
  // flags (1-lane sharded == SessionService, merged metrics equal across
  // shard counts) and the merged session counts are exact; the per-arm
  // admission-latency quantiles are absolute microseconds and only inform.
  // Telemetry gating is restricted to the session/ and batch/ counter
  // families — those are lane-deterministic, whereas spf/ CSR-build counts
  // scale with the worker-thread count and would differ across machines.
  const std::string session_baseline_path = cli.get_string("session-baseline");
  const std::string session_current_path = cli.get_string("session-current");
  if (!session_baseline_path.empty() && !session_current_path.empty()) {
    std::string session_baseline_text;
    std::string session_current_text;
    if (!read_file(session_baseline_path, &session_baseline_text)) {
      return fail("cannot read " + session_baseline_path);
    }
    if (!read_file(session_current_path, &session_current_text)) {
      return fail("cannot read " + session_current_path);
    }
    const ParseResult session_baseline =
        muerp::support::json::parse(session_baseline_text);
    if (!session_baseline.ok()) {
      return fail(session_baseline_path + ": " + session_baseline.error);
    }
    const ParseResult session_current =
        muerp::support::json::parse(session_current_text);
    if (!session_current.ok()) {
      return fail(session_current_path + ": " + session_current.error);
    }
    const Value& base_doc = session_baseline.value;
    const Value& cur_doc = session_current.value;

    muerp::support::Table session_table(
        "sharded session plane (sessions/sec; p50 admit us informational)",
        {"arm", "base sessions/s", "cur sessions/s", "base p50 us",
         "cur p50 us"});
    session_table.add_row(
        "baseline",
        {base_doc["baseline"]["sessions_per_sec"].number_value,
         cur_doc["baseline"]["sessions_per_sec"].number_value,
         base_doc["baseline"]["admit_us"]["p50"].number_value,
         cur_doc["baseline"]["admit_us"]["p50"].number_value});
    const Value& base_arms = base_doc["sharded"];
    const Value& cur_arms = cur_doc["sharded"];
    for (const Value& base_arm : base_arms.elements) {
      const double shards = base_arm["shards"].number_value;
      const Value* cur_arm = nullptr;
      for (const Value& candidate : cur_arms.elements) {
        if (candidate["shards"].number_value == shards) cur_arm = &candidate;
      }
      if (cur_arm == nullptr) {
        ++gate.failures;
        std::cerr << "FAIL session arm with " << shards
                  << " shards missing from current\n";
        continue;
      }
      session_table.add_row(
          std::to_string(static_cast<int>(shards)) + " shards",
          {base_arm["sessions_per_sec"].number_value,
           (*cur_arm)["sessions_per_sec"].number_value,
           base_arm["admit_us"]["p50"].number_value,
           (*cur_arm)["admit_us"]["p50"].number_value});
    }
    std::cout << session_table;

    gate.check_speedup("session throughput speedup",
                       base_doc["speedup"].number_value,
                       cur_doc["speedup"].number_value);
    gate.check_flag("session identical_lane1",
                    base_doc["identical_lane1"].bool_value,
                    cur_doc["identical_lane1"].bool_value);
    gate.check_flag("session identical_across_shards",
                    base_doc["identical_across_shards"].bool_value,
                    cur_doc["identical_across_shards"].bool_value);
    for (const char* count : {"arrived", "admitted", "completed"}) {
      gate.check_count(std::string("session counts.") + count,
                       base_doc["counts"][count].number_value,
                       cur_doc["counts"][count].number_value);
    }

    const Value& base_session_tel = base_doc["telemetry"];
    const Value& cur_session_tel = cur_doc["telemetry"];
    if (base_session_tel["enabled"].bool_value &&
        cur_session_tel["enabled"].bool_value) {
      for (const auto& [counter, base_value] :
           base_session_tel["snapshot"]["counters"].members) {
        if (counter.rfind("session/", 0) != 0 &&
            counter.rfind("batch/", 0) != 0) {
          continue;
        }
        gate.check_count(
            "session counter " + counter, base_value.number_value,
            cur_session_tel["snapshot"]["counters"][counter].number_value);
      }
    } else {
      std::cout << "(session telemetry snapshot missing from one side; "
                   "counter gates skipped)\n";
    }
  }

  if (gate.failures > 0) {
    std::cerr << "bench_diff: " << gate.failures << " gate failure(s)\n";
    return 1;
  }
  std::cout << "bench_diff: all gates passed (tolerance "
            << gate.tolerance * 100 << "%)\n";
  return 0;
}
