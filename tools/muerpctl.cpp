// muerpctl — command-line front end for the muerp library.
//
// Subcommands (run `muerpctl help <cmd>` for the per-command flags):
//   generate   build a random or reference network and write it to disk
//   info       summarize a network file
//   analyze    network-science metrics (clustering, diameter, bridges, ...)
//   screen     run the polynomial feasibility screens
//   route      route multi-user entanglement and report the tree
//   plan       minimum uniform switch budget (binary search over Alg-3)
//   simulate   Monte-Carlo validate a routed plan
//   sweep      run a full scenario from a config file (paper-style table)
//   ctl        drive a live muerpd over POST /api/v1/ctl
//
// Examples:
//   muerpctl generate --topology waxman --switches 50 --users 10 --out n.txt
//   muerpctl generate --topology nsfnet --users 5 --out n.txt
//   muerpctl route --net n.txt --algorithm alg3 --local-search --dot plan.dot
//   muerpctl screen --net n.txt
//   muerpctl simulate --net n.txt --algorithm alg4 --rounds 100000
//   muerpctl sweep --config scenario.cfg --algorithms alg4,alg4ls,annealing
//   muerpctl ctl status --endpoint 127.0.0.1:9464
//   muerpctl ctl set arrival-rate 0.2
//   muerpctl ctl get lifetime
//   muerpctl ctl drain
//
// Exit codes: 0 success, 1 command failure (including a ctl envelope with
// "ok": false), 2 usage error (typo'd flag, unknown subcommand, transport
// failure reaching the daemon). `--help` exits 0.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "muerp.hpp"

namespace {

using namespace muerp;

int fail(const std::string& message) {
  std::cerr << "muerpctl: " << message << '\n';
  return 1;
}

int usage_fail(const std::string& message) {
  std::cerr << "muerpctl: " << message << '\n';
  return 2;
}

std::optional<net::QuantumNetwork> load(const std::string& path) {
  if (path.empty()) {
    fail("--net <file> is required");
    return std::nullopt;
  }
  auto result = net::load_network_file(path);
  if (std::holds_alternative<std::string>(result)) {
    fail("cannot load " + path + ": " + std::get<std::string>(result));
    return std::nullopt;
  }
  return std::move(std::get<net::QuantumNetwork>(result));
}

// ---------------------------------------------------------------------------
// Flag table: the single source for CliParser registration AND the
// per-command flag listings `muerpctl help <cmd>` prints. A subcommand's
// `flags` field names rows of this table.
struct FlagDef {
  const char* name;
  const char* help;
  const char* default_value;
};

const FlagDef kFlagDefs[] = {
    {"topology", "waxman|ws|volchenkov|nsfnet|geant", "waxman"},
    {"switches", "switch count (random topologies)", "50"},
    {"users", "user count", "10"},
    {"qubits", "qubits per switch", "4"},
    {"degree", "average degree (random topologies)", "6"},
    {"area", "deployment side in km", "10000"},
    {"alpha", "fiber attenuation 1/km", ""},
    {"swap", "BSM success probability", ""},
    {"seed", "random seed", "1"},
    {"out", "output file (generate: network; ctl snapshot: document)", ""},
    {"net", "input network file", ""},
    {"algorithm", "registry name (route/simulate)", "alg3"},
    {"algorithms", "comma list of registry names (sweep)", ""},
    {"telemetry", "write per-algorithm telemetry JSON (sweep)", ""},
    {"trace", "write a Chrome trace of the whole run", ""},
    {"log-level", "structured event log: debug|info|warn|error|off", "warn"},
    {"log-format", "structured event log rendering: text|json", "text"},
    {"local-search", "apply the exchange pass after routing", ""},
    {"dot", "write Graphviz DOT of the plan", ""},
    {"svg", "write an SVG rendering of the plan", ""},
    {"rounds", "Monte-Carlo rounds (simulate)", "100000"},
    {"config", "scenario config file (sweep)", ""},
    {"min-rate", "rate floor for the plan subcommand", "0"},
    {"endpoint", "muerpd control endpoint, host:port or port (ctl)",
     "127.0.0.1:9464"},
    {"token", "bearer token for the ctl API (muerpd --ctl-token)", ""},
};

const FlagDef* find_flag_def(const std::string& name) {
  for (const FlagDef& def : kFlagDefs) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

int cmd_generate(const support::CliParser& cli) {
  const std::string out = cli.get_string("out");
  if (out.empty()) return fail("generate needs --out <file>");
  const auto switches =
      static_cast<std::size_t>(cli.get_int("switches").value_or(50));
  const auto users =
      static_cast<std::size_t>(cli.get_int("users").value_or(10));
  const int qubits = static_cast<int>(cli.get_int("qubits").value_or(4));
  const double degree = cli.get_double("degree").value_or(6.0);
  const double side = cli.get_double("area").value_or(10000.0);
  support::Rng rng(cli.get_int("seed").value_or(1));

  const std::string kind = cli.get_string("topology");
  topology::SpatialGraph topo;
  if (kind == "waxman" || kind == "ws" || kind == "volchenkov") {
    experiment::Scenario s;
    s.topology = kind == "waxman" ? experiment::TopologyKind::kWaxman
                 : kind == "ws"   ? experiment::TopologyKind::kWattsStrogatz
                                  : experiment::TopologyKind::kVolchenkov;
    s.switch_count = switches;
    s.user_count = users;
    s.qubits_per_switch = qubits;
    s.average_degree = degree;
    s.area_side_km = side;
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed").value_or(1));
    s.attenuation = cli.get_double("alpha").value_or(1e-4);
    s.swap_success = cli.get_double("swap").value_or(0.9);
    const auto inst = experiment::instantiate(s, 0);
    if (!net::save_network_file(inst.network, out)) {
      return fail("cannot write " + out);
    }
  } else {
    // Reference backbones: all nodes placed, then users drawn randomly.
    const topology::ReferenceTopology* reference = nullptr;
    try {
      reference = &topology::reference_by_name(kind);
    } catch (const std::out_of_range&) {
      return fail("unknown --topology '" + kind +
                  "' (waxman|ws|volchenkov|nsfnet|geant)");
    }
    topo = topology::instantiate_reference(*reference, {side, side * 0.6});
    net::PhysicalParams physical;
    physical.attenuation = cli.get_double("alpha").value_or(2e-4);
    physical.swap_success = cli.get_double("swap").value_or(0.9);
    const auto network =
        net::assign_random_users(std::move(topo), users, qubits, physical, rng);
    if (!net::save_network_file(network, out)) {
      return fail("cannot write " + out);
    }
  }
  std::cout << "wrote " << out << '\n';
  return 0;
}

int cmd_info(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  std::cout << "nodes      : " << network->node_count() << " ("
            << network->users().size() << " users, "
            << network->switches().size() << " switches)\n";
  std::cout << "fibers     : " << network->graph().edge_count()
            << " (average degree " << network->graph().average_degree()
            << ")\n";
  int total_qubits = 0;
  for (net::NodeId sw : network->switches()) total_qubits += network->qubits(sw);
  std::cout << "qubits     : " << total_qubits << " across switches ("
            << total_qubits / 2 << " channel slots)\n";
  std::cout << "physical   : alpha=" << network->physical().attenuation
            << " /km, q=" << network->physical().swap_success << '\n';
  std::cout << "users      :";
  for (net::NodeId u : network->users()) std::cout << ' ' << u;
  std::cout << '\n';
  return 0;
}

std::string known_algorithms() {
  std::string known;
  for (const std::string& name : routing::RouterRegistry::instance().names()) {
    if (!known.empty()) known += '|';
    known += name;
  }
  return known;
}

/// Routes through the RouterRegistry: any registered name works, including
/// the satellites (alg4ls, annealing) and nfusion (star-shaped tree whose
/// rate follows the fusion model rather than the channel-rate product).
net::EntanglementTree route_with(const std::string& algorithm,
                                 const net::QuantumNetwork& network,
                                 support::Rng& rng, std::string* error) {
  const routing::Router* router =
      routing::RouterRegistry::instance().find(algorithm);
  if (router == nullptr) {
    *error = "unknown --algorithm '" + algorithm + "' (" +
             known_algorithms() + ")";
    return {};
  }
  routing::RoutingRequest request;
  request.network = &network;
  request.rng = &rng;
  return router->route_tree(request);
}

/// Parses the --algorithms comma list; empty selects the paper's five.
/// Returns false (with *error set) when a name is not registered.
bool parse_algorithms(const std::string& list, std::vector<std::string>* out,
                      std::string* error) {
  if (list.empty()) {
    const auto names = experiment::paper_algorithm_names();
    out->assign(names.begin(), names.end());
    return true;
  }
  const auto& registry = routing::RouterRegistry::instance();
  std::string name;
  std::istringstream stream(list);
  while (std::getline(stream, name, ',')) {
    if (name.empty()) continue;
    if (!registry.contains(name)) {
      *error = "unknown algorithm '" + name + "' in --algorithms (" +
               known_algorithms() + ")";
      return false;
    }
    out->push_back(name);
  }
  if (out->empty()) {
    *error = "--algorithms selected nothing";
    return false;
  }
  return true;
}

int cmd_route(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  support::Rng rng(cli.get_int("seed").value_or(1));
  const std::string algorithm = cli.get_string("algorithm");
  std::string error;
  auto tree = route_with(algorithm, *network, rng, &error);
  if (!error.empty()) return fail(error);

  if (cli.get_bool("local-search") && tree.feasible) {
    const auto stats = routing::improve_tree(*network, network->users(), tree);
    std::cout << "local search: " << stats.exchanges << " exchanges over "
              << stats.sweeps << " sweeps\n";
  }
  if (!tree.feasible) {
    std::cout << "infeasible (rate 0)\n";
    const auto screen =
        routing::screen_feasibility(*network, network->users());
    std::cout << "screen verdict: "
              << routing::feasibility_name(screen.verdict) << " — "
              << screen.reason << '\n';
    return 2;
  }
  // N-Fusion's rate follows the fusion model, not the channel-rate product
  // validate_tree checks, so the identity intentionally does not apply.
  const std::string validation =
      algorithm == "nfusion"
          ? std::string()
          : net::validate_tree(*network, network->users(), tree);
  std::cout << "rate " << support::format_rate(tree.rate) << " over "
            << tree.channels.size() << " channels ("
            << (validation.empty() ? "valid" : validation) << ")\n";
  for (const auto& channel : tree.channels) {
    std::cout << "  " << channel.source() << " -> "
              << channel.destination() << "  rate "
              << support::format_rate(channel.rate) << "  via "
              << channel.switch_count() << " switches\n";
  }
  if (const std::string dot = cli.get_string("dot"); !dot.empty()) {
    std::ofstream out(dot);
    out << net::to_dot(*network, &tree);
    std::cout << "DOT written to " << dot << '\n';
  }
  if (const std::string svg = cli.get_string("svg"); !svg.empty()) {
    std::ofstream out(svg);
    out << net::to_svg(*network, &tree);
    std::cout << "SVG written to " << svg << '\n';
  }
  return 0;
}

int cmd_sweep(const support::CliParser& cli) {
  const std::string path = cli.get_string("config");
  if (path.empty()) return fail("sweep needs --config <file>");
  auto parsed = experiment::parse_scenario_file(path);
  if (std::holds_alternative<std::string>(parsed)) {
    return fail(path + ": " + std::get<std::string>(parsed));
  }
  const auto& scenario = std::get<experiment::Scenario>(parsed);

  std::vector<std::string> algorithms;
  std::string error;
  if (!parse_algorithms(cli.get_string("algorithms"), &algorithms, &error)) {
    return fail(error);
  }
  const auto& registry = routing::RouterRegistry::instance();

  std::cout << "# effective scenario\n"
            << experiment::scenario_to_config(scenario) << '\n';
  const auto result = experiment::run_scenario_parallel(scenario, algorithms);
  std::vector<std::string> columns{"metric"};
  for (const std::string& name : algorithms) {
    columns.emplace_back(registry.at(name).display_name());
  }
  support::Table table("scenario sweep (" + path + ")", std::move(columns));
  std::vector<double> means;
  std::vector<double> fractions;
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    means.push_back(result.mean_rate(a));
    fractions.push_back(result.feasible_fraction(a));
  }
  table.add_row("mean rate", std::move(means));
  table.add_row("feasible fraction", std::move(fractions));
  std::cout << table;

  // --telemetry: one JSON object per algorithm, keyed by registry name,
  // holding the counters/spans that algorithm accumulated over the sweep.
  if (const std::string out = cli.get_string("telemetry"); !out.empty()) {
    std::ofstream file(out);
    if (!file) return fail("cannot write " + out);
    file << "{\n";
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      file << "  \"" << algorithms[a] << "\": ";
      support::telemetry::write_json(file, result.telemetry[a]);
      file << (a + 1 < algorithms.size() ? "," : "") << '\n';
    }
    file << "}\n";
    std::cout << "telemetry written to " << out << '\n';
    const auto spans = support::telemetry::spans_table(
        result.telemetry.back(),
        "spans: " + registry.at(algorithms.back()).display_name());
    std::cout << spans;
  }
  return 0;
}

int cmd_analyze(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  const auto degrees = topology::degree_statistics(network->graph());
  std::cout << "degree      : mean " << degrees.mean << ", min "
            << degrees.min << ", max " << degrees.max << " (stddev "
            << degrees.stddev << ")\n";
  std::cout << "clustering  : "
            << topology::average_clustering_coefficient(network->graph())
            << '\n';
  std::cout << "path length : "
            << topology::characteristic_path_length(network->graph())
            << " hops (diameter "
            << topology::hop_diameter(network->graph()) << ")\n";
  std::cout << "small-world : sigma = "
            << topology::small_world_sigma(network->graph()) << '\n';
  std::cout << "assortativity: "
            << topology::degree_assortativity(network->graph()) << '\n';
  const auto bridges = topology::find_bridges(network->graph());
  std::cout << "bridges     : " << bridges.size() << " of "
            << network->graph().edge_count() << " fibers are critical";
  if (!bridges.empty()) {
    std::cout << " (";
    for (std::size_t i = 0; i < bridges.size() && i < 8; ++i) {
      const auto& e = network->graph().edge(bridges[i]);
      std::cout << (i ? ", " : "") << e.a << "-" << e.b;
    }
    if (bridges.size() > 8) std::cout << ", ...";
    std::cout << ')';
  }
  std::cout << '\n';
  return 0;
}

int cmd_screen(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  const auto report = routing::screen_feasibility(*network, network->users());
  std::cout << routing::feasibility_name(report.verdict) << ": "
            << report.reason << '\n';
  return report.verdict == routing::Feasibility::kInfeasible ? 2 : 0;
}

int cmd_plan(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  const double min_rate = cli.get_double("min-rate").value_or(0.0);
  const auto result =
      routing::min_uniform_qubits(*network, network->users(), min_rate);
  if (!result) {
    std::cout << "no uniform budget up to 64 qubits/switch meets the goal\n";
    return 2;
  }
  std::cout << "minimum uniform budget: " << result->qubits_per_switch
            << " qubits/switch\n"
            << "achieved rate         : "
            << support::format_rate(result->tree.rate) << " over "
            << result->tree.channels.size() << " channels\n";
  return 0;
}

int cmd_simulate(const support::CliParser& cli) {
  const auto network = load(cli.get_string("net"));
  if (!network) return 1;
  support::Rng rng(cli.get_int("seed").value_or(1));
  std::string error;
  const auto tree =
      route_with(cli.get_string("algorithm"), *network, rng, &error);
  if (!error.empty()) return fail(error);
  if (!tree.feasible) return fail("routing infeasible; nothing to simulate");
  const auto rounds =
      static_cast<std::uint64_t>(cli.get_int("rounds").value_or(100000));
  const sim::MonteCarloSimulator mc(*network);
  const auto est = mc.estimate_tree_rate(tree, rounds, rng);
  std::cout << "analytic Eq.(2): " << support::format_rate(tree.rate) << '\n'
            << "monte-carlo    : " << support::format_rate(est.rate) << " +- "
            << support::format_rate(est.std_error) << "  (" << est.successes
            << "/" << est.rounds << " windows)\n";
  return 0;
}

// ---------------------------------------------------------------------------
// ctl: drive a live muerpd through its versioned command API.

/// Renders a command-line token as the JSON value the ctl API expects:
/// numbers and booleans pass through typed, everything else is a string.
std::string token_to_json(const std::string& text) {
  if (text == "true" || text == "false" || text == "null") return text;
  if (!text.empty()) {
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() + text.size()) return ctl::json_number(value);
  }
  return ctl::json_quote(text);
}

/// Renders trailing `key=value` positionals as a JSON args object (what the
/// sessions/slo verbs take). Empty string on a token with no '='; "{}" when
/// there were none.
std::string kv_args_json(const std::vector<std::string>& pos,
                         std::size_t first) {
  std::string json = "{";
  for (std::size_t i = first; i < pos.size(); ++i) {
    const std::size_t eq = pos[i].find('=');
    if (eq == std::string::npos || eq == 0) return std::string();
    if (json.size() > 1) json += ", ";
    json += ctl::json_quote(pos[i].substr(0, eq)) + ": " +
            token_to_json(pos[i].substr(eq + 1));
  }
  return json + "}";
}

int cmd_ctl(const support::CliParser& cli) {
  const auto& pos = cli.positional();
  if (pos.size() < 2) {
    return usage_fail(
        "ctl needs a verb: status | set <name> <value> | get <name> | "
        "pause | resume | drain | snapshot | sessions [k=v ...] | "
        "session <id> [json|trace] | topology | links [k=v ...] | "
        "explain <id> | slo [list | set k=v ... | remove <name>] | "
        "commands");
  }
  const std::string& verb = pos[1];
  std::string args_json;
  if (verb == "set") {
    if (pos.size() != 4) {
      return usage_fail("usage: muerpctl ctl set <name> <value>");
    }
    args_json = "{\"name\": " + ctl::json_quote(pos[2]) +
                ", \"value\": " + token_to_json(pos[3]) + "}";
  } else if (verb == "get") {
    if (pos.size() != 3) return usage_fail("usage: muerpctl ctl get <name>");
    args_json = "{\"name\": " + ctl::json_quote(pos[2]) + "}";
  } else if (verb == "snapshot") {
    if (const std::string out = cli.get_string("out"); !out.empty()) {
      args_json = "{\"path\": " + ctl::json_quote(out) + "}";
    }
  } else if (verb == "sessions") {
    args_json = kv_args_json(pos, 2);
    if (args_json.empty()) {
      return usage_fail(
          "usage: muerpctl ctl sessions [state=<s>] [lane=<n>] [alg=<name>] "
          "[min-slot=<n>] [max-slot=<n>] [limit=<n>]");
    }
    if (args_json == "{}") args_json.clear();
  } else if (verb == "session") {
    if (pos.size() < 3 || pos.size() > 4) {
      return usage_fail("usage: muerpctl ctl session <id> [json|trace]");
    }
    args_json = "{\"id\": " + token_to_json(pos[2]);
    if (pos.size() == 4) {
      args_json += ", \"format\": " + ctl::json_quote(pos[3]);
    }
    args_json += "}";
  } else if (verb == "links") {
    args_json = kv_args_json(pos, 2);
    if (args_json.empty()) {
      return usage_fail(
          "usage: muerpctl ctl links [sort=util|losses] [limit=<n>]");
    }
    if (args_json == "{}") args_json.clear();
  } else if (verb == "explain") {
    if (pos.size() != 3) {
      return usage_fail("usage: muerpctl ctl explain <id>");
    }
    args_json = "{\"id\": " + token_to_json(pos[2]) + "}";
  } else if (verb == "slo") {
    if (pos.size() == 2 || (pos.size() == 3 && pos[2] == "list")) {
      // list is the default action — no args needed
    } else if (pos[2] == "remove") {
      if (pos.size() != 4) {
        return usage_fail("usage: muerpctl ctl slo remove <name>");
      }
      args_json = "{\"action\": \"remove\", \"name\": " +
                  ctl::json_quote(pos[3]) + "}";
    } else if (pos[2] == "set") {
      const std::string body = kv_args_json(pos, 3);
      if (body.empty() || body == "{}") {
        return usage_fail(
            "usage: muerpctl ctl slo set name=<rule> [kind=<k>] "
            "[metric=<m>] [denominator=<d>] [quantile=<q>] "
            "[window-seconds=<s>] [op=above|below] [threshold=<t>] "
            "[for=<n>] [severity=<s>]");
      }
      args_json = "{\"action\": \"set\", " + body.substr(1);
    } else {
      return usage_fail(
          "usage: muerpctl ctl slo [list | set k=v ... | remove <name>]");
    }
  } else if (pos.size() != 2) {
    return usage_fail("ctl " + verb + " takes no arguments");
  }

  ctl::HttpResult result;
  std::string error;
  if (!ctl::ctl_request(cli.get_string("endpoint"), verb, args_json, &result,
                        &error, cli.get_string("token"))) {
    return usage_fail("cannot reach " + cli.get_string("endpoint") + ": " +
                      error);
  }
  // The envelope is the contract: print it verbatim (it is one line of
  // JSON) and turn "ok" into the exit code.
  std::cout << result.body;
  if (!result.body.empty() && result.body.back() != '\n') std::cout << '\n';
  const support::json::ParseResult envelope = support::json::parse(result.body);
  const support::json::Value& ok = envelope.value["ok"];
  return envelope.ok() && ok.is_bool() && ok.bool_value ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Dispatch table: one row per subcommand — name, summary (the unknown-
// command listing), flag spec (`help <cmd>`), handler.
struct Subcommand {
  const char* name;
  const char* summary;
  std::vector<const char*> flags;
  int (*handler)(const support::CliParser&);
};

const std::vector<Subcommand>& subcommands() {
  static const std::vector<Subcommand> kTable = {
      {"generate", "build a random or reference network and write it to disk",
       {"topology", "switches", "users", "qubits", "degree", "area", "alpha",
        "swap", "seed", "out"},
       &cmd_generate},
      {"info", "summarize a network file", {"net"}, &cmd_info},
      {"analyze",
       "network-science metrics (clustering, diameter, bridges, ...)",
       {"net"},
       &cmd_analyze},
      {"screen", "run the polynomial feasibility screens", {"net"},
       &cmd_screen},
      {"route", "route multi-user entanglement and report the tree",
       {"net", "algorithm", "seed", "local-search", "dot", "svg"},
       &cmd_route},
      {"plan", "minimum uniform switch budget (binary search over Alg-3)",
       {"net", "min-rate"},
       &cmd_plan},
      {"simulate", "Monte-Carlo validate a routed plan",
       {"net", "algorithm", "seed", "rounds"},
       &cmd_simulate},
      {"sweep", "run a full scenario from a config file (paper-style table)",
       {"config", "algorithms", "telemetry", "trace"},
       &cmd_sweep},
      {"ctl",
       "drive a live muerpd: status | set | get | pause | resume | drain | "
       "snapshot | sessions | session | topology | links | explain | slo | "
       "commands",
       {"endpoint", "out", "token"},
       &cmd_ctl},
  };
  return kTable;
}

const Subcommand* find_subcommand(const std::string& name) {
  for (const Subcommand& command : subcommands()) {
    if (name == command.name) return &command;
  }
  return nullptr;
}

void print_subcommand_list(std::ostream& os) {
  os << "subcommands:\n";
  for (const Subcommand& command : subcommands()) {
    os << "  " << command.name;
    for (std::size_t pad = std::string(command.name).size(); pad < 10; ++pad) {
      os << ' ';
    }
    os << command.summary << '\n';
  }
  os << "run `muerpctl help <cmd>` for a command's flags\n";
}

int cmd_help(const support::CliParser& cli) {
  const auto& pos = cli.positional();
  if (pos.size() < 2) {
    print_subcommand_list(std::cout);
    return 0;
  }
  const Subcommand* command = find_subcommand(pos[1]);
  if (command == nullptr) {
    std::cerr << "muerpctl: unknown command '" << pos[1] << "'\n";
    print_subcommand_list(std::cerr);
    return 2;
  }
  std::cout << "muerpctl " << command->name << " — " << command->summary
            << "\n\nflags:\n";
  for (const char* name : command->flags) {
    const FlagDef* def = find_flag_def(name);
    if (def == nullptr) continue;
    std::cout << "  --" << def->name;
    if (def->default_value[0] != '\0') {
      std::cout << " (default: " << def->default_value << ")";
    }
    std::cout << "\n      " << def->help << '\n';
  }
  std::cout << "  --log-level, --log-format, --trace apply to every "
               "subcommand\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "muerpctl — multi-user entanglement routing toolbox");
  for (const FlagDef& def : kFlagDefs) {
    cli.add_flag(def.name, def.help, def.default_value);
  }
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  if (cli.positional().empty()) {
    std::cerr << cli.usage(argv[0]) << '\n';
    print_subcommand_list(std::cerr);
    return 2;
  }
  const std::string& name = cli.positional()[0];
  if (name == "help") return cmd_help(cli);
  const Subcommand* command = find_subcommand(name);
  if (command == nullptr) {
    std::cerr << "muerpctl: unknown command '" << name << "'\n";
    print_subcommand_list(std::cerr);
    return 2;
  }

  // Structured event log knobs; the default (warn, text) keeps existing
  // output unchanged.
  support::telemetry::LogLevel log_level;
  if (!support::telemetry::parse_log_level(cli.get_string("log-level"),
                                           &log_level)) {
    return fail("unknown --log-level '" + cli.get_string("log-level") +
                "' (debug|info|warn|error|off)");
  }
  support::telemetry::set_log_level(log_level);
  support::telemetry::LogFormat log_format;
  if (!support::telemetry::parse_log_format(cli.get_string("log-format"),
                                            &log_format)) {
    return fail("unknown --log-format '" + cli.get_string("log-format") +
                "' (text|json)");
  }
  support::telemetry::set_log_format(log_format);

  // --trace records every span of the run as Chrome trace events
  // (chrome://tracing); a no-op in MUERP_TELEMETRY=OFF builds.
  const std::string trace = cli.get_string("trace");
  if (!trace.empty()) support::telemetry::set_tracing(true);

  const int status = command->handler(cli);

  if (!trace.empty()) {
    support::telemetry::set_tracing(false);
    const long events = support::telemetry::write_chrome_trace_file(trace);
    if (events < 0) return fail("cannot write trace file " + trace);
    std::cerr << "wrote " << events << " trace events to " << trace
              << " (load in chrome://tracing)\n";
  }
  return status;
}
