// muerptop — live terminal dashboard for a running muerpd.
//
// Polls the daemon's HTTP observability plane with the repo's own JSON
// reader and plain POSIX sockets (no dependencies):
//
//   GET /healthz         status line: algorithm, slot, active sessions;
//   GET /api/v1/metrics  discovers which series the history ring holds;
//   GET /api/v1/range    windowed values — counters as per-second rates,
//                        gauges as levels, histograms as exact per-window
//                        p50/p95 — rendered as sparklines;
//   GET /api/v1/links    the link ledger's hot-links table (top 5 by
//                        utilization), sparklined from history this
//                        dashboard accumulates client-side.
//
// Panels (per the daemon's admission algorithm): admission rates
// (requests/admitted/completed per second), slot latency quantiles from
// muerpd/slot_us, session-state gauges, hot links, and recent failures.
//
// Connection failures before the first successful frame exit 2 (the
// endpoint is wrong). After the first frame a lost daemon is treated as
// transient — likely restarting — and the dashboard retries with bounded
// exponential backoff, printing a reconnect banner until the endpoint
// answers again.
//
//   muerptop                                   # 127.0.0.1:9464 at 1 Hz
//   muerptop --endpoint 127.0.0.1:9700 --window 120
//   muerptop --once                            # one frame, no screen
//                                              # clearing — CI/scripts
//   muerptop --ascii                           # no Unicode block glyphs
//
// Exit codes: 0 rendered at least one frame, 1 bad flags, 2 the endpoint
// could not be reached or answered a malformed document.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "support/cli.hpp"
#include "support/json.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

int fail(const std::string& message) {
  std::cerr << "muerptop: " << message << '\n';
  return 2;
}

// ---------------------------------------------------------------------------
// Minimal blocking HTTP/1.1 GET client (IPv4, Connection: close).

struct HttpResponse {
  int status = 0;
  std::string body;
};

bool http_get(const std::string& host, std::uint16_t port,
              const std::string& target, HttpResponse* out,
              std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = "socket: " + std::string(std::strerror(errno));
    return false;
  }
  timeval timeout{};
  timeout.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    *error = "endpoint host must be an IPv4 address, got '" + host + "'";
    return false;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             std::strerror(errno);
    ::close(fd);
    return false;
  }
  const std::string request = "GET " + target +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      *error = "send: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      *error = "recv: " + std::string(std::strerror(errno));
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  if (response.rfind("HTTP/1.", 0) != 0) {
    *error = "malformed response";
    return false;
  }
  out->status = std::atoi(response.c_str() + 9);
  const std::size_t head_end = response.find("\r\n\r\n");
  out->body = head_end == std::string::npos ? std::string()
                                            : response.substr(head_end + 4);
  return true;
}

// ---------------------------------------------------------------------------
// Range-query results.

struct Series {
  bool ok = false;
  std::string kind;
  std::vector<double> value;  // rate (counter), level (gauge), p50 (histogram)
  std::vector<double> p95;
  double latest(const std::vector<double>& v) const {
    return v.empty() ? 0.0 : v.back();
  }
};

Series fetch_range(const std::string& host, std::uint16_t port,
                   const std::string& metric, long window_s, long step_s) {
  Series series;
  HttpResponse response;
  std::string error;
  const std::string target = "/api/v1/range?metric=" + metric +
                             "&window=" + std::to_string(window_s) +
                             "&step=" + std::to_string(step_s);
  if (!http_get(host, port, target, &response, &error) ||
      response.status != 200) {
    return series;
  }
  const auto parsed = muerp::support::json::parse(response.body);
  if (!parsed.ok()) return series;
  const auto& doc = parsed.value;
  series.kind = doc["kind"].string_value;
  for (const auto& point : doc["points"].elements) {
    if (series.kind == "histogram") {
      series.value.push_back(point["p50"].number_value);
      series.p95.push_back(point["p95"].number_value);
    } else {
      series.value.push_back(point["value"].number_value);
    }
  }
  series.ok = true;
  return series;
}

// ---------------------------------------------------------------------------
// Rendering.

/// Scales `values` against their max into an 8-level sparkline. Counters
/// and latencies are non-negative, so the baseline is pinned at zero — two
/// frames with the same shape render the same regardless of offset noise.
std::string sparkline(const std::vector<double>& values, bool ascii,
                      std::size_t width) {
  static const char* const kBlocks[8] = {"▁", "▂", "▃",
                                         "▄", "▅", "▆",
                                         "▇", "█"};
  static const char kAscii[8] = {'.', ':', '-', '=', '+', '*', '#', '%'};
  if (values.empty()) return "(no data)";
  const std::size_t start =
      values.size() > width ? values.size() - width : 0;
  double max = 0.0;
  for (std::size_t i = start; i < values.size(); ++i) {
    if (values[i] > max) max = values[i];
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    int level =
        max > 0.0 ? static_cast<int>(values[i] / max * 7.0 + 0.5) : 0;
    if (level < 0) level = 0;
    if (level > 7) level = 7;
    if (ascii) {
      out.push_back(kAscii[level]);
    } else {
      out += kBlocks[level];
    }
  }
  return out;
}

std::string format_value(double v) {
  char buffer[32];
  if (v != 0.0 && (v < 0.01 || v >= 1e6)) {
    std::snprintf(buffer, sizeof buffer, "%10.3g", v);
  } else {
    std::snprintf(buffer, sizeof buffer, "%10.2f", v);
  }
  return buffer;
}

void render_row(std::string& frame, const std::string& label, double latest,
                const std::vector<double>& values, bool ascii,
                std::size_t width) {
  char head[64];
  std::snprintf(head, sizeof head, "  %-14s", label.c_str());
  frame += head;
  frame += format_value(latest);
  frame += "  ";
  frame += sparkline(values, ascii, width);
  frame += '\n';
}

}  // namespace

int main(int argc, char** argv) {
  muerp::support::CliParser cli(
      "muerptop — live terminal dashboard for a running muerpd");
  cli.add_flag("endpoint", "muerpd HTTP endpoint (ipv4:port)",
               "127.0.0.1:9464");
  cli.add_flag("interval-ms", "refresh period", "1000");
  cli.add_flag("window", "history window in seconds", "60");
  cli.add_flag("step", "seconds per sparkline column (0 = window/60)", "0");
  cli.add_flag("once", "render one frame and exit (no screen clearing)");
  cli.add_flag("ascii", "ASCII sparklines instead of Unicode blocks");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  const std::string endpoint = cli.get_string("endpoint");
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    std::cerr << "muerptop: --endpoint must be host:port\n";
    return 1;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port_value = std::atoi(endpoint.c_str() + colon + 1);
  if (port_value <= 0 || port_value > 65535) {
    std::cerr << "muerptop: bad port in --endpoint '" << endpoint << "'\n";
    return 1;
  }
  const auto port = static_cast<std::uint16_t>(port_value);
  const long interval_ms = cli.get_int("interval-ms").value_or(1000);
  const long window_s = cli.get_int("window").value_or(60);
  long step_s = cli.get_int("step").value_or(0);
  if (window_s <= 0) {
    std::cerr << "muerptop: --window must be > 0\n";
    return 1;
  }
  if (step_s <= 0) step_s = window_s / 60 > 0 ? window_s / 60 : 1;
  const bool once = cli.get_bool("once");
  const bool ascii = cli.get_bool("ascii");
  const auto width = static_cast<std::size_t>(window_s / step_s);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  bool rendered = false;
  // Per-link utilization history accumulated client-side across frames
  // (the /api/v1/links document is a point-in-time snapshot), keyed by the
  // rendered label so a link keeps its sparkline while it stays hot.
  std::map<std::string, std::vector<double>> link_history;
  // Consecutive failed polls since the last good frame (reconnect backoff).
  long failures = 0;
  constexpr long kMaxBackoffMs = 10'000;
  while (g_stop == 0) {
    // Health first: connection failures before the first frame are fatal
    // (exit 2 — the endpoint is wrong); afterwards the daemon is probably
    // just restarting, so retry with bounded exponential backoff and a
    // visible banner instead of dying or spinning.
    HttpResponse health;
    std::string error;
    bool healthy = http_get(host, port, "/healthz", &health, &error) &&
                   health.status == 200;
    if (!healthy && error.empty()) {
      error = "/healthz returned " + std::to_string(health.status);
    }
    muerp::support::json::ParseResult health_doc;
    if (healthy) {
      health_doc = muerp::support::json::parse(health.body);
      if (!health_doc.ok()) {
        error = "/healthz: " + health_doc.error;
        healthy = false;
      }
    }
    if (!healthy) {
      if (!rendered) return fail(error);
      ++failures;
      long delay_ms = interval_ms > 0 ? interval_ms : 1000;
      for (long k = 1; k < failures && delay_ms < kMaxBackoffMs; ++k) {
        delay_ms *= 2;
      }
      if (delay_ms > kMaxBackoffMs) delay_ms = kMaxBackoffMs;
      std::cout << "muerptop: lost " << endpoint << " (" << error
                << ") — reconnecting, attempt " << failures
                << ", next try in " << delay_ms << " ms\n"
                << std::flush;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      continue;
    }
    failures = 0;
    const auto& h = health_doc.value;
    const std::string algorithm = h["algorithm"].string_value;

    std::string frame;
    {
      char head[256];
      std::snprintf(head, sizeof head,
                    "muerptop — %s  algorithm %s  uptime %.1fs  slot %.0f  "
                    "active %.0f\n",
                    endpoint.c_str(),
                    algorithm.empty() ? "?" : algorithm.c_str(),
                    h["uptime_s"].number_value, h["slot"].number_value,
                    h["active_sessions"].number_value);
      frame += head;
      std::snprintf(head, sizeof head,
                    "arrived %.0f  admitted %.0f  completed %.0f  "
                    "(window %lds, step %lds)\n",
                    h["sessions_arrived"].number_value,
                    h["sessions_admitted"].number_value,
                    h["sessions_completed"].number_value, window_s, step_s);
      frame += head;
    }

    // Admission panel: counter rates per second.
    frame += "admission\n";
    const char* const kRates[][2] = {
        {"requests/s", "muerpd/requests/"},
        {"admitted/s", "muerpd/admitted/"},
        {"completed/s", "muerpd/completed/"},
        {"slots/s", "muerpd/slots/"},
    };
    for (const auto& row : kRates) {
      const Series series = fetch_range(
          host, port, row[1] + algorithm, window_s, step_s);
      render_row(frame, row[0], series.latest(series.value), series.value,
                 ascii, width);
    }

    // Latency panel: windowed-exact histogram quantiles per step.
    frame += "slot latency (us)\n";
    const Series slot_us =
        fetch_range(host, port, "muerpd/slot_us/" + algorithm, window_s,
                    step_s);
    render_row(frame, "p50", slot_us.latest(slot_us.value), slot_us.value,
               ascii, width);
    render_row(frame, "p95", slot_us.latest(slot_us.p95), slot_us.p95, ascii,
               width);

    // Session panel: gauge levels.
    frame += "sessions\n";
    const char* const kGauges[][2] = {
        {"active", "session/active"},
        {"qubit_util", "session/qubit_utilization"},
    };
    for (const auto& row : kGauges) {
      const Series series =
          fetch_range(host, port, row[1], window_s, step_s);
      render_row(frame, row[0], series.latest(series.value), series.value,
                 ascii, width);
    }

    // Hot-links panel: the link ledger's top 5 by utilization. The
    // document is a snapshot, so the sparkline history lives here in the
    // client, one series per rendered label. Absent endpoint (older
    // daemon) or an OFF build just renders "(none)".
    frame += "hot links (top 5 by utilization)\n";
    bool any_link = false;
    {
      HttpResponse links;
      if (http_get(host, port, "/api/v1/links?sort=util&limit=5", &links,
                   &error) &&
          links.status == 200) {
        const auto doc = muerp::support::json::parse(links.body);
        if (doc.ok()) {
          for (const auto& link : doc.value["links"].elements) {
            char label[32];
            if (link["kind"].string_value == "switch") {
              std::snprintf(label, sizeof label, "s%ld @%ld",
                            static_cast<long>(link["index"].number_value),
                            static_cast<long>(link["node"].number_value));
            } else {
              std::snprintf(label, sizeof label, "e%ld %ld-%ld",
                            static_cast<long>(link["index"].number_value),
                            static_cast<long>(link["a"].number_value),
                            static_cast<long>(link["b"].number_value));
            }
            const double util = link["utilization"].number_value;
            auto& history = link_history[label];
            history.push_back(util);
            if (history.size() > width) {
              history.erase(history.begin(),
                            history.end() - static_cast<long>(width));
            }
            render_row(frame, label, util, history, ascii, width);
            any_link = true;
          }
        }
      }
    }
    if (!any_link) frame += "  (none)\n";

    // Failure panel: the flight recorder's always-kept tail — the most
    // recent rejections and timeouts, one line each. Absent endpoint
    // (older daemon) or empty recorder just renders "(none)".
    frame += "recent failures (alerts firing " +
             std::to_string(
                 static_cast<long>(h["alerts_firing"].number_value)) +
             ")\n";
    bool any_failure = false;
    for (const char* state : {"rejected", "timed_out"}) {
      HttpResponse sessions;
      if (!http_get(host, port,
                    std::string("/api/v1/sessions?limit=3&state=") + state,
                    &sessions, &error) ||
          sessions.status != 200) {
        continue;
      }
      const auto doc = muerp::support::json::parse(sessions.body);
      if (!doc.ok()) continue;
      for (const auto& record : doc.value["sessions"].elements) {
        char line[160];
        std::snprintf(
            line, sizeof line,
            "  #%-12.0f slot %-8.0f %-9s reason %-16s group %zu  %s\n",
            record["id"].number_value, record["arrival_slot"].number_value,
            record["state"].string_value.c_str(),
            record["reject_reason"].string_value.c_str(),
            record["group"].elements.size(),
            record["algorithm"].string_value.c_str());
        frame += line;
        any_failure = true;
      }
    }
    if (!any_failure) frame += "  (none)\n";

    if (!once && rendered) std::cout << "\x1b[2J\x1b[H";
    std::cout << frame << std::flush;
    rendered = true;
    if (once) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return rendered ? 0 : 2;
}
