// muerpd — long-running entanglement routing service with a live
// observability plane.
//
// Wraps sim::ShardedSessionService (arrivals -> admission routing ->
// execution windows, partitioned into deterministic lanes stepped by up to
// --shards worker threads) in an event-driven slot loop and exposes the
// full telemetry registry over HTTP while it runs:
//
//   GET /metrics        Prometheus text exposition (scrape target)
//   GET /healthz        liveness JSON with slot/session/admission state
//   GET /snapshot.json  metrics + recent structured log events
//   GET /api/v1/range   windowed time-series queries (rates / levels /
//                       exact per-window quantiles) against the sampler's
//                       history ring — what tools/muerptop renders
//   GET /api/v1/metrics names the history ring has data for
//
// A background Sampler captures the whole registry every
// --sample-interval-ms into a TimeSeriesStore holding --retention samples
// (default 600 x 1 s = the last 10 minutes, delta-encoded).
//
// Examples:
//   muerpd --port 9464                       # paper-default Waxman network
//   muerpd --net n.txt --algorithm alg3      # serve a saved network
//   muerpd --slots 20000 --slot-ms 0         # finite, unpaced (benchmarks)
//   muerpd --log-format json --log-level debug
//   muerpd --sample-interval-ms 250 --retention 2400   # 10 min at 4 Hz
//
// The daemon prints "serving on <addr>:<port>" once the endpoint is up
// (port 0 binds an ephemeral port — tests parse the line), then plays
// execution windows on a fixed --slot-ms grid until --slots windows
// elapsed or SIGINT/SIGTERM. Pacing is event-driven (SlotScheduler), not
// sleep-paced: the loop blocks until the next slot is due and, when a slow
// routing pass put it behind the grid, catches up by playing the backlog
// as one batch (at most --tick-batch slots per wake) — one parallel
// dispatch across the session lanes instead of one sleep per slot.
// /healthz reads a published atomic snapshot, so scrapes never wait for a
// routing pass.
//
// The first signal shuts down gracefully: arrivals stop
// and in-flight sessions drain (completed or timed out, unpaced) before
// the final muerpd/shutdown event; a second signal skips the drain. With
// --snapshot-out the exiting daemon writes one last /snapshot.json
// document to that path. Exit prints the ProtocolMetrics summary table.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <chrono>
#include <fstream>
#include <iostream>

#include "muerp.hpp"

namespace {

using namespace muerp;

// Counts delivered stop signals: 1 = graceful (drain in-flight sessions),
// 2+ = immediate (skip the drain too).
volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = g_stop + 1; }

int fail(const std::string& message) {
  std::cerr << "muerpd: " << message << '\n';
  return 1;
}

std::string known_algorithms() {
  std::string known;
  for (const std::string& name : routing::RouterRegistry::instance().names()) {
    if (!known.empty()) known += '|';
    known += name;
  }
  return known;
}

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "muerpd — entanglement routing session service with /metrics");
  cli.add_flag("net", "network file (else generate from scenario flags)", "");
  cli.add_flag("topology", "waxman|ws|volchenkov (generated)", "waxman");
  cli.add_flag("switches", "switch count (generated)", "50");
  cli.add_flag("users", "user count (generated)", "10");
  cli.add_flag("qubits", "qubits per switch (generated)", "6");
  cli.add_flag("degree", "average degree (generated)", "6");
  cli.add_flag("alpha", "fiber attenuation 1/km (generated)", "2e-5");
  cli.add_flag("swap", "BSM success probability (generated)", "0.9");
  cli.add_flag("seed", "random seed (network + arrivals)", "1");
  cli.add_flag("algorithm",
               "admission router: shared-prim or a registry name", "");
  cli.add_flag("arrival", "session arrival probability per slot", "0.05");
  cli.add_flag("arrival-burst",
               "arrival attempts per slot; >1 admits each slot's arrivals "
               "as one batch through the routing kernel",
               "1");
  cli.add_flag("batch-policy",
               "burst admission order: given-order|smallest-first|"
               "largest-first|greedy|fair-share",
               "given-order");
  cli.add_flag("min-group", "smallest session group size", "2");
  cli.add_flag("max-group", "largest session group size", "4");
  cli.add_flag("timeout", "session timeout in slots", "500");
  cli.add_flag("batch-single",
               "route single arrivals through the persistent batch kernel "
               "(bit-identical admissions, warm slabs across slots)",
               "false");
  cli.add_flag("lanes",
               "deterministic session lanes (traffic/capacity partitions; "
               "results depend on this, not on --shards)",
               "1");
  cli.add_flag("shards",
               "worker threads stepping the lanes (performance only)", "1");
  cli.add_flag("tick-batch",
               "max due slots played per scheduler wake when catching up",
               "64");
  cli.add_flag("slots", "stop after this many slots (0 = until signal)", "0");
  cli.add_flag("slot-ms", "pacing: milliseconds per slot (0 = unpaced)", "10");
  cli.add_flag("port", "HTTP port (0 = ephemeral)", "9464");
  cli.add_flag("bind", "HTTP bind address", "127.0.0.1");
  cli.add_flag("log-level", "debug|info|warn|error|off", "info");
  cli.add_flag("log-format", "text|json", "text");
  cli.add_flag("log-rate",
               "per-session log events per second (0 = unlimited)", "0");
  cli.add_flag("sample-interval-ms",
               "time-series sampling period for /api/v1/range", "1000");
  cli.add_flag("retention",
               "time-series samples kept (retention = this x interval)",
               "600");
  cli.add_flag("snapshot-out",
               "write a final /snapshot.json document here on exit", "");
  if (!cli.parse(argc, argv)) return 1;

  // Observability knobs first, so network construction already logs.
  support::telemetry::LogLevel level;
  if (!support::telemetry::parse_log_level(cli.get_string("log-level"),
                                           &level)) {
    return fail("unknown --log-level '" + cli.get_string("log-level") +
                "' (debug|info|warn|error|off)");
  }
  support::telemetry::set_log_level(level);
  support::telemetry::LogFormat format;
  if (!support::telemetry::parse_log_format(cli.get_string("log-format"),
                                            &format)) {
    return fail("unknown --log-format '" + cli.get_string("log-format") +
                "' (text|json)");
  }
  support::telemetry::set_log_format(format);

  // The served network: a file, or a scenario-generated instance.
  std::optional<net::QuantumNetwork> network;
  if (const std::string path = cli.get_string("net"); !path.empty()) {
    auto result = net::load_network_file(path);
    if (std::holds_alternative<std::string>(result)) {
      return fail("cannot load " + path + ": " +
                  std::get<std::string>(result));
    }
    network = std::move(std::get<net::QuantumNetwork>(result));
  } else {
    experiment::Scenario s;
    const std::string kind = cli.get_string("topology");
    if (kind == "waxman") {
      s.topology = experiment::TopologyKind::kWaxman;
    } else if (kind == "ws") {
      s.topology = experiment::TopologyKind::kWattsStrogatz;
    } else if (kind == "volchenkov") {
      s.topology = experiment::TopologyKind::kVolchenkov;
    } else {
      return fail("unknown --topology '" + kind + "' (waxman|ws|volchenkov)");
    }
    s.switch_count =
        static_cast<std::size_t>(cli.get_int("switches").value_or(50));
    s.user_count = static_cast<std::size_t>(cli.get_int("users").value_or(10));
    s.qubits_per_switch = static_cast<int>(cli.get_int("qubits").value_or(6));
    s.average_degree = cli.get_double("degree").value_or(6.0);
    s.attenuation = cli.get_double("alpha").value_or(2e-5);
    s.swap_success = cli.get_double("swap").value_or(0.9);
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed").value_or(1));
    network = std::move(experiment::instantiate(s, 0).network);
  }

  sim::SessionServiceConfig config;
  config.algorithm = cli.get_string("algorithm");
  if (config.algorithm == "shared-prim") config.algorithm.clear();
  if (!config.algorithm.empty() &&
      !routing::RouterRegistry::instance().contains(config.algorithm)) {
    return fail("unknown --algorithm '" + config.algorithm +
                "' (shared-prim|" + known_algorithms() + ")");
  }
  // Registry admission routes on a residual-capacity copy; Algorithm 2's
  // sufficient-condition boost would fake qubits the service doesn't have.
  config.router_options.pin_alg2_sufficient = false;
  config.params.arrival_prob_per_slot = cli.get_double("arrival").value_or(0.05);
  config.params.min_group_size =
      static_cast<std::size_t>(cli.get_int("min-group").value_or(2));
  config.params.max_group_size =
      static_cast<std::size_t>(cli.get_int("max-group").value_or(4));
  config.params.session_timeout_slots =
      static_cast<std::uint64_t>(cli.get_int("timeout").value_or(500));
  if (config.params.min_group_size < 2 ||
      config.params.max_group_size < config.params.min_group_size ||
      config.params.max_group_size > network->users().size()) {
    return fail("group sizes must satisfy 2 <= min <= max <= user count (" +
                std::to_string(network->users().size()) + ")");
  }
  config.log_events_per_second = cli.get_double("log-rate").value_or(0.0);
  const auto arrival_burst = cli.get_int("arrival-burst").value_or(1);
  if (arrival_burst < 1) return fail("--arrival-burst must be >= 1");
  config.arrival_burst = static_cast<std::size_t>(arrival_burst);
  if (!routing::parse_batch_policy(cli.get_string("batch-policy"),
                                   &config.batch_policy)) {
    return fail("unknown --batch-policy '" + cli.get_string("batch-policy") +
                "' (given-order|smallest-first|largest-first|greedy|"
                "fair-share)");
  }
  if (config.arrival_burst > 1 &&
      config.batch_policy == routing::BatchPolicy::kFairShare &&
      !config.algorithm.empty() && config.algorithm != "alg4") {
    return fail("--batch-policy fair-share needs --algorithm shared-prim or "
                "alg4 (batch-native kernel)");
  }
  config.batch_single_arrivals = cli.get_bool("batch-single");
  const auto lanes = cli.get_int("lanes").value_or(1);
  const auto shards = cli.get_int("shards").value_or(1);
  const auto tick_batch = cli.get_int("tick-batch").value_or(64);
  if (lanes < 1) return fail("--lanes must be >= 1");
  if (shards < 1) return fail("--shards must be >= 1");
  if (tick_batch < 1) return fail("--tick-batch must be >= 1");
  const auto max_slots =
      static_cast<std::uint64_t>(cli.get_int("slots").value_or(0));
  const auto slot_ms = cli.get_int("slot-ms").value_or(10);
  const auto sample_interval_ms =
      cli.get_int("sample-interval-ms").value_or(1000);
  const auto retention = cli.get_int("retention").value_or(600);
  if (sample_interval_ms <= 0) return fail("--sample-interval-ms must be > 0");
  if (retention < 2) return fail("--retention must be >= 2");
  const std::string snapshot_out = cli.get_string("snapshot-out");
  const std::string algorithm_label =
      config.algorithm.empty() ? "shared-prim" : config.algorithm;

  sim::ShardedSessionServiceConfig sharded_config;
  sharded_config.base = config;
  sharded_config.lane_count = static_cast<std::size_t>(lanes);
  sharded_config.shard_count = static_cast<std::size_t>(shards);
  sim::ShardedSessionService service(
      *network, sharded_config,
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(1)));

  // Observability plane up before the first slot so a scraper never sees
  // connection refused while the service is live.
  support::telemetry::HttpExporter::Options http;
  http.port = static_cast<std::uint16_t>(cli.get_int("port").value_or(9464));
  http.bind_address = cli.get_string("bind");
  support::telemetry::HttpExporter exporter(http);
  // Historical plane: the sampler captures the registry into the store on
  // its own thread; the exporter serves windowed queries from it under
  // /api/v1/. In MUERP_TELEMETRY=OFF builds both are inert stubs and the
  // endpoints serve empty series — the flags still parse.
  support::telemetry::TimeSeriesStore store(
      static_cast<std::size_t>(retention));
  support::telemetry::Sampler::Options sampler_options;
  sampler_options.interval = std::chrono::milliseconds(sample_interval_ms);
  support::telemetry::Sampler sampler(store, sampler_options);
  exporter.set_time_series(&store);
  // /healthz reads a published snapshot, not the live service: the main
  // loop stores these atomics after every tick, the acceptor thread loads
  // them — a scrape never waits out a routing pass (the seed held a mutex
  // across the whole service.step() here).
  struct HealthSnapshot {
    std::atomic<std::uint64_t> slot{0};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> arrived{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
  };
  HealthSnapshot health;
  const auto publish_health = [&service, &health] {
    const sim::ProtocolMetrics m = service.metrics();
    health.slot.store(service.slot(), std::memory_order_relaxed);
    health.active.store(service.active_sessions(), std::memory_order_relaxed);
    health.arrived.store(m.sessions_arrived, std::memory_order_relaxed);
    health.admitted.store(m.sessions_admitted, std::memory_order_relaxed);
    health.completed.store(m.sessions_completed, std::memory_order_relaxed);
  };
  exporter.set_health_fields([&health, &algorithm_label, lanes,
                              shards](std::string& body) {
    body += ", \"algorithm\": \"" + algorithm_label + "\"";
    body += ", \"slot\": " +
            std::to_string(health.slot.load(std::memory_order_relaxed));
    body += ", \"active_sessions\": " +
            std::to_string(health.active.load(std::memory_order_relaxed));
    body += ", \"sessions_arrived\": " +
            std::to_string(health.arrived.load(std::memory_order_relaxed));
    body += ", \"sessions_admitted\": " +
            std::to_string(health.admitted.load(std::memory_order_relaxed));
    body += ", \"sessions_completed\": " +
            std::to_string(health.completed.load(std::memory_order_relaxed));
    body += ", \"lanes\": " + std::to_string(lanes);
    body += ", \"shards\": " + std::to_string(shards);
  });
  std::string error;
  if (!exporter.start(&error)) {
    return fail("cannot serve on " + http.bind_address + ":" +
                std::to_string(http.port) + ": " + error);
  }
  sampler.start();
  publish_health();  // slot-0 snapshot, so early scrapes see real fields
  std::cout << "muerpd: serving on " << http.bind_address << ":"
            << exporter.port() << std::endl;
  MUERP_LOG_INFO("muerpd/start", support::telemetry::field(
                                     "algorithm", algorithm_label),
                 support::telemetry::field("port", exporter.port()),
                 support::telemetry::field("users", network->users().size()),
                 support::telemetry::field("switches",
                                           network->switches().size()));

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  // Per-algorithm instruments (runtime labels — one daemon, one algorithm,
  // but a Prometheus server aggregating several muerpds can tell them
  // apart by name).
  const support::telemetry::Counter slots_counter("muerpd/slots/" +
                                                  algorithm_label);
  const support::telemetry::Counter requests_counter("muerpd/requests/" +
                                                     algorithm_label);
  const support::telemetry::Counter admitted_counter("muerpd/admitted/" +
                                                     algorithm_label);
  const support::telemetry::Counter completed_counter("muerpd/completed/" +
                                                      algorithm_label);
  const support::telemetry::Histogram slot_us_histogram("muerpd/slot_us/" +
                                                        algorithm_label);

  // Event-driven slot loop: block until the next slot on the fixed grid is
  // due, play every due slot as one batch (one parallel dispatch across the
  // lanes), publish the health snapshot, repeat. acquire() bounds its waits
  // so a signal (which cannot wake the condition variable) is observed
  // promptly; a 0 return is just a control wake.
  support::SlotScheduler::Options pace;
  pace.period = std::chrono::milliseconds(slot_ms);
  pace.max_batch = static_cast<std::uint64_t>(tick_batch);
  support::SlotScheduler scheduler(pace);
  while (g_stop == 0 && (max_slots == 0 || service.slot() < max_slots)) {
    std::uint64_t due = scheduler.acquire();
    if (due == 0) continue;  // control wake: re-check g_stop / max_slots
    if (max_slots != 0) {
      due = std::min<std::uint64_t>(due, max_slots - service.slot());
    }
    const std::uint64_t t0 = support::telemetry::monotonic_now_ns();
    const sim::ShardTickReport tick = service.run_slots(due);
    scheduler.advance(due);
    // Mean per-slot latency over the batch (one observation per slot keeps
    // the histogram's count equal to the slot count, as before).
    const double per_slot_us =
        static_cast<double>(support::telemetry::monotonic_now_ns() - t0) /
        (1e3 * static_cast<double>(due));
    for (std::uint64_t s = 0; s < due; ++s) slot_us_histogram.observe(per_slot_us);
    slots_counter.add(due);
    requests_counter.add(tick.arrivals);
    admitted_counter.add(tick.admissions);
    if (tick.completed > 0) completed_counter.add(tick.completed);
    publish_health();
    // Heartbeat: one debug line per 256 wakes, not one per slot.
    MUERP_LOG_EVERY_N(256, support::telemetry::LogLevel::kDebug, "muerpd/slot",
                      support::telemetry::field("slot", service.slot()),
                      support::telemetry::field("batch", due),
                      support::telemetry::field("active",
                                                tick.active_sessions),
                      support::telemetry::field("qubit_utilization",
                                                tick.qubit_utilization));
  }

  // Graceful shutdown: a first signal stops arrivals and plays unpaced
  // slots until the in-flight sessions complete or time out (bounded by
  // the session timeout); a second signal skips the drain.
  std::uint64_t drain_slots = 0;
  std::uint64_t drained_completed = 0;
  if (g_stop != 0) {
    const std::uint64_t drain_cap = config.params.session_timeout_slots + 1;
    service.set_arrivals_enabled(false);
    while (g_stop < 2 && drain_slots < drain_cap) {
      if (service.active_sessions() == 0) break;
      const sim::ShardTickReport tick = service.step();
      ++drain_slots;
      slots_counter.add();
      if (tick.completed > 0) completed_counter.add(tick.completed);
      drained_completed += tick.completed;
      publish_health();
    }
  }

  const sim::ProtocolMetrics m = service.metrics();
  MUERP_LOG_INFO("muerpd/shutdown",
                 support::telemetry::field("slot", service.slot()),
                 support::telemetry::field("arrived", m.sessions_arrived),
                 support::telemetry::field("completed", m.sessions_completed),
                 support::telemetry::field("drain_slots", drain_slots),
                 support::telemetry::field("drained_completed",
                                           drained_completed),
                 support::telemetry::field("active_remaining",
                                           service.active_sessions()),
                 support::telemetry::field("log_suppressed",
                                           service.log_events_suppressed()));
  sampler.stop();
  exporter.stop();

  if (!snapshot_out.empty()) {
    std::ofstream out(snapshot_out);
    if (out) {
      out << support::telemetry::snapshot_document(
          support::telemetry::capture_process(),
          support::telemetry::recent_log_events());
    } else {
      std::cerr << "muerpd: cannot write --snapshot-out " << snapshot_out
                << '\n';
    }
  }

  support::Table summary("muerpd session service (" + algorithm_label + ")",
                         {"metric", "value"});
  summary.add_row("slots played", {static_cast<double>(service.slot())});
  summary.add_row("sessions arrived",
                  {static_cast<double>(m.sessions_arrived)});
  summary.add_row("sessions admitted",
                  {static_cast<double>(m.sessions_admitted)});
  summary.add_row("sessions completed",
                  {static_cast<double>(m.sessions_completed)});
  summary.add_row("sessions timed out",
                  {static_cast<double>(m.sessions_timed_out)});
  summary.add_row("admitted fraction", {m.admitted_fraction()});
  summary.add_row("mean completion slots", {m.mean_completion_slots});
  summary.add_row("mean qubit utilization", {m.mean_qubit_utilization});
  summary.add_row("http requests served",
                  {static_cast<double>(exporter.requests_served())});
  summary.add_row("time-series samples",
                  {static_cast<double>(sampler.samples_taken())});
  summary.add_row("log events suppressed",
                  {static_cast<double>(service.log_events_suppressed())});
  std::cout << summary;
  return 0;
}
