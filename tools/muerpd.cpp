// muerpd — long-running entanglement routing service with a live
// observability and control plane.
//
// Wraps sim::ShardedSessionService (arrivals -> admission routing ->
// execution windows, partitioned into deterministic lanes stepped by up to
// --shards worker threads) in an event-driven slot loop and exposes the
// full telemetry registry over HTTP while it runs:
//
//   GET  /metrics        Prometheus text exposition (scrape target)
//   GET  /healthz        liveness JSON with slot/session/admission state
//   GET  /snapshot.json  metrics + recent structured log events
//   GET  /api/v1/range   windowed time-series queries (rates / levels /
//                        exact per-window quantiles) against the sampler's
//                        history ring — what tools/muerptop renders
//   GET  /api/v1/metrics names the history ring has data for
//   GET  /api/v1/sessions       per-session flight records (tail-sampled),
//                        filterable with ?state=&lane=&alg=&min-slot=&
//                        max-slot=&limit=
//   GET  /api/v1/session/<id>   one full flight record; ?format=trace
//                        renders it as a Chrome trace-event document
//   GET  /api/v1/alerts  the SLO alert-rule table with live firing state
//   GET  /api/v1/topology       the served network (nodes, fibers, static
//                        attributes) joined with the link ledger's live
//                        occupancy per edge and per switch
//   GET  /api/v1/links   per-link utilization / attempts / contention-loss
//                        table, ?sort=util|losses&limit=N (the hot-links
//                        view muerptop renders)
//   GET  /api/v1/explain/<id>   one flight record joined with the links of
//                        its lane that were saturated at its admission
//                        slot — "why was THIS session rejected"
//   GET  /api/v1/topology.svg   live heatmap: the network rendered with
//                        every fiber stroked on the green→amber→red ramp
//                        by its current utilization
//   POST /api/v1/ctl     the versioned command API ({"cmd","args"} in, a
//                        uniform {"ok",...} envelope out) — what
//                        `muerpctl ctl <verb>` speaks. Verbs: set/get for
//                        arrival-rate, algorithm, arrival-burst,
//                        batch-policy, log-level, log-rate,
//                        sample-interval-ms; lifecycle pause / resume /
//                        drain / snapshot / status; sessions / session
//                        query the flight recorder; slo lists/edits alert
//                        rules; `commands` lists the table with schemas.
//                        With --ctl-token the route requires a matching
//                        `Authorization: Bearer` header (401 otherwise).
//
// Control commands are applied at tick boundaries only: the HTTP acceptor
// thread parks each mutation in a ControlMailbox, the slot loop drains the
// mailbox between scheduler batches (a kick() wakes a blocked wait), so a
// setter never races a routing pass and determinism is preserved — a
// paused-then-resumed daemon with unchanged config plays the same slot
// trajectory as one that never paused (tests assert bit-identity).
//
// With --history <file> the daemon keeps an append-only, CRC-framed
// session-history table: counter deltas appended every ~250 ms and a
// run-start marker per boot, replayed (and any torn tail truncated) on
// start — so a killed-and-restarted daemon answers `ctl get lifetime` with
// counts spanning every run against that file.
//
// A background Sampler captures the whole registry every
// --sample-interval-ms into a TimeSeriesStore holding --retention samples
// (default 600 x 1 s = the last 10 minutes, delta-encoded).
//
// Examples:
//   muerpd --port 9464                       # paper-default Waxman network
//   muerpd --net n.txt --algorithm alg3      # serve a saved network
//   muerpd --slots 20000 --slot-ms 0         # finite, unpaced (benchmarks)
//   muerpd --history muerpd.hist             # durable lifetime counters
//   muerpctl ctl set arrival-rate 0.2        # live retune
//   muerpctl ctl drain                       # stop intake, finish, exit
//
// The daemon prints "serving on <addr>:<port>" once the endpoint is up
// (port 0 binds an ephemeral port — tests parse the line), then plays
// execution windows on a fixed --slot-ms grid until --slots windows
// elapsed, SIGINT/SIGTERM, or `ctl drain`. Pacing is event-driven
// (SlotScheduler): the loop blocks until the next slot is due and, when a
// slow routing pass put it behind the grid, catches up by playing the
// backlog as one batch (at most --tick-batch slots per wake). While paused
// the loop keeps advancing the deadline grid without playing slots, so
// resuming never triggers a catch-up burst. /healthz reads a published
// atomic snapshot (including the running/paused/draining state), so
// scrapes never wait for a routing pass.
//
// The first signal shuts down gracefully: arrivals stop and in-flight
// sessions drain (completed or timed out, unpaced) before the final
// muerpd/shutdown event; a second signal skips the drain. With
// --snapshot-out the exiting daemon writes one last /snapshot.json
// document to that path. Exit prints the ProtocolMetrics summary table.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>

#include "muerp.hpp"

namespace {

using namespace muerp;

// Counts delivered stop signals: 1 = graceful (drain in-flight sessions),
// 2+ = immediate (skip the drain too).
volatile std::sig_atomic_t g_stop = 0;

void handle_stop(int) { g_stop = g_stop + 1; }

int fail(const std::string& message) {
  std::cerr << "muerpd: " << message << '\n';
  return 1;
}

std::string known_algorithms() {
  std::string known;
  for (const std::string& name : routing::RouterRegistry::instance().names()) {
    if (!known.empty()) known += '|';
    known += name;
  }
  return known;
}

/// Slot-loop lifecycle, readable by the acceptor thread for /healthz.
enum class RunState : int { kRunning = 0, kPaused = 1, kDraining = 2 };

const char* run_state_name(RunState state) {
  switch (state) {
    case RunState::kRunning:
      return "running";
    case RunState::kPaused:
      return "paused";
    case RunState::kDraining:
      return "draining";
  }
  return "?";
}

/// Strict decimal parse; false on empty or non-digit input (what the
/// /api/v1/session/<id> path parameter and query numbers go through).
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string json_double(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// The GET /api/v1/topology document: the served network's static shape
/// (node kinds, positions, qubit budgets, fiber endpoints and lengths)
/// joined with the link ledger's live per-edge / per-switch occupancy.
/// `links` is ShardedSessionService::link_stats() — empty (OFF build, or
/// --record-links false) degrades to the static topology with zeroed
/// occupancy, still a valid document.
std::string topology_json(
    const net::QuantumNetwork& network,
    const std::vector<support::telemetry::LinkStat>& links,
    std::uint64_t slot) {
  namespace tel = support::telemetry;
  const auto edges = network.graph().edges();
  std::string out = "{\"slot\": " + std::to_string(slot);
  out += ", \"nodes\": [";
  for (net::NodeId v = 0; v < network.node_count(); ++v) {
    if (v > 0) out += ", ";
    out += "{\"id\": " + std::to_string(v);
    out += ", \"kind\": \"";
    out += network.is_user(v) ? "user" : "switch";
    out += "\", \"x\": " + json_double(network.positions()[v].x);
    out += ", \"y\": " + json_double(network.positions()[v].y);
    if (network.is_switch(v)) {
      out += ", \"qubits\": " + std::to_string(network.qubits(v));
    }
    out += "}";
  }
  out += "], \"edges\": [";
  for (graph::EdgeId e = 0; e < edges.size(); ++e) {
    const auto& edge = edges[e];
    if (e > 0) out += ", ";
    const tel::LinkStat* live =
        e < links.size() && links[e].kind == tel::LinkKind::kEdge ? &links[e]
                                                                  : nullptr;
    out += "{\"id\": " + std::to_string(e);
    out += ", \"a\": " + std::to_string(edge.a);
    out += ", \"b\": " + std::to_string(edge.b);
    out += ", \"length_km\": " + json_double(edge.length_km);
    out += ", \"capacity\": " + std::to_string(live ? live->capacity : 0);
    out += ", \"held\": " + std::to_string(live ? live->held : 0);
    out += ", \"utilization\": " + json_double(live ? live->utilization : 0.0);
    out += "}";
  }
  out += "], \"switches\": [";
  const auto switch_ids = network.switches();
  for (std::size_t s = 0; s < switch_ids.size(); ++s) {
    if (s > 0) out += ", ";
    const std::size_t flat = edges.size() + s;
    const tel::LinkStat* live =
        flat < links.size() && links[flat].kind == tel::LinkKind::kSwitch
            ? &links[flat]
            : nullptr;
    out += "{\"node\": " + std::to_string(switch_ids[s]);
    out += ", \"capacity\": " +
           std::to_string(live ? live->capacity
                               : network.qubits(switch_ids[s]));
    out += ", \"held\": " + std::to_string(live ? live->held : 0);
    out += ", \"utilization\": " + json_double(live ? live->utilization : 0.0);
    out += "}";
  }
  out += "]}\n";
  return out;
}

/// One row of the daemon's settings table: what `ctl set`/`ctl get`
/// dispatch on. Accessors run on the loop thread (inside a mailbox
/// action), so they may touch the session service freely.
struct Setting {
  std::string name;
  std::string summary;
  std::function<std::string()> get;  // current value as a JSON document
  /// Applies a validated-by-type value; null marks a read-only row.
  std::function<ctl::CommandResult(const support::json::Value&)> set;
};

}  // namespace

int main(int argc, char** argv) {
  support::CliParser cli(
      "muerpd — entanglement routing session service with /metrics");
  cli.add_flag("net", "network file (else generate from scenario flags)", "");
  cli.add_flag("topology", "waxman|ws|volchenkov (generated)", "waxman");
  cli.add_flag("switches", "switch count (generated)", "50");
  cli.add_flag("users", "user count (generated)", "10");
  cli.add_flag("qubits", "qubits per switch (generated)", "6");
  cli.add_flag("degree", "average degree (generated)", "6");
  cli.add_flag("alpha", "fiber attenuation 1/km (generated)", "2e-5");
  cli.add_flag("swap", "BSM success probability (generated)", "0.9");
  cli.add_flag("seed", "random seed (network + arrivals)", "1");
  cli.add_flag("algorithm",
               "admission router: shared-prim or a registry name", "");
  cli.add_flag("arrival", "session arrival probability per slot", "0.05");
  cli.add_flag("arrival-burst",
               "arrival attempts per slot; >1 admits each slot's arrivals "
               "as one batch through the routing kernel",
               "1");
  cli.add_flag("batch-policy",
               "burst admission order: given-order|smallest-first|"
               "largest-first|greedy|fair-share",
               "given-order");
  cli.add_flag("min-group", "smallest session group size", "2");
  cli.add_flag("max-group", "largest session group size", "4");
  cli.add_flag("timeout", "session timeout in slots", "500");
  cli.add_flag("batch-single",
               "route single arrivals through the persistent batch kernel "
               "(bit-identical admissions, warm slabs across slots)",
               "false");
  cli.add_flag("lanes",
               "deterministic session lanes (traffic/capacity partitions; "
               "results depend on this, not on --shards)",
               "1");
  cli.add_flag("shards",
               "worker threads stepping the lanes (performance only)", "1");
  cli.add_flag("tick-batch",
               "max due slots played per scheduler wake when catching up",
               "64");
  cli.add_flag("slots", "stop after this many slots (0 = until signal)", "0");
  cli.add_flag("slot-ms", "pacing: milliseconds per slot (0 = unpaced)", "10");
  cli.add_flag("port", "HTTP port (0 = ephemeral)", "9464");
  cli.add_flag("bind", "HTTP bind address", "127.0.0.1");
  cli.add_flag("log-level", "debug|info|warn|error|off", "info");
  cli.add_flag("log-format", "text|json", "text");
  cli.add_flag("log-rate",
               "per-session log events per second (0 = unlimited)", "0");
  cli.add_flag("sample-interval-ms",
               "time-series sampling period for /api/v1/range", "1000");
  cli.add_flag("retention",
               "time-series samples kept (retention = this x interval)",
               "600");
  cli.add_flag("history",
               "append-only session-history file (crash-safe; replayed on "
               "start for `ctl get lifetime`)",
               "");
  cli.add_flag("snapshot-out",
               "write a final /snapshot.json document here on exit", "");
  cli.add_flag("ctl-token",
               "bearer token required on POST /api/v1/ctl (empty = open)", "");
  cli.add_flag("record-sessions",
               "per-session flight recorder with tail sampling", "true");
  cli.add_flag("recorder-capacity",
               "finalized flight records retained per lane", "512");
  cli.add_flag("recorder-keep",
               "happy-path completions kept per 1024 hash draws (the tail — "
               "rejected/timed-out/drained/slow — is always kept)",
               "128");
  cli.add_flag("record-links",
               "per-link utilization ledger behind /api/v1/topology, "
               "/api/v1/links and /api/v1/explain",
               "true");
  cli.add_flag("link-window",
               "tumbling-window width in slots for windowed link utilization",
               "64");
  cli.add_flag("link-events",
               "saturation-transition events retained per lane ledger",
               "4096");
  if (!cli.parse(argc, argv)) return cli.help_requested() ? 0 : 2;

  // Observability knobs first, so network construction already logs.
  support::telemetry::LogLevel level;
  if (!support::telemetry::parse_log_level(cli.get_string("log-level"),
                                           &level)) {
    return fail("unknown --log-level '" + cli.get_string("log-level") +
                "' (debug|info|warn|error|off)");
  }
  support::telemetry::set_log_level(level);
  support::telemetry::LogFormat format;
  if (!support::telemetry::parse_log_format(cli.get_string("log-format"),
                                            &format)) {
    return fail("unknown --log-format '" + cli.get_string("log-format") +
                "' (text|json)");
  }
  support::telemetry::set_log_format(format);

  // The served network: a file, or a scenario-generated instance.
  std::optional<net::QuantumNetwork> network;
  if (const std::string path = cli.get_string("net"); !path.empty()) {
    auto result = net::load_network_file(path);
    if (std::holds_alternative<std::string>(result)) {
      return fail("cannot load " + path + ": " +
                  std::get<std::string>(result));
    }
    network = std::move(std::get<net::QuantumNetwork>(result));
  } else {
    experiment::Scenario s;
    const std::string kind = cli.get_string("topology");
    if (kind == "waxman") {
      s.topology = experiment::TopologyKind::kWaxman;
    } else if (kind == "ws") {
      s.topology = experiment::TopologyKind::kWattsStrogatz;
    } else if (kind == "volchenkov") {
      s.topology = experiment::TopologyKind::kVolchenkov;
    } else {
      return fail("unknown --topology '" + kind + "' (waxman|ws|volchenkov)");
    }
    s.switch_count =
        static_cast<std::size_t>(cli.get_int("switches").value_or(50));
    s.user_count = static_cast<std::size_t>(cli.get_int("users").value_or(10));
    s.qubits_per_switch = static_cast<int>(cli.get_int("qubits").value_or(6));
    s.average_degree = cli.get_double("degree").value_or(6.0);
    s.attenuation = cli.get_double("alpha").value_or(2e-5);
    s.swap_success = cli.get_double("swap").value_or(0.9);
    s.seed = static_cast<std::uint64_t>(cli.get_int("seed").value_or(1));
    network = std::move(experiment::instantiate(s, 0).network);
  }

  sim::SessionServiceConfig config;
  config.algorithm = cli.get_string("algorithm");
  if (config.algorithm == "shared-prim") config.algorithm.clear();
  if (!config.algorithm.empty() &&
      !routing::RouterRegistry::instance().contains(config.algorithm)) {
    return fail("unknown --algorithm '" + config.algorithm +
                "' (shared-prim|" + known_algorithms() + ")");
  }
  // Registry admission routes on a residual-capacity copy; Algorithm 2's
  // sufficient-condition boost would fake qubits the service doesn't have.
  config.router_options.pin_alg2_sufficient = false;
  config.params.arrival_prob_per_slot = cli.get_double("arrival").value_or(0.05);
  config.params.min_group_size =
      static_cast<std::size_t>(cli.get_int("min-group").value_or(2));
  config.params.max_group_size =
      static_cast<std::size_t>(cli.get_int("max-group").value_or(4));
  config.params.session_timeout_slots =
      static_cast<std::uint64_t>(cli.get_int("timeout").value_or(500));
  if (config.params.min_group_size < 2 ||
      config.params.max_group_size < config.params.min_group_size ||
      config.params.max_group_size > network->users().size()) {
    return fail("group sizes must satisfy 2 <= min <= max <= user count (" +
                std::to_string(network->users().size()) + ")");
  }
  config.log_events_per_second = cli.get_double("log-rate").value_or(0.0);
  const auto arrival_burst = cli.get_int("arrival-burst").value_or(1);
  if (arrival_burst < 1) return fail("--arrival-burst must be >= 1");
  config.arrival_burst = static_cast<std::size_t>(arrival_burst);
  if (!routing::parse_batch_policy(cli.get_string("batch-policy"),
                                   &config.batch_policy)) {
    return fail("unknown --batch-policy '" + cli.get_string("batch-policy") +
                "' (given-order|smallest-first|largest-first|greedy|"
                "fair-share)");
  }
  if (config.arrival_burst > 1 &&
      config.batch_policy == routing::BatchPolicy::kFairShare &&
      !config.algorithm.empty() && config.algorithm != "alg4") {
    return fail("--batch-policy fair-share needs --algorithm shared-prim or "
                "alg4 (batch-native kernel)");
  }
  config.batch_single_arrivals = cli.get_bool("batch-single");
  const auto lanes = cli.get_int("lanes").value_or(1);
  const auto shards = cli.get_int("shards").value_or(1);
  const auto tick_batch = cli.get_int("tick-batch").value_or(64);
  if (lanes < 1) return fail("--lanes must be >= 1");
  if (shards < 1) return fail("--shards must be >= 1");
  if (tick_batch < 1) return fail("--tick-batch must be >= 1");
  const auto max_slots =
      static_cast<std::uint64_t>(cli.get_int("slots").value_or(0));
  const auto slot_ms = cli.get_int("slot-ms").value_or(10);
  const auto sample_interval_ms =
      cli.get_int("sample-interval-ms").value_or(1000);
  const auto retention = cli.get_int("retention").value_or(600);
  if (sample_interval_ms <= 0) return fail("--sample-interval-ms must be > 0");
  if (retention < 2) return fail("--retention must be >= 2");
  const std::string snapshot_out = cli.get_string("snapshot-out");
  const std::string ctl_token = cli.get_string("ctl-token");
  const auto recorder_capacity =
      cli.get_int("recorder-capacity").value_or(512);
  const auto recorder_keep = cli.get_int("recorder-keep").value_or(128);
  if (recorder_capacity < 1) return fail("--recorder-capacity must be >= 1");
  if (recorder_keep < 0 || recorder_keep > 1024) {
    return fail("--recorder-keep must be in [0, 1024]");
  }
  const bool record_links = cli.get_bool("record-links");
  const auto link_window = cli.get_int("link-window").value_or(64);
  const auto link_events = cli.get_int("link-events").value_or(4096);
  if (link_window < 1) return fail("--link-window must be >= 1");
  if (link_events < 1) return fail("--link-events must be >= 1");

  sim::ShardedSessionServiceConfig sharded_config;
  sharded_config.base = config;
  sharded_config.lane_count = static_cast<std::size_t>(lanes);
  sharded_config.shard_count = static_cast<std::size_t>(shards);
  sharded_config.record_sessions = cli.get_bool("record-sessions");
  sharded_config.recorder_capacity =
      static_cast<std::size_t>(recorder_capacity);
  sharded_config.recorder_happy_keep_per_1024 =
      static_cast<std::uint32_t>(recorder_keep);
  sharded_config.record_links = record_links;
  sharded_config.ledger_window_slots = static_cast<std::uint64_t>(link_window);
  sharded_config.ledger_event_capacity =
      static_cast<std::size_t>(link_events);
  sim::ShardedSessionService service(
      *network, sharded_config,
      static_cast<std::uint64_t>(cli.get_int("seed").value_or(1)));

  // Durable session history: replay previous runs (truncating any torn
  // tail), then mark this run's start.
  ctl::HistoryLog history;
  if (const std::string path = cli.get_string("history"); !path.empty()) {
    std::string history_error;
    if (!history.open(path, &history_error)) return fail(history_error);
    if (history.bytes_truncated() > 0) {
      MUERP_LOG_WARN("muerpd/history_truncated",
                     support::telemetry::field(
                         "bytes", history.bytes_truncated()));
    }
    history.begin_run();
  }
  // Counters already appended to the history file this run; lifetime =
  // history.lifetime() once flush_history ran (loop thread only).
  sim::ProtocolMetrics history_flushed;
  std::uint64_t history_flushed_slots = 0;
  std::uint64_t history_last_append_ns = 0;
  const auto flush_history = [&](bool force) {
    if (!history.is_open()) return;
    const std::uint64_t now = support::telemetry::monotonic_now_ns();
    if (!force && now - history_last_append_ns < 250'000'000ull) return;
    const sim::ProtocolMetrics m = service.metrics();
    ctl::HistoryRecord record;
    record.slots = service.slot() - history_flushed_slots;
    record.arrived = m.sessions_arrived - history_flushed.sessions_arrived;
    record.admitted = m.sessions_admitted - history_flushed.sessions_admitted;
    record.completed =
        m.sessions_completed - history_flushed.sessions_completed;
    record.timed_out =
        m.sessions_timed_out - history_flushed.sessions_timed_out;
    record.rejected = m.sessions_rejected - history_flushed.sessions_rejected;
    history_last_append_ns = now;
    // A forced flush (drain/shutdown, `ctl get lifetime`) must never skip:
    // the idle check exists only to keep a paused daemon from growing the
    // file, and it has to cover EVERY delta field — a tick whose only news
    // was admissions/rejections used to be dropped here and lost on kill.
    if (!force && record.slots == 0 && record.arrived == 0 &&
        record.admitted == 0 && record.completed == 0 &&
        record.timed_out == 0 && record.rejected == 0) {
      return;  // nothing new — don't grow the file while paused/idle
    }
    if (history.append(record)) {
      history_flushed = m;
      history_flushed_slots = service.slot();
    }
  };

  // Observability plane up before the first slot so a scraper never sees
  // connection refused while the service is live.
  support::telemetry::HttpExporter::Options http;
  http.port = static_cast<std::uint16_t>(cli.get_int("port").value_or(9464));
  http.bind_address = cli.get_string("bind");
  support::telemetry::HttpExporter exporter(http);
  // Historical plane: the sampler captures the registry into the store on
  // its own thread; the exporter serves windowed queries from it under
  // /api/v1/. In MUERP_TELEMETRY=OFF builds both are inert stubs and the
  // endpoints serve empty series — the flags still parse.
  support::telemetry::TimeSeriesStore store(
      static_cast<std::size_t>(retention));
  support::telemetry::Sampler::Options sampler_options;
  sampler_options.interval = std::chrono::milliseconds(sample_interval_ms);
  support::telemetry::Sampler sampler(store, sampler_options);
  exporter.set_time_series(&store);
  // SLO alert engine: the whole rule table is evaluated right after every
  // registry capture, on the sampler's thread — alerting rides the sampling
  // the daemon already does. alerts_firing mirrors the count for /healthz
  // (the health appender reads an atomic instead of taking engine locks).
  support::telemetry::AlertRules alerts(store);
  std::atomic<std::uint64_t> alerts_firing{0};
  sampler.set_after_sample([&alerts, &alerts_firing](std::uint64_t t_ns) {
    alerts.evaluate(t_ns);
    alerts_firing.store(alerts.firing(), std::memory_order_relaxed);
  });

  // Lifecycle state, written by mailbox actions on the loop thread, read by
  // the acceptor thread for /healthz and by the loop condition.
  std::atomic<RunState> run_state{RunState::kRunning};
  std::uint64_t drain_started_slot = 0;  // loop thread only

  // /healthz reads a published snapshot, not the live service: the main
  // loop stores these atomics after every tick, the acceptor thread loads
  // them — a scrape never waits out a routing pass (the seed held a mutex
  // across the whole service.step() here).
  struct HealthSnapshot {
    std::atomic<std::uint64_t> slot{0};
    std::atomic<std::uint64_t> active{0};
    std::atomic<std::uint64_t> arrived{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> completed{0};
    // Runtime-mutable (`ctl set algorithm`), so not a plain string: the
    // acceptor thread reads it while the loop thread republishes.
    std::mutex algorithm_mutex;
    std::string algorithm;
  };
  HealthSnapshot health;
  const auto publish_health = [&service, &health] {
    const sim::ProtocolMetrics m = service.metrics();
    {
      const std::lock_guard<std::mutex> lock(health.algorithm_mutex);
      health.algorithm =
          service.algorithm().empty() ? "shared-prim" : service.algorithm();
    }
    health.slot.store(service.slot(), std::memory_order_relaxed);
    health.active.store(service.active_sessions(), std::memory_order_relaxed);
    health.arrived.store(m.sessions_arrived, std::memory_order_relaxed);
    health.admitted.store(m.sessions_admitted, std::memory_order_relaxed);
    health.completed.store(m.sessions_completed, std::memory_order_relaxed);
  };
  // The algorithm label is mutable at runtime (`ctl set algorithm`), so the
  // health appender reads the service via the snapshot; the label only
  // names the per-algorithm instrument families, which keep their
  // boot-time name (a counter cannot be renamed mid-flight).
  const std::string algorithm_label =
      config.algorithm.empty() ? "shared-prim" : config.algorithm;
  exporter.set_health_fields([&health, &run_state, &alerts_firing, lanes,
                              shards](std::string& body) {
    body += ", \"state\": \"";
    body += run_state_name(run_state.load(std::memory_order_relaxed));
    body += "\"";
    {
      const std::lock_guard<std::mutex> lock(health.algorithm_mutex);
      body += ", \"algorithm\": \"" + health.algorithm + "\"";
    }
    body += ", \"slot\": " +
            std::to_string(health.slot.load(std::memory_order_relaxed));
    body += ", \"active_sessions\": " +
            std::to_string(health.active.load(std::memory_order_relaxed));
    body += ", \"sessions_arrived\": " +
            std::to_string(health.arrived.load(std::memory_order_relaxed));
    body += ", \"sessions_admitted\": " +
            std::to_string(health.admitted.load(std::memory_order_relaxed));
    body += ", \"sessions_completed\": " +
            std::to_string(health.completed.load(std::memory_order_relaxed));
    body += ", \"lanes\": " + std::to_string(lanes);
    body += ", \"shards\": " + std::to_string(shards);
    body += ", \"alerts_firing\": " +
            std::to_string(alerts_firing.load(std::memory_order_relaxed));
  });

  // Default SLO rules every muerpd shares. All burn-rate style (three
  // consecutive breached samples) so one noisy sample never fires; `ctl
  // slo set`/`remove` can retune or drop any of them at runtime.
  {
    support::telemetry::AlertRule rejections;
    rejections.name = "rejection-ratio";
    rejections.kind = support::telemetry::AlertKind::kRatio;
    rejections.metric = "session/rejected";
    rejections.denominator = "session/arrived";
    rejections.threshold = 0.5;
    rejections.for_count = 3;
    alerts.upsert(rejections);

    support::telemetry::AlertRule backlog;
    backlog.name = "scheduler-backlog";
    backlog.kind = support::telemetry::AlertKind::kGauge;
    backlog.metric = "muerpd/scheduler/backlog";
    backlog.threshold = static_cast<double>(tick_batch);
    backlog.for_count = 3;
    alerts.upsert(backlog);

    if (slot_ms > 0) {
      // A paced daemon whose p95 slot latency exceeds the slot period is
      // falling behind its own grid.
      support::telemetry::AlertRule p95;
      p95.name = "slot-p95-us";
      p95.kind = support::telemetry::AlertKind::kHistogramQuantile;
      p95.metric = "muerpd/slot_us/" + algorithm_label;
      p95.quantile = 0.95;
      p95.threshold = static_cast<double>(slot_ms) * 1000.0;
      p95.for_count = 3;
      alerts.upsert(p95);
    }
  }

  // Event-driven slot loop pacing (constructed before the control plane so
  // the mailbox wake can kick it).
  support::SlotScheduler::Options pace;
  pace.period = std::chrono::milliseconds(slot_ms);
  pace.max_batch = static_cast<std::uint64_t>(tick_batch);
  support::SlotScheduler scheduler(pace);

  // -------------------------------------------------------------------------
  // Control plane: the command registry behind POST /api/v1/ctl. Every
  // mutation rides the mailbox to the loop thread and is applied between
  // scheduler batches; submit() kicks the scheduler so a command never
  // waits out a slot period.
  ctl::ControlMailbox mailbox;
  mailbox.set_wake([&scheduler] { scheduler.kick(); });

  // Refuse mutations while draining — the daemon is committed to exiting.
  const auto draining_guard = [&run_state]() -> std::optional<ctl::CommandResult> {
    if (run_state.load(std::memory_order_relaxed) == RunState::kDraining) {
      return ctl::CommandResult::failure(ctl::kErrDraining,
                                         "daemon is draining");
    }
    return std::nullopt;
  };

  // The settings table `ctl set` / `ctl get` dispatch on. Accessors run on
  // the loop thread inside mailbox actions.
  std::vector<Setting> settings;
  settings.push_back(
      {"arrival-rate", "session arrival probability per slot",
       [&service] { return ctl::json_number(service.arrival_prob()); },
       [&service](const support::json::Value& value) {
         if (!value.is_number()) {
           return ctl::CommandResult::failure(ctl::kErrBadArg,
                                              "arrival-rate must be a number");
         }
         std::string error;
         if (!service.set_arrival_prob(value.number_value, &error)) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange, error);
         }
         return ctl::CommandResult::success(
             ctl::json_number(service.arrival_prob()));
       }});
  settings.push_back(
      {"algorithm", "admission router (shared-prim or a registry name)",
       [&service] {
         return ctl::json_quote(service.algorithm().empty()
                                    ? "shared-prim"
                                    : service.algorithm());
       },
       [&service](const support::json::Value& value) {
         if (!value.is_string()) {
           return ctl::CommandResult::failure(ctl::kErrBadArg,
                                              "algorithm must be a string");
         }
         std::string name = value.string_value;
         if (name == "shared-prim") name.clear();
         std::string error;
         if (!service.set_algorithm(name, &error)) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange, error);
         }
         return ctl::CommandResult::success(
             ctl::json_quote(name.empty() ? "shared-prim" : name));
       }});
  settings.push_back(
      {"arrival-burst", "arrival attempts per slot (>= 1)",
       [&service] {
         return std::to_string(service.arrival_burst());
       },
       [&service](const support::json::Value& value) {
         if (!value.is_number() ||
             value.number_value != static_cast<std::uint64_t>(
                                       value.number_value)) {
           return ctl::CommandResult::failure(
               ctl::kErrBadArg, "arrival-burst must be an integer");
         }
         std::string error;
         if (!service.set_arrival_burst(
                 static_cast<std::size_t>(value.number_value), &error)) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange, error);
         }
         return ctl::CommandResult::success(
             std::to_string(service.arrival_burst()));
       }});
  settings.push_back(
      {"batch-policy",
       "burst admission order (given-order|smallest-first|largest-first|"
       "greedy|fair-share)",
       [&service] {
         return ctl::json_quote(
             routing::batch_policy_name(service.batch_policy()));
       },
       [&service](const support::json::Value& value) {
         if (!value.is_string()) {
           return ctl::CommandResult::failure(ctl::kErrBadArg,
                                              "batch-policy must be a string");
         }
         routing::BatchPolicy policy;
         if (!routing::parse_batch_policy(value.string_value, &policy)) {
           return ctl::CommandResult::failure(
               ctl::kErrOutOfRange,
               "unknown batch policy '" + value.string_value +
                   "' (given-order|smallest-first|largest-first|greedy|"
                   "fair-share)");
         }
         std::string error;
         if (!service.set_batch_policy(policy, &error)) {
           return ctl::CommandResult::failure(ctl::kErrUnsupported, error);
         }
         return ctl::CommandResult::success(
             ctl::json_quote(routing::batch_policy_name(policy)));
       }});
  settings.push_back(
      {"log-level", "structured log threshold (debug|info|warn|error|off)",
       [] {
         return ctl::json_quote(std::string(support::telemetry::log_level_name(
             support::telemetry::log_level())));
       },
       [](const support::json::Value& value) {
         if (!value.is_string()) {
           return ctl::CommandResult::failure(ctl::kErrBadArg,
                                              "log-level must be a string");
         }
         support::telemetry::LogLevel parsed;
         if (!support::telemetry::parse_log_level(value.string_value,
                                                  &parsed)) {
           return ctl::CommandResult::failure(
               ctl::kErrOutOfRange, "unknown log level '" +
                                        value.string_value +
                                        "' (debug|info|warn|error|off)");
         }
         support::telemetry::set_log_level(parsed);
         return ctl::CommandResult::success(
             ctl::json_quote(value.string_value));
       }});
  settings.push_back(
      {"log-rate", "per-session log events per second (0 = unlimited)",
       [&service] {
         return ctl::json_number(service.log_events_per_second());
       },
       [&service](const support::json::Value& value) {
         if (!value.is_number()) {
           return ctl::CommandResult::failure(ctl::kErrBadArg,
                                              "log-rate must be a number");
         }
         std::string error;
         if (!service.set_log_events_per_second(value.number_value, &error)) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange, error);
         }
         return ctl::CommandResult::success(
             ctl::json_number(service.log_events_per_second()));
       }});
  settings.push_back(
      {"sample-interval-ms", "time-series sampling period in milliseconds",
       [&sampler] {
         return std::to_string(sampler.interval().count());
       },
       [&sampler](const support::json::Value& value) {
         if (!value.is_number() ||
             value.number_value != static_cast<std::int64_t>(
                                       value.number_value)) {
           return ctl::CommandResult::failure(
               ctl::kErrBadArg, "sample-interval-ms must be an integer");
         }
         if (value.number_value < 1.0 || value.number_value > 3600'000.0) {
           return ctl::CommandResult::failure(
               ctl::kErrOutOfRange,
               "sample-interval-ms must be in [1, 3600000]");
         }
         sampler.set_interval(std::chrono::milliseconds(
             static_cast<std::int64_t>(value.number_value)));
         return ctl::CommandResult::success(
             std::to_string(sampler.interval().count()));
       }});
  settings.push_back(
      {"lifetime",
       "totals across every run recorded in the --history file (read-only)",
       [&history, &flush_history] {
         if (!history.is_open()) return std::string("null");
         flush_history(true);
         const ctl::HistoryTotals t = history.lifetime();
         std::string out = "{\"runs\": " + std::to_string(t.runs);
         out += ", \"slots\": " + std::to_string(t.slots);
         out += ", \"arrived\": " + std::to_string(t.arrived);
         out += ", \"admitted\": " + std::to_string(t.admitted);
         out += ", \"completed\": " + std::to_string(t.completed);
         out += ", \"timed_out\": " + std::to_string(t.timed_out);
         out += ", \"rejected\": " + std::to_string(t.rejected);
         out += "}";
         return out;
       },
       nullptr});

  const auto find_setting = [&settings](const std::string& name)
      -> std::pair<const Setting*, ctl::CommandResult> {
    for (const Setting& setting : settings) {
      if (setting.name == name) return {&setting, ctl::CommandResult{}};
    }
    std::string known;
    for (const Setting& setting : settings) {
      if (!known.empty()) known += ", ";
      known += setting.name;
    }
    return {nullptr,
            ctl::CommandResult::failure(
                ctl::kErrBadArg,
                "unknown setting '" + name + "' (known: " + known + ")")};
  };

  ctl::CommandRegistry registry;
  registry.add(
      {"set",
       "change a runtime setting (applied at the next tick boundary)",
       {{"name", ctl::ArgType::kString, true, "setting to change"},
        {"value", ctl::ArgType::kAny, true, "new value (type per setting)"}},
       [&](const support::json::Value& args) {
         const auto [setting, lookup_error] =
             find_setting(args["name"].string_value);
         if (setting == nullptr) return lookup_error;
         if (!setting->set) {
           return ctl::CommandResult::failure(
               ctl::kErrUnsupported,
               "setting '" + setting->name + "' is read-only");
         }
         // Copy the value out of the parsed request: the mailbox action
         // runs after this handler's request document is gone.
         const support::json::Value value = args["value"];
         if (auto refused = draining_guard()) return *refused;
         return mailbox.submit(
             [setting, value] { return setting->set(value); });
       }});
  registry.add(
      {"get",
       "read a runtime setting (loop-thread-consistent snapshot)",
       {{"name", ctl::ArgType::kString, true, "setting to read"}},
       [&](const support::json::Value& args) {
         const auto [setting, lookup_error] =
             find_setting(args["name"].string_value);
         if (setting == nullptr) return lookup_error;
         if (setting->name == "lifetime" && !history.is_open()) {
           return ctl::CommandResult::failure(
               ctl::kErrUnsupported,
               "no --history file configured for this daemon");
         }
         return mailbox.submit([setting] {
           return ctl::CommandResult::success(setting->get());
         });
       }});
  registry.add(
      {"status",
       "lifecycle state plus the live session counters",
       {},
       [&](const support::json::Value&) {
         return mailbox.submit([&] {
           const sim::ProtocolMetrics m = service.metrics();
           std::string out = "{\"state\": ";
           out += ctl::json_quote(
               run_state_name(run_state.load(std::memory_order_relaxed)));
           out += ", \"slot\": " + std::to_string(service.slot());
           out += ", \"active_sessions\": " +
                  std::to_string(service.active_sessions());
           out += ", \"arrived\": " + std::to_string(m.sessions_arrived);
           out += ", \"admitted\": " + std::to_string(m.sessions_admitted);
           out += ", \"completed\": " + std::to_string(m.sessions_completed);
           out += ", \"timed_out\": " + std::to_string(m.sessions_timed_out);
           out += ", \"rejected\": " + std::to_string(m.sessions_rejected);
           out += ", \"arrivals_enabled\": ";
           out += service.arrivals_enabled() ? "true" : "false";
           out += "}";
           return ctl::CommandResult::success(out);
         });
       }});
  registry.add(
      {"pause",
       "hold the slot loop (the deadline grid keeps advancing; resuming "
       "never replays a backlog)",
       {},
       [&](const support::json::Value&) {
         if (auto refused = draining_guard()) return *refused;
         return mailbox.submit([&run_state] {
           run_state.store(RunState::kPaused, std::memory_order_relaxed);
           return ctl::CommandResult::success("{\"state\": \"paused\"}");
         });
       }});
  registry.add(
      {"resume",
       "resume a paused slot loop",
       {},
       [&](const support::json::Value&) {
         if (auto refused = draining_guard()) return *refused;
         return mailbox.submit([&run_state] {
           run_state.store(RunState::kRunning, std::memory_order_relaxed);
           return ctl::CommandResult::success("{\"state\": \"running\"}");
         });
       }});
  registry.add(
      {"drain",
       "stop intake, finish in-flight sessions, then exit",
       {},
       [&](const support::json::Value&) {
         if (auto refused = draining_guard()) return *refused;
         return mailbox.submit([&] {
           service.set_arrivals_enabled(false);
           drain_started_slot = service.slot();
           run_state.store(RunState::kDraining, std::memory_order_relaxed);
           return ctl::CommandResult::success(
               "{\"state\": \"draining\", \"active_sessions\": " +
               std::to_string(service.active_sessions()) + "}");
         });
       }});
  registry.add(
      {"snapshot",
       "full metrics + recent-events document, inline or written to a file",
       {{"path", ctl::ArgType::kString, false,
         "write the document here instead of returning it"}},
       [&](const support::json::Value& args) {
         const std::string document = support::telemetry::snapshot_document(
             support::telemetry::capture_process(),
             support::telemetry::recent_log_events());
         const support::json::Value* path = args.find("path");
         if (path == nullptr) {
           return ctl::CommandResult::success(document);
         }
         std::ofstream out(path->string_value);
         if (!out) {
           return ctl::CommandResult::failure(
               ctl::kErrBadArg,
               "cannot write snapshot to '" + path->string_value + "'");
         }
         out << document;
         return ctl::CommandResult::success(
             "{\"written\": " + ctl::json_quote(path->string_value) + "}");
       }});
  registry.add(
      {"commands",
       "this command table, with argument schemas",
       {},
       [&registry](const support::json::Value&) {
         return ctl::CommandResult::success(registry.describe_json());
       }});

  // Flight-recorder verbs. The recorder is internally locked, so these run
  // directly on the acceptor thread — a query must keep answering while the
  // loop thread is blocked in acquire() (no mailbox hop).
  const auto session_filter_of =
      [](const support::json::Value& args,
         support::telemetry::SessionFilter* filter) -> ctl::CommandResult {
    namespace tel = support::telemetry;
    filter->limit = 100;
    if (const auto* v = args.find("state")) {
      tel::SessionState state;
      if (!tel::parse_session_state(v->string_value, &state)) {
        return ctl::CommandResult::failure(
            ctl::kErrOutOfRange,
            "unknown state '" + v->string_value +
                "' (active|completed|timed_out|rejected|drained)");
      }
      filter->state = state;
    }
    if (const auto* v = args.find("alg")) filter->algorithm = v->string_value;
    const auto non_negative =
        [&args](const char* name) -> std::optional<std::uint64_t> {
      const auto* v = args.find(name);
      if (v == nullptr || v->number_value < 0) return std::nullopt;
      return static_cast<std::uint64_t>(v->number_value);
    };
    for (const char* name : {"lane", "min-slot", "max-slot", "limit"}) {
      if (args.find(name) != nullptr && !non_negative(name)) {
        return ctl::CommandResult::failure(
            ctl::kErrOutOfRange, std::string(name) + " must be >= 0");
      }
    }
    if (const auto v = non_negative("lane")) {
      filter->lane = static_cast<std::uint32_t>(*v);
    }
    if (const auto v = non_negative("min-slot")) filter->min_slot = *v;
    if (const auto v = non_negative("max-slot")) filter->max_slot = *v;
    if (const auto v = non_negative("limit")) {
      filter->limit = static_cast<std::size_t>(*v);
    }
    return ctl::CommandResult::success();
  };
  registry.add(
      {"sessions",
       "flight-recorder records (tail-sampled; rejections and timeouts are "
       "always kept)",
       {{"state", ctl::ArgType::kString, false,
         "active|completed|timed_out|rejected|drained"},
        {"lane", ctl::ArgType::kInt, false, "only this lane"},
        {"alg", ctl::ArgType::kString, false,
         "only this admission algorithm"},
        {"min-slot", ctl::ArgType::kInt, false, "arrival slot >= this"},
        {"max-slot", ctl::ArgType::kInt, false, "arrival slot <= this"},
        {"limit", ctl::ArgType::kInt, false,
         "keep only the last n matches (default 100; 0 = all)"}},
       [&service, session_filter_of](const support::json::Value& args) {
         support::telemetry::SessionFilter filter;
         if (const auto parsed = session_filter_of(args, &filter); !parsed.ok) {
           return parsed;
         }
         return ctl::CommandResult::success(
             support::telemetry::session_records_json(
                 service.session_records(filter),
                 service.session_record_stats()));
       }});
  registry.add(
      {"session",
       "one full flight record by id (as `sessions` reports them)",
       {{"id", ctl::ArgType::kInt, true, "record id (lane << 32 | seq)"},
        {"format", ctl::ArgType::kString, false,
         "json (default) or trace (Chrome trace-event document)"}},
       [&service](const support::json::Value& args) {
         namespace tel = support::telemetry;
         if (args["id"].number_value < 0) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                              "id must be >= 0");
         }
         const auto id = static_cast<std::uint64_t>(args["id"].number_value);
         const auto record = service.find_session_record(id);
         if (!record) {
           return ctl::CommandResult::failure(
               ctl::kErrNotFound,
               "no flight record with id " + std::to_string(id));
         }
         std::string fmt = "json";
         if (const auto* v = args.find("format")) fmt = v->string_value;
         if (fmt == "trace") {
           return ctl::CommandResult::success(tel::session_trace_json(*record));
         }
         if (fmt != "json") {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                              "format must be json|trace");
         }
         return ctl::CommandResult::success(tel::session_record_json(*record));
       }});
  // Network-plane verbs. Like the flight-recorder verbs these are
  // read-only and internally locked, so they run directly on the acceptor
  // thread; curl on the GET routes below sees identical documents.
  registry.add(
      {"topology",
       "the served network joined with live per-link occupancy",
       {},
       [&service, &network, &health](const support::json::Value&) {
         return ctl::CommandResult::success(topology_json(
             *network, service.link_stats(),
             health.slot.load(std::memory_order_relaxed)));
       }});
  registry.add(
      {"links",
       "per-link utilization / attempts / contention-loss table",
       {{"sort", ctl::ArgType::kString, false, "util (default) or losses"},
        {"limit", ctl::ArgType::kInt, false,
         "keep only the top n links (0 = all)"}},
       [&service, &health](const support::json::Value& args) {
         namespace tel = support::telemetry;
         tel::LinkSort sort = tel::LinkSort::kUtil;
         if (const auto* v = args.find("sort")) {
           if (!tel::parse_link_sort(v->string_value, &sort)) {
             return ctl::CommandResult::failure(
                 ctl::kErrOutOfRange, "unknown sort '" + v->string_value +
                                          "' (util|losses)");
           }
         }
         std::size_t limit = 0;
         if (const auto* v = args.find("limit")) {
           if (v->number_value < 0) {
             return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                                "limit must be >= 0");
           }
           limit = static_cast<std::size_t>(v->number_value);
         }
         auto stats = service.link_stats();
         tel::sort_links(stats, sort, limit);
         return ctl::CommandResult::success(tel::links_json(
             stats, health.slot.load(std::memory_order_relaxed)));
       }});
  registry.add(
      {"explain",
       "a flight record joined with the links saturated at its admission "
       "slot (why was THIS session rejected)",
       {{"id", ctl::ArgType::kInt, true, "record id (lane << 32 | seq)"}},
       [&service](const support::json::Value& args) {
         namespace tel = support::telemetry;
         if (args["id"].number_value < 0) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                              "id must be >= 0");
         }
         const auto id = static_cast<std::uint64_t>(args["id"].number_value);
         // Unknown ids still succeed with a found:false document — explain
         // is a join, and a missing record is a valid answer.
         const auto explained = service.explain_session(id);
         if (!explained) {
           return ctl::CommandResult::success(
               tel::explain_json(id, nullptr, tel::SaturatedLinks{}));
         }
         return ctl::CommandResult::success(tel::explain_json(
             id, &explained->record, explained->saturated));
       }});
  registry.add(
      {"slo",
       "alert-rule table: list (default), set a rule, or remove one",
       {{"action", ctl::ArgType::kString, false, "list|set|remove"},
        {"name", ctl::ArgType::kString, false, "rule name (set/remove)"},
        {"kind", ctl::ArgType::kString, false,
         "counter-rate|gauge|histogram-quantile|ratio (set)"},
        {"metric", ctl::ArgType::kString, false,
         "counter/gauge/histogram name; ratio numerator (set)"},
        {"denominator", ctl::ArgType::kString, false,
         "ratio denominator counter (set, kind=ratio)"},
        {"quantile", ctl::ArgType::kNumber, false,
         "quantile in [0, 1] (set, kind=histogram-quantile; default 0.95)"},
        {"window-seconds", ctl::ArgType::kNumber, false,
         "trailing evaluation window (set; default 60)"},
        {"op", ctl::ArgType::kString, false,
         "above|below (set; default above)"},
        {"threshold", ctl::ArgType::kNumber, false, "breach threshold (set)"},
        {"for", ctl::ArgType::kInt, false,
         "consecutive breached samples before firing (set; default 1)"},
        {"severity", ctl::ArgType::kString, false,
         "free-form label surfaced with the alert (set; default warning)"}},
       [&alerts](const support::json::Value& args) {
         namespace tel = support::telemetry;
         std::string action = "list";
         if (const auto* v = args.find("action")) action = v->string_value;
         if (action == "list") {
           return ctl::CommandResult::success(
               tel::alerts_json(alerts.status()));
         }
         const auto* name = args.find("name");
         if (name == nullptr || name->string_value.empty()) {
           return ctl::CommandResult::failure(
               ctl::kErrBadArg, "slo " + action + " needs name=<rule>");
         }
         if (action == "remove") {
           if (!alerts.remove(name->string_value)) {
             return ctl::CommandResult::failure(
                 ctl::kErrNotFound,
                 "no alert rule named '" + name->string_value + "'");
           }
           return ctl::CommandResult::success(
               "{\"removed\": " + ctl::json_quote(name->string_value) + "}");
         }
         if (action != "set") {
           return ctl::CommandResult::failure(
               ctl::kErrOutOfRange,
               "unknown action '" + action + "' (list|set|remove)");
         }
         tel::AlertRule rule;
         rule.name = name->string_value;
         if (const auto* v = args.find("kind")) {
           if (!tel::parse_alert_kind(v->string_value, &rule.kind)) {
             return ctl::CommandResult::failure(
                 ctl::kErrOutOfRange,
                 "unknown kind '" + v->string_value +
                     "' (counter-rate|gauge|histogram-quantile|ratio)");
           }
         }
         if (const auto* v = args.find("metric")) rule.metric = v->string_value;
         if (const auto* v = args.find("denominator")) {
           rule.denominator = v->string_value;
         }
         if (const auto* v = args.find("quantile")) {
           rule.quantile = v->number_value;
         }
         if (const auto* v = args.find("window-seconds")) {
           if (!(v->number_value > 0)) {
             return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                                "window-seconds must be > 0");
           }
           rule.window_ns = static_cast<std::uint64_t>(v->number_value * 1e9);
         }
         if (const auto* v = args.find("op")) {
           if (!tel::parse_alert_op(v->string_value, &rule.op)) {
             return ctl::CommandResult::failure(
                 ctl::kErrOutOfRange,
                 "unknown op '" + v->string_value + "' (above|below)");
           }
         }
         if (const auto* v = args.find("threshold")) {
           rule.threshold = v->number_value;
         }
         if (const auto* v = args.find("for")) {
           if (v->number_value < 1) {
             return ctl::CommandResult::failure(ctl::kErrOutOfRange,
                                                "for must be >= 1");
           }
           rule.for_count = static_cast<std::uint32_t>(v->number_value);
         }
         if (const auto* v = args.find("severity")) {
           rule.severity = v->string_value;
         }
         std::string rule_error;
         if (!alerts.upsert(rule, &rule_error)) {
           return ctl::CommandResult::failure(ctl::kErrOutOfRange, rule_error);
         }
         return ctl::CommandResult::success(tel::alerts_json(alerts.status()));
       }});

  exporter.add_route(
      "POST", "/api/v1/ctl",
      [&registry, &ctl_token](const support::telemetry::HttpRequest& request) {
        // With --ctl-token the control plane requires a matching bearer
        // token; read-only GET endpoints stay open (observability is not a
        // mutation). 401 carries the same envelope shape clients already
        // parse, with the stable unauthorized code.
        if (!ctl_token.empty() &&
            request.authorization != "Bearer " + ctl_token) {
          return support::telemetry::HttpExporter::response(
              401, "application/json",
              "{\"ok\": false, \"code\": \"unauthorized\", \"error\": "
              "\"missing or wrong bearer token (--ctl-token)\"}\n",
              "WWW-Authenticate: Bearer\r\n");
        }
        // Every outcome — success or failure — is HTTP 200 with the
        // envelope carrying ok/code; transport-level errors stay HTTP.
        return support::telemetry::HttpExporter::response(
            200, "application/json", registry.dispatch(request.body));
      });
  // Flight-recorder + alert pages share the ctl verbs' renderers, so curl
  // and muerpctl see identical documents (and an OFF build serves
  // empty-but-valid ones).
  exporter.add_route(
      "GET", "/api/v1/sessions",
      [&service](const support::telemetry::HttpRequest& request) {
        namespace tel = support::telemetry;
        tel::SessionFilter filter;
        filter.limit = 100;
        if (const std::string s = tel::http_query_param(request.query, "state");
            !s.empty()) {
          tel::SessionState state;
          if (!tel::parse_session_state(s, &state)) {
            return tel::HttpExporter::response(
                400, "application/json",
                "{\"error\": \"unknown state '" + s + "'\"}\n");
          }
          filter.state = state;
        }
        if (const std::string a = tel::http_query_param(request.query, "alg");
            !a.empty()) {
          filter.algorithm = a;
        }
        std::uint64_t number = 0;
        if (const std::string l = tel::http_query_param(request.query, "lane");
            !l.empty() && parse_u64(l, &number)) {
          filter.lane = static_cast<std::uint32_t>(number);
        }
        if (const std::string l =
                tel::http_query_param(request.query, "min-slot");
            !l.empty() && parse_u64(l, &number)) {
          filter.min_slot = number;
        }
        if (const std::string l =
                tel::http_query_param(request.query, "max-slot");
            !l.empty() && parse_u64(l, &number)) {
          filter.max_slot = number;
        }
        if (const std::string l = tel::http_query_param(request.query, "limit");
            !l.empty() && parse_u64(l, &number)) {
          filter.limit = static_cast<std::size_t>(number);
        }
        return tel::HttpExporter::response(
            200, "application/json",
            tel::session_records_json(service.session_records(filter),
                                      service.session_record_stats()));
      });
  exporter.add_prefix_route(
      "GET", "/api/v1/session/",
      [&service](const support::telemetry::HttpRequest& request) {
        namespace tel = support::telemetry;
        const std::string id_text =
            request.path.substr(sizeof("/api/v1/session/") - 1);
        std::uint64_t id = 0;
        if (!parse_u64(id_text, &id)) {
          return tel::HttpExporter::response(
              400, "application/json",
              "{\"error\": \"session id must be a decimal integer\"}\n");
        }
        const auto record = service.find_session_record(id);
        if (!record) {
          return tel::HttpExporter::response(
              404, "application/json",
              "{\"error\": \"no such session record\"}\n");
        }
        if (tel::http_query_param(request.query, "format") == "trace") {
          return tel::HttpExporter::response(200, "application/json",
                                             tel::session_trace_json(*record));
        }
        return tel::HttpExporter::response(
            200, "application/json", tel::session_record_json(*record) + "\n");
      });
  exporter.add_route(
      "GET", "/api/v1/alerts",
      [&alerts](const support::telemetry::HttpRequest&) {
        return support::telemetry::HttpExporter::response(
            200, "application/json",
            support::telemetry::alerts_json(alerts.status()));
      });
  // Network-plane pages. link_stats() snapshots each lane ledger under its
  // own short lock and never mutates windowed state, so these serve while
  // the lanes run; the slot label comes from the published health snapshot
  // (the live service slot is loop-thread state).
  exporter.add_route(
      "GET", "/api/v1/topology",
      [&service, &network, &health](const support::telemetry::HttpRequest&) {
        return support::telemetry::HttpExporter::response(
            200, "application/json",
            topology_json(*network, service.link_stats(),
                          health.slot.load(std::memory_order_relaxed)));
      });
  exporter.add_route(
      "GET", "/api/v1/links",
      [&service, &health](const support::telemetry::HttpRequest& request) {
        namespace tel = support::telemetry;
        tel::LinkSort sort = tel::LinkSort::kUtil;
        if (const std::string s = tel::http_query_param(request.query, "sort");
            !s.empty() && !tel::parse_link_sort(s, &sort)) {
          return tel::HttpExporter::response(
              400, "application/json",
              "{\"error\": \"unknown sort '" + s + "' (util|losses)\"}\n");
        }
        std::size_t limit = 0;
        std::uint64_t number = 0;
        if (const std::string l = tel::http_query_param(request.query, "limit");
            !l.empty() && parse_u64(l, &number)) {
          limit = static_cast<std::size_t>(number);
        }
        auto stats = service.link_stats();
        tel::sort_links(stats, sort, limit);
        return tel::HttpExporter::response(
            200, "application/json",
            tel::links_json(stats,
                            health.slot.load(std::memory_order_relaxed)));
      });
  exporter.add_prefix_route(
      "GET", "/api/v1/explain/",
      [&service](const support::telemetry::HttpRequest& request) {
        namespace tel = support::telemetry;
        const std::string id_text =
            request.path.substr(sizeof("/api/v1/explain/") - 1);
        std::uint64_t id = 0;
        if (!parse_u64(id_text, &id)) {
          return tel::HttpExporter::response(
              400, "application/json",
              "{\"error\": \"session id must be a decimal integer\"}\n");
        }
        // A miss is still a valid explain document ("found": false) — the
        // OFF build and a daemon without --record-sessions serve it too.
        const auto explained = service.explain_session(id);
        if (!explained) {
          return tel::HttpExporter::response(
              200, "application/json",
              tel::explain_json(id, nullptr, tel::SaturatedLinks{}));
        }
        return tel::HttpExporter::response(
            200, "application/json",
            tel::explain_json(id, &explained->record, explained->saturated));
      });
  exporter.add_route(
      "GET", "/api/v1/topology.svg",
      [&service, &network, &health](const support::telemetry::HttpRequest&) {
        namespace tel = support::telemetry;
        const auto stats = service.link_stats();
        std::vector<double> utilization(network->graph().edges().size(), 0.0);
        for (const tel::LinkStat& stat : stats) {
          if (stat.kind == tel::LinkKind::kEdge &&
              stat.index < utilization.size()) {
            utilization[stat.index] = stat.utilization;
          }
        }
        net::SvgOptions svg_options;
        svg_options.edge_utilization = &utilization;
        svg_options.title =
            "muerpd link utilization, slot " +
            std::to_string(health.slot.load(std::memory_order_relaxed));
        return tel::HttpExporter::response(
            200, "image/svg+xml", net::to_svg(*network, nullptr, svg_options));
      });

  std::string error;
  if (!exporter.start(&error)) {
    return fail("cannot serve on " + http.bind_address + ":" +
                std::to_string(http.port) + ": " + error);
  }
  sampler.start();
  publish_health();  // slot-0 snapshot, so early scrapes see real fields
  std::cout << "muerpd: serving on " << http.bind_address << ":"
            << exporter.port() << std::endl;
  MUERP_LOG_INFO("muerpd/start", support::telemetry::field(
                                     "algorithm", algorithm_label),
                 support::telemetry::field("port", exporter.port()),
                 support::telemetry::field("users", network->users().size()),
                 support::telemetry::field("switches",
                                           network->switches().size()));

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);

  // Per-algorithm instruments (runtime labels — one daemon, one algorithm,
  // but a Prometheus server aggregating several muerpds can tell them
  // apart by name).
  const support::telemetry::Counter slots_counter("muerpd/slots/" +
                                                  algorithm_label);
  const support::telemetry::Counter requests_counter("muerpd/requests/" +
                                                     algorithm_label);
  const support::telemetry::Counter admitted_counter("muerpd/admitted/" +
                                                     algorithm_label);
  const support::telemetry::Counter completed_counter("muerpd/completed/" +
                                                      algorithm_label);
  const support::telemetry::Histogram slot_us_histogram("muerpd/slot_us/" +
                                                        algorithm_label);
  // Scheduler-lag gauges: due-but-unplayed slots and how far past the grid
  // the next deadline is. Sampled into the time-series plane, where the
  // scheduler-backlog default alert rule watches the backlog level.
  const support::telemetry::Gauge backlog_gauge("muerpd/scheduler/backlog");
  const support::telemetry::Gauge overrun_gauge("muerpd/scheduler/overrun_us");
  // Hot-link families: the top-5 utilizations republished after every wake
  // (rank k in net/link_util/top<k>), plus a histogram of the same values
  // in percent — enough for a Prometheus panel and the slot-p95 style SLO
  // rules without one family per link (the registry's instrument caps are
  // fixed).
  constexpr std::size_t kHotLinkGauges = 5;
  std::vector<support::telemetry::Gauge> link_util_gauges;
  link_util_gauges.reserve(kHotLinkGauges);
  for (std::size_t k = 0; k < kHotLinkGauges; ++k) {
    link_util_gauges.emplace_back("net/link_util/top" + std::to_string(k));
  }
  const support::telemetry::Histogram link_util_histogram("net/link_util_pct");
  const auto publish_hot_links = [&] {
    if (!record_links) return;
    auto hot = service.link_stats();
    support::telemetry::sort_links(hot, support::telemetry::LinkSort::kUtil,
                                   kHotLinkGauges);
    for (std::size_t k = 0; k < kHotLinkGauges; ++k) {
      const double util = k < hot.size() ? hot[k].utilization : 0.0;
      link_util_gauges[k].set(util);
      if (k < hot.size()) link_util_histogram.observe(util * 100.0);
    }
  };

  // Event-driven slot loop: drain control commands at the tick boundary,
  // block until the next slot on the fixed grid is due, play every due slot
  // as one batch (one parallel dispatch across the lanes), publish the
  // health snapshot, repeat. acquire() bounds its waits so a signal (which
  // cannot wake the condition variable) is observed promptly; a 0 return is
  // just a control wake. While paused, due slots are advanced WITHOUT being
  // played: the grid keeps moving, so resume continues at the live edge
  // with no catch-up burst, and a --slots-bounded run still plays exactly
  // its N slots — which is what makes a paused-then-resumed run
  // bit-identical to an unpaused one.
  const std::uint64_t drain_cap = config.params.session_timeout_slots + 1;
  while (g_stop == 0 && (max_slots == 0 || service.slot() < max_slots)) {
    mailbox.drain();  // tick boundary: apply queued control commands
    const RunState state = run_state.load(std::memory_order_relaxed);
    if (state == RunState::kPaused) {
      publish_health();
      if (pace.period == std::chrono::nanoseconds::zero()) {
        // Unpaced pause has no deadline grid to follow — idle on the
        // mailbox instead of spinning through immediate acquire()s.
        mailbox.wait_pending(std::chrono::milliseconds(50));
        continue;
      }
      const std::uint64_t due = scheduler.acquire();
      mailbox.drain();  // a resume may be what woke the wait
      if (run_state.load(std::memory_order_relaxed) == RunState::kPaused &&
          due > 0) {
        scheduler.advance(due);  // grid moves on; the slots are not played
      }
      continue;
    }
    std::uint64_t due = scheduler.acquire();
    if (due == 0) continue;  // control wake: drain at the top of the loop
    if (max_slots != 0) {
      due = std::min<std::uint64_t>(due, max_slots - service.slot());
    }
    const std::uint64_t t0 = support::telemetry::monotonic_now_ns();
    const sim::ShardTickReport tick = service.run_slots(due);
    scheduler.advance(due);
    // Mean per-slot latency over the batch (one observation per slot keeps
    // the histogram's count equal to the slot count, as before).
    const double per_slot_us =
        static_cast<double>(support::telemetry::monotonic_now_ns() - t0) /
        (1e3 * static_cast<double>(due));
    for (std::uint64_t s = 0; s < due; ++s) slot_us_histogram.observe(per_slot_us);
    slots_counter.add(due);
    requests_counter.add(tick.arrivals);
    admitted_counter.add(tick.admissions);
    if (tick.completed > 0) completed_counter.add(tick.completed);
    backlog_gauge.set(static_cast<double>(scheduler.backlog()));
    overrun_gauge.set(static_cast<double>(scheduler.overrun_ns()) / 1e3);
    publish_health();
    publish_hot_links();
    flush_history(false);
    if (state == RunState::kDraining &&
        (service.active_sessions() == 0 ||
         service.slot() - drain_started_slot >= drain_cap)) {
      break;  // commanded drain finished — exit cleanly
    }
    // Heartbeat: one debug line per 256 wakes, not one per slot.
    MUERP_LOG_EVERY_N(256, support::telemetry::LogLevel::kDebug, "muerpd/slot",
                      support::telemetry::field("slot", service.slot()),
                      support::telemetry::field("batch", due),
                      support::telemetry::field("active",
                                                tick.active_sessions),
                      support::telemetry::field("qubit_utilization",
                                                tick.qubit_utilization));
  }

  // Graceful shutdown on signal: stop arrivals and play unpaced slots until
  // the in-flight sessions complete or time out (bounded by the session
  // timeout); a second signal skips the drain. A `ctl drain` already did
  // its draining inside the main loop. Control commands still drain here so
  // `status` keeps answering (mutations are refused — state is draining).
  std::uint64_t drain_slots = 0;
  std::uint64_t drained_completed = 0;
  if (g_stop != 0 &&
      run_state.load(std::memory_order_relaxed) != RunState::kDraining) {
    run_state.store(RunState::kDraining, std::memory_order_relaxed);
    service.set_arrivals_enabled(false);
    while (g_stop < 2 && drain_slots < drain_cap) {
      mailbox.drain();
      if (service.active_sessions() == 0) break;
      const sim::ShardTickReport tick = service.step();
      ++drain_slots;
      slots_counter.add();
      if (tick.completed > 0) completed_counter.add(tick.completed);
      drained_completed += tick.completed;
      publish_health();
    }
  }
  // Sessions still in flight when the daemon exits are finalized as
  // drained flight records — "killed mid-run" stays distinguishable from
  // "timed out" in the recorder.
  service.finalize_session_records();
  flush_history(true);
  history.close();

  const sim::ProtocolMetrics m = service.metrics();
  MUERP_LOG_INFO("muerpd/shutdown",
                 support::telemetry::field("slot", service.slot()),
                 support::telemetry::field("arrived", m.sessions_arrived),
                 support::telemetry::field("completed", m.sessions_completed),
                 support::telemetry::field("drain_slots", drain_slots),
                 support::telemetry::field("drained_completed",
                                           drained_completed),
                 support::telemetry::field("active_remaining",
                                           service.active_sessions()),
                 support::telemetry::field("log_suppressed",
                                           service.log_events_suppressed()));
  // Close the mailbox BEFORE the exporter: pending and future control
  // submits fail fast with shutting_down, so an acceptor thread blocked in
  // a ctl request can answer and the exporter join cannot deadlock.
  mailbox.close();
  sampler.stop();
  exporter.stop();

  if (!snapshot_out.empty()) {
    std::ofstream out(snapshot_out);
    if (out) {
      out << support::telemetry::snapshot_document(
          support::telemetry::capture_process(),
          support::telemetry::recent_log_events());
    } else {
      std::cerr << "muerpd: cannot write --snapshot-out " << snapshot_out
                << '\n';
    }
  }

  const std::string final_label =
      service.algorithm().empty() ? "shared-prim" : service.algorithm();
  support::Table summary("muerpd session service (" + final_label + ")",
                         {"metric", "value"});
  summary.add_row("slots played", {static_cast<double>(service.slot())});
  summary.add_row("sessions arrived",
                  {static_cast<double>(m.sessions_arrived)});
  summary.add_row("sessions admitted",
                  {static_cast<double>(m.sessions_admitted)});
  summary.add_row("sessions completed",
                  {static_cast<double>(m.sessions_completed)});
  summary.add_row("sessions timed out",
                  {static_cast<double>(m.sessions_timed_out)});
  summary.add_row("admitted fraction", {m.admitted_fraction()});
  summary.add_row("mean completion slots", {m.mean_completion_slots});
  summary.add_row("mean qubit utilization", {m.mean_qubit_utilization});
  summary.add_row("http requests served",
                  {static_cast<double>(exporter.requests_served())});
  summary.add_row("time-series samples",
                  {static_cast<double>(sampler.samples_taken())});
  summary.add_row("log events suppressed",
                  {static_cast<double>(service.log_events_suppressed())});
  std::cout << summary;
  return 0;
}
