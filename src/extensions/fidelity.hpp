// Fidelity-aware entanglement routing — the paper's first "more complex
// situation" (§II-D, §VII: "accounting for fidelity decay").
//
// Model: each quantum link delivers a Werner state whose fidelity decays
// with fiber length,
//     F_link(L) = 1/4 + 3/4 * w_link(L),   w_link(L) = w0 * exp(-kappa*L),
// where w0 = (4*F0 - 1)/3 is the Werner parameter of a freshly generated
// pair of fidelity F0. Entanglement swapping composes Werner parameters
// multiplicatively (the standard BSM-on-Werner-states result):
//     w_channel = prod over links of w_link,
//     F_channel = 1/4 + 3/4 * w_channel,
// so a channel is *usable* iff F_channel >= min_fidelity, equivalently
//     sum over links of -ln(w_link)  <=  -ln((4*min_fidelity - 1)/3).
//
// Finding the maximum-rate channel subject to that budget is a resource-
// constrained shortest path; we solve it exactly with a Pareto-label
// Dijkstra: each vertex keeps the set of (rate-cost, fidelity-cost) labels
// not dominated by any other, and a label is expanded only while its
// fidelity cost stays within budget. The constrained finder then slots into
// a Prim-style tree builder (Algorithm 4's skeleton), giving a complete
// fidelity-aware MUERP heuristic.
#pragma once

#include <optional>
#include <span>

#include "network/channel.hpp"
#include "network/quantum_network.hpp"
#include "support/rng.hpp"

namespace muerp::ext {

struct FidelityParams {
  /// Fidelity of a freshly generated link pair at distance 0.
  double fresh_fidelity = 0.99;
  /// Werner-parameter decay rate per km of fiber.
  double decay_per_km = 2e-5;
  /// Minimum acceptable end-to-end channel fidelity, > 0.25 (below 1/4 a
  /// Werner state carries no entanglement at all).
  double min_fidelity = 0.85;
};

/// Werner parameter of a single link of length `length_km`.
double link_werner(const FidelityParams& params, double length_km) noexcept;

/// End-to-end fidelity of a channel path under the model above.
double channel_fidelity(const net::QuantumNetwork& network,
                        std::span<const net::NodeId> path,
                        const FidelityParams& params);

/// Maximum-rate channel between two users whose end-to-end fidelity meets
/// min_fidelity, under `capacity`. Exact (Pareto-label search); nullopt when
/// no qualifying channel exists.
std::optional<net::Channel> find_fidelity_constrained_channel(
    const net::QuantumNetwork& network, net::NodeId source,
    net::NodeId destination, const net::CapacityState& capacity,
    const FidelityParams& params);

/// Fidelity-aware multi-user routing: Algorithm 4's greedy tree growth with
/// every channel required to satisfy the fidelity constraint.
net::EntanglementTree fidelity_aware_prim(const net::QuantumNetwork& network,
                                          std::span<const net::NodeId> users,
                                          const FidelityParams& params,
                                          support::Rng& rng);

/// Fidelity-aware Algorithm 3: global greedy over unions — each round the
/// best qualifying channel between any two unconnected unions commits (the
/// phase-2 loop of conflict_free with the constrained finder). Typically a
/// slightly better tree than the Prim variant at O(|U|) more finder calls.
net::EntanglementTree fidelity_aware_greedy(
    const net::QuantumNetwork& network, std::span<const net::NodeId> users,
    const FidelityParams& params);

}  // namespace muerp::ext
