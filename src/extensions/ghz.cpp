#include "extensions/ghz.hpp"

#include <cassert>
#include <cmath>

#include "routing/conflict_free.hpp"

namespace muerp::ext {

double ghz_via_tree_rate(const net::EntanglementTree& tree,
                         const GhzParams& params) {
  assert(params.local_merge_success >= 0.0 &&
         params.local_merge_success <= 1.0);
  if (!tree.feasible) return 0.0;
  if (tree.channels.empty()) return 1.0;  // singleton set: trivial GHZ
  // One local merge per tree edge folds that edge's Bell pair into the
  // growing GHZ state.
  const auto merges = static_cast<double>(tree.channels.size());
  return tree.rate * std::pow(params.local_merge_success, merges);
}

GhzComparison compare_ghz_distribution(const net::QuantumNetwork& network,
                                       std::span<const net::NodeId> users,
                                       const GhzParams& params) {
  GhzComparison result;
  const auto tree = routing::conflict_free(network, users);
  result.tree_feasible = tree.feasible;
  result.via_tree = ghz_via_tree_rate(tree, params);

  const auto star = baselines::n_fusion(network, users, params.nfusion);
  result.fusion_feasible = star.feasible;
  result.via_fusion = star.rate;
  return result;
}

}  // namespace muerp::ext
