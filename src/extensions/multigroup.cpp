#include "extensions/multigroup.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "routing/batch_router.hpp"
#include "routing/channel_finder.hpp"
#include "routing/plan.hpp"
#include "routing/prim_based.hpp"

namespace muerp::ext {

const char* group_order_name(GroupOrder order) noexcept {
  switch (order) {
    case GroupOrder::kGivenOrder:
      return "given-order";
    case GroupOrder::kSmallestFirst:
      return "smallest-first";
    case GroupOrder::kLargestFirst:
      return "largest-first";
  }
  return "?";
}

namespace {

#ifndef NDEBUG
void assert_disjoint(const net::QuantumNetwork& network,
                     std::span<const GroupRequest> groups) {
  std::unordered_set<net::NodeId> seen;
  for (const GroupRequest& g : groups) {
    for (net::NodeId u : g.users) {
      assert(network.is_user(u));
      assert(seen.insert(u).second && "groups must be disjoint");
    }
  }
}
#endif

routing::BatchPolicy to_batch_policy(GroupOrder order) noexcept {
  switch (order) {
    case GroupOrder::kSmallestFirst:
      return routing::BatchPolicy::kSmallestFirst;
    case GroupOrder::kLargestFirst:
      return routing::BatchPolicy::kLargestFirst;
    case GroupOrder::kGivenOrder:
      break;
  }
  return routing::BatchPolicy::kGivenOrder;
}

/// Routes `groups` through the batch kernel under `policy` and repackages
/// the result in the extension-layer shape (the structs are field-for-field
/// mirrors; only the namespaces differ).
MultiGroupResult route_batched(const net::QuantumNetwork& network,
                               std::span<const GroupRequest> groups,
                               routing::BatchPolicy policy,
                               support::Rng& rng) {
  std::vector<routing::BatchRequest> requests;
  requests.reserve(groups.size());
  for (const GroupRequest& group : groups) {
    requests.push_back({std::span<const net::NodeId>(group.users)});
  }
  routing::BatchRouter router(network);
  routing::BatchOptions options;
  options.policy = policy;
  routing::BatchResult batch = router.route(requests, options, rng);

  MultiGroupResult result;
  result.outcomes.reserve(batch.outcomes.size());
  for (routing::BatchGroupOutcome& outcome : batch.outcomes) {
    result.outcomes.push_back(
        {outcome.request_index, std::move(outcome.tree)});
  }
  result.groups_served = batch.groups_served;
  result.served_product_rate = batch.served_product_rate;
  result.all_served = batch.all_served;
  return result;
}

}  // namespace

MultiGroupResult route_groups(const net::QuantumNetwork& network,
                              std::span<const GroupRequest> groups,
                              GroupOrder order, support::Rng& rng) {
#ifndef NDEBUG
  assert_disjoint(network, groups);
#endif
  return route_batched(network, groups, to_batch_policy(order), rng);
}

MultiGroupResult route_groups_interleaved(const net::QuantumNetwork& network,
                                          std::span<const GroupRequest> groups,
                                          support::Rng& rng) {
  return route_batched(network, groups, routing::BatchPolicy::kFairShare,
                       rng);
}

MultiGroupResult route_groups_reference(const net::QuantumNetwork& network,
                                        std::span<const GroupRequest> groups,
                                        GroupOrder order, support::Rng& rng) {
#ifndef NDEBUG
  assert_disjoint(network, groups);
#endif

  std::vector<std::size_t> admission(groups.size());
  std::iota(admission.begin(), admission.end(), std::size_t{0});
  switch (order) {
    case GroupOrder::kGivenOrder:
      break;
    case GroupOrder::kSmallestFirst:
      std::stable_sort(admission.begin(), admission.end(),
                       [&](std::size_t l, std::size_t r) {
                         return groups[l].users.size() < groups[r].users.size();
                       });
      break;
    case GroupOrder::kLargestFirst:
      std::stable_sort(admission.begin(), admission.end(),
                       [&](std::size_t l, std::size_t r) {
                         return groups[l].users.size() > groups[r].users.size();
                       });
      break;
  }

  MultiGroupResult result;
  net::CapacityState capacity(network);
  for (std::size_t idx : admission) {
    const GroupRequest& group = groups[idx];
    GroupOutcome outcome;
    outcome.request_index = idx;
    if (group.users.empty()) {
      outcome.tree = net::EntanglementTree{{}, 1.0, true};
    } else {
      const auto seed =
          static_cast<std::size_t>(rng.uniform_index(group.users.size()));
      // Shared capacity: this group's channels deduct from the same pool the
      // earlier groups drew from. A failed group may leave partial
      // deductions behind — deliberate: in the offline §II-B process those
      // qubits were already promised before the failure was discovered.
      outcome.tree = routing::prim_based_shared(network, group.users, seed,
                                                capacity);
    }
    if (outcome.tree.feasible) {
      ++result.groups_served;
      result.served_product_rate *= outcome.tree.rate;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  result.all_served = result.groups_served == groups.size();
  if (result.groups_served == 0) result.served_product_rate = 1.0;
  return result;
}

namespace {

/// Per-group growth state for the interleaved scheduler.
struct GrowingGroup {
  std::size_t request_index = 0;
  std::vector<net::NodeId> connected;            // U1
  std::unordered_set<net::NodeId> pending;       // U2
  std::vector<net::Channel> committed;
  bool failed = false;

  bool finished() const { return pending.empty() || failed; }
};

}  // namespace

MultiGroupResult route_groups_interleaved_reference(
    const net::QuantumNetwork& network, std::span<const GroupRequest> groups,
    support::Rng& rng) {
  MultiGroupResult result;
  net::CapacityState capacity(network);
  const routing::ChannelFinder finder(network);

  std::vector<GrowingGroup> growing;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    GrowingGroup state;
    state.request_index = g;
    const auto& users = groups[g].users;
    if (!users.empty()) {
      const auto seed =
          static_cast<std::size_t>(rng.uniform_index(users.size()));
      state.connected.push_back(users[seed]);
      for (std::size_t i = 0; i < users.size(); ++i) {
        if (i != seed) state.pending.insert(users[i]);
      }
    }
    growing.push_back(std::move(state));
  }

  // Rounds: each unfinished group commits its single best channel in turn.
  // Candidates compare on neg_log_rate (finite for every found channel,
  // infinity for the default-constructed "none yet"): an extremely lossy
  // channel whose Eq. (1) rate underflowed to 0 still beats "no channel",
  // so long chains stay feasible.
  bool any_unfinished = true;
  while (any_unfinished) {
    any_unfinished = false;
    for (GrowingGroup& group : growing) {
      if (group.finished()) continue;
      net::Channel best;
      for (net::NodeId source : group.connected) {
        for (net::Channel& candidate :
             finder.find_best_channels(source, capacity)) {
          if (!group.pending.contains(candidate.destination())) continue;
          if (candidate.neg_log_rate < best.neg_log_rate) {
            best = std::move(candidate);
          }
        }
      }
      if (std::isinf(best.neg_log_rate)) {
        group.failed = true;
        continue;
      }
      capacity.commit_channel(best.path);
      group.pending.erase(best.destination());
      group.connected.push_back(best.destination());
      group.committed.push_back(std::move(best));
      if (!group.finished()) any_unfinished = true;
    }
  }

  for (GrowingGroup& group : growing) {
    GroupOutcome outcome;
    outcome.request_index = group.request_index;
    outcome.tree =
        routing::make_tree(std::move(group.committed), !group.failed);
    if (outcome.tree.feasible) {
      ++result.groups_served;
      result.served_product_rate *= outcome.tree.rate;
    }
    result.outcomes.push_back(std::move(outcome));
  }
  result.all_served = result.groups_served == groups.size();
  if (result.groups_served == 0) result.served_product_rate = 1.0;
  return result;
}

double min_served_rate(const MultiGroupResult& result) {
  double min_rate = 1.0;
  for (const GroupOutcome& outcome : result.outcomes) {
    if (outcome.tree.feasible) min_rate = std::min(min_rate, outcome.tree.rate);
  }
  return min_rate;
}

}  // namespace muerp::ext
