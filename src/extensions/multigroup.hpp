// Concurrent routing of multiple independent entanglement groups — the
// paper's second "more complex situation" (§II-D, §VII: "simultaneous
// routing of multiple independent entanglement groups").
//
// Several disjoint user groups request multi-user entanglement over the same
// physical network; their channels compete for switch qubits. We route the
// groups sequentially against one shared CapacityState (each group's tree is
// built by Algorithm 4's greedy growth under the residual capacity left by
// earlier groups), with a pluggable admission order. The natural objective
// mirrors Eq. (2) per group; across groups we report both how many groups
// were served and the product rate of the served ones.
//
// Both entry points delegate to routing::BatchRouter — the batch kernel
// that shares one CSR view, slab workspaces and capacity bookkeeping across
// the whole request set. The pre-kernel implementations are kept as
// *_reference oracles: straight-line code the batch results are asserted
// bit-identical against in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "network/channel.hpp"
#include "network/quantum_network.hpp"
#include "support/rng.hpp"

namespace muerp::ext {

/// Order in which competing groups are admitted to the network.
enum class GroupOrder {
  kGivenOrder,     // first come, first served
  kSmallestFirst,  // fewest users first (cheapest trees grab qubits first)
  kLargestFirst,   // most users first (hardest request served while capacity
                   // is plentiful)
};

const char* group_order_name(GroupOrder order) noexcept;

struct GroupRequest {
  std::vector<net::NodeId> users;
};

struct GroupOutcome {
  /// Index into the original request list.
  std::size_t request_index = 0;
  net::EntanglementTree tree;
};

struct MultiGroupResult {
  /// One outcome per request, in admission order.
  std::vector<GroupOutcome> outcomes;
  std::size_t groups_served = 0;
  /// Product of the served groups' tree rates (1.0 when none served).
  double served_product_rate = 1.0;
  /// True only if every group was served.
  bool all_served = false;
};

/// Routes all `groups` over `network` sharing one capacity pool.
/// Groups must be pairwise disjoint user sets. `rng` seeds each group's
/// Algorithm-4 start user.
MultiGroupResult route_groups(const net::QuantumNetwork& network,
                              std::span<const GroupRequest> groups,
                              GroupOrder order, support::Rng& rng);

/// Fair variant: instead of admitting whole groups sequentially, all groups
/// grow their trees simultaneously, one channel per group per round (each
/// round every unfinished group commits its best residual channel in the
/// style of Algorithm 4). Sequential admission lets early groups hoard the
/// best switches; interleaving spreads the contention, trading some total
/// product rate for a higher minimum group rate — the classic
/// throughput-vs-fairness exchange. A group that cannot extend in some
/// round is marked infeasible and drops out (its held qubits stay pledged,
/// matching the offline §II-B process).
MultiGroupResult route_groups_interleaved(const net::QuantumNetwork& network,
                                          std::span<const GroupRequest> groups,
                                          support::Rng& rng);

/// Pre-BatchRouter implementation of route_groups, kept as the oracle the
/// batch kernel is verified bit-identical against (same Rng draw sequence,
/// same admission order, same channels and rates). One group at a time,
/// each paying its own CachedChannelFinder and full Dijkstras.
MultiGroupResult route_groups_reference(const net::QuantumNetwork& network,
                                        std::span<const GroupRequest> groups,
                                        GroupOrder order, support::Rng& rng);

/// Pre-BatchRouter implementation of route_groups_interleaved (the oracle
/// for the kFairShare policy). Candidate channels compare on neg_log_rate —
/// finite for every found channel — not on the underflow-prone `rate`: an
/// extremely lossy but feasible channel must still beat "no channel"
/// (the rate == 0.0 sentinel this code shipped with falsely failed whole
/// groups on long chains).
MultiGroupResult route_groups_interleaved_reference(
    const net::QuantumNetwork& network, std::span<const GroupRequest> groups,
    support::Rng& rng);

/// Fairness metric: the smallest served group rate (1.0 when none served —
/// vacuous; callers should check groups_served).
double min_served_rate(const MultiGroupResult& result);

}  // namespace muerp::ext
