// GHZ distribution: Bell-tree assembly vs. n-fusion, made quantitative.
//
// The paper's central modelling argument (§I) is that multi-user
// entanglement should be built from *pairwise Bell channels* under BSMs
// rather than distributing GHZ states by n-fusion, because BSMs are more
// reliable and Bell pairs more robust. Many applications ultimately want an
// n-qubit GHZ state, though — and a spanning tree of Bell pairs suffices:
// once every tree edge holds a Bell pair, the users assemble the GHZ with
// local operations and classical communication (each user performs one
// local merge per incident tree edge beyond its first; a tree with |U|-1
// edges needs exactly |U|-2 merges... plus the initiating user's
// preparation — we model |U|-1 local merge operations, one per edge, each
// succeeding with probability p_local).
//
//   GHZ rate via tree      = P_tree * p_local^(|U|-1)        (Eq. 2 boosted)
//   GHZ rate via n-fusion  = the N-FUSION star model (baselines/nfusion)
//
// Local merges are CNOT + measurement on co-located qubits — far easier
// than a photonic GHZ projection — so p_local is high (default 0.99). The
// ghz_comparison bench sweeps p_local and shows the tree route dominating
// until local operations become implausibly bad, which is exactly the
// paper's qualitative claim with a number attached.
#pragma once

#include <span>

#include "baselines/nfusion.hpp"
#include "network/channel.hpp"
#include "network/quantum_network.hpp"

namespace muerp::ext {

struct GhzParams {
  /// Success probability of one local merge operation at a user.
  double local_merge_success = 0.99;
  /// Parameters of the competing n-fusion star.
  baselines::NFusionParams nfusion;
};

struct GhzComparison {
  /// GHZ distribution rate assembling from the given Bell tree.
  double via_tree = 0.0;
  /// GHZ distribution rate via the best N-FUSION star.
  double via_fusion = 0.0;
  bool tree_feasible = false;
  bool fusion_feasible = false;
};

/// GHZ rate achievable from an already-routed entanglement tree.
double ghz_via_tree_rate(const net::EntanglementTree& tree,
                         const GhzParams& params);

/// Routes both ways (tree via Algorithm 3, star via N-FUSION) and compares.
GhzComparison compare_ghz_distribution(const net::QuantumNetwork& network,
                                       std::span<const net::NodeId> users,
                                       const GhzParams& params = {});

}  // namespace muerp::ext
