#include "extensions/purification.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "graph/spf_kernel.hpp"
#include "network/rate.hpp"
#include "routing/plan.hpp"

namespace muerp::ext {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Werner parameter of fidelity F; <= 0 when the state is unentangled.
double werner_of(double fidelity) noexcept {
  return (4.0 * fidelity - 1.0) / 3.0;
}

}  // namespace

BbpsswOutcome bbpssw(double f) noexcept {
  assert(f >= 0.0 && f <= 1.0);
  const double g = (1.0 - f) / 3.0;
  const double success = f * f + 2.0 * f * g + 5.0 * g * g;
  BbpsswOutcome out;
  out.success_prob = success;
  out.fidelity = (f * f + g * g) / success;
  return out;
}

std::vector<PurifiedPair> purification_ladder(double f0, double p0,
                                              std::size_t max_level) {
  std::vector<PurifiedPair> ladder;
  ladder.push_back({f0, p0, 0});
  for (std::size_t level = 1; level <= max_level; ++level) {
    const PurifiedPair& below = ladder.back();
    const BbpsswOutcome out = bbpssw(below.fidelity);
    PurifiedPair rung;
    rung.level = level;
    rung.fidelity = out.fidelity;
    // Single-shot: both input pairs must materialize, then the joint
    // measurement must succeed.
    rung.success_prob =
        below.success_prob * below.success_prob * out.success_prob;
    ladder.push_back(rung);
  }
  return ladder;
}

std::optional<PurifiedPair> cheapest_level_reaching(double f0, double p0,
                                                    double target,
                                                    std::size_t max_level) {
  for (const PurifiedPair& rung : purification_ladder(f0, p0, max_level)) {
    if (rung.fidelity >= target) return rung;
  }
  return std::nullopt;
}

namespace {

struct Label {
  double rate_cost;  // accumulated -ln(link success) - ln(q) per edge
  double fid_cost;   // accumulated -ln(werner)
  net::NodeId node;
  std::int64_t parent;     // arena index; -1 at source
  std::size_t link_level;  // purification level of the edge into `node`
};

}  // namespace

std::optional<PurifiedChannel> find_purified_channel(
    const net::QuantumNetwork& network, net::NodeId source,
    net::NodeId destination, const net::CapacityState& capacity,
    const FidelityParams& fidelity, const PurificationParams& purification) {
  assert(network.is_user(source) && network.is_user(destination));
  assert(source != destination);
  assert(fidelity.min_fidelity > 0.25 && fidelity.min_fidelity <= 1.0);
  const double budget = -std::log(werner_of(fidelity.min_fidelity));
  const double log_q = network.log_swap_success();

  // Per-edge option table: (rate_cost, fid_cost, level) per ladder rung
  // with positive Werner parameter.
  struct EdgeOption {
    double rate_cost;
    double fid_cost;
    std::size_t level;
  };
  std::vector<std::vector<EdgeOption>> options(network.graph().edge_count());
  for (graph::EdgeId e = 0; e < network.graph().edge_count(); ++e) {
    const double length = network.graph().edge(e).length_km;
    const double w0 = link_werner(fidelity, length);
    const double f0 = 0.25 + 0.75 * w0;
    const double p0 = network.link_success(e);
    for (const PurifiedPair& rung :
         purification_ladder(f0, p0, purification.max_rounds)) {
      const double w = werner_of(rung.fidelity);
      if (w <= 0.0 || rung.success_prob <= 0.0) continue;
      options[e].push_back({-std::log(rung.success_prob) - log_q,
                            -std::log(w), rung.level});
    }
    // Options with both higher rate cost and higher fidelity cost than some
    // other option are useless; ladders are monotone so just keep all (the
    // search prunes dominated labels anyway).
  }

  std::vector<Label> arena;
  std::vector<double> best_fid_cost(network.node_count(), kInf);
  // Labels pop in (rate cost, arena index) order: the index tie-break makes
  // equal-cost pops deterministic, which std::priority_queue never promised.
  const auto less = [&](std::size_t l, std::size_t r) {
    if (arena[l].rate_cost != arena[r].rate_cost) {
      return arena[l].rate_cost < arena[r].rate_cost;
    }
    return l < r;
  };
  graph::spf::DaryHeap<std::size_t, decltype(less)> heap(less);
  arena.push_back({0.0, 0.0, source, -1, 0});
  heap.push(0);

  while (!heap.empty()) {
    const std::size_t idx = heap.pop_min();
    const Label label = arena[idx];
    if (label.fid_cost >= best_fid_cost[label.node]) continue;
    best_fid_cost[label.node] = label.fid_cost;

    if (label.node == destination) {
      PurifiedChannel result;
      result.channel.rate = net::rate_from_routing_distance(
          label.rate_cost, network.physical().swap_success);
      double w_total = 1.0;
      for (std::int64_t cursor = static_cast<std::int64_t>(idx); cursor >= 0;
           cursor = arena[static_cast<std::size_t>(cursor)].parent) {
        const Label& step = arena[static_cast<std::size_t>(cursor)];
        result.channel.path.push_back(step.node);
        if (step.parent >= 0) {
          result.link_levels.push_back(step.link_level);
        }
      }
      std::reverse(result.channel.path.begin(), result.channel.path.end());
      std::reverse(result.link_levels.begin(), result.link_levels.end());
      w_total = std::exp(-label.fid_cost);
      result.fidelity = 0.25 + 0.75 * w_total;
      return result;
    }

    if (label.node != source &&
        (!network.is_switch(label.node) ||
         capacity.free_qubits(label.node) < 2)) {
      continue;
    }

    for (const graph::Neighbor& nb : network.graph().neighbors(label.node)) {
      for (const EdgeOption& option : options[nb.edge]) {
        const double fid_cost = label.fid_cost + option.fid_cost;
        if (fid_cost > budget) continue;
        if (fid_cost >= best_fid_cost[nb.node]) continue;
        const double rate_cost = label.rate_cost + option.rate_cost;
        arena.push_back({rate_cost, fid_cost, nb.node,
                         static_cast<std::int64_t>(idx), option.level});
        heap.push(arena.size() - 1);
      }
    }
  }
  return std::nullopt;
}

PurifiedTree purified_prim(const net::QuantumNetwork& network,
                           std::span<const net::NodeId> users,
                           const FidelityParams& fidelity,
                           const PurificationParams& purification,
                           support::Rng& rng) {
  PurifiedTree tree;
  assert(!users.empty());
  if (users.size() == 1) {
    tree.rate = 1.0;
    tree.feasible = true;
    return tree;
  }

  const auto seed = static_cast<std::size_t>(rng.uniform_index(users.size()));
  std::vector<net::NodeId> connected{users[seed]};
  std::unordered_set<net::NodeId> pending;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (i != seed) pending.insert(users[i]);
  }

  net::CapacityState capacity(network);
  double rate = 1.0;
  while (!pending.empty()) {
    std::optional<PurifiedChannel> best;
    for (net::NodeId source : connected) {
      for (net::NodeId target : pending) {
        auto candidate = find_purified_channel(network, source, target,
                                               capacity, fidelity,
                                               purification);
        if (candidate &&
            (!best || candidate->channel.rate > best->channel.rate)) {
          best = std::move(candidate);
        }
      }
    }
    if (!best) {
      tree.feasible = false;
      tree.rate = 0.0;
      return tree;
    }
    capacity.commit_channel(best->channel.path);
    pending.erase(best->channel.destination());
    connected.push_back(best->channel.destination());
    rate *= best->channel.rate;
    tree.channels.push_back(std::move(*best));
  }
  tree.rate = rate;
  tree.feasible = true;
  return tree;
}

}  // namespace muerp::ext
