#include "extensions/fidelity.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <vector>

#include "graph/spf_kernel.hpp"
#include "network/rate.hpp"
#include "routing/plan.hpp"
#include "support/node_index.hpp"
#include "support/union_find.hpp"

namespace muerp::ext {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// -ln of the Werner parameter a channel may spend before dropping below
/// min_fidelity.
double fidelity_budget(const FidelityParams& params) {
  assert(params.min_fidelity > 0.25 && params.min_fidelity <= 1.0);
  const double w_min = (4.0 * params.min_fidelity - 1.0) / 3.0;
  return -std::log(w_min);
}

/// -ln(w_link) for one edge; the additive fidelity cost.
double edge_fidelity_cost(const FidelityParams& params, double length_km) {
  return -std::log(link_werner(params, length_km));
}

struct Label {
  double rate_cost;   // accumulated alpha*L - ln(q)
  double fid_cost;    // accumulated -ln(w_link)
  net::NodeId node;
  std::int64_t parent;  // arena index of predecessor label; -1 at source
};

}  // namespace

double link_werner(const FidelityParams& params, double length_km) noexcept {
  const double w0 = (4.0 * params.fresh_fidelity - 1.0) / 3.0;
  return w0 * std::exp(-params.decay_per_km * length_km);
}

double channel_fidelity(const net::QuantumNetwork& network,
                        std::span<const net::NodeId> path,
                        const FidelityParams& params) {
  assert(path.size() >= 2);
  double w = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto edge = network.graph().find_edge(path[i], path[i + 1]);
    assert(edge);
    w *= link_werner(params, network.graph().edge(*edge).length_km);
  }
  return 0.25 + 0.75 * w;
}

std::optional<net::Channel> find_fidelity_constrained_channel(
    const net::QuantumNetwork& network, net::NodeId source,
    net::NodeId destination, const net::CapacityState& capacity,
    const FidelityParams& params) {
  assert(network.is_user(source) && network.is_user(destination));
  assert(source != destination);
  const double budget = fidelity_budget(params);

  // Label-setting search for the single-resource-constrained shortest path.
  // Labels pop in increasing rate cost; at each vertex only labels that
  // strictly improve the best fidelity cost seen so far survive (any later
  // label has higher rate cost, so it is useful only if it spends less of
  // the fidelity budget).
  std::vector<Label> arena;
  std::vector<double> best_fid_cost(network.node_count(), kInf);

  // Labels pop in (rate cost, arena index) order: the index tie-break makes
  // equal-cost pops deterministic, which std::priority_queue never promised.
  const auto less = [&](std::size_t l, std::size_t r) {
    if (arena[l].rate_cost != arena[r].rate_cost) {
      return arena[l].rate_cost < arena[r].rate_cost;
    }
    return l < r;
  };
  graph::spf::DaryHeap<std::size_t, decltype(less)> heap(less);

  arena.push_back({0.0, 0.0, source, -1});
  heap.push(0);

  while (!heap.empty()) {
    const std::size_t idx = heap.pop_min();
    const Label label = arena[idx];
    if (label.fid_cost >= best_fid_cost[label.node]) continue;  // dominated
    best_fid_cost[label.node] = label.fid_cost;

    if (label.node == destination) {
      net::Channel channel;
      channel.rate = net::rate_from_routing_distance(
          label.rate_cost, network.physical().swap_success);
      for (std::int64_t cursor = static_cast<std::int64_t>(idx); cursor >= 0;
           cursor = arena[static_cast<std::size_t>(cursor)].parent) {
        channel.path.push_back(arena[static_cast<std::size_t>(cursor)].node);
      }
      std::reverse(channel.path.begin(), channel.path.end());
      return channel;
    }

    // Only the source user and capacity-bearing switches relay (Def. 2).
    if (label.node != source &&
        (!network.is_switch(label.node) ||
         capacity.free_qubits(label.node) < 2)) {
      continue;
    }

    for (const graph::Neighbor& nb : network.graph().neighbors(label.node)) {
      const double length = network.graph().edge(nb.edge).length_km;
      const double fid_cost =
          label.fid_cost + edge_fidelity_cost(params, length);
      if (fid_cost > budget) continue;  // would violate min fidelity
      if (fid_cost >= best_fid_cost[nb.node]) continue;
      const double rate_cost =
          label.rate_cost + network.edge_routing_weight(nb.edge);
      arena.push_back({rate_cost, fid_cost, nb.node,
                       static_cast<std::int64_t>(idx)});
      heap.push(arena.size() - 1);
    }
  }
  return std::nullopt;
}

net::EntanglementTree fidelity_aware_greedy(
    const net::QuantumNetwork& network, std::span<const net::NodeId> users,
    const FidelityParams& params) {
  assert(!users.empty());
  if (users.size() == 1) return routing::make_tree({}, true);

  const support::NodeIndex index(users);

  net::CapacityState capacity(network);
  support::UnionFind unions(users.size());
  std::vector<net::Channel> committed;

  while (unions.set_count() > 1) {
    net::Channel best;
    best.rate = 0.0;
    for (std::size_t i = 0; i < users.size(); ++i) {
      for (std::size_t j = i + 1; j < users.size(); ++j) {
        if (unions.connected(i, j)) continue;
        auto candidate = find_fidelity_constrained_channel(
            network, users[i], users[j], capacity, params);
        if (candidate && candidate->rate > best.rate) {
          best = std::move(*candidate);
        }
      }
    }
    if (best.rate == 0.0) {
      return routing::make_tree(std::move(committed), false);
    }
    capacity.commit_channel(best.path);
    unions.unite(index.at(best.source()), index.at(best.destination()));
    committed.push_back(std::move(best));
  }
  return routing::make_tree(std::move(committed), true);
}

net::EntanglementTree fidelity_aware_prim(const net::QuantumNetwork& network,
                                          std::span<const net::NodeId> users,
                                          const FidelityParams& params,
                                          support::Rng& rng) {
  assert(!users.empty());
  if (users.size() == 1) return routing::make_tree({}, true);

  const auto seed = static_cast<std::size_t>(rng.uniform_index(users.size()));
  std::vector<net::NodeId> connected{users[seed]};
  std::unordered_set<net::NodeId> pending;
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (i != seed) pending.insert(users[i]);
  }

  net::CapacityState capacity(network);
  std::vector<net::Channel> committed;

  while (!pending.empty()) {
    net::Channel best;
    best.rate = 0.0;
    for (net::NodeId source : connected) {
      for (net::NodeId target : pending) {
        auto candidate = find_fidelity_constrained_channel(
            network, source, target, capacity, params);
        if (candidate && candidate->rate > best.rate) {
          best = std::move(*candidate);
        }
      }
    }
    if (best.rate == 0.0) {
      return routing::make_tree(std::move(committed), false);
    }
    capacity.commit_channel(best.path);
    pending.erase(best.destination());
    connected.push_back(best.destination());
    committed.push_back(std::move(best));
  }
  return routing::make_tree(std::move(committed), true);
}

}  // namespace muerp::ext
