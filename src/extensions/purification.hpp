// Entanglement purification (BBPSSW recurrence) and purification-aware
// channel routing.
//
// The fidelity extension (extensions/fidelity.*) treats a link's fidelity
// as fixed by its length; purification buys fidelity back at the cost of
// rate: two Werner pairs of fidelity F are consumed by the BBPSSW protocol
// (Bennett et al. 1996) to produce, on success, one pair of higher fidelity
//     F' = (F^2 + ((1-F)/3)^2) / (F^2 + 2F(1-F)/3 + 5((1-F)/3)^2),
// succeeding with probability
//     P  =  F^2 + 2F(1-F)/3 + 5((1-F)/3)^2.
// F > 1/2 implies F' > F, so iterating ("entanglement pumping" through a
// recurrence ladder) pushes fidelity toward 1 while the single-shot success
// probability collapses doubly exponentially: a level-k pair needs 2^k raw
// pairs to all succeed plus every intermediate purification measurement.
//
// Routing integration: each fiber now offers max_rounds+1 variants of its
// quantum link (raw, once-purified, ...), each a different point on the
// (rate, fidelity) trade-off. The purification-aware channel finder runs
// the same Pareto-label search as the fidelity extension but relaxes every
// (edge, level) option, so it picks per-link purification levels optimally;
// a Prim-style tree builder lifts it to full MUERP with a fidelity floor.
//
// Capacity note: purification is modelled as *temporal pumping* — the 2^k
// raw pairs of a level-k link are generated in successive sub-windows and
// pumped through the same two link-end qubits — so a purified channel
// consumes exactly the Def. 3 budget (2 qubits per relay switch) of an
// unpurified one, while its single-shot success probability multiplies the
// whole sub-window sequence. This keeps capacity accounting identical
// across all routing algorithms and is the documented substitution for
// nested-recurrence hardware that would need 2^k parallel memories.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "extensions/fidelity.hpp"
#include "network/channel.hpp"
#include "network/quantum_network.hpp"
#include "support/rng.hpp"

namespace muerp::ext {

/// One rung of the purification ladder.
struct PurifiedPair {
  double fidelity = 0.0;
  /// Single-shot probability that this rung's pair materializes in one
  /// synchronized window (all raw pairs + all purification successes).
  double success_prob = 0.0;
  /// Recurrence level; raw pair = 0, each level doubles the raw-pair cost.
  std::size_t level = 0;
};

/// BBPSSW applied to two identical Werner pairs of fidelity `f`.
/// Returns {F', P} as above. Requires f in [0, 1].
struct BbpsswOutcome {
  double fidelity = 0.0;
  double success_prob = 0.0;
};
BbpsswOutcome bbpssw(double f) noexcept;

/// The full ladder: rung 0 is the raw pair (fidelity f0, success p0); rung
/// k is produced by purifying two rung-(k-1) pairs. `max_level` rungs
/// beyond raw are computed (result has max_level+1 entries).
std::vector<PurifiedPair> purification_ladder(double f0, double p0,
                                              std::size_t max_level);

/// Smallest ladder level whose fidelity reaches `target`; nullopt if even
/// `max_level` rounds cannot (or f0 <= 0.5, where BBPSSW diverges).
std::optional<PurifiedPair> cheapest_level_reaching(double f0, double p0,
                                                    double target,
                                                    std::size_t max_level);

struct PurificationParams {
  /// Maximum recurrence depth per link (each level doubles raw-pair cost).
  std::size_t max_rounds = 3;
};

/// A channel whose links carry individual purification levels.
struct PurifiedChannel {
  net::Channel channel;                  // path + single-shot rate
  std::vector<std::size_t> link_levels;  // per link, in path order
  double fidelity = 0.0;                 // end-to-end Werner fidelity
};

/// Maximum-rate channel meeting `fidelity.min_fidelity`, choosing each
/// link's purification level from the ladder. Exact Pareto-label search;
/// nullopt if no combination qualifies under `capacity`.
std::optional<PurifiedChannel> find_purified_channel(
    const net::QuantumNetwork& network, net::NodeId source,
    net::NodeId destination, const net::CapacityState& capacity,
    const FidelityParams& fidelity, const PurificationParams& purification);

/// Prim-style MUERP with per-link purification: every tree channel meets
/// the fidelity floor. Infeasible (rate 0) when some user cannot be joined.
struct PurifiedTree {
  std::vector<PurifiedChannel> channels;
  double rate = 0.0;
  bool feasible = false;
};
PurifiedTree purified_prim(const net::QuantumNetwork& network,
                           std::span<const net::NodeId> users,
                           const FidelityParams& fidelity,
                           const PurificationParams& purification,
                           support::Rng& rng);

}  // namespace muerp::ext
