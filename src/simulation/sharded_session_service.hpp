// Sharded session plane: many SessionService lanes, stepped in parallel,
// merged deterministically.
//
// One SessionService advances every session under a single Rng and a single
// capacity pool — one core's worth of throughput no matter how many cores
// the host has. This service scales that loop out the same way
// run_scenario_parallel scales repetitions: split the work into independent
// deterministic streams, run them on however many workers are available,
// and merge in a fixed order so the result does not depend on the worker
// count.
//
// The unit of determinism is the LANE, not the thread. A lane is a fixed
// logical partition of the traffic: its own support::Rng stream (split from
// the service seed, the scenario.cpp idiom), its own slice of every
// switch's qubit budget, and its own embedded SessionService whose
// persistent BatchRouter keeps routing slabs warm across slots
// (batch_single_arrivals). SHARDS are merely the worker threads that step
// the lanes — ThreadPool::parallel_for strides lanes across at most
// shard_count workers. Because the lane decomposition never changes and the
// merge walks lanes in index order, every metric and every admission
// decision is bit-identical across shard counts: 1 worker, 2 workers and 8
// workers produce the same merged totals (tests assert it), and a
// lane_count == 1 service is bit-identical to a plain SessionService on the
// same seed.
//
// Capacity is partitioned, not shared: lane l of L owns
// Q/L + (l < Q%L ? 1 : 0) qubits of a switch with budget Q. That is what
// makes lanes embarrassingly parallel — no cross-lane locking on the hot
// path — at the documented cost that a lane cannot borrow a sibling's idle
// qubits. Arrival streams are per-lane too: L lanes model L independent
// traffic partitions, so the aggregate arrival rate scales with lane count.
//
// Telemetry: lanes report into the per-shard families
// muerpd/shard/<k>/{slots,admitted,completed,slot_us} with k = lane %
// shard_count (folded modulo kMaxShardFamilies so the registry's instrument
// caps cannot overflow); counters are thread-sharded and commutative, so
// exported totals are deterministic as well.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "network/quantum_network.hpp"
#include "simulation/protocol.hpp"
#include "simulation/session_service.hpp"
#include "support/rng.hpp"
#include "support/telemetry/telemetry.hpp"

namespace muerp::sim {

struct ShardedSessionServiceConfig {
  /// Per-lane service configuration. `admit_us` must be null — the sharded
  /// service owns one latency sink per lane (record_admit_us below);
  /// sharing one vector across worker threads would race.
  SessionServiceConfig base;
  /// Fixed logical partition count — the determinism unit. Results depend
  /// on lane_count (it defines the traffic and capacity split), never on
  /// shard_count.
  std::size_t lane_count = 1;
  /// Worker threads stepping the lanes (clamped to the pool size at run
  /// time). Purely a performance knob.
  std::size_t shard_count = 1;
  /// Give every lane an admission-latency sink (microseconds per routed
  /// arrival, admission order); read back via lane_admit_us().
  bool record_admit_us = false;
  /// Give every lane its own flight recorder (base.recorder must be null —
  /// one recorder shared across worker threads would interleave seq
  /// assignment nondeterministically). Queried back through
  /// session_records() / find_session_record() / session_record_stats(),
  /// which merge lanes in index order so results are bit-identical across
  /// shard counts.
  bool record_sessions = false;
  /// Per-lane record retention (SessionRecorderOptions::capacity).
  std::size_t recorder_capacity = 512;
  /// Happy-path keep rate in 1/1024ths (SessionRecorderOptions).
  std::uint32_t recorder_happy_keep_per_1024 = 128;
  /// Give every lane its own link ledger over its capacity slice
  /// (base.ledger must be null — one ledger shared across worker threads
  /// would interleave window accumulation nondeterministically). Queried
  /// back through link_stats() / explain_session(), which merge lanes in
  /// index order so documents are bit-identical across shard counts.
  bool record_links = false;
  /// Tumbling-window width for per-link windowed utilization.
  std::uint64_t ledger_window_slots = 64;
  /// Saturation-transition events retained per lane ledger.
  std::size_t ledger_event_capacity = 4096;
};

/// Merged outcome of one run_slots() call, lane-order deterministic.
struct ShardTickReport {
  /// Slots each lane advanced (lanes move in lockstep).
  std::uint64_t slots = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t admissions = 0;
  std::uint64_t completed = 0;
  std::uint64_t timed_out = 0;
  /// Sum of every admitted tree's rate (see SlotReport::admitted_rate_sum).
  double admitted_rate_sum = 0.0;
  /// Sessions holding qubits across all lanes after the last slot.
  std::size_t active_sessions = 0;
  /// Qubit-weighted utilization across lanes after the last slot.
  double qubit_utilization = 0.0;
};

class ShardedSessionService {
 public:
  /// `network` must outlive the service. Lane l routes on a private copy
  /// whose switch budgets are its slice of `network`'s, seeded with
  /// Rng(seed) when lane_count == 1 (SessionService bit-identity) and
  /// Rng(seed).split(l) otherwise.
  ShardedSessionService(const net::QuantumNetwork& network,
                        ShardedSessionServiceConfig config,
                        std::uint64_t seed);
  ~ShardedSessionService();

  ShardedSessionService(const ShardedSessionService&) = delete;
  ShardedSessionService& operator=(const ShardedSessionService&) = delete;

  /// Advances every lane `n` slots on up to shard_count workers and merges
  /// the per-lane tallies in lane order. One call is one parallel dispatch,
  /// so an event-driven caller catching up on a batch of due slots pays the
  /// fork/join once, not per slot.
  ShardTickReport run_slots(std::uint64_t n);

  /// run_slots(1).
  ShardTickReport step() { return run_slots(1); }

  /// Slots played so far (identical for every lane).
  std::uint64_t slot() const noexcept { return slot_; }

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  std::size_t shard_count() const noexcept { return config_.shard_count; }

  /// Sessions currently holding qubits, summed over lanes.
  std::size_t active_sessions() const noexcept;

  /// Gates arrivals in every lane (drain switch). Call between run_slots
  /// invocations only.
  void set_arrivals_enabled(bool enabled) noexcept;

  bool arrivals_enabled() const noexcept;

  // -------------------------------------------------------------------------
  // Runtime mutators, forwarded to every lane (ctl plane; call between
  // run_slots invocations only). All-or-nothing: the new value is validated
  // against lane 0 first, so a rejection leaves every lane unchanged.
  // Getters read lane 0 — lanes always share one configuration.

  bool set_arrival_prob(double prob, std::string* error = nullptr);
  double arrival_prob() const noexcept;
  bool set_arrival_burst(std::size_t burst, std::string* error = nullptr);
  std::size_t arrival_burst() const noexcept;
  bool set_batch_policy(routing::BatchPolicy policy,
                        std::string* error = nullptr);
  routing::BatchPolicy batch_policy() const noexcept;
  bool set_algorithm(const std::string& algorithm,
                     std::string* error = nullptr);
  const std::string& algorithm() const noexcept;
  bool set_log_events_per_second(double per_second,
                                 std::string* error = nullptr);
  double log_events_per_second() const noexcept;

  /// Qubit-weighted utilization across lanes.
  double qubit_utilization() const noexcept;

  /// Per-session log events dropped by the log budget, summed over lanes.
  std::uint64_t log_events_suppressed() const noexcept;

  /// Lane-order deterministic merge of every lane's ProtocolMetrics:
  /// counters sum; mean_completion_slots weights lane means by completed
  /// sessions; mean_qubit_utilization weights by each lane's switch-qubit
  /// slice.
  ProtocolMetrics metrics() const;

  /// Metrics of one lane's embedded service.
  ProtocolMetrics lane_metrics(std::size_t lane) const;

  /// Admission latencies recorded by lane (empty unless record_admit_us).
  std::span<const double> lane_admit_us(std::size_t lane) const;

  // -------------------------------------------------------------------------
  // Flight-recorder queries (empty / no-ops unless record_sessions). Safe
  // while lanes run — each recorder takes its own short lock.

  /// Records matching `filter`, merged lane by lane in index order (so the
  /// result is deterministic across shard counts). filter.limit keeps the
  /// last n of the merged list.
  std::vector<support::telemetry::SessionRecord> session_records(
      const support::telemetry::SessionFilter& filter = {}) const;

  /// A record by id (`lane << 32 | seq`) — routed straight to its lane.
  std::optional<support::telemetry::SessionRecord> find_session_record(
      std::uint64_t id) const;

  /// Lane-order merge of every lane recorder's Stats.
  support::telemetry::SessionRecorder::Stats session_record_stats() const;

  /// Finalizes every still-open record as drained at its lane's current
  /// slot (daemon shutdown). Call between run_slots invocations only.
  void finalize_session_records();

  // -------------------------------------------------------------------------
  // Link-ledger queries (empty unless record_links). Safe while lanes run —
  // each ledger takes its own short lock.

  /// Every link's merged view (edges first, then switches, index order):
  /// counts and capacity summed over lanes, utilizations capacity-weighted,
  /// endpoints (`a`/`b` / switch node id) filled from the base topology.
  /// Lane-order merge — bit-identical across shard counts.
  std::vector<support::telemetry::LinkStat> link_stats() const;

  /// A flight record joined with the links of ITS lane's capacity slice
  /// that were saturated at its admission slot — the explain document.
  /// nullopt when the id is unknown (or recording is off).
  struct ExplainedSession {
    support::telemetry::SessionRecord record;
    support::telemetry::SaturatedLinks saturated;
  };
  std::optional<ExplainedSession> explain_session(std::uint64_t id) const;

  /// Lane-order merge of every lane ledger's Stats.
  support::telemetry::LinkLedger::Stats link_ledger_stats() const;

  /// Per-shard instrument families registered (min(shard_count, 8) — the
  /// fold keeps the registry's fixed instrument caps safe at any shard
  /// count).
  static constexpr std::size_t kMaxShardFamilies = 8;

 private:
  struct Lane;
  struct ShardInstruments {
    support::telemetry::Counter slots;
    support::telemetry::Counter admitted;
    support::telemetry::Counter completed;
    support::telemetry::Histogram slot_us;
  };

  /// Steps lane `lane` by `n` slots, filling lane_ticks_[lane].
  void step_lane(std::size_t lane, std::uint64_t n);

  ShardedSessionServiceConfig config_;
  /// Base topology (outlives the service per the constructor contract);
  /// link_stats() reads endpoints from it.
  const net::QuantumNetwork* network_ = nullptr;
  /// unique_ptr: SessionService keeps pointers to its lane's network and
  /// rng, so Lane addresses must be stable.
  std::vector<std::unique_ptr<Lane>> lanes_;
  /// Per-lane partial reports for the current run_slots call; each worker
  /// writes only its own lanes' slots, the merge reads them after the join.
  std::vector<ShardTickReport> lane_ticks_;
  std::vector<ShardInstruments> shard_instruments_;
  std::uint64_t slot_ = 0;
  int total_switch_qubits_ = 0;
};

}  // namespace muerp::sim
