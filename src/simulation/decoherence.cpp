#include "simulation/decoherence.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "simulation/monte_carlo.hpp"
#include "support/statistics.hpp"

namespace muerp::sim {

DeliveredEntanglement DecoherenceSimulator::run_once(
    const net::EntanglementTree& tree, support::Rng& rng) const {
  DeliveredEntanglement result;
  if (!tree.feasible) return result;
  if (tree.channels.empty()) {
    result.slots = 1;
    result.worst_fidelity = 1.0;
    return result;
  }

  const MonteCarloSimulator mc(*network_);
  // Per channel: remaining memory slots (0 = not held) and the slot the
  // current pair was created.
  std::vector<std::uint32_t> remaining(tree.channels.size(), 0);
  std::vector<std::uint64_t> born(tree.channels.size(), 0);

  for (std::uint64_t slot = 1; slot <= params_.max_slots; ++slot) {
    bool all_alive = true;
    for (std::size_t i = 0; i < tree.channels.size(); ++i) {
      if (remaining[i] == 0) {
        if (mc.attempt_channel(tree.channels[i], rng)) {
          remaining[i] = params_.memory_slots + 1;
          born[i] = slot;
        } else {
          all_alive = false;
        }
      }
    }
    if (all_alive) {
      result.slots = slot;
      result.worst_fidelity = 1.0;
      for (std::size_t i = 0; i < tree.channels.size(); ++i) {
        // Fidelity at creation from the link model, decayed per waited slot.
        const double f0 = ext::channel_fidelity(
            *network_, tree.channels[i].path, params_.fidelity);
        const double w0 = (4.0 * f0 - 1.0) / 3.0;
        const auto waited = static_cast<double>(slot - born[i]);
        const double w =
            w0 * std::pow(params_.memory_decay_per_slot, waited);
        result.worst_fidelity =
            std::min(result.worst_fidelity, 0.25 + 0.75 * w);
      }
      return result;
    }
    for (auto& r : remaining) {
      if (r > 0) --r;
    }
  }
  return result;  // aborted
}

DecoherenceSimulator::Stats DecoherenceSimulator::measure(
    const net::EntanglementTree& tree, std::uint64_t runs,
    support::Rng& rng) const {
  Stats stats;
  support::Accumulator slots;
  support::Accumulator fidelity;
  for (std::uint64_t r = 0; r < runs; ++r) {
    const auto outcome = run_once(tree, rng);
    if (outcome.slots == 0) {
      ++stats.aborted_runs;
    } else {
      ++stats.completed_runs;
      slots.add(static_cast<double>(outcome.slots));
      fidelity.add(outcome.worst_fidelity);
    }
  }
  stats.mean_slots = slots.mean();
  stats.mean_worst_fidelity = fidelity.mean();
  return stats;
}

}  // namespace muerp::sim
